#include "trace/log_codec.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"

namespace cordial::trace {

namespace {

constexpr const char* kHeader[] = {"time_s", "node",           "npu",
                                   "hbm",    "sid",            "channel",
                                   "pseudo_channel", "bank_group", "bank",
                                   "row",    "col",            "type"};
constexpr std::size_t kFieldCount = sizeof(kHeader) / sizeof(kHeader[0]);

std::uint32_t ParseU32(const std::string& s) {
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw ParseError("MCE CSV: bad unsigned field '" + s + "'");
  }
  return value;
}

double ParseDouble(const std::string& s) {
  try {
    std::size_t pos = 0;
    double value = std::stod(s, &pos);
    if (pos != s.size()) throw ParseError("MCE CSV: bad double field '" + s + "'");
    return value;
  } catch (const std::invalid_argument&) {
    throw ParseError("MCE CSV: bad double field '" + s + "'");
  } catch (const std::out_of_range&) {
    throw ParseError("MCE CSV: double field out of range '" + s + "'");
  }
}

hbm::ErrorType ParseType(const std::string& s) {
  if (s == "CE") return hbm::ErrorType::kCe;
  if (s == "UEO") return hbm::ErrorType::kUeo;
  if (s == "UER") return hbm::ErrorType::kUer;
  throw ParseError("MCE CSV: unknown error type '" + s + "'");
}

MceRecord ParseFields(const std::vector<std::string>& row) {
  MceRecord r;
  r.time_s = ParseDouble(row[0]);
  r.address.node = ParseU32(row[1]);
  r.address.npu = ParseU32(row[2]);
  r.address.hbm = ParseU32(row[3]);
  r.address.sid = ParseU32(row[4]);
  r.address.channel = ParseU32(row[5]);
  r.address.pseudo_channel = ParseU32(row[6]);
  r.address.bank_group = ParseU32(row[7]);
  r.address.bank = ParseU32(row[8]);
  r.address.row = ParseU32(row[9]);
  r.address.col = ParseU32(row[10]);
  r.type = ParseType(row[11]);
  return r;
}

}  // namespace

namespace {

/// Shortest round-trippable decimal rendering of a double.
std::string FormatTime(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void LogCodec::WriteCsv(const ErrorLog& log, std::ostream& out) {
  CsvWriter writer(out);
  writer.WriteRow(
      std::vector<std::string>(kHeader, kHeader + kFieldCount));
  for (const MceRecord& r : log.records()) {
    const hbm::DeviceAddress& a = r.address;
    writer.WriteRow({FormatTime(r.time_s), std::to_string(a.node),
                     std::to_string(a.npu), std::to_string(a.hbm),
                     std::to_string(a.sid), std::to_string(a.channel),
                     std::to_string(a.pseudo_channel),
                     std::to_string(a.bank_group), std::to_string(a.bank),
                     std::to_string(a.row), std::to_string(a.col),
                     hbm::ErrorTypeName(r.type)});
  }
}

ErrorLog LogCodec::ReadCsv(std::istream& in) {
  const auto rows = CsvReader::ReadAll(in);
  if (rows.empty()) throw ParseError("MCE CSV: missing header");
  ErrorLog log;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != kFieldCount) {
      throw ParseError("MCE CSV: row " + std::to_string(i) + " has " +
                       std::to_string(row.size()) + " fields, expected " +
                       std::to_string(kFieldCount));
    }
    log.Add(ParseFields(row));
  }
  return log;
}

bool LogCodec::IsCsvHeader(const std::string& line) {
  return line.rfind(kHeader[0], 0) == 0;
}

MceRecord LogCodec::ParseCsvLine(const std::string& line) {
  // The schema is unquoted numeric/type fields, so a plain comma split is
  // exact.
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  if (!fields.empty() && !fields.back().empty() &&
      fields.back().back() == '\r') {
    fields.back().pop_back();
  }
  if (fields.size() != kFieldCount) {
    throw ParseError("MCE CSV line: " + std::to_string(fields.size()) +
                     " fields, expected " + std::to_string(kFieldCount));
  }
  return ParseFields(fields);
}

}  // namespace cordial::trace
