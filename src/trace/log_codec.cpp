#include "trace/log_codec.hpp"

#include <charconv>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"

namespace cordial::trace {

namespace {

constexpr const char* kHeader[] = {"time_s", "node",           "npu",
                                   "hbm",    "sid",            "channel",
                                   "pseudo_channel", "bank_group", "bank",
                                   "row",    "col",            "type"};
constexpr std::size_t kFieldCount = sizeof(kHeader) / sizeof(kHeader[0]);

std::uint32_t ParseU32(const std::string& s) {
  std::uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw ParseError("MCE CSV: bad unsigned field '" + s + "'");
  }
  return value;
}

double ParseDouble(const std::string& s) {
  try {
    std::size_t pos = 0;
    double value = std::stod(s, &pos);
    if (pos != s.size()) throw ParseError("MCE CSV: bad double field '" + s + "'");
    return value;
  } catch (const std::invalid_argument&) {
    throw ParseError("MCE CSV: bad double field '" + s + "'");
  } catch (const std::out_of_range&) {
    throw ParseError("MCE CSV: double field out of range '" + s + "'");
  }
}

hbm::ErrorType ParseType(const std::string& s) {
  if (s == "CE") return hbm::ErrorType::kCe;
  if (s == "UEO") return hbm::ErrorType::kUeo;
  if (s == "UER") return hbm::ErrorType::kUer;
  throw ParseError("MCE CSV: unknown error type '" + s + "'");
}

MceRecord ParseFields(const std::vector<std::string>& row) {
  MceRecord r;
  r.time_s = ParseDouble(row[0]);
  r.address.node = ParseU32(row[1]);
  r.address.npu = ParseU32(row[2]);
  r.address.hbm = ParseU32(row[3]);
  r.address.sid = ParseU32(row[4]);
  r.address.channel = ParseU32(row[5]);
  r.address.pseudo_channel = ParseU32(row[6]);
  r.address.bank_group = ParseU32(row[7]);
  r.address.bank = ParseU32(row[8]);
  r.address.row = ParseU32(row[9]);
  r.address.col = ParseU32(row[10]);
  r.type = ParseType(row[11]);
  return r;
}

}  // namespace

namespace {

/// Shortest round-trippable decimal rendering of a double.
std::string FormatTime(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void LogCodec::WriteCsv(const ErrorLog& log, std::ostream& out) {
  CsvWriter writer(out);
  writer.WriteRow(
      std::vector<std::string>(kHeader, kHeader + kFieldCount));
  for (const MceRecord& r : log.records()) {
    const hbm::DeviceAddress& a = r.address;
    writer.WriteRow({FormatTime(r.time_s), std::to_string(a.node),
                     std::to_string(a.npu), std::to_string(a.hbm),
                     std::to_string(a.sid), std::to_string(a.channel),
                     std::to_string(a.pseudo_channel),
                     std::to_string(a.bank_group), std::to_string(a.bank),
                     std::to_string(a.row), std::to_string(a.col),
                     hbm::ErrorTypeName(r.type)});
  }
}

ErrorLog LogCodec::ReadCsv(std::istream& in) {
  const auto rows = CsvReader::ReadAll(in);
  if (rows.empty()) throw ParseError("MCE CSV: missing header");
  ErrorLog log;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != kFieldCount) {
      throw ParseError("MCE CSV: row " + std::to_string(i) + " has " +
                       std::to_string(row.size()) + " fields, expected " +
                       std::to_string(kFieldCount));
    }
    log.Add(ParseFields(row));
  }
  return log;
}

bool LogCodec::IsCsvHeader(const std::string& line) {
  return line.rfind(kHeader[0], 0) == 0;
}

namespace {

/// Little-endian scalar append/read — explicit byte shifts, so the wire
/// bytes are identical on any host endianness.
void AppendU32(std::uint32_t value, std::string& out) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t ReadU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

void LogCodec::AppendBinary(const MceRecord& record, std::string& out) {
  std::uint64_t time_bits = 0;
  static_assert(sizeof(time_bits) == sizeof(record.time_s));
  std::memcpy(&time_bits, &record.time_s, sizeof(time_bits));
  AppendU32(static_cast<std::uint32_t>(time_bits & 0xFFFFFFFFu), out);
  AppendU32(static_cast<std::uint32_t>(time_bits >> 32), out);
  const hbm::DeviceAddress& a = record.address;
  AppendU32(a.node, out);
  AppendU32(a.npu, out);
  AppendU32(a.hbm, out);
  AppendU32(a.sid, out);
  AppendU32(a.channel, out);
  AppendU32(a.pseudo_channel, out);
  AppendU32(a.bank_group, out);
  AppendU32(a.bank, out);
  AppendU32(a.row, out);
  AppendU32(a.col, out);
  out.push_back(static_cast<char>(record.type));
}

MceRecord LogCodec::ParseBinary(std::string_view bytes) {
  if (bytes.size() < kBinaryRecordBytes) {
    throw ParseError("MCE binary record: truncated (" +
                     std::to_string(bytes.size()) + " bytes, need " +
                     std::to_string(kBinaryRecordBytes) + ")");
  }
  const char* p = bytes.data();
  MceRecord r;
  const std::uint64_t time_bits =
      static_cast<std::uint64_t>(ReadU32(p)) |
      static_cast<std::uint64_t>(ReadU32(p + 4)) << 32;
  std::memcpy(&r.time_s, &time_bits, sizeof(r.time_s));
  hbm::DeviceAddress& a = r.address;
  a.node = ReadU32(p + 8);
  a.npu = ReadU32(p + 12);
  a.hbm = ReadU32(p + 16);
  a.sid = ReadU32(p + 20);
  a.channel = ReadU32(p + 24);
  a.pseudo_channel = ReadU32(p + 28);
  a.bank_group = ReadU32(p + 32);
  a.bank = ReadU32(p + 36);
  a.row = ReadU32(p + 40);
  a.col = ReadU32(p + 44);
  const unsigned char type_byte = static_cast<unsigned char>(p[48]);
  switch (type_byte) {
    case static_cast<unsigned char>(hbm::ErrorType::kCe):
    case static_cast<unsigned char>(hbm::ErrorType::kUeo):
    case static_cast<unsigned char>(hbm::ErrorType::kUer):
      r.type = static_cast<hbm::ErrorType>(type_byte);
      break;
    default:
      throw ParseError("MCE binary record: unknown error type byte " +
                       std::to_string(type_byte));
  }
  return r;
}

MceRecord LogCodec::ParseCsvLine(const std::string& line) {
  // The schema is unquoted numeric/type fields, so a plain comma split is
  // exact.
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  if (!fields.empty() && !fields.back().empty() &&
      fields.back().back() == '\r') {
    fields.back().pop_back();
  }
  if (fields.size() != kFieldCount) {
    throw ParseError("MCE CSV line: " + std::to_string(fields.size()) +
                     " fields, expected " + std::to_string(kFieldCount));
  }
  return ParseFields(fields);
}

MceRecord LogCodec::ParseCsvLine(const std::string& line,
                                 const hbm::AddressCodec& codec) {
  const MceRecord record = ParseCsvLine(line);
  if (!std::isfinite(record.time_s)) {
    throw ParseError("MCE CSV line: non-finite timestamp");
  }
  if (!codec.IsValid(record.address)) {
    throw ParseError("MCE CSV line: address out of topology bounds: " +
                     record.address.ToString());
  }
  return record;
}

}  // namespace cordial::trace
