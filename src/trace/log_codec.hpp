// Persistence codecs for MCE logs.
//
// Two encodings share this class: the CSV form (round-trips through
// CsvWriter/Reader, human-inspectable, the file-feed format) and a
// fixed-width little-endian binary form — the wire encoding of the TCP
// ingest protocol (src/net). A binary record is exactly
// kBinaryRecordBytes: the time as raw IEEE-754 bits, the ten address
// coordinates as u32s, then one error-type byte. Fixed width means a batch
// frame's record count is length / kBinaryRecordBytes with no per-record
// length prefixes, and decode touches no allocator. Malformed input —
// short buffers, an unknown type byte — is a ParseError, never UB;
// bit flips in the numeric fields are caught one layer up by the wire
// frame's CRC-32 (common/framing).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/error_log.hpp"

namespace cordial::trace {

class LogCodec {
 public:
  /// Header: time_s,node,npu,hbm,sid,channel,pseudo_channel,bank_group,bank,
  ///         row,col,type
  static void WriteCsv(const ErrorLog& log, std::ostream& out);

  /// Parses a CSV written by WriteCsv. Throws ParseError on malformed rows
  /// (wrong arity, non-numeric fields, unknown error type).
  static ErrorLog ReadCsv(std::istream& in);

  /// True when `line` is the WriteCsv header row (streaming feeds skip it).
  static bool IsCsvHeader(const std::string& line);

  /// Parse one data line of the WriteCsv schema. The streaming entry point
  /// for daemons consuming a live feed line by line; same ParseError
  /// contract as ReadCsv.
  static MceRecord ParseCsvLine(const std::string& line);

  /// Like ParseCsvLine, but additionally validated against `codec`'s
  /// topology: a coordinate beyond bounds or a non-finite timestamp is a
  /// ParseError too. Without this check an out-of-topology coordinate
  /// survives parsing and later either aliases a valid-looking bank key or
  /// detonates a contract check deep inside the serving plane — daemons
  /// must count such lines as malformed at the ingest boundary instead.
  static MceRecord ParseCsvLine(const std::string& line,
                                const hbm::AddressCodec& codec);

  /// Exact size of one binary-encoded record: 8 (time bits) + 10 * 4
  /// (address coordinates) + 1 (error type).
  static constexpr std::size_t kBinaryRecordBytes = 8 + 10 * 4 + 1;

  /// Append the fixed-width little-endian encoding of `record` to `out`
  /// (exactly kBinaryRecordBytes bytes).
  static void AppendBinary(const MceRecord& record, std::string& out);

  /// Decode one binary record from the front of `bytes`. Throws ParseError
  /// when fewer than kBinaryRecordBytes are available or the type byte is
  /// not a known ErrorType; extra bytes past the record are ignored (the
  /// caller advances by kBinaryRecordBytes).
  static MceRecord ParseBinary(std::string_view bytes);
};

}  // namespace cordial::trace
