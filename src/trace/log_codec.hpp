// CSV persistence for MCE logs — round-trips through the CsvWriter/Reader,
// so generated traces can be exported, inspected, and re-ingested.
#pragma once

#include <iosfwd>

#include "trace/error_log.hpp"

namespace cordial::trace {

class LogCodec {
 public:
  /// Header: time_s,node,npu,hbm,sid,channel,pseudo_channel,bank_group,bank,
  ///         row,col,type
  static void WriteCsv(const ErrorLog& log, std::ostream& out);

  /// Parses a CSV written by WriteCsv. Throws ParseError on malformed rows
  /// (wrong arity, non-numeric fields, unknown error type).
  static ErrorLog ReadCsv(std::istream& in);
};

}  // namespace cordial::trace
