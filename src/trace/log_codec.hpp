// CSV persistence for MCE logs — round-trips through the CsvWriter/Reader,
// so generated traces can be exported, inspected, and re-ingested.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/error_log.hpp"

namespace cordial::trace {

class LogCodec {
 public:
  /// Header: time_s,node,npu,hbm,sid,channel,pseudo_channel,bank_group,bank,
  ///         row,col,type
  static void WriteCsv(const ErrorLog& log, std::ostream& out);

  /// Parses a CSV written by WriteCsv. Throws ParseError on malformed rows
  /// (wrong arity, non-numeric fields, unknown error type).
  static ErrorLog ReadCsv(std::istream& in);

  /// True when `line` is the WriteCsv header row (streaming feeds skip it).
  static bool IsCsvHeader(const std::string& line);

  /// Parse one data line of the WriteCsv schema. The streaming entry point
  /// for daemons consuming a live feed line by line; same ParseError
  /// contract as ReadCsv.
  static MceRecord ParseCsvLine(const std::string& line);
};

}  // namespace cordial::trace
