#include "trace/timeline.hpp"

#include <algorithm>
#include <cmath>

namespace cordial::trace {

using hbm::ErrorType;
using hbm::PatternShape;

TimelineExpander::TimelineExpander(const hbm::TopologyConfig& topology,
                                   TimelineParams params)
    : topology_(topology), params_(params) {
  topology_.Validate();
  CORDIAL_CHECK_MSG(params_.window_s > 0.0, "window must be positive");
  CORDIAL_CHECK_MSG(
      params_.sudden_row_prob >= 0.0 && params_.sudden_row_prob <= 1.0,
      "sudden_row_prob must be a probability");
}

double TimelineExpander::InterUerMean(PatternShape shape) const {
  switch (shape) {
    case PatternShape::kSingleRowCluster:
    case PatternShape::kDoubleRowCluster:
    case PatternShape::kHalfTotalRowCluster:
      return params_.inter_uer_mean_cluster_s;
    case PatternShape::kReadDisturb:
      return params_.inter_uer_mean_rd_s;
    default:
      return params_.inter_uer_mean_scattered_s;
  }
}

double TimelineExpander::SuddenRowProb(PatternShape shape) const {
  return shape == PatternShape::kReadDisturb ? params_.rd_sudden_row_prob
                                             : params_.sudden_row_prob;
}

double TimelineExpander::ExtraUeoRowsMean(PatternShape shape) const {
  switch (shape) {
    case PatternShape::kSingleRowCluster: return params_.extra_ueo_rows_single;
    case PatternShape::kDoubleRowCluster: return params_.extra_ueo_rows_double;
    case PatternShape::kHalfTotalRowCluster: return params_.extra_ueo_rows_half;
    case PatternShape::kScattered: return params_.extra_ueo_rows_scattered;
    case PatternShape::kWholeColumn: return params_.extra_ueo_rows_column;
    case PatternShape::kReadDisturb: return params_.extra_ueo_rows_rd;
    case PatternShape::kCeOnly: return 0.0;
  }
  return 0.0;
}

MceRecord TimelineExpander::MakeRecord(const hbm::DeviceAddress& base,
                                       std::uint32_t row, std::uint32_t col,
                                       ErrorType type, double time_s) const {
  MceRecord r;
  r.address = base;
  r.address.row = row;
  r.address.col = col;
  r.type = type;
  r.time_s = std::clamp(time_s, 0.0, params_.window_s);
  return r;
}

std::vector<MceRecord> TimelineExpander::ExpandBank(
    const hbm::BankFaultPlan& plan, const hbm::DeviceAddress& base,
    Rng& rng) const {
  std::vector<MceRecord> events;
  const auto pick_col = [&](const hbm::RowErrors& row) -> std::uint32_t {
    CORDIAL_CHECK_MSG(!row.cols.empty(), "plan row without columns");
    return row.cols[static_cast<std::size_t>(rng.UniformU64(row.cols.size()))];
  };

  if (plan.uer_rows.empty()) {
    // CE-only bank: weak cells shedding correctable noise over the window.
    const double onset = rng.UniformReal(0.0, params_.window_s * 0.95);
    for (const hbm::RowErrors& row : plan.ce_rows) {
      const auto n =
          1 + static_cast<std::size_t>(rng.Poisson(params_.ce_events_per_row_mean));
      for (std::size_t i = 0; i < n; ++i) {
        const double t = rng.UniformReal(onset, params_.window_s);
        events.push_back(MakeRecord(base, row.row, pick_col(row),
                                    ErrorType::kCe, t));
      }
    }
    return events;
  }

  // --- UER bank ---
  const double first_uer_t =
      rng.UniformReal(params_.window_s * 0.1, params_.window_s * 0.9);
  const double inter_mean = InterUerMean(plan.shape);
  const bool bank_emits_ueo = rng.Bernoulli(params_.ueo_bank_prob);
  const bool ambient_precursor = rng.Bernoulli(params_.ambient_precursor_prob);

  // Row failure schedule: plan order is failure order.
  double t = first_uer_t;
  for (std::size_t i = 0; i < plan.uer_rows.size(); ++i) {
    const hbm::RowErrors& row = plan.uer_rows[i];
    if (i > 0) t += rng.Exponential(1.0 / inter_mean);
    const double row_first_t = t;
    if (row_first_t > params_.window_s) break;  // beyond observation window

    const bool sudden = rng.Bernoulli(SuddenRowProb(plan.shape));
    if (!sudden) {
      // Same-row precursors: a few CEs, possibly a scrubber-found UEO.
      const auto n_ce = 1 + static_cast<std::size_t>(rng.Poisson(1.0));
      for (std::size_t k = 0; k < n_ce; ++k) {
        const double lead = rng.UniformReal(0.0, params_.in_row_precursor_lead_s);
        events.push_back(MakeRecord(base, row.row, pick_col(row), ErrorType::kCe,
                                    row_first_t - lead));
      }
      if (bank_emits_ueo && rng.Bernoulli(params_.ueo_row_precursor_prob)) {
        const double lead = rng.UniformReal(0.0, params_.scrub_period_s);
        events.push_back(MakeRecord(base, row.row, pick_col(row),
                                    ErrorType::kUeo, row_first_t - lead));
      }
    } else if (bank_emits_ueo && rng.Bernoulli(0.3)) {
      // Scrubber re-detects the latent fault after the demand access hit it;
      // strictly after the UER so the row stays "sudden".
      const double lag = rng.Exponential(1.0 / params_.scrub_period_s);
      events.push_back(MakeRecord(base, row.row, pick_col(row), ErrorType::kUeo,
                                  std::min(row_first_t + lag, params_.window_s)));
    }

    // The UER event itself plus repeats until mitigation.
    const auto repeats =
        1 + static_cast<std::size_t>(rng.Poisson(params_.uer_repeat_mean));
    double rt = row_first_t;
    for (std::size_t k = 0; k < repeats && rt <= params_.window_s; ++k) {
      events.push_back(
          MakeRecord(base, row.row, pick_col(row), ErrorType::kUer, rt));
      rt += rng.Exponential(1.0 / params_.uer_repeat_gap_mean_s);
    }
  }

  // Ambient CE noise rows. If the bank is a "predictable" bank, the noise
  // starts before the first UER; otherwise it trails the failure.
  for (const hbm::RowErrors& row : plan.ce_rows) {
    const double start = ambient_precursor
                             ? first_uer_t - rng.UniformReal(0.0, params_.ambient_lead_s)
                             : first_uer_t + rng.UniformReal(1.0, params_.ambient_lead_s);
    const auto n =
        1 + static_cast<std::size_t>(rng.Poisson(params_.ce_events_per_row_mean));
    for (std::size_t i = 0; i < n; ++i) {
      const double jitter = rng.UniformReal(0.0, params_.ambient_lead_s);
      events.push_back(MakeRecord(base, row.row, pick_col(row), ErrorType::kCe,
                                  std::max(0.0, start) + jitter));
    }
  }

  // Extra latent rows the scrubber found but no access ever consumed (UEO
  // only). Emitted after the bank's first UER unless the bank is a
  // precursor bank.
  if (bank_emits_ueo) {
    const auto n_extra =
        static_cast<std::size_t>(rng.Poisson(ExtraUeoRowsMean(plan.shape)));
    const bool bank_wide = plan.shape == PatternShape::kScattered ||
                           plan.shape == PatternShape::kWholeColumn;
    for (std::size_t i = 0; i < n_extra; ++i) {
      std::uint32_t row;
      std::uint32_t col =
          static_cast<std::uint32_t>(rng.UniformU64(topology_.cols_per_bank));
      if (bank_wide || plan.uer_rows.empty()) {
        row = static_cast<std::uint32_t>(rng.UniformU64(topology_.rows_per_bank));
      } else {
        const hbm::RowErrors& anchor = plan.uer_rows[static_cast<std::size_t>(
            rng.UniformU64(plan.uer_rows.size()))];
        const double offset = rng.Normal(0.0, 48.0);
        const auto shifted = static_cast<std::int64_t>(anchor.row) +
                             static_cast<std::int64_t>(std::llround(offset));
        row = static_cast<std::uint32_t>(std::clamp<std::int64_t>(
            shifted, 0, static_cast<std::int64_t>(topology_.rows_per_bank) - 1));
        if (plan.shape == PatternShape::kWholeColumn && !anchor.cols.empty()) {
          col = anchor.cols.front();
        }
      }
      const double when =
          ambient_precursor
              ? first_uer_t - rng.UniformReal(0.0, params_.scrub_period_s)
              : first_uer_t + rng.Exponential(1.0 / params_.scrub_period_s);
      events.push_back(MakeRecord(base, row, col, ErrorType::kUeo, when));
    }
  }

  return events;
}

}  // namespace cordial::trace
