#include "trace/error_log.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace cordial::trace {

std::string MceRecord::ToString() const {
  std::ostringstream os;
  os << "t=" << time_s << " " << hbm::ErrorTypeName(type) << " @ "
     << address.ToString();
  return os.str();
}

std::vector<MceRecord> BankHistory::OfType(hbm::ErrorType type) const {
  std::vector<MceRecord> out;
  for (const MceRecord& r : events) {
    if (r.type == type) out.push_back(r);
  }
  return out;
}

double BankHistory::FirstUerTime() const {
  for (const MceRecord& r : events) {
    if (r.type == hbm::ErrorType::kUer) return r.time_s;
  }
  return std::numeric_limits<double>::infinity();
}

std::size_t BankHistory::CountBefore(hbm::ErrorType type, double cutoff_s) const {
  std::size_t n = 0;
  for (const MceRecord& r : events) {
    if (r.time_s >= cutoff_s) break;
    if (r.type == type) ++n;
  }
  return n;
}

bool BankHistory::HasUer() const {
  return std::any_of(events.begin(), events.end(), [](const MceRecord& r) {
    return r.type == hbm::ErrorType::kUer;
  });
}

void ErrorLog::Append(const std::vector<MceRecord>& records) {
  records_.insert(records_.end(), records.begin(), records.end());
}

void ErrorLog::Sort() { std::sort(records_.begin(), records_.end()); }

std::vector<BankHistory> ErrorLog::GroupByBank(
    const hbm::AddressCodec& codec) const {
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<BankHistory> banks;
  for (const MceRecord& r : records_) {
    const std::uint64_t key = codec.BankKey(r.address);
    auto [it, inserted] = index.emplace(key, banks.size());
    if (inserted) {
      banks.push_back(BankHistory{key, {}});
    }
    banks[it->second].events.push_back(r);
  }
  for (BankHistory& bank : banks) {
    std::sort(bank.events.begin(), bank.events.end());
  }
  std::sort(banks.begin(), banks.end(),
            [](const BankHistory& a, const BankHistory& b) {
              return a.bank_key < b.bank_key;
            });
  return banks;
}

}  // namespace cordial::trace
