// MCE log record (§V-A): every CE / UEO / UER event carries a timestamp,
// the full device address and the error type — the exact tuple the paper's
// BMC-collected logs record and the only input Cordial consumes.
#pragma once

#include <compare>
#include <string>

#include "hbm/address.hpp"
#include "hbm/ecc.hpp"

namespace cordial::trace {

struct MceRecord {
  double time_s = 0.0;  ///< seconds since observation-window start
  hbm::DeviceAddress address;
  hbm::ErrorType type = hbm::ErrorType::kCe;

  /// Time order with address as tie-break so sorting is deterministic.
  friend bool operator<(const MceRecord& a, const MceRecord& b) {
    if (a.time_s != b.time_s) return a.time_s < b.time_s;
    if (a.address != b.address) return a.address < b.address;
    return static_cast<int>(a.type) < static_cast<int>(b.type);
  }
  friend bool operator==(const MceRecord& a, const MceRecord& b) {
    return a.time_s == b.time_s && a.address == b.address && a.type == b.type;
  }

  std::string ToString() const;
};

}  // namespace cordial::trace
