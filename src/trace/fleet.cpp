#include "trace/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/parallel.hpp"
#include "hbm/address.hpp"

namespace cordial::trace {

using hbm::DeviceAddress;
using hbm::PatternShape;

void CalibrationProfile::Validate() const {
  CORDIAL_CHECK_MSG(scale > 0.0, "profile: scale must be positive");
  const double mix = mix_single + mix_double + mix_half + mix_scattered +
                     mix_column + mix_read_disturb;
  CORDIAL_CHECK_MSG(std::fabs(mix - 1.0) < 1e-6,
                    "profile: pattern mix must sum to 1");
  CORDIAL_CHECK_MSG(mix_read_disturb >= 0.0,
                    "profile: mix_read_disturb must be non-negative");
  CORDIAL_CHECK_MSG(uer_npus > 0, "profile: uer_npus must be > 0");
}

const BankTruth* GeneratedFleet::FindBank(std::uint64_t bank_key) const {
  auto it = bank_index.find(bank_key);
  return it == bank_index.end() ? nullptr : &banks[it->second];
}

std::size_t GeneratedFleet::CountUerBanks() const {
  return static_cast<std::size_t>(
      std::count_if(banks.begin(), banks.end(), [](const BankTruth& b) {
        return !b.planned_uer_rows.empty();
      }));
}

namespace {

template <typename MapRow>
ErrorLog RemapLogRows(const ErrorLog& log, MapRow&& map_row) {
  ErrorLog out;
  for (MceRecord record : log.records()) {
    record.address.row = map_row(record.address.row);
    out.Add(record);
  }
  return out;
}

}  // namespace

ErrorLog RemapLogRowsToPhysical(const ErrorLog& log,
                                const hbm::RowMapping& mapping) {
  return RemapLogRows(
      log, [&](std::uint32_t row) { return mapping.ToPhysical(row); });
}

ErrorLog RemapLogRowsToLogical(const ErrorLog& log,
                               const hbm::RowMapping& mapping) {
  return RemapLogRows(
      log, [&](std::uint32_t row) { return mapping.ToLogical(row); });
}

FleetGenerator::FleetGenerator(const hbm::TopologyConfig& topology,
                               CalibrationProfile profile,
                               hbm::FootprintParams footprint,
                               TimelineParams timeline,
                               hbm::RowMapping row_mapping)
    : topology_(topology),
      profile_(profile),
      footprints_(topology, footprint),
      timeline_(topology, timeline),
      row_mapping_(std::move(row_mapping)) {
  topology_.Validate();
  profile_.Validate();
  CORDIAL_CHECK_MSG(
      row_mapping_.identity() ||
          row_mapping_.rows() == topology_.rows_per_bank,
      "row mapping was built for a different rows_per_bank");
}

namespace {

/// 1 + Poisson(rate), capped at `cap`; the hierarchical fan-out primitive.
std::size_t FanOut(double rate, std::size_t cap, Rng& rng) {
  const std::size_t n = 1 + static_cast<std::size_t>(rng.Poisson(rate));
  return std::min(n, cap);
}

std::size_t Scaled(std::uint32_t count, double scale) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(count * scale)));
}

/// One generated faulty bank plus its expanded event stream. Incidents
/// produce these in generation order; the merge step stitches them into
/// the fleet in incident-index order, which keeps the result independent
/// of which thread generated which incident.
struct BankOutput {
  BankTruth truth;
  std::vector<MceRecord> events;
};

/// Everything planted below one faulty NPU. Each incident is generated
/// from its own forked RNG and never sees another incident's banks; this
/// is sound because incidents own disjoint NPUs (picks are sampled without
/// replacement), so bank keys cannot collide across incidents.
struct IncidentOutput {
  std::vector<BankOutput> banks;
};

/// Generates one incident's fault fan-out. Holds only const references —
/// safe to share across worker threads.
class IncidentBuilder {
 public:
  IncidentBuilder(const hbm::TopologyConfig& topology,
                  const CalibrationProfile& profile,
                  const hbm::FootprintGenerator& footprints,
                  const TimelineExpander& timeline,
                  const hbm::AddressCodec& codec,
                  const hbm::RowMapping& row_mapping)
      : topology_(topology),
        profile_(profile),
        footprints_(footprints),
        timeline_(timeline),
        codec_(codec),
        row_mapping_(row_mapping),
        mix_{profile.mix_single, profile.mix_double, profile.mix_half,
             profile.mix_scattered, profile.mix_column,
             profile.mix_read_disturb},
        psch_slots_(topology.channels_per_sid *
                    topology.pseudo_channels_per_channel) {}

  DeviceAddress NpuAddress(std::size_t flat_npu) const {
    DeviceAddress a;
    a.node = static_cast<std::uint32_t>(flat_npu / topology_.npus_per_node);
    a.npu = static_cast<std::uint32_t>(flat_npu % topology_.npus_per_node);
    return a;
  }

  /// UER incident: hierarchical fan-out below the failing NPU, plus an
  /// optional CE-only companion bank in the same NPU.
  IncidentOutput UerIncident(std::size_t flat_npu, Rng& rng) const {
    static constexpr PatternShape kShapeByMix[] = {
        PatternShape::kSingleRowCluster, PatternShape::kDoubleRowCluster,
        PatternShape::kHalfTotalRowCluster, PatternShape::kScattered,
        PatternShape::kWholeColumn, PatternShape::kReadDisturb};

    IncidentOutput out;
    std::unordered_set<std::uint64_t> local_keys;
    const DeviceAddress npu = NpuAddress(flat_npu);
    DeviceAddress first_uer_bank;  // reference for companion placement
    bool have_first_uer_bank = false;

    const std::size_t n_hbm =
        FanOut(profile_.extra_hbms_per_npu, topology_.hbms_per_npu, rng);
    for (std::size_t hbm_pick :
         rng.SampleWithoutReplacement(topology_.hbms_per_npu, n_hbm)) {
      DeviceAddress at_hbm = npu;
      at_hbm.hbm = static_cast<std::uint32_t>(hbm_pick);
      const std::size_t n_sid =
          FanOut(profile_.extra_sids_per_hbm, topology_.sids_per_hbm, rng);
      for (std::size_t sid_pick :
           rng.SampleWithoutReplacement(topology_.sids_per_hbm, n_sid)) {
        DeviceAddress at_sid = at_hbm;
        at_sid.sid = static_cast<std::uint32_t>(sid_pick);
        const std::size_t n_psch =
            FanOut(profile_.extra_pschs_per_sid, psch_slots_, rng);
        for (std::size_t psch_pick :
             rng.SampleWithoutReplacement(psch_slots_, n_psch)) {
          DeviceAddress at_psch = at_sid;
          at_psch.channel = static_cast<std::uint32_t>(
              psch_pick / topology_.pseudo_channels_per_channel);
          at_psch.pseudo_channel = static_cast<std::uint32_t>(
              psch_pick % topology_.pseudo_channels_per_channel);
          const std::size_t n_bg =
              FanOut(profile_.extra_bgs_per_psch,
                     topology_.bank_groups_per_pseudo_channel, rng);
          for (std::size_t bg_pick : rng.SampleWithoutReplacement(
                   topology_.bank_groups_per_pseudo_channel, n_bg)) {
            DeviceAddress at_bg = at_psch;
            at_bg.bank_group = static_cast<std::uint32_t>(bg_pick);
            const std::size_t n_bank = FanOut(
                profile_.extra_banks_per_bg, topology_.banks_per_bank_group,
                rng);
            for (std::size_t bank_pick : rng.SampleWithoutReplacement(
                     topology_.banks_per_bank_group, n_bank)) {
              DeviceAddress at_bank = at_bg;
              at_bank.bank = static_cast<std::uint32_t>(bank_pick);
              AddBank(at_bank, kShapeByMix[rng.WeightedChoice(mix_)], rng,
                      out, local_keys);
              if (!have_first_uer_bank) {
                first_uer_bank = at_bank;
                have_first_uer_bank = true;
              }
            }
          }
        }
      }
    }

    // Companion CE-only bank inside the same NPU: its correctable noise can
    // precede the sibling's first UER and makes coarse levels predictable.
    if (have_first_uer_bank && rng.Bernoulli(profile_.companion_ce_prob)) {
      DeviceAddress companion = first_uer_bank;
      const std::size_t placement = rng.WeightedChoice(
          {profile_.companion_same_bg, profile_.companion_same_psch,
           profile_.companion_same_sid, profile_.companion_same_hbm,
           profile_.companion_same_npu});
      // "Different but in range" coordinate: shift by a nonzero offset.
      auto different = [&](std::uint32_t value, std::uint32_t radix) {
        if (radix <= 1) return value;
        return static_cast<std::uint32_t>(
            (value + 1 + rng.UniformU64(radix - 1)) % radix);
      };
      auto uniform = [&](std::uint32_t radix) {
        return static_cast<std::uint32_t>(rng.UniformU64(radix));
      };
      // Diverge at exactly the chosen level; redraw everything finer.
      if (placement >= 4) companion.hbm = different(companion.hbm,
                                                    topology_.hbms_per_npu);
      if (placement == 3) companion.sid = different(companion.sid,
                                                    topology_.sids_per_hbm);
      if (placement >= 3) {
        companion.channel = uniform(topology_.channels_per_sid);
        companion.pseudo_channel =
            uniform(topology_.pseudo_channels_per_channel);
      } else if (placement == 2) {
        // Same SID, different PS-CH slot.
        const std::uint32_t slot =
            companion.channel * topology_.pseudo_channels_per_channel +
            companion.pseudo_channel;
        const std::uint32_t new_slot = different(slot, psch_slots_);
        companion.channel = new_slot / topology_.pseudo_channels_per_channel;
        companion.pseudo_channel =
            new_slot % topology_.pseudo_channels_per_channel;
      }
      if (placement >= 2) {
        companion.bank_group =
            uniform(topology_.bank_groups_per_pseudo_channel);
      } else if (placement == 1) {
        companion.bank_group = different(
            companion.bank_group, topology_.bank_groups_per_pseudo_channel);
      }
      companion.bank = placement == 0
                           ? different(companion.bank,
                                       topology_.banks_per_bank_group)
                           : uniform(topology_.banks_per_bank_group);
      if (!local_keys.contains(codec_.BankKey(companion))) {
        AddBank(companion, PatternShape::kCeOnly, rng, out, local_keys);
      }
    }
    return out;
  }

  /// CE-only incident: weak-cell banks clustered within one HBM stack of
  /// the NPU, which keeps the HBM-level entity counts close to the
  /// NPU-level ones (Table II: 5497 CE NPUs vs 5944 CE HBMs).
  IncidentOutput CeIncident(std::size_t flat_npu, Rng& rng) const {
    IncidentOutput out;
    std::unordered_set<std::uint64_t> local_keys;
    const DeviceAddress npu = NpuAddress(flat_npu);
    const std::size_t n_banks =
        1 + static_cast<std::size_t>(
                rng.Poisson(profile_.ce_only_banks_per_npu_mean));
    const auto incident_hbm =
        static_cast<std::uint32_t>(rng.UniformU64(topology_.hbms_per_npu));
    for (std::size_t b = 0; b < n_banks; ++b) {
      DeviceAddress at_bank = npu;
      at_bank.hbm = incident_hbm;
      at_bank.sid =
          static_cast<std::uint32_t>(rng.UniformU64(topology_.sids_per_hbm));
      at_bank.channel = static_cast<std::uint32_t>(
          rng.UniformU64(topology_.channels_per_sid));
      at_bank.pseudo_channel = static_cast<std::uint32_t>(
          rng.UniformU64(topology_.pseudo_channels_per_channel));
      at_bank.bank_group = static_cast<std::uint32_t>(
          rng.UniformU64(topology_.bank_groups_per_pseudo_channel));
      at_bank.bank = static_cast<std::uint32_t>(
          rng.UniformU64(topology_.banks_per_bank_group));
      if (local_keys.contains(codec_.BankKey(at_bank))) continue;
      AddBank(at_bank, PatternShape::kCeOnly, rng, out, local_keys);
    }
    return out;
  }

 private:
  void AddBank(const DeviceAddress& base, PatternShape shape, Rng& rng,
               IncidentOutput& out,
               std::unordered_set<std::uint64_t>& local_keys) const {
    const hbm::BankFaultPlan plan = footprints_.Generate(shape, rng);
    BankOutput bank;
    bank.truth.base = base;
    bank.truth.bank_key = codec_.BankKey(base);
    bank.truth.shape = shape;
    bank.truth.failure_class = hbm::CollapseToClass(shape);
    bank.truth.planned_uer_rows.reserve(plan.uer_rows.size());
    for (const hbm::RowErrors& row : plan.uer_rows) {
      bank.truth.planned_uer_rows.push_back(row.row);
    }
    bank.events = timeline_.ExpandBank(plan, base, rng);
    // Faults live in physical row space; what the controller logs — and
    // what BankTruth promises about the log — is the logical row. The
    // remap consumes no randomness, so the underlying physical fleet is
    // identical across mappings.
    if (!row_mapping_.identity()) {
      for (MceRecord& event : bank.events) {
        event.address.row = row_mapping_.ToLogical(event.address.row);
      }
      for (std::uint32_t& row : bank.truth.planned_uer_rows) {
        row = row_mapping_.ToLogical(row);
      }
    }
    local_keys.insert(bank.truth.bank_key);
    out.banks.push_back(std::move(bank));
  }

  const hbm::TopologyConfig& topology_;
  const CalibrationProfile& profile_;
  const hbm::FootprintGenerator& footprints_;
  const TimelineExpander& timeline_;
  const hbm::AddressCodec& codec_;
  const hbm::RowMapping& row_mapping_;
  const std::vector<double> mix_;
  const std::uint32_t psch_slots_;
};

}  // namespace

GeneratedFleet FleetGenerator::Generate(std::uint64_t seed) const {
  Rng root(seed);
  GeneratedFleet fleet;
  fleet.topology = topology_;
  fleet.row_mapping = row_mapping_;
  hbm::AddressCodec codec(topology_);

  const std::size_t n_uer_npus = Scaled(profile_.uer_npus, profile_.scale);
  const std::size_t n_ce_npus = Scaled(profile_.ce_only_npus, profile_.scale);
  const auto total_npus = static_cast<std::size_t>(topology_.TotalNpus());
  CORDIAL_CHECK_MSG(n_uer_npus + n_ce_npus <= total_npus,
                    "profile demands more faulty NPUs than the fleet has");

  // Disjoint NPU sets; the paper's "with CE" counts include UER entities
  // whose CE noise we emit within the UER incidents themselves.
  const std::vector<std::size_t> npu_picks =
      root.SampleWithoutReplacement(total_npus, n_uer_npus + n_ce_npus);

  // Each incident derives its RNG by forking the root at its index, so the
  // generated fleet is a pure function of (seed, profile) no matter how the
  // incidents are distributed over worker threads.
  const IncidentBuilder builder(topology_, profile_, footprints_, timeline_,
                                codec, row_mapping_);
  const std::size_t total_incidents = n_uer_npus + n_ce_npus;
  std::vector<IncidentOutput> incidents = ParallelMap<IncidentOutput>(
      total_incidents, [&](std::size_t i) {
        Rng incident_rng = root.Fork(i);
        return i < n_uer_npus
                   ? builder.UerIncident(npu_picks[i], incident_rng)
                   : builder.CeIncident(npu_picks[i], incident_rng);
      });

  // Merge in incident-index order. Cross-incident key collisions cannot
  // happen (disjoint NPUs); the contains() check keeps merge semantics
  // identical to the old serial generator, which skipped duplicates.
  for (IncidentOutput& incident : incidents) {
    for (BankOutput& bank : incident.banks) {
      if (fleet.bank_index.contains(bank.truth.bank_key)) continue;
      fleet.log.Append(bank.events);
      fleet.bank_index.emplace(bank.truth.bank_key, fleet.banks.size());
      fleet.banks.push_back(std::move(bank.truth));
    }
  }

  fleet.log.Sort();
  return fleet;
}

}  // namespace cordial::trace
