// Temporal expansion: static bank fault plans -> timestamped MCE events.
//
// This encodes the error lifecycle from §II-B/§III-A of the paper:
//   - *non-sudden* UER rows first shed CEs (and sometimes scrubber-found
//     UEOs) in the same row, then escalate to UER;
//   - *sudden* UER rows (95.61% at row level, Table I) fail with no prior
//     error in that row;
//   - bank-level predictability (29.23%, Table I) comes from *ambient*
//     precursors: correctable noise elsewhere in the bank before its first
//     UER;
//   - the patrol scrubber turns latent uncorrectable faults it wins the
//     race for into UEOs; demand accesses turn the rest into UERs.
//
// Aggregation faults propagate row-to-row faster than scattered ones
// (§IV-B "errors can soon propagate to nearby rows"), which is the temporal
// signal the pattern classifier keys on.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "hbm/fault.hpp"
#include "trace/mce_record.hpp"

namespace cordial::trace {

struct TimelineParams {
  double window_s = 120.0 * 86400.0;  ///< observation window (120 days)

  /// P(a UER row has no same-row precursor) — Table I row level: 95.61%.
  double sudden_row_prob = 0.9561;
  /// Read-disturb victims escalate CE -> UER as their second cell flips, so
  /// unlike Table I's fleet-wide ratio most of them shed same-row CEs first.
  double rd_sudden_row_prob = 0.25;
  /// P(ambient bank noise starts before the bank's first UER).
  double ambient_precursor_prob = 0.20;

  /// P(the bank's latent faults are ever surfaced as UEOs by the scrubber).
  double ueo_bank_prob = 0.5;
  /// Within a UEO-emitting bank, P(a non-sudden UER row shows a UEO first).
  double ueo_row_precursor_prob = 0.6;
  /// Extra UEO-only rows by shape (Poisson means); infrastructure faults
  /// leave many latent-but-never-consumed rows.
  double extra_ueo_rows_single = 2.0;
  double extra_ueo_rows_double = 4.0;
  double extra_ueo_rows_half = 10.0;
  double extra_ueo_rows_scattered = 28.0;
  double extra_ueo_rows_column = 36.0;
  double extra_ueo_rows_rd = 1.0;

  /// Mean seconds between successive row failures. Read-disturb victims
  /// share one set of aggressors, so they escalate fastest of all.
  double inter_uer_mean_cluster_s = 6.0 * 3600.0;
  double inter_uer_mean_scattered_s = 18.0 * 3600.0;
  double inter_uer_mean_rd_s = 2.0 * 3600.0;
  /// Repeat UER events per failing row = 1 + Poisson(mean).
  double uer_repeat_mean = 0.8;
  double uer_repeat_gap_mean_s = 2.0 * 3600.0;

  /// CE events per CE row = 1 + Poisson(mean).
  double ce_events_per_row_mean = 2.0;
  /// In-row precursors appear within this lead before the row's first UER.
  double in_row_precursor_lead_s = 48.0 * 3600.0;
  /// Ambient precursors start up to this long before the bank's first UER.
  double ambient_lead_s = 14.0 * 86400.0;
  /// Patrol scrub period; bounds UEO-before-UER lead times.
  double scrub_period_s = 86400.0;
};

class TimelineExpander {
 public:
  TimelineExpander(const hbm::TopologyConfig& topology,
                   TimelineParams params = {});

  const TimelineParams& params() const { return params_; }

  /// Expand one bank's plan into MCE events. `base` supplies every address
  /// coordinate above the row (row/col are taken from the plan). The
  /// returned events are not sorted; callers sort the merged fleet log.
  std::vector<MceRecord> ExpandBank(const hbm::BankFaultPlan& plan,
                                    const hbm::DeviceAddress& base,
                                    Rng& rng) const;

 private:
  double InterUerMean(hbm::PatternShape shape) const;
  double ExtraUeoRowsMean(hbm::PatternShape shape) const;
  double SuddenRowProb(hbm::PatternShape shape) const;
  MceRecord MakeRecord(const hbm::DeviceAddress& base, std::uint32_t row,
                       std::uint32_t col, hbm::ErrorType type,
                       double time_s) const;

  hbm::TopologyConfig topology_;
  TimelineParams params_;
};

}  // namespace cordial::trace
