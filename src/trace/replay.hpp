// Streaming replay: incremental per-bank histories over a live MCE feed.
//
// Deployment consumes records one at a time (BMC polling), not as a closed
// log. StreamReplayer maintains the same BankHistory state GroupByBank
// builds in batch, incrementally and with monotonic-time enforcement, so
// online daemons and the CLI share one ingestion path.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "hbm/address.hpp"
#include "trace/error_log.hpp"

namespace cordial::trace {

class StreamReplayer {
 public:
  explicit StreamReplayer(const hbm::AddressCodec& codec) : codec_(codec) {}

  /// Ingest one record. Records must arrive in non-decreasing time order.
  /// Returns the bank's history including this record.
  const BankHistory& Ingest(const MceRecord& record);

  /// Bank state, or nullptr if no event for that bank was seen.
  const BankHistory* Find(std::uint64_t bank_key) const;

  std::size_t bank_count() const { return banks_.size(); }
  std::size_t record_count() const { return records_; }
  /// Timestamp of the newest ingested record (0 before any).
  double now() const { return now_; }

 private:
  const hbm::AddressCodec& codec_;
  std::unordered_map<std::uint64_t, BankHistory> banks_;
  std::size_t records_ = 0;
  double now_ = 0.0;
};

}  // namespace cordial::trace
