// Streaming replay: incremental per-bank histories over a live MCE feed.
//
// Deployment consumes records one at a time (BMC polling), not as a closed
// log. StreamReplayer maintains the same BankHistory state GroupByBank
// builds in batch, incrementally and with a configurable monotonic-time
// contract, so online daemons and the CLI share one ingestion path.
//
// Long-running feeds cannot retain every record: with a RetentionPolicy the
// replayer keeps only the newest `max_events_per_bank` events per bank
// (decision state lives in core::BankProfile accumulators, which never
// need the dropped records), turning unbounded streaming into O(banks)
// memory.
//
// Clock skew: closed logs are pre-sorted, so a timestamp that moves
// backwards is a caller bug and the default policy throws. A live fleet
// feed aggregated from thousands of BMCs is not so clean — with
// TimeSkewPolicy::kDrop a stale record is counted and discarded instead of
// killing the server, and the feed degrades gracefully.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_map>

#include "hbm/address.hpp"
#include "trace/error_log.hpp"

namespace cordial::obs {
class Counter;
}  // namespace cordial::obs

namespace cordial::trace {

/// What to do with a record whose timestamp precedes the newest one seen.
enum class TimeSkewPolicy {
  kThrow,  ///< contract violation — correct for sorted/offline feeds
  kDrop,   ///< discard the record, bump records_skew_dropped()
};

/// Bounded event retention and skew handling for streaming ingestion.
struct RetentionPolicy {
  /// Newest events kept per bank; 0 keeps everything (batch-equivalent).
  std::size_t max_events_per_bank = 0;
  TimeSkewPolicy skew_policy = TimeSkewPolicy::kThrow;
};

/// A fully parsed — but not yet adopted — replayer snapshot, produced by
/// StreamReplayer::ParseState and consumed by CommitState. Splitting the
/// two lets Restore offer the strong exception guarantee (a malformed
/// stream leaves the replayer untouched) and lets the engine stage every
/// section of a checkpoint before committing any of it.
struct StagedReplayerState {
  std::unordered_map<std::uint64_t, BankHistory> banks;
  std::size_t records = 0;
  std::size_t dropped = 0;
  std::size_t skew_dropped = 0;
  double now = 0.0;
};

class StreamReplayer {
 public:
  explicit StreamReplayer(const hbm::AddressCodec& codec,
                          RetentionPolicy retention = {})
      : codec_(codec), retention_(retention) {}

  /// Ingest one record. Under TimeSkewPolicy::kThrow records must arrive in
  /// non-decreasing time order. Returns the bank's (retained) history
  /// including this record, or nullptr when the record was discarded by
  /// TimeSkewPolicy::kDrop.
  const BankHistory* Ingest(const MceRecord& record);

  /// Bank state, or nullptr if no event for that bank was seen.
  const BankHistory* Find(std::uint64_t bank_key) const;

  std::size_t bank_count() const { return banks_.size(); }
  /// Records ingested (retention-dropped ones included, skew-dropped not).
  std::size_t record_count() const { return records_; }
  /// Records evicted by the retention policy.
  std::size_t records_dropped() const { return dropped_; }
  /// Stale records discarded under TimeSkewPolicy::kDrop.
  std::size_t records_skew_dropped() const { return skew_dropped_; }
  const RetentionPolicy& retention() const { return retention_; }
  /// Timestamp of the newest ingested record (0 before any).
  double now() const { return now_; }

  /// Mirror retention evictions into a live metrics counter (obs layer).
  /// The counter must outlive the replayer; nullptr detaches. The replayer's
  /// own records_dropped() tally is unaffected (and checkpointed); the
  /// counter only feeds scrape-time visibility.
  void SetRetentionEvictionCounter(obs::Counter* counter) {
    eviction_counter_ = counter;
  }

  /// Serialize the full replay state (counters + retained events) as a
  /// token stream, bit-exact under Restore. Per-bank sections are emitted
  /// in ascending key order so equal states serialize identically.
  void Save(std::ostream& out) const;
  /// Replace this replayer's state with a stream written by Save. The
  /// retention policy stays the constructor's; only dynamic state loads.
  /// Strong guarantee: a ParseError leaves this replayer unchanged.
  void Restore(std::istream& in);

  /// Parse a Save stream into a staged snapshot without touching this
  /// replayer (the codec is only used to unpack addresses). Throws
  /// ParseError on malformed input.
  StagedReplayerState ParseState(std::istream& in) const;
  /// Adopt a staged snapshot. Never throws.
  void CommitState(StagedReplayerState&& staged);

  // --- delta-checkpoint restore hooks -------------------------------------
  /// Replace (or create) one bank's retained window. Counters untouched.
  void OverwriteBank(BankHistory&& bank);
  /// Overwrite the global counters and clock (checkpoint restore only).
  void RestoreCounters(std::size_t records, std::size_t dropped,
                       std::size_t skew_dropped, double now);

 private:
  const hbm::AddressCodec& codec_;
  RetentionPolicy retention_;
  std::unordered_map<std::uint64_t, BankHistory> banks_;
  std::size_t records_ = 0;
  std::size_t dropped_ = 0;
  std::size_t skew_dropped_ = 0;
  double now_ = 0.0;
  obs::Counter* eviction_counter_ = nullptr;
};

}  // namespace cordial::trace
