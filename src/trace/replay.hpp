// Streaming replay: incremental per-bank histories over a live MCE feed.
//
// Deployment consumes records one at a time (BMC polling), not as a closed
// log. StreamReplayer maintains the same BankHistory state GroupByBank
// builds in batch, incrementally and with monotonic-time enforcement, so
// online daemons and the CLI share one ingestion path.
//
// Long-running feeds cannot retain every record: with a RetentionPolicy the
// replayer keeps only the newest `max_events_per_bank` events per bank
// (decision state lives in core::BankProfile accumulators, which never
// need the dropped records), turning unbounded streaming into O(banks)
// memory.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "hbm/address.hpp"
#include "trace/error_log.hpp"

namespace cordial::trace {

/// Bounded event retention for streaming ingestion.
struct RetentionPolicy {
  /// Newest events kept per bank; 0 keeps everything (batch-equivalent).
  std::size_t max_events_per_bank = 0;
};

class StreamReplayer {
 public:
  explicit StreamReplayer(const hbm::AddressCodec& codec,
                          RetentionPolicy retention = {})
      : codec_(codec), retention_(retention) {}

  /// Ingest one record. Records must arrive in non-decreasing time order.
  /// Returns the bank's (retained) history including this record.
  const BankHistory& Ingest(const MceRecord& record);

  /// Bank state, or nullptr if no event for that bank was seen.
  const BankHistory* Find(std::uint64_t bank_key) const;

  std::size_t bank_count() const { return banks_.size(); }
  /// Records ingested (dropped ones included).
  std::size_t record_count() const { return records_; }
  /// Records evicted by the retention policy.
  std::size_t records_dropped() const { return dropped_; }
  const RetentionPolicy& retention() const { return retention_; }
  /// Timestamp of the newest ingested record (0 before any).
  double now() const { return now_; }

 private:
  const hbm::AddressCodec& codec_;
  RetentionPolicy retention_;
  std::unordered_map<std::uint64_t, BankHistory> banks_;
  std::size_t records_ = 0;
  std::size_t dropped_ = 0;
  double now_ = 0.0;
};

}  // namespace cordial::trace
