// Error-log container with the groupings the analyses and Cordial need.
#pragma once

#include <cstdint>
#include <vector>

#include "hbm/address.hpp"
#include "trace/mce_record.hpp"

namespace cordial::trace {

/// All events observed in one bank, time-sorted. This is the unit Cordial
/// operates on (§IV: features are extracted per error bank).
struct BankHistory {
  std::uint64_t bank_key = 0;
  std::vector<MceRecord> events;  // ascending time

  /// Events of a given type, preserving order.
  std::vector<MceRecord> OfType(hbm::ErrorType type) const;
  /// First UER event time, or +inf if the bank has no UER.
  double FirstUerTime() const;
  /// Count of events of `type` strictly before `cutoff_s`.
  std::size_t CountBefore(hbm::ErrorType type, double cutoff_s) const;
  bool HasUer() const;
};

class ErrorLog {
 public:
  ErrorLog() = default;

  void Add(MceRecord record) { records_.push_back(record); }
  void Append(const std::vector<MceRecord>& records);

  /// Sort records into canonical (time, address, type) order.
  void Sort();

  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<MceRecord>& records() const { return records_; }

  /// Group into per-bank histories (each time-sorted). The log itself need
  /// not be pre-sorted. Output order: ascending bank key.
  std::vector<BankHistory> GroupByBank(const hbm::AddressCodec& codec) const;

 private:
  std::vector<MceRecord> records_;
};

}  // namespace cordial::trace
