// Fleet-scale synthetic dataset generator.
//
// Substitutes the paper's proprietary industrial dataset (>10,000 NPUs,
// >80,000 HBMs; §V-A Table II). Faults are planted top-down from *fault
// incidents* at the NPU level, with hierarchical fan-out calibrated to the
// paper's per-level entity counts: Table II implies 1,074 UER banks packed
// into just 418 NPUs, i.e. strong cross-bank clustering (multi-bank TSV /
// die-level faults), which the fan-out rates reproduce in expectation.
//
// A (seed, profile) pair fully determines the fleet; every bench regenerates
// its inputs from the default profile and prints paper-vs-measured rows.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hbm/address.hpp"
#include "hbm/fault.hpp"
#include "trace/error_log.hpp"
#include "trace/timeline.hpp"

namespace cordial::trace {

struct CalibrationProfile {
  /// Linear scale on incident counts; tests use small scales for speed.
  double scale = 1.0;

  /// Fig 3(b) ground-truth shape mix over UER banks.
  double mix_single = 0.682;
  double mix_double = 0.099;
  double mix_half = 0.073;
  double mix_scattered = 0.125;
  double mix_column = 0.021;
  /// Read-disturb share of UER banks. The paper's dataset has none (0.0
  /// keeps every historical fleet bit-identical); RowHammer-stressed fleets
  /// set it > 0 and scale the five paper shapes down accordingly.
  double mix_read_disturb = 0.0;

  /// NPUs containing at least one UER bank at scale=1 (Table I: 243+175).
  std::uint32_t uer_npus = 418;

  /// Hierarchical fan-out: children = 1 + Poisson(rate), capped by topology.
  /// Rates follow Table II's level ratios (e.g. 1074 banks / 686 BGs).
  double extra_hbms_per_npu = 0.007;
  double extra_sids_per_hbm = 0.045;
  double extra_pschs_per_sid = 0.127;
  double extra_bgs_per_psch = 0.383;
  double extra_banks_per_bg = 0.566;

  /// NPUs with only correctable noise (Table II: ~5497 CE NPUs vs 418 UER).
  std::uint32_t ce_only_npus = 5285;
  /// CE-only banks per such NPU = 1 + Poisson(mean) (Table II: ~8.2k banks).
  double ce_only_banks_per_npu_mean = 0.56;

  /// P(a UER NPU also hosts a CE-only companion bank). Companions produce
  /// the paper's per-level predictability lift (Table I: 29.23% at bank
  /// level rising to 41.86% at NPU level) because their correctable noise
  /// precedes the first UER of a *sibling* bank.
  double companion_ce_prob = 0.35;
  /// Placement of the companion relative to a UER bank: weights for
  /// same-BG / same-PSCH / same-SID / same-HBM / same-NPU (coarser level
  /// means the lift only shows at that level and above).
  double companion_same_bg = 0.45;
  double companion_same_psch = 0.05;
  double companion_same_sid = 0.30;
  double companion_same_hbm = 0.08;
  double companion_same_npu = 0.12;

  void Validate() const;
};

/// Ground truth for one generated faulty bank.
struct BankTruth {
  std::uint64_t bank_key = 0;
  hbm::DeviceAddress base;  ///< bank coordinates; row/col zero
  hbm::PatternShape shape = hbm::PatternShape::kCeOnly;
  std::optional<hbm::FailureClass> failure_class;
  /// Planned UER rows in failure order (empty for CE-only banks).
  std::vector<std::uint32_t> planned_uer_rows;
};

struct GeneratedFleet {
  hbm::TopologyConfig topology;
  /// Row map the log was emitted through: faults are planted in physical
  /// row space, log records carry logical rows. Identity unless the
  /// generator was built with a mapping.
  hbm::RowMapping row_mapping;
  ErrorLog log;  ///< merged fleet log, time-sorted
  std::vector<BankTruth> banks;
  std::unordered_map<std::uint64_t, std::size_t> bank_index;  ///< key -> banks[i]

  const BankTruth* FindBank(std::uint64_t bank_key) const;
  std::size_t CountUerBanks() const;
};

/// Copy of `log` with every record's row pushed through `mapping`. Used to
/// undo (ToPhysical) or apply (ToLogical) a row scramble on a whole log;
/// record order is preserved, so a sorted log stays sorted.
ErrorLog RemapLogRowsToPhysical(const ErrorLog& log,
                                const hbm::RowMapping& mapping);
ErrorLog RemapLogRowsToLogical(const ErrorLog& log,
                               const hbm::RowMapping& mapping);

class FleetGenerator {
 public:
  FleetGenerator(const hbm::TopologyConfig& topology,
                 CalibrationProfile profile = {},
                 hbm::FootprintParams footprint = {},
                 TimelineParams timeline = {},
                 hbm::RowMapping row_mapping = {});

  const CalibrationProfile& profile() const { return profile_; }
  const hbm::RowMapping& row_mapping() const { return row_mapping_; }

  GeneratedFleet Generate(std::uint64_t seed) const;

 private:
  hbm::TopologyConfig topology_;
  CalibrationProfile profile_;
  hbm::FootprintGenerator footprints_;
  TimelineExpander timeline_;
  hbm::RowMapping row_mapping_;
};

}  // namespace cordial::trace
