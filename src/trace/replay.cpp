#include "trace/replay.hpp"

#include "common/check.hpp"

namespace cordial::trace {

const BankHistory& StreamReplayer::Ingest(const MceRecord& record) {
  CORDIAL_CHECK_MSG(record.time_s >= now_,
                    "stream replay requires non-decreasing timestamps");
  now_ = record.time_s;
  ++records_;
  const std::uint64_t key = codec_.BankKey(record.address);
  BankHistory& bank = banks_[key];
  bank.bank_key = key;
  bank.events.push_back(record);
  if (retention_.max_events_per_bank > 0 &&
      bank.events.size() > retention_.max_events_per_bank) {
    const std::size_t excess =
        bank.events.size() - retention_.max_events_per_bank;
    bank.events.erase(bank.events.begin(),
                      bank.events.begin() +
                          static_cast<std::ptrdiff_t>(excess));
    dropped_ += excess;
  }
  return bank;
}

const BankHistory* StreamReplayer::Find(std::uint64_t bank_key) const {
  const auto it = banks_.find(bank_key);
  return it == banks_.end() ? nullptr : &it->second;
}

}  // namespace cordial::trace
