#include "trace/replay.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <vector>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "obs/metrics.hpp"

namespace cordial::trace {

const BankHistory* StreamReplayer::Ingest(const MceRecord& record) {
  if (record.time_s < now_) {
    if (retention_.skew_policy == TimeSkewPolicy::kDrop) {
      ++skew_dropped_;
      return nullptr;
    }
    CORDIAL_CHECK_MSG(false,
                      "stream replay requires non-decreasing timestamps");
  }
  now_ = record.time_s;
  ++records_;
  const std::uint64_t key = codec_.BankKey(record.address);
  BankHistory& bank = banks_[key];
  bank.bank_key = key;
  bank.events.push_back(record);
  if (retention_.max_events_per_bank > 0 &&
      bank.events.size() > retention_.max_events_per_bank) {
    const std::size_t excess =
        bank.events.size() - retention_.max_events_per_bank;
    bank.events.erase(bank.events.begin(),
                      bank.events.begin() +
                          static_cast<std::ptrdiff_t>(excess));
    dropped_ += excess;
    if (eviction_counter_ != nullptr) eviction_counter_->Increment(excess);
  }
  return &bank;
}

const BankHistory* StreamReplayer::Find(std::uint64_t bank_key) const {
  const auto it = banks_.find(bank_key);
  return it == banks_.end() ? nullptr : &it->second;
}

void StreamReplayer::Save(std::ostream& out) const {
  out << "stream_replayer v1\n";
  WriteDoubleToken(out, now_);
  out << ' ' << records_ << ' ' << dropped_ << ' ' << skew_dropped_ << '\n';
  std::vector<std::uint64_t> keys;
  keys.reserve(banks_.size());
  for (const auto& [key, bank] : banks_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  out << "banks " << keys.size() << '\n';
  for (const std::uint64_t key : keys) {
    const BankHistory& bank = banks_.at(key);
    out << key << ' ' << bank.events.size() << '\n';
    for (const MceRecord& r : bank.events) {
      WriteDoubleToken(out, r.time_s);
      out << ' ' << codec_.Pack(r.address) << ' '
          << static_cast<int>(r.type) << '\n';
    }
  }
}

void StreamReplayer::Restore(std::istream& in) { CommitState(ParseState(in)); }

StagedReplayerState StreamReplayer::ParseState(std::istream& in) const {
  ExpectToken(in, "stream_replayer");
  ExpectToken(in, "v1");
  StagedReplayerState staged;
  staged.now = ReadDoubleToken(in, "replayer");
  staged.records = ReadU64Token(in, "replayer");
  staged.dropped = ReadU64Token(in, "replayer");
  staged.skew_dropped = ReadU64Token(in, "replayer");
  ExpectToken(in, "banks");
  const std::uint64_t bank_count = ReadU64Token(in, "replayer");
  for (std::uint64_t b = 0; b < bank_count; ++b) {
    const std::uint64_t key = ReadU64Token(in, "replayer bank");
    const std::uint64_t event_count = ReadU64Token(in, "replayer bank");
    BankHistory& bank = staged.banks[key];
    bank.bank_key = key;
    // Reserve only a sane bound: a corrupt count must fail on a token read
    // below, not allocate terabytes up front.
    bank.events.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(event_count, 4096)));
    for (std::uint64_t e = 0; e < event_count; ++e) {
      MceRecord r;
      r.time_s = ReadDoubleToken(in, "replayer event");
      r.address = codec_.Unpack(ReadU64Token(in, "replayer event"));
      const std::int64_t type = ReadI64Token(in, "replayer event");
      if (type < 0 || type > 2) {
        throw ParseError("replayer event: unknown error type");
      }
      r.type = static_cast<hbm::ErrorType>(type);
      bank.events.push_back(r);
    }
  }
  return staged;
}

void StreamReplayer::CommitState(StagedReplayerState&& staged) {
  banks_ = std::move(staged.banks);
  now_ = staged.now;
  records_ = staged.records;
  dropped_ = staged.dropped;
  skew_dropped_ = staged.skew_dropped;
}

void StreamReplayer::OverwriteBank(BankHistory&& bank) {
  banks_[bank.bank_key] = std::move(bank);
}

void StreamReplayer::RestoreCounters(std::size_t records, std::size_t dropped,
                                     std::size_t skew_dropped, double now) {
  records_ = records;
  dropped_ = dropped;
  skew_dropped_ = skew_dropped;
  now_ = now;
}

}  // namespace cordial::trace
