#include "core/isolation.hpp"

#include <set>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "hbm/address.hpp"

namespace cordial::core {

using hbm::ErrorType;

IcrEvaluator::IcrEvaluator(const hbm::TopologyConfig& topology,
                           hbm::SparingBudget budget)
    : topology_(topology), budget_(budget) {
  topology_.Validate();
}

namespace {

/// Replay one bank's event stream, tallying coverage into `result`.
void ReplayBank(const trace::BankHistory& bank, IsolationStrategy& strategy,
                hbm::SparingLedger& ledger, IcrResult& result) {
  strategy.OnBankStart(bank);
  std::set<std::uint32_t> failed_rows;
  for (std::size_t i = 0; i < bank.events.size(); ++i) {
    const trace::MceRecord& r = bank.events[i];
    if (r.type == ErrorType::kUer && failed_rows.insert(r.address.row).second) {
      ++result.total_uer_rows;
      if (ledger.IsRowSpared(bank.bank_key, r.address.row)) {
        ++result.covered_rows;
      } else if (ledger.IsBankSpared(bank.bank_key)) {
        ++result.covered_by_bank_spare;
      }
    }
    strategy.OnEvent(bank, i, ledger);
  }
}

}  // namespace

IcrResult IcrEvaluator::Evaluate(
    const std::vector<const trace::BankHistory*>& banks,
    IsolationStrategy& strategy) const {
  for (const trace::BankHistory* bank : banks) {
    CORDIAL_CHECK_MSG(bank != nullptr, "null bank in evaluation set");
  }

  // Banks are independent replays: strategy state resets at OnBankStart and
  // the ledger's budgets are per bank key, so per-bank local ledgers summed
  // afterwards equal one shared ledger exactly. Strategies that cannot be
  // cloned (Clone() == nullptr) replay serially through the one instance.
  if (banks.size() > 1 && ThreadCount() > 1 && strategy.Clone() != nullptr) {
    const std::vector<IcrResult> per_bank = ParallelMap<IcrResult>(
        banks.size(), [&](std::size_t b) {
          const std::unique_ptr<IsolationStrategy> local = strategy.Clone();
          hbm::SparingLedger ledger(budget_);
          IcrResult r;
          ReplayBank(*banks[b], *local, ledger, r);
          r.rows_spared = ledger.rows_spared();
          r.banks_spared = ledger.banks_spared();
          r.sparing_cost = ledger.total_cost();
          return r;
        });
    IcrResult result;
    for (const IcrResult& r : per_bank) {
      result.covered_rows += r.covered_rows;
      result.covered_by_bank_spare += r.covered_by_bank_spare;
      result.total_uer_rows += r.total_uer_rows;
      result.rows_spared += r.rows_spared;
      result.banks_spared += r.banks_spared;
      result.sparing_cost += r.sparing_cost;
    }
    return result;
  }

  IcrResult result;
  hbm::SparingLedger ledger(budget_);
  for (const trace::BankHistory* bank : banks) {
    ReplayBank(*bank, strategy, ledger, result);
  }
  result.rows_spared = ledger.rows_spared();
  result.banks_spared = ledger.banks_spared();
  result.sparing_cost = ledger.total_cost();
  return result;
}

// ----------------------------------------------------------------- in-row

void InRowStrategy::OnEvent(const trace::BankHistory& bank,
                            std::size_t event_index,
                            hbm::SparingLedger& ledger) {
  const trace::MceRecord& r = bank.events[event_index];
  if (r.type == ErrorType::kUer) return;
  // A row that sheds correctable errors is predicted to fail in-row.
  ledger.TrySpareRow(bank.bank_key, r.address.row);
}

// ---------------------------------------------------------- neighbor rows

NeighborRowsStrategy::NeighborRowsStrategy(std::uint32_t adjacency,
                                           std::uint32_t rows_per_bank)
    : adjacency_(adjacency), rows_per_bank_(rows_per_bank) {
  CORDIAL_CHECK_MSG(adjacency_ > 0, "adjacency must be positive");
}

void NeighborRowsStrategy::OnEvent(const trace::BankHistory& bank,
                                   std::size_t event_index,
                                   hbm::SparingLedger& ledger) {
  const trace::MceRecord& r = bank.events[event_index];
  if (r.type != ErrorType::kUer) return;
  const std::int64_t row = r.address.row;
  for (std::int64_t d = 1; d <= static_cast<std::int64_t>(adjacency_); ++d) {
    for (const std::int64_t neighbor : {row - d, row + d}) {
      if (neighbor < 0 || neighbor >= static_cast<std::int64_t>(rows_per_bank_)) {
        continue;
      }
      ledger.TrySpareRow(bank.bank_key, static_cast<std::uint32_t>(neighbor));
    }
  }
}

// ----------------------------------------------------------------- cordial

CordialStrategy::CordialStrategy(const PatternClassifier& classifier,
                                 const CrossRowPredictor& single_predictor,
                                 const CrossRowPredictor& double_predictor,
                                 CordialPolicyConfig config)
    : classifier_(classifier),
      single_predictor_(single_predictor),
      double_predictor_(double_predictor),
      config_(config) {
  CORDIAL_CHECK_MSG(classifier_.trained(), "classifier must be trained");
  CORDIAL_CHECK_MSG(single_predictor_.trained() && double_predictor_.trained(),
                    "cross-row predictors must be trained");
}

void CordialStrategy::OnBankStart(const trace::BankHistory&) {
  uer_events_seen_ = 0;
  anchors_used_ = 0;
  classified_ = false;
  bank_class_ = hbm::FailureClass::kScattered;
  last_anchor_row_ = -1;
}

void CordialStrategy::OnEvent(const trace::BankHistory& bank,
                              std::size_t event_index,
                              hbm::SparingLedger& ledger) {
  const trace::MceRecord& r = bank.events[event_index];
  if (r.type != ErrorType::kUer) return;
  ++uer_events_seen_;

  const std::size_t trigger = single_predictor_.config().trigger_uers;
  if (uer_events_seen_ < trigger) return;

  if (!classified_) {
    // The classifier's extractor truncates at the trigger-th UER, which is
    // exactly the current event — no lookahead.
    bank_class_ = classifier_.Classify(bank);
    classified_ = true;
    if (bank_class_ == hbm::FailureClass::kScattered) {
      if (config_.bank_spare_scattered) ledger.TrySpareBank(bank.bank_key);
      return;
    }
  }
  if (bank_class_ == hbm::FailureClass::kScattered) return;

  // Re-anchor at every new UER row, mirroring AnchorsOf().
  if (static_cast<std::int64_t>(r.address.row) == last_anchor_row_) return;
  if (anchors_used_ >= single_predictor_.config().max_anchors_per_bank) return;
  last_anchor_row_ = r.address.row;
  ++anchors_used_;

  const CrossRowPredictor& predictor =
      bank_class_ == hbm::FailureClass::kSingleRowClustering
          ? single_predictor_
          : double_predictor_;
  const Anchor anchor{r.time_s, r.address.row, uer_events_seen_};
  const std::vector<int> blocks = predictor.PredictBlocks(bank, anchor);
  const BlockWindow window = predictor.extractor().WindowAt(anchor.row);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b] != 1) continue;
    const auto range = window.BlockRange(b);
    if (!range.has_value()) continue;
    for (std::uint32_t row = range->first; row <= range->second; ++row) {
      ledger.TrySpareRow(bank.bank_key, row);
    }
  }
}

}  // namespace cordial::core
