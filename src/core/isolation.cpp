#include "core/isolation.hpp"

#include <set>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "hbm/address.hpp"

namespace cordial::core {

using hbm::ErrorType;

IcrEvaluator::IcrEvaluator(const hbm::TopologyConfig& topology,
                           hbm::SparingBudget budget)
    : topology_(topology), budget_(budget) {
  topology_.Validate();
}

namespace {

/// Replay one bank's event stream, tallying coverage into `result`.
void ReplayBank(const trace::BankHistory& bank, IsolationStrategy& strategy,
                hbm::SparingLedger& ledger, IcrResult& result) {
  strategy.OnBankStart(bank);
  std::set<std::uint32_t> failed_rows;
  for (std::size_t i = 0; i < bank.events.size(); ++i) {
    const trace::MceRecord& r = bank.events[i];
    if (r.type == ErrorType::kUer && failed_rows.insert(r.address.row).second) {
      ++result.total_uer_rows;
      if (ledger.IsRowSpared(bank.bank_key, r.address.row)) {
        ++result.covered_rows;
      } else if (ledger.IsBankSpared(bank.bank_key)) {
        ++result.covered_by_bank_spare;
      }
    }
    strategy.OnEvent(bank, i, ledger);
  }
}

}  // namespace

IcrResult IcrEvaluator::Evaluate(
    const std::vector<const trace::BankHistory*>& banks,
    IsolationStrategy& strategy) const {
  for (const trace::BankHistory* bank : banks) {
    CORDIAL_CHECK_MSG(bank != nullptr, "null bank in evaluation set");
  }

  // Banks are independent replays: strategy state resets at OnBankStart and
  // the ledger's budgets are per bank key, so per-bank local ledgers summed
  // afterwards equal one shared ledger exactly. Strategies that cannot be
  // cloned (Clone() == nullptr) replay serially through the one instance.
  if (banks.size() > 1 && ThreadCount() > 1 && strategy.Clone() != nullptr) {
    const std::vector<IcrResult> per_bank = ParallelMap<IcrResult>(
        banks.size(), [&](std::size_t b) {
          const std::unique_ptr<IsolationStrategy> local = strategy.Clone();
          hbm::SparingLedger ledger(budget_);
          IcrResult r;
          ReplayBank(*banks[b], *local, ledger, r);
          r.rows_spared = ledger.rows_spared();
          r.banks_spared = ledger.banks_spared();
          r.sparing_cost = ledger.total_cost();
          return r;
        });
    IcrResult result;
    for (const IcrResult& r : per_bank) {
      result.covered_rows += r.covered_rows;
      result.covered_by_bank_spare += r.covered_by_bank_spare;
      result.total_uer_rows += r.total_uer_rows;
      result.rows_spared += r.rows_spared;
      result.banks_spared += r.banks_spared;
      result.sparing_cost += r.sparing_cost;
    }
    return result;
  }

  IcrResult result;
  hbm::SparingLedger ledger(budget_);
  for (const trace::BankHistory* bank : banks) {
    ReplayBank(*bank, strategy, ledger, result);
  }
  result.rows_spared = ledger.rows_spared();
  result.banks_spared = ledger.banks_spared();
  result.sparing_cost = ledger.total_cost();
  return result;
}

// ----------------------------------------------------------------- in-row

void InRowStrategy::OnEvent(const trace::BankHistory& bank,
                            std::size_t event_index,
                            hbm::SparingLedger& ledger) {
  const trace::MceRecord& r = bank.events[event_index];
  if (r.type == ErrorType::kUer) return;
  // A row that sheds correctable errors is predicted to fail in-row.
  ledger.TrySpareRow(bank.bank_key, r.address.row);
}

// ---------------------------------------------------------- neighbor rows

NeighborRowsStrategy::NeighborRowsStrategy(std::uint32_t adjacency,
                                           const hbm::TopologyConfig& topology)
    : adjacency_(adjacency), rows_per_bank_(topology.rows_per_bank) {
  CORDIAL_CHECK_MSG(adjacency_ > 0, "adjacency must be positive");
  CORDIAL_CHECK_MSG(rows_per_bank_ > 0, "topology must have rows");
}

void NeighborRowsStrategy::OnEvent(const trace::BankHistory& bank,
                                   std::size_t event_index,
                                   hbm::SparingLedger& ledger) {
  const trace::MceRecord& r = bank.events[event_index];
  if (r.type != ErrorType::kUer) return;
  const std::int64_t row = r.address.row;
  for (std::int64_t d = 1; d <= static_cast<std::int64_t>(adjacency_); ++d) {
    for (const std::int64_t neighbor : {row - d, row + d}) {
      if (neighbor < 0 || neighbor >= static_cast<std::int64_t>(rows_per_bank_)) {
        continue;
      }
      ledger.TrySpareRow(bank.bank_key, static_cast<std::uint32_t>(neighbor));
    }
  }
}

// ----------------------------------------------------------------- cordial

CordialStrategy::CordialStrategy(const PatternClassifier& classifier,
                                 const CrossRowPredictor& single_predictor,
                                 const CrossRowPredictor& double_predictor,
                                 CordialPolicyConfig config)
    : classifier_(classifier),
      single_predictor_(single_predictor),
      double_predictor_(double_predictor),
      config_(config),
      profile_(classifier.extractor().max_uers()) {
  CORDIAL_CHECK_MSG(classifier_.trained(), "classifier must be trained");
  CORDIAL_CHECK_MSG(single_predictor_.trained() && double_predictor_.trained(),
                    "cross-row predictors must be trained");
  CORDIAL_CHECK_MSG(
      single_predictor_.config().trigger_uers >=
          classifier_.extractor().max_uers(),
      "cross-row trigger must not precede the classification truncation");
}

void CordialStrategy::OnBankStart(const trace::BankHistory&) {
  profile_ = BankProfile(classifier_.extractor().max_uers());
  state_ = CordialBankState{};
  feed_cursor_ = 0;
}

void CordialStrategy::OnEvent(const trace::BankHistory& bank,
                              std::size_t event_index,
                              hbm::SparingLedger& ledger) {
  const trace::MceRecord& r = bank.events[event_index];

  // Absorb the whole same-timestamp group before deciding: the batch
  // extractors see every event with time <= the anchor time, including ones
  // recorded after the triggering event in the log, and the closed replay
  // history makes them available here. (The live engine, which has no such
  // lookahead, simply never sees the not-yet-arrived ties.)
  while (feed_cursor_ < bank.events.size() &&
         bank.events[feed_cursor_].time_s <= r.time_s) {
    profile_.Observe(bank.events[feed_cursor_]);
    ++feed_cursor_;
  }

  const IsolationActions actions =
      StepCordial(state_, profile_, r, classifier_, single_predictor_,
                  double_predictor_, config_);
  if (actions.bank_spare) ledger.TrySpareBank(bank.bank_key);
  for (const RowSpan& span : actions.predicted_spans) {
    for (std::uint32_t row = span.first; row <= span.last; ++row) {
      ledger.TrySpareRow(bank.bank_key, row);
    }
  }
}

}  // namespace cordial::core
