// Cross-row failure prediction stage (paper §IV-D).
//
// For aggregation-pattern banks, the ±64-row window around the last observed
// UER row is divided into 16 blocks of 8 rows; a binary tree model predicts,
// per block, whether a future UER row will land inside it. Predictions are
// re-issued at every UER observation from the classification trigger (the
// 3rd UER) onward, each time anchored at the newest UER row.
//
// Following Fig 5, separate predictors are trained for the single-row and
// the double-row clustering classes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/features.hpp"
#include "hbm/fault.hpp"
#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace cordial::core {

struct CrossRowConfig {
  std::uint32_t block_size = 8;
  std::uint32_t n_blocks = 16;
  /// Anchors start at this UER event ordinal (3 = after classification).
  std::size_t trigger_uers = 3;
  /// Cap on anchors per bank, to bound dataset size on noisy banks.
  std::size_t max_anchors_per_bank = 4;
  /// Positive-class probability needed to predict a block. Block positives
  /// are rare (~1-2 of 16 blocks), so the operating point sits below 0.5.
  double positive_threshold = 0.25;
};

/// A prediction point: the bank state at `time_s` with the newest UER row
/// `row` as window anchor.
struct Anchor {
  double time_s = 0.0;
  std::uint32_t row = 0;
  std::size_t uer_ordinal = 0;  ///< 1-based index of the anchoring UER event
};

class CrossRowPredictor {
 public:
  CrossRowPredictor(const hbm::TopologyConfig& topology, ml::LearnerKind kind,
                    CrossRowConfig config = {});

  /// Deep copy via ml::Classifier::Clone — predictions bit-identical,
  /// lifetimes independent (see PatternClassifier's copy constructor).
  CrossRowPredictor(const CrossRowPredictor& other);
  CrossRowPredictor& operator=(const CrossRowPredictor&) = delete;
  CrossRowPredictor(CrossRowPredictor&&) = default;

  const CrossRowConfig& config() const { return config_; }
  const CrossRowFeatureExtractor& extractor() const { return extractor_; }

  /// Anchors of a bank: one per UER event from the trigger ordinal onward,
  /// skipping consecutive repeats of the same row, capped by config.
  std::vector<Anchor> AnchorsOf(const trace::BankHistory& bank) const;

  /// Distinct UER rows with their first-failure times, ascending time.
  static std::vector<std::pair<std::uint32_t, double>> FirstFailures(
      const trace::BankHistory& bank);

  /// Ground-truth block labels at an anchor: label[b] == 1 iff some row
  /// whose FIRST failure is after anchor.time_s lies in block b.
  std::vector<int> BlockTruth(const trace::BankHistory& bank,
                              const Anchor& anchor) const;

  /// Dataset with one row per (bank, anchor, in-bank block).
  ml::Dataset BuildDataset(
      const std::vector<const trace::BankHistory*>& banks) const;

  void Train(const std::vector<const trace::BankHistory*>& banks, Rng& rng);
  bool trained() const { return trained_; }

  /// Per-block positive probability at an anchor; blocks outside the bank
  /// get probability 0. Thin wrapper: feeds the events with time <=
  /// anchor.time_s into one BankProfile shared by all blocks.
  std::vector<double> PredictBlockProba(const trace::BankHistory& bank,
                                        const Anchor& anchor) const;
  /// Thresholded predictions.
  std::vector<int> PredictBlocks(const trace::BankHistory& bank,
                                 const Anchor& anchor) const;

  /// Engine path: predictions from an incrementally maintained profile that
  /// has absorbed exactly the events with time <= anchor.time_s. Equivalent
  /// to the batch overloads fed the same prefix.
  std::vector<double> PredictBlockProbaFromProfile(const BankProfile& profile,
                                                   const Anchor& anchor) const;
  std::vector<int> PredictBlocksFromProfile(const BankProfile& profile,
                                            const Anchor& anchor) const;

  /// Persist / restore the trained block model.
  void SaveModel(std::ostream& out) const;
  void LoadModel(std::istream& in);

  /// Normalized per-feature importance, parallel to
  /// extractor().feature_names().
  std::vector<double> FeatureImportance() const;

 private:
  hbm::TopologyConfig topology_;
  CrossRowFeatureExtractor extractor_;
  CrossRowConfig config_;
  std::unique_ptr<ml::Classifier> model_;
  bool trained_ = false;
};

/// Learner factory tuned for the (larger) block-level dataset: boosters use
/// histogram splits so exact-sort cost does not dominate.
std::unique_ptr<ml::Classifier> MakeCrossRowLearner(ml::LearnerKind kind);

}  // namespace cordial::core
