#include "core/bank_profile.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cordial::core {

using hbm::ErrorType;

namespace {

/// Insert `row` into a sorted distinct vector; returns the insertion index
/// or SIZE_MAX when the row was already present.
std::size_t InsertDistinct(std::vector<double>& sorted, double row) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), row);
  if (it != sorted.end() && *it == row) return static_cast<std::size_t>(-1);
  const auto index = static_cast<std::size_t>(it - sorted.begin());
  sorted.insert(it, row);
  return index;
}

}  // namespace

// --------------------------------------------------------- classification

void ClassAccumulator::Absorb(const trace::MceRecord& record) {
  const double row = static_cast<double>(record.address.row);
  const double t = record.time_s;
  if (!any_event || t != last_time) {
    ce_at_last_time = 0;
    ueo_at_last_time = 0;
  }
  all_row_diff.Push(row);
  switch (record.type) {
    case ErrorType::kCe:
      if (ce_total == 0 || row < ce_row_min) ce_row_min = row;
      if (ce_total == 0 || row > ce_row_max) ce_row_max = row;
      ++ce_total;
      ce_dt.Push(t);
      ++ce_at_last_time;
      break;
    case ErrorType::kUeo:
      if (ueo_total == 0 || row < ueo_row_min) ueo_row_min = row;
      if (ueo_total == 0 || row > ueo_row_max) ueo_row_max = row;
      ++ueo_total;
      ueo_dt.Push(t);
      ++ueo_at_last_time;
      break;
    case ErrorType::kUer:
      if (uer_events == 0) {
        first_uer_time = t;
        // Density before the first UER counts events STRICTLY before its
        // timestamp: subtract the same-timestamp run absorbed just above.
        const bool same = any_event && last_time == t;
        ce_before_first_uer =
            static_cast<double>(ce_total - (same ? ce_at_last_time : 0));
        ueo_before_first_uer =
            static_cast<double>(ueo_total - (same ? ueo_at_last_time : 0));
      }
      if (uer_events == 0 || row < uer_row_min) uer_row_min = row;
      if (uer_events == 0 || row > uer_row_max) uer_row_max = row;
      ++uer_events;
      last_uer_time = t;
      uer_row_diff.Push(row);
      uer_dt.Push(t);
      InsertDistinct(distinct_uer_rows, row);
      break;
  }
  any_event = true;
  last_time = t;
}

// -------------------------------------------------------------- cross-row

void CrossRowAccumulator::Absorb(const trace::MceRecord& record) {
  const double row = static_cast<double>(record.address.row);
  const double t = record.time_s;
  ++all_count;
  all_row_diff.Push(row);
  last_event_time = t;
  switch (record.type) {
    case ErrorType::kCe:
      ++ce_count;
      ce_dt.Push(t);
      InsertDistinct(ce_rows, row);
      break;
    case ErrorType::kUeo:
      ++ueo_count;
      ueo_dt.Push(t);
      InsertDistinct(ueo_rows, row);
      break;
    case ErrorType::kUer: {
      if (uer_count == 0) first_uer_time = t;
      if (uer_count == 0 || row < uer_row_min) uer_row_min = row;
      if (uer_count == 0 || row > uer_row_max) uer_row_max = row;
      ++uer_count;
      uer_dt.Push(t);
      uer_row_diff.Push(row);
      const std::size_t index = InsertDistinct(uer_rows, row);
      if (index != static_cast<std::size_t>(-1)) {
        // Maintain the neighbour-gap multiset: inserting between two
        // existing rows splits their gap in two.
        const auto u32 = [](double v) { return static_cast<std::uint32_t>(v); };
        const bool has_prev = index > 0;
        const bool has_next = index + 1 < uer_rows.size();
        if (has_prev && has_next) {
          const std::uint32_t old_gap =
              u32(uer_rows[index + 1]) - u32(uer_rows[index - 1]);
          const auto it = uer_row_gaps.find(old_gap);
          CORDIAL_CHECK_MSG(it != uer_row_gaps.end(),
                            "UER gap bookkeeping out of sync");
          uer_row_gaps.erase(it);
        }
        if (has_prev) {
          uer_row_gaps.insert(u32(row) - u32(uer_rows[index - 1]));
        }
        if (has_next) {
          uer_row_gaps.insert(u32(uer_rows[index + 1]) - u32(row));
        }
      }
      break;
    }
  }
}

// ------------------------------------------------------------ BankProfile

BankProfile::BankProfile(std::size_t max_uers) : max_uers_(max_uers) {
  CORDIAL_CHECK_MSG(max_uers_ >= 1, "must keep at least one UER");
}

void BankProfile::Observe(const trace::MceRecord& record) {
  CORDIAL_CHECK_MSG(events_ == 0 || record.time_s >= last_time_,
                    "BankProfile requires non-decreasing timestamps");
  ++events_;
  last_time_ = record.time_s;
  crossrow_.Absorb(record);

  if (record.type == ErrorType::kUer) {
    // TruncateAtUer keeps the first max_uers UERs; later ones — including
    // same-timestamp ties with the cutoff — are outside the view.
    if (uer_accepted_ < max_uers_) {
      live_.Absorb(record);
      ++uer_accepted_;
      cutoff_ = record.time_s;
      frozen_ = live_;
      if (uer_accepted_ == max_uers_) capped_ = true;
    }
    return;
  }

  // CE/UEO: part of the truncated view iff time <= cutoff. Pre-cap the
  // cutoff can still move forward, so everything is tracked in `live`;
  // same-timestamp ties with the current cutoff additionally land in
  // `frozen` so the snapshot equals the view at all times.
  if (!capped_) live_.Absorb(record);
  if (uer_accepted_ >= 1 && record.time_s == cutoff_) frozen_.Absorb(record);
}

void BankProfile::ObserveAll(const trace::BankHistory& bank) {
  for (const trace::MceRecord& record : bank.events) Observe(record);
}

double BankProfile::classification_cutoff_s() const {
  CORDIAL_CHECK_MSG(HasClassificationView(),
                    "classification cutoff requires a UER");
  return cutoff_;
}

bool BankProfile::HasUerRow(std::uint32_t row) const {
  const double value = static_cast<double>(row);
  const auto& rows = crossrow_.uer_rows;
  const auto it = std::lower_bound(rows.begin(), rows.end(), value);
  return it != rows.end() && *it == value;
}

}  // namespace cordial::core
