#include "core/bank_profile.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "persist/binary_io.hpp"

namespace cordial::core {

using hbm::ErrorType;

namespace {

/// Insert `row` into a sorted distinct vector; returns the insertion index
/// or SIZE_MAX when the row was already present.
std::size_t InsertDistinct(std::vector<double>& sorted, double row) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), row);
  if (it != sorted.end() && *it == row) return static_cast<std::size_t>(-1);
  const auto index = static_cast<std::size_t>(it - sorted.begin());
  sorted.insert(it, row);
  return index;
}

}  // namespace

// --------------------------------------------------------- classification

void ClassAccumulator::Absorb(const trace::MceRecord& record) {
  const double row = static_cast<double>(record.address.row);
  const double t = record.time_s;
  if (!any_event || t != last_time) {
    ce_at_last_time = 0;
    ueo_at_last_time = 0;
  }
  all_row_diff.Push(row);
  switch (record.type) {
    case ErrorType::kCe:
      if (ce_total == 0 || row < ce_row_min) ce_row_min = row;
      if (ce_total == 0 || row > ce_row_max) ce_row_max = row;
      ++ce_total;
      ce_dt.Push(t);
      ++ce_at_last_time;
      break;
    case ErrorType::kUeo:
      if (ueo_total == 0 || row < ueo_row_min) ueo_row_min = row;
      if (ueo_total == 0 || row > ueo_row_max) ueo_row_max = row;
      ++ueo_total;
      ueo_dt.Push(t);
      ++ueo_at_last_time;
      break;
    case ErrorType::kUer:
      if (uer_events == 0) {
        first_uer_time = t;
        // Density before the first UER counts events STRICTLY before its
        // timestamp: subtract the same-timestamp run absorbed just above.
        const bool same = any_event && last_time == t;
        ce_before_first_uer =
            static_cast<double>(ce_total - (same ? ce_at_last_time : 0));
        ueo_before_first_uer =
            static_cast<double>(ueo_total - (same ? ueo_at_last_time : 0));
      }
      if (uer_events == 0 || row < uer_row_min) uer_row_min = row;
      if (uer_events == 0 || row > uer_row_max) uer_row_max = row;
      ++uer_events;
      last_uer_time = t;
      uer_row_diff.Push(row);
      uer_dt.Push(t);
      InsertDistinct(distinct_uer_rows, row);
      break;
  }
  any_event = true;
  last_time = t;
}

// -------------------------------------------------------------- cross-row

void CrossRowAccumulator::Absorb(const trace::MceRecord& record) {
  const double row = static_cast<double>(record.address.row);
  const double t = record.time_s;
  ++all_count;
  all_row_diff.Push(row);
  last_event_time = t;
  switch (record.type) {
    case ErrorType::kCe:
      ++ce_count;
      ce_dt.Push(t);
      InsertDistinct(ce_rows, row);
      break;
    case ErrorType::kUeo:
      ++ueo_count;
      ueo_dt.Push(t);
      InsertDistinct(ueo_rows, row);
      break;
    case ErrorType::kUer: {
      if (uer_count == 0) first_uer_time = t;
      if (uer_count == 0 || row < uer_row_min) uer_row_min = row;
      if (uer_count == 0 || row > uer_row_max) uer_row_max = row;
      ++uer_count;
      uer_dt.Push(t);
      uer_row_diff.Push(row);
      const std::size_t index = InsertDistinct(uer_rows, row);
      if (index != static_cast<std::size_t>(-1)) {
        // Maintain the neighbour-gap multiset: inserting between two
        // existing rows splits their gap in two.
        const auto u32 = [](double v) { return static_cast<std::uint32_t>(v); };
        const bool has_prev = index > 0;
        const bool has_next = index + 1 < uer_rows.size();
        if (has_prev && has_next) {
          const std::uint32_t old_gap =
              u32(uer_rows[index + 1]) - u32(uer_rows[index - 1]);
          const auto it = uer_row_gaps.find(old_gap);
          CORDIAL_CHECK_MSG(it != uer_row_gaps.end(),
                            "UER gap bookkeeping out of sync");
          uer_row_gaps.erase(it);
        }
        if (has_prev) {
          uer_row_gaps.insert(u32(row) - u32(uer_rows[index - 1]));
        }
        if (has_next) {
          uer_row_gaps.insert(u32(uer_rows[index + 1]) - u32(row));
        }
      }
      break;
    }
  }
}

// ------------------------------------------------------------ BankProfile

BankProfile::BankProfile(std::size_t max_uers) : max_uers_(max_uers) {
  CORDIAL_CHECK_MSG(max_uers_ >= 1, "must keep at least one UER");
}

void BankProfile::Observe(const trace::MceRecord& record) {
  CORDIAL_CHECK_MSG(events_ == 0 || record.time_s >= last_time_,
                    "BankProfile requires non-decreasing timestamps");
  ++events_;
  last_time_ = record.time_s;
  crossrow_.Absorb(record);

  if (record.type == ErrorType::kUer) {
    // TruncateAtUer keeps the first max_uers UERs; later ones — including
    // same-timestamp ties with the cutoff — are outside the view.
    if (uer_accepted_ < max_uers_) {
      live_.Absorb(record);
      ++uer_accepted_;
      cutoff_ = record.time_s;
      frozen_ = live_;
      if (uer_accepted_ == max_uers_) capped_ = true;
    }
    return;
  }

  // CE/UEO: part of the truncated view iff time <= cutoff. Pre-cap the
  // cutoff can still move forward, so everything is tracked in `live`;
  // same-timestamp ties with the current cutoff additionally land in
  // `frozen` so the snapshot equals the view at all times.
  if (!capped_) live_.Absorb(record);
  if (uer_accepted_ >= 1 && record.time_s == cutoff_) frozen_.Absorb(record);
}

void BankProfile::ObserveAll(const trace::BankHistory& bank) {
  for (const trace::MceRecord& record : bank.events) Observe(record);
}

double BankProfile::classification_cutoff_s() const {
  CORDIAL_CHECK_MSG(HasClassificationView(),
                    "classification cutoff requires a UER");
  return cutoff_;
}

bool BankProfile::HasUerRow(std::uint32_t row) const {
  const double value = static_cast<double>(row);
  const auto& rows = crossrow_.uer_rows;
  const auto it = std::lower_bound(rows.begin(), rows.end(), value);
  return it != rows.end() && *it == value;
}

// ---------------------------------------------------------- serialization

namespace {

void WriteChain(std::ostream& out, const DiffChain& chain) {
  out << chain.count << ' ';
  WriteDoubleToken(out, chain.sum);
  out << ' ';
  WriteDoubleToken(out, chain.min);
  out << ' ';
  WriteDoubleToken(out, chain.max);
  out << ' ' << (chain.has_last ? 1 : 0) << ' ';
  WriteDoubleToken(out, chain.last);
  out << '\n';
}

DiffChain ReadChain(std::istream& in) {
  DiffChain chain;
  chain.count = ReadU64Token(in, "profile chain");
  chain.sum = ReadDoubleToken(in, "profile chain");
  chain.min = ReadDoubleToken(in, "profile chain");
  chain.max = ReadDoubleToken(in, "profile chain");
  chain.has_last = ReadU64Token(in, "profile chain") != 0;
  chain.last = ReadDoubleToken(in, "profile chain");
  return chain;
}

void WriteRows(std::ostream& out, const std::vector<double>& rows) {
  out << rows.size();
  for (const double row : rows) {
    out << ' ';
    WriteDoubleToken(out, row);
  }
  out << '\n';
}

std::vector<double> ReadRows(std::istream& in) {
  const std::uint64_t n = ReadU64Token(in, "profile rows");
  std::vector<double> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    rows.push_back(ReadDoubleToken(in, "profile rows"));
  }
  return rows;
}

void WriteClass(std::ostream& out, const ClassAccumulator& acc) {
  out << acc.ce_total << ' ' << acc.ueo_total << ' ' << acc.uer_events << '\n';
  for (const double v :
       {acc.ce_row_min, acc.ce_row_max, acc.ueo_row_min, acc.ueo_row_max,
        acc.uer_row_min, acc.uer_row_max, acc.first_uer_time,
        acc.last_uer_time, acc.ce_before_first_uer, acc.ueo_before_first_uer,
        acc.last_time}) {
    WriteDoubleToken(out, v);
    out << ' ';
  }
  out << (acc.any_event ? 1 : 0) << ' ' << acc.ce_at_last_time << ' '
      << acc.ueo_at_last_time << '\n';
  WriteChain(out, acc.uer_row_diff);
  WriteChain(out, acc.all_row_diff);
  WriteChain(out, acc.ce_dt);
  WriteChain(out, acc.ueo_dt);
  WriteChain(out, acc.uer_dt);
  WriteRows(out, acc.distinct_uer_rows);
}

ClassAccumulator ReadClass(std::istream& in) {
  ClassAccumulator acc;
  acc.ce_total = ReadU64Token(in, "profile class");
  acc.ueo_total = ReadU64Token(in, "profile class");
  acc.uer_events = ReadU64Token(in, "profile class");
  acc.ce_row_min = ReadDoubleToken(in, "profile class");
  acc.ce_row_max = ReadDoubleToken(in, "profile class");
  acc.ueo_row_min = ReadDoubleToken(in, "profile class");
  acc.ueo_row_max = ReadDoubleToken(in, "profile class");
  acc.uer_row_min = ReadDoubleToken(in, "profile class");
  acc.uer_row_max = ReadDoubleToken(in, "profile class");
  acc.first_uer_time = ReadDoubleToken(in, "profile class");
  acc.last_uer_time = ReadDoubleToken(in, "profile class");
  acc.ce_before_first_uer = ReadDoubleToken(in, "profile class");
  acc.ueo_before_first_uer = ReadDoubleToken(in, "profile class");
  acc.last_time = ReadDoubleToken(in, "profile class");
  acc.any_event = ReadU64Token(in, "profile class") != 0;
  acc.ce_at_last_time = ReadU64Token(in, "profile class");
  acc.ueo_at_last_time = ReadU64Token(in, "profile class");
  acc.uer_row_diff = ReadChain(in);
  acc.all_row_diff = ReadChain(in);
  acc.ce_dt = ReadChain(in);
  acc.ueo_dt = ReadChain(in);
  acc.uer_dt = ReadChain(in);
  acc.distinct_uer_rows = ReadRows(in);
  return acc;
}

void WriteCrossRow(std::ostream& out, const CrossRowAccumulator& acc) {
  out << acc.ce_count << ' ' << acc.ueo_count << ' ' << acc.uer_count << ' '
      << acc.all_count << '\n';
  for (const double v : {acc.uer_row_min, acc.uer_row_max, acc.first_uer_time,
                         acc.last_event_time}) {
    WriteDoubleToken(out, v);
    out << ' ';
  }
  out << '\n';
  WriteChain(out, acc.uer_row_diff);
  WriteChain(out, acc.all_row_diff);
  WriteChain(out, acc.ce_dt);
  WriteChain(out, acc.ueo_dt);
  WriteChain(out, acc.uer_dt);
  WriteRows(out, acc.ce_rows);
  WriteRows(out, acc.ueo_rows);
  WriteRows(out, acc.uer_rows);
  // uer_row_gaps is derived from uer_rows and rebuilt on load.
}

CrossRowAccumulator ReadCrossRow(std::istream& in) {
  CrossRowAccumulator acc;
  acc.ce_count = ReadU64Token(in, "profile crossrow");
  acc.ueo_count = ReadU64Token(in, "profile crossrow");
  acc.uer_count = ReadU64Token(in, "profile crossrow");
  acc.all_count = ReadU64Token(in, "profile crossrow");
  acc.uer_row_min = ReadDoubleToken(in, "profile crossrow");
  acc.uer_row_max = ReadDoubleToken(in, "profile crossrow");
  acc.first_uer_time = ReadDoubleToken(in, "profile crossrow");
  acc.last_event_time = ReadDoubleToken(in, "profile crossrow");
  acc.uer_row_diff = ReadChain(in);
  acc.all_row_diff = ReadChain(in);
  acc.ce_dt = ReadChain(in);
  acc.ueo_dt = ReadChain(in);
  acc.uer_dt = ReadChain(in);
  acc.ce_rows = ReadRows(in);
  acc.ueo_rows = ReadRows(in);
  acc.uer_rows = ReadRows(in);
  for (std::size_t i = 1; i < acc.uer_rows.size(); ++i) {
    acc.uer_row_gaps.insert(static_cast<std::uint32_t>(acc.uer_rows[i]) -
                            static_cast<std::uint32_t>(acc.uer_rows[i - 1]));
  }
  return acc;
}

// Binary mirrors of the writers above: identical field order, fixed-width
// little-endian fields, doubles as raw IEEE-754 bit patterns.

void WriteChainBinary(persist::BinaryWriter& out, const DiffChain& chain) {
  out.U64(chain.count);
  out.F64(chain.sum);
  out.F64(chain.min);
  out.F64(chain.max);
  out.U8(chain.has_last ? 1 : 0);
  out.F64(chain.last);
}

DiffChain ReadChainBinary(persist::BinaryReader& in) {
  DiffChain chain;
  chain.count = static_cast<std::size_t>(in.U64());
  chain.sum = in.F64();
  chain.min = in.F64();
  chain.max = in.F64();
  chain.has_last = in.U8() != 0;
  chain.last = in.F64();
  return chain;
}

void WriteRowsBinary(persist::BinaryWriter& out,
                     const std::vector<double>& rows) {
  out.U32(static_cast<std::uint32_t>(rows.size()));
  for (const double row : rows) out.F64(row);
}

std::vector<double> ReadRowsBinary(persist::BinaryReader& in) {
  const std::uint32_t n = in.Count32(8);
  std::vector<double> rows;
  rows.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) rows.push_back(in.F64());
  return rows;
}

void WriteClassBinary(persist::BinaryWriter& out, const ClassAccumulator& acc) {
  out.U64(acc.ce_total);
  out.U64(acc.ueo_total);
  out.U64(acc.uer_events);
  for (const double v :
       {acc.ce_row_min, acc.ce_row_max, acc.ueo_row_min, acc.ueo_row_max,
        acc.uer_row_min, acc.uer_row_max, acc.first_uer_time,
        acc.last_uer_time, acc.ce_before_first_uer, acc.ueo_before_first_uer,
        acc.last_time}) {
    out.F64(v);
  }
  out.U8(acc.any_event ? 1 : 0);
  out.U64(acc.ce_at_last_time);
  out.U64(acc.ueo_at_last_time);
  WriteChainBinary(out, acc.uer_row_diff);
  WriteChainBinary(out, acc.all_row_diff);
  WriteChainBinary(out, acc.ce_dt);
  WriteChainBinary(out, acc.ueo_dt);
  WriteChainBinary(out, acc.uer_dt);
  WriteRowsBinary(out, acc.distinct_uer_rows);
}

ClassAccumulator ReadClassBinary(persist::BinaryReader& in) {
  ClassAccumulator acc;
  acc.ce_total = static_cast<std::size_t>(in.U64());
  acc.ueo_total = static_cast<std::size_t>(in.U64());
  acc.uer_events = static_cast<std::size_t>(in.U64());
  acc.ce_row_min = in.F64();
  acc.ce_row_max = in.F64();
  acc.ueo_row_min = in.F64();
  acc.ueo_row_max = in.F64();
  acc.uer_row_min = in.F64();
  acc.uer_row_max = in.F64();
  acc.first_uer_time = in.F64();
  acc.last_uer_time = in.F64();
  acc.ce_before_first_uer = in.F64();
  acc.ueo_before_first_uer = in.F64();
  acc.last_time = in.F64();
  acc.any_event = in.U8() != 0;
  acc.ce_at_last_time = static_cast<std::size_t>(in.U64());
  acc.ueo_at_last_time = static_cast<std::size_t>(in.U64());
  acc.uer_row_diff = ReadChainBinary(in);
  acc.all_row_diff = ReadChainBinary(in);
  acc.ce_dt = ReadChainBinary(in);
  acc.ueo_dt = ReadChainBinary(in);
  acc.uer_dt = ReadChainBinary(in);
  acc.distinct_uer_rows = ReadRowsBinary(in);
  return acc;
}

void WriteCrossRowBinary(persist::BinaryWriter& out,
                         const CrossRowAccumulator& acc) {
  out.U64(acc.ce_count);
  out.U64(acc.ueo_count);
  out.U64(acc.uer_count);
  out.U64(acc.all_count);
  for (const double v : {acc.uer_row_min, acc.uer_row_max, acc.first_uer_time,
                         acc.last_event_time}) {
    out.F64(v);
  }
  WriteChainBinary(out, acc.uer_row_diff);
  WriteChainBinary(out, acc.all_row_diff);
  WriteChainBinary(out, acc.ce_dt);
  WriteChainBinary(out, acc.ueo_dt);
  WriteChainBinary(out, acc.uer_dt);
  WriteRowsBinary(out, acc.ce_rows);
  WriteRowsBinary(out, acc.ueo_rows);
  WriteRowsBinary(out, acc.uer_rows);
  // uer_row_gaps is derived from uer_rows and rebuilt on load.
}

CrossRowAccumulator ReadCrossRowBinary(persist::BinaryReader& in) {
  CrossRowAccumulator acc;
  acc.ce_count = static_cast<std::size_t>(in.U64());
  acc.ueo_count = static_cast<std::size_t>(in.U64());
  acc.uer_count = static_cast<std::size_t>(in.U64());
  acc.all_count = static_cast<std::size_t>(in.U64());
  acc.uer_row_min = in.F64();
  acc.uer_row_max = in.F64();
  acc.first_uer_time = in.F64();
  acc.last_event_time = in.F64();
  acc.uer_row_diff = ReadChainBinary(in);
  acc.all_row_diff = ReadChainBinary(in);
  acc.ce_dt = ReadChainBinary(in);
  acc.ueo_dt = ReadChainBinary(in);
  acc.uer_dt = ReadChainBinary(in);
  acc.ce_rows = ReadRowsBinary(in);
  acc.ueo_rows = ReadRowsBinary(in);
  acc.uer_rows = ReadRowsBinary(in);
  for (std::size_t i = 1; i < acc.uer_rows.size(); ++i) {
    acc.uer_row_gaps.insert(static_cast<std::uint32_t>(acc.uer_rows[i]) -
                            static_cast<std::uint32_t>(acc.uer_rows[i - 1]));
  }
  return acc;
}

}  // namespace

void BankProfile::Save(std::ostream& out) const {
  out << "bank_profile v1\n"
      << max_uers_ << ' ' << events_ << ' ';
  WriteDoubleToken(out, last_time_);
  out << ' ' << uer_accepted_ << ' ' << (capped_ ? 1 : 0) << ' ';
  WriteDoubleToken(out, cutoff_);
  out << '\n';
  WriteClass(out, live_);
  WriteClass(out, frozen_);
  WriteCrossRow(out, crossrow_);
}

BankProfile BankProfile::Load(std::istream& in) {
  ExpectToken(in, "bank_profile");
  ExpectToken(in, "v1");
  const std::uint64_t max_uers = ReadU64Token(in, "profile");
  BankProfile profile(static_cast<std::size_t>(max_uers));
  profile.events_ = ReadU64Token(in, "profile");
  profile.last_time_ = ReadDoubleToken(in, "profile");
  profile.uer_accepted_ = ReadU64Token(in, "profile");
  profile.capped_ = ReadU64Token(in, "profile") != 0;
  profile.cutoff_ = ReadDoubleToken(in, "profile");
  profile.live_ = ReadClass(in);
  profile.frozen_ = ReadClass(in);
  profile.crossrow_ = ReadCrossRow(in);
  return profile;
}

void BankProfile::SaveBinary(persist::BinaryWriter& out) const {
  out.U64(max_uers_);
  out.U64(events_);
  out.F64(last_time_);
  out.U64(uer_accepted_);
  out.U8(capped_ ? 1 : 0);
  out.F64(cutoff_);
  WriteClassBinary(out, live_);
  WriteClassBinary(out, frozen_);
  WriteCrossRowBinary(out, crossrow_);
}

BankProfile BankProfile::LoadBinary(persist::BinaryReader& in) {
  const std::uint64_t max_uers = in.U64();
  // The constructor CORDIAL_CHECKs max_uers >= 1; surface a corrupt value
  // as a ParseError so recovery's fail-closed path handles it.
  if (max_uers == 0) {
    throw ParseError("profile: corrupt max_uers 0");
  }
  BankProfile profile(static_cast<std::size_t>(max_uers));
  profile.events_ = static_cast<std::size_t>(in.U64());
  profile.last_time_ = in.F64();
  profile.uer_accepted_ = static_cast<std::size_t>(in.U64());
  profile.capped_ = in.U8() != 0;
  profile.cutoff_ = in.F64();
  profile.live_ = ReadClassBinary(in);
  profile.frozen_ = ReadClassBinary(in);
  profile.crossrow_ = ReadCrossRowBinary(in);
  return profile;
}

}  // namespace cordial::core
