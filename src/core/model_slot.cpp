#include "core/model_slot.hpp"

#include <utility>

#include "common/check.hpp"
#include "core/crossrow.hpp"
#include "core/pattern_classifier.hpp"

namespace cordial::core {

ModelSlot::ModelSlot(ModelSet initial) {
  Validate(initial);
  auto set = std::make_shared<ModelSet>(std::move(initial));
  set->version = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  current_ = std::move(set);
  version_.store(1, std::memory_order_release);
}

void ModelSlot::Validate(const ModelSet& set) const {
  CORDIAL_CHECK_MSG(set.classifier != nullptr && set.single != nullptr,
                    "model set needs a classifier and a single-row predictor");
  CORDIAL_CHECK_MSG(set.classifier->trained(), "classifier must be trained");
  CORDIAL_CHECK_MSG(set.single->trained(),
                    "single-row predictor must be trained");
  CORDIAL_CHECK_MSG(set.double_row == nullptr || set.double_row->trained(),
                    "double-row predictor must be trained");
}

std::uint64_t ModelSlot::Publish(ModelSet next) {
  Validate(next);
  auto set = std::make_shared<ModelSet>(std::move(next));
  std::lock_guard<std::mutex> lock(mutex_);
  set->version = version_.load(std::memory_order_relaxed) + 1;
  const std::uint64_t version = set->version;
  current_ = std::move(set);
  // Version moves only after the set is visible: a reader that saw the new
  // version acquires at least that generation.
  version_.store(version, std::memory_order_release);
  return version;
}

std::shared_ptr<const ModelSet> ModelSlot::Acquire() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

}  // namespace cordial::core
