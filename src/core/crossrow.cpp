#include "core/crossrow.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "core/persist.hpp"

namespace cordial::core {

using hbm::ErrorType;

std::unique_ptr<ml::Classifier> MakeCrossRowLearner(ml::LearnerKind kind) {
  switch (kind) {
    case ml::LearnerKind::kRandomForest: {
      ml::RandomForestOptions options;
      options.n_trees = 80;
      options.max_depth = 18;
      return ml::MakeRandomForest(options);
    }
    case ml::LearnerKind::kXgbStyle: {
      ml::BoosterOptions options;
      options.n_rounds = 80;
      options.max_depth = 6;
      options.max_bins = 64;  // histogram splits: block datasets are large
      return ml::MakeXgbStyleBooster(options);
    }
    case ml::LearnerKind::kLgbmStyle: {
      ml::BoosterOptions options;
      options.n_rounds = 80;
      options.max_leaves = 31;
      options.max_bins = 64;
      return ml::MakeLgbmStyleBooster(options);
    }
  }
  CORDIAL_CHECK_MSG(false, "unknown learner kind");
  return nullptr;
}

CrossRowPredictor::CrossRowPredictor(const hbm::TopologyConfig& topology,
                                     ml::LearnerKind kind,
                                     CrossRowConfig config)
    : topology_(topology),
      extractor_(topology, config.block_size, config.n_blocks),
      config_(config),
      model_(MakeCrossRowLearner(kind)) {
  CORDIAL_CHECK_MSG(config_.trigger_uers >= 1, "trigger must be >= 1");
  CORDIAL_CHECK_MSG(config_.max_anchors_per_bank >= 1,
                    "need at least one anchor per bank");
  CORDIAL_CHECK_MSG(
      config_.positive_threshold > 0.0 && config_.positive_threshold < 1.0,
      "positive threshold must be in (0,1)");
}

std::vector<Anchor> CrossRowPredictor::AnchorsOf(
    const trace::BankHistory& bank) const {
  std::vector<Anchor> anchors;
  std::size_t ordinal = 0;
  for (const trace::MceRecord& r : bank.events) {
    if (r.type != ErrorType::kUer) continue;
    ++ordinal;
    if (ordinal < config_.trigger_uers) continue;
    if (!anchors.empty() && anchors.back().row == r.address.row) continue;
    anchors.push_back(Anchor{r.time_s, r.address.row, ordinal});
    if (anchors.size() >= config_.max_anchors_per_bank) break;
  }
  return anchors;
}

std::vector<std::pair<std::uint32_t, double>> CrossRowPredictor::FirstFailures(
    const trace::BankHistory& bank) {
  std::vector<std::pair<std::uint32_t, double>> firsts;
  std::set<std::uint32_t> seen;
  for (const trace::MceRecord& r : bank.events) {
    if (r.type != ErrorType::kUer) continue;
    if (seen.insert(r.address.row).second) {
      firsts.emplace_back(r.address.row, r.time_s);
    }
  }
  return firsts;
}

std::vector<int> CrossRowPredictor::BlockTruth(const trace::BankHistory& bank,
                                               const Anchor& anchor) const {
  const BlockWindow window = extractor_.WindowAt(anchor.row);
  std::vector<int> truth(config_.n_blocks, 0);
  for (const auto& [row, first_t] : FirstFailures(bank)) {
    if (first_t <= anchor.time_s) continue;  // already failed
    const auto block = window.BlockOf(row);
    if (block.has_value()) truth[*block] = 1;
  }
  return truth;
}

ml::Dataset CrossRowPredictor::BuildDataset(
    const std::vector<const trace::BankHistory*>& banks) const {
  ml::Dataset data(extractor_.num_features(), /*num_classes=*/2,
                   extractor_.feature_names());
  for (const trace::BankHistory* bank : banks) {
    CORDIAL_CHECK_MSG(bank != nullptr, "null bank in training set");
    // One profile per bank, advanced anchor by anchor: O(events) total
    // instead of a history rescan per (anchor, block).
    BankProfile profile;
    std::size_t cursor = 0;
    for (const Anchor& anchor : AnchorsOf(*bank)) {
      while (cursor < bank->events.size() &&
             bank->events[cursor].time_s <= anchor.time_s) {
        profile.Observe(bank->events[cursor]);
        ++cursor;
      }
      const BlockWindow window = extractor_.WindowAt(anchor.row);
      const std::vector<int> truth = BlockTruth(*bank, anchor);
      for (std::size_t b = 0; b < config_.n_blocks; ++b) {
        if (!window.BlockRange(b).has_value()) continue;  // outside the bank
        data.AddRow(extractor_.ExtractFromProfile(profile, anchor.time_s,
                                                  anchor.row, b),
                    truth[b]);
      }
    }
  }
  return data;
}

void CrossRowPredictor::Train(
    const std::vector<const trace::BankHistory*>& banks, Rng& rng) {
  const ml::Dataset data = BuildDataset(banks);
  CORDIAL_CHECK_MSG(!data.empty(), "no training samples for cross-row model");
  const std::vector<std::size_t> counts = data.ClassCounts();
  CORDIAL_CHECK_MSG(counts[0] > 0 && counts[1] > 0,
                    "cross-row training data must contain both classes");
  model_->Fit(data, rng);
  trained_ = true;
}

std::vector<double> CrossRowPredictor::PredictBlockProba(
    const trace::BankHistory& bank, const Anchor& anchor) const {
  BankProfile profile;
  for (const trace::MceRecord& r : bank.events) {
    if (r.time_s > anchor.time_s) break;
    profile.Observe(r);
  }
  return PredictBlockProbaFromProfile(profile, anchor);
}

std::vector<int> CrossRowPredictor::PredictBlocks(
    const trace::BankHistory& bank, const Anchor& anchor) const {
  const std::vector<double> proba = PredictBlockProba(bank, anchor);
  std::vector<int> predictions(proba.size(), 0);
  for (std::size_t b = 0; b < proba.size(); ++b) {
    predictions[b] = proba[b] >= config_.positive_threshold ? 1 : 0;
  }
  return predictions;
}

std::vector<double> CrossRowPredictor::PredictBlockProbaFromProfile(
    const BankProfile& profile, const Anchor& anchor) const {
  CORDIAL_CHECK_MSG(trained_, "cross-row predictor not trained");
  const BlockWindow window = extractor_.WindowAt(anchor.row);
  std::vector<double> proba(config_.n_blocks, 0.0);
  for (std::size_t b = 0; b < config_.n_blocks; ++b) {
    if (!window.BlockRange(b).has_value()) continue;
    const std::vector<double> p = model_->PredictProba(
        extractor_.ExtractFromProfile(profile, anchor.time_s, anchor.row, b));
    proba[b] = p[1];
  }
  return proba;
}

std::vector<int> CrossRowPredictor::PredictBlocksFromProfile(
    const BankProfile& profile, const Anchor& anchor) const {
  const std::vector<double> proba =
      PredictBlockProbaFromProfile(profile, anchor);
  std::vector<int> predictions(proba.size(), 0);
  for (std::size_t b = 0; b < proba.size(); ++b) {
    predictions[b] = proba[b] >= config_.positive_threshold ? 1 : 0;
  }
  return predictions;
}

void CrossRowPredictor::SaveModel(std::ostream& out) const {
  CORDIAL_CHECK_MSG(trained_, "cannot save an untrained predictor");
  std::ostringstream payload;
  payload << "features " << extractor_.num_features() << '\n';
  ml::SaveClassifier(*model_, payload);
  WriteFramed(out, kCrossRowModelMagic, kModelFrameVersion, payload.str());
}

void CrossRowPredictor::LoadModel(std::istream& in) {
  std::istringstream payload(
      ReadFramed(in, kCrossRowModelMagic, kModelFrameVersion));
  // Reject a model whose feature layout disagrees with the extractor's —
  // it would parse cleanly and then mispredict from shifted columns.
  ExpectToken(payload, "features");
  const std::uint64_t saved = ReadU64Token(payload, "crossrow model features");
  if (saved != extractor_.num_features()) {
    throw ParseError("crossrow model: feature count mismatch (model has " +
                     std::to_string(saved) + ", extractor expects " +
                     std::to_string(extractor_.num_features()) + ")");
  }
  model_ = ml::LoadClassifier(payload);
  trained_ = true;
}

CrossRowPredictor::CrossRowPredictor(const CrossRowPredictor& other)
    : topology_(other.topology_),
      extractor_(other.extractor_),
      config_(other.config_),
      model_(other.model_->Clone()),
      trained_(other.trained_) {}

std::vector<double> CrossRowPredictor::FeatureImportance() const {
  CORDIAL_CHECK_MSG(trained_, "cross-row predictor not trained");
  return model_->FeatureImportance();
}

}  // namespace cordial::core
