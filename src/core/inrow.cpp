#include "core/inrow.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "common/check.hpp"
#include "core/features.hpp"

namespace cordial::core {

using hbm::ErrorType;

InRowPredictor::InRowPredictor(const hbm::TopologyConfig& topology,
                               ml::LearnerKind kind, InRowConfig config)
    : topology_(topology), config_(config) {
  topology_.Validate();
  CORDIAL_CHECK_MSG(
      config_.positive_threshold > 0.0 && config_.positive_threshold < 1.0,
      "in-row threshold must be in (0,1)");
  CORDIAL_CHECK_MSG(config_.max_observations_per_row >= 1,
                    "need at least one observation per row");
  model_ = MakeCrossRowLearner(kind);
  feature_names_ = {
      "row_ce_count", "row_ueo_count", "row_error_count",
      "row_distinct_cols",
      "row_time_since_first_error", "row_time_since_last_error",
      "row_dt_min", "row_dt_max", "row_dt_avg",
      "bank_ce_count", "bank_ueo_count", "bank_uer_count",
      "bank_uer_rows_nearby", "row_position_ratio",
  };
}

std::vector<double> InRowPredictor::Extract(const trace::BankHistory& bank,
                                            std::uint32_t row,
                                            double time_s) const {
  std::vector<double> row_times;
  double row_ce = 0.0, row_ueo = 0.0;
  std::set<std::uint32_t> row_cols;
  double bank_ce = 0.0, bank_ueo = 0.0, bank_uer = 0.0;
  double nearby_uer_rows = 0.0;
  std::set<std::uint32_t> uer_rows_seen;
  for (const trace::MceRecord& r : bank.events) {
    if (r.time_s > time_s) break;
    if (r.type == ErrorType::kCe) bank_ce += 1.0;
    if (r.type == ErrorType::kUeo) bank_ueo += 1.0;
    if (r.type == ErrorType::kUer) {
      bank_uer += 1.0;
      if (uer_rows_seen.insert(r.address.row).second) {
        const auto dist =
            std::abs(static_cast<std::int64_t>(r.address.row) -
                     static_cast<std::int64_t>(row));
        if (dist <= 64) nearby_uer_rows += 1.0;
      }
    }
    if (r.address.row != row) continue;
    if (r.type == ErrorType::kUer) continue;  // in-row precursors only
    row_times.push_back(r.time_s);
    row_cols.insert(r.address.col);
    if (r.type == ErrorType::kCe) row_ce += 1.0;
    if (r.type == ErrorType::kUeo) row_ueo += 1.0;
  }
  CORDIAL_CHECK_MSG(!row_times.empty(),
                    "in-row features need a precursor in the row");

  double dt_min = kMissing, dt_max = kMissing, dt_avg = kMissing;
  if (row_times.size() >= 2) {
    dt_min = dt_max = row_times[1] - row_times[0];
    double total = 0.0;
    for (std::size_t i = 1; i < row_times.size(); ++i) {
      const double dt = row_times[i] - row_times[i - 1];
      dt_min = std::min(dt_min, dt);
      dt_max = std::max(dt_max, dt);
      total += dt;
    }
    dt_avg = total / static_cast<double>(row_times.size() - 1);
  }

  std::vector<double> features = {
      row_ce,
      row_ueo,
      row_ce + row_ueo,
      static_cast<double>(row_cols.size()),
      time_s - row_times.front(),
      time_s - row_times.back(),
      dt_min,
      dt_max,
      dt_avg,
      bank_ce,
      bank_ueo,
      bank_uer,
      nearby_uer_rows,
      static_cast<double>(row) / static_cast<double>(topology_.rows_per_bank),
  };
  CORDIAL_CHECK_MSG(features.size() == feature_names_.size(),
                    "in-row feature arity drifted");
  return features;
}

ml::Dataset InRowPredictor::BuildDataset(
    const std::vector<const trace::BankHistory*>& banks) const {
  ml::Dataset data(num_features(), /*num_classes=*/2, feature_names_);
  for (const trace::BankHistory* bank : banks) {
    CORDIAL_CHECK_MSG(bank != nullptr, "null bank in training set");
    // First-UER time per row (labels) and precursor observations per row.
    std::map<std::uint32_t, double> first_uer;
    for (const trace::MceRecord& r : bank->events) {
      if (r.type == ErrorType::kUer && !first_uer.contains(r.address.row)) {
        first_uer[r.address.row] = r.time_s;
      }
    }
    std::map<std::uint32_t, std::size_t> observations;
    std::size_t negative_rows_used = 0;
    std::set<std::uint32_t> negative_rows;
    for (const trace::MceRecord& r : bank->events) {
      if (r.type == ErrorType::kUer) continue;
      const std::uint32_t row = r.address.row;
      if (observations[row] >= config_.max_observations_per_row) continue;
      const auto uer_it = first_uer.find(row);
      // Observation must precede the row's failure to be a valid sample.
      const bool fails_later =
          uer_it != first_uer.end() && uer_it->second > r.time_s;
      const bool never_fails = uer_it == first_uer.end();
      if (!fails_later && !never_fails) continue;  // precursor after failure
      if (never_fails) {
        if (!negative_rows.contains(row) &&
            negative_rows_used >= config_.max_negative_rows_per_bank) {
          continue;
        }
        if (negative_rows.insert(row).second) ++negative_rows_used;
      }
      ++observations[row];
      data.AddRow(Extract(*bank, row, r.time_s), fails_later ? 1 : 0);
    }
  }
  return data;
}

void InRowPredictor::Train(
    const std::vector<const trace::BankHistory*>& banks, Rng& rng) {
  const ml::Dataset data = BuildDataset(banks);
  CORDIAL_CHECK_MSG(!data.empty(), "no in-row training samples");
  const auto counts = data.ClassCounts();
  CORDIAL_CHECK_MSG(counts[0] > 0 && counts[1] > 0,
                    "in-row training data must contain both classes");
  model_->Fit(data, rng);
  trained_ = true;
}

double InRowPredictor::PredictRowFailure(const trace::BankHistory& bank,
                                         std::uint32_t row,
                                         double time_s) const {
  CORDIAL_CHECK_MSG(trained_, "in-row predictor not trained");
  return model_->PredictProba(Extract(bank, row, time_s))[1];
}

LearnedInRowStrategy::LearnedInRowStrategy(const InRowPredictor& predictor)
    : predictor_(predictor) {
  CORDIAL_CHECK_MSG(predictor_.trained(),
                    "in-row strategy needs a trained predictor");
}

void LearnedInRowStrategy::OnEvent(const trace::BankHistory& bank,
                                   std::size_t event_index,
                                   hbm::SparingLedger& ledger) {
  const trace::MceRecord& r = bank.events[event_index];
  if (r.type == ErrorType::kUer) return;
  if (ledger.IsRowSpared(bank.bank_key, r.address.row)) return;
  const double p =
      predictor_.PredictRowFailure(bank, r.address.row, r.time_s);
  if (p >= predictor_.config().positive_threshold) {
    ledger.TrySpareRow(bank.bank_key, r.address.row);
  }
}

}  // namespace cordial::core
