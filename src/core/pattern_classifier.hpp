// Failure-pattern classification stage (paper §IV-C).
//
// Wraps a tree learner over the ClassificationFeatureExtractor: given a
// bank's history truncated at the first three UER events, predicts one of
// the paper's three classes — double-row clustering, single-row clustering,
// scattered — which decides whether cross-row prediction is triggered
// (aggregation patterns) or the bank is isolated wholesale (scattered).
#pragma once

#include <memory>
#include <vector>

#include "core/features.hpp"
#include "hbm/fault.hpp"
#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace cordial::core {

/// One labelled training/eval unit: a bank history plus its pattern class.
struct LabelledBank {
  const trace::BankHistory* bank = nullptr;
  hbm::FailureClass label = hbm::FailureClass::kSingleRowClustering;
};

class PatternClassifier {
 public:
  PatternClassifier(const hbm::TopologyConfig& topology,
                    ml::LearnerKind kind, std::size_t max_uers = 3);

  /// Deep copy via ml::Classifier::Clone — predictions bit-identical to the
  /// original, lifetimes fully independent. The shadow trainer copies the
  /// champion this way so champion/challenger evaluation runs concurrently
  /// with serving without re-parsing a serialized stream.
  PatternClassifier(const PatternClassifier& other);
  PatternClassifier& operator=(const PatternClassifier&) = delete;
  PatternClassifier(PatternClassifier&&) = default;

  const ClassificationFeatureExtractor& extractor() const {
    return extractor_;
  }
  ml::LearnerKind kind() const { return kind_; }

  /// Dataset with one row per bank, labels = FailureClass values.
  ml::Dataset BuildDataset(const std::vector<LabelledBank>& banks) const;

  void Train(const std::vector<LabelledBank>& banks, Rng& rng);

  bool trained() const { return trained_; }
  hbm::FailureClass Classify(const trace::BankHistory& bank) const;
  std::vector<double> ClassifyProba(const trace::BankHistory& bank) const;

  /// Classification from an incrementally maintained per-bank profile (the
  /// online engine path); equivalent to Classify on the same event prefix.
  hbm::FailureClass ClassifyProfile(const BankProfile& profile) const;
  std::vector<double> ClassifyProbaProfile(const BankProfile& profile) const;

  /// Confusion matrix over a labelled evaluation set (Table III).
  ml::ConfusionMatrix Evaluate(const std::vector<LabelledBank>& banks) const;

  /// Persist / restore the trained model (training happens offline; the
  /// BMC-side deployment only loads and classifies).
  void SaveModel(std::ostream& out) const;
  void LoadModel(std::istream& in);

  /// Normalized per-feature importance of the trained model, parallel to
  /// extractor().feature_names().
  std::vector<double> FeatureImportance() const;

 private:
  ClassificationFeatureExtractor extractor_;
  ml::LearnerKind kind_;
  std::unique_ptr<ml::Classifier> model_;
  bool trained_ = false;
};

}  // namespace cordial::core
