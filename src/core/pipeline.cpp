#include "core/pipeline.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "hbm/address.hpp"

namespace cordial::core {

using hbm::FailureClass;

CordialPipeline::CordialPipeline(const hbm::TopologyConfig& topology,
                                 PipelineConfig config)
    : topology_(topology), config_(config) {
  topology_.Validate();
  CORDIAL_CHECK_MSG(
      config_.test_fraction > 0.0 && config_.test_fraction < 1.0,
      "test fraction must be in (0,1)");
  CORDIAL_CHECK_MSG(
      config_.crossrow.trigger_uers >= config_.max_uers,
      "cross-row trigger must not precede the classification truncation");
}

namespace {

/// Block-level confusion for one method over a set of anchored predictions.
void AccumulateBlockMetrics(const CrossRowPredictor& predictor,
                            const trace::BankHistory& bank,
                            const std::vector<int>& predicted,
                            const Anchor& anchor, ml::ConfusionMatrix& cm) {
  const std::vector<int> truth = predictor.BlockTruth(bank, anchor);
  const BlockWindow window = predictor.extractor().WindowAt(anchor.row);
  for (std::size_t b = 0; b < predicted.size(); ++b) {
    if (!window.BlockRange(b).has_value()) continue;
    cm.Add(truth[b], predicted[b]);
  }
}

/// The Neighbor-Rows baseline expressed as block predictions: positive for
/// every block overlapping [anchor - adjacency, anchor + adjacency].
std::vector<int> NeighborBlockPredictions(const BlockWindow& window,
                                          std::uint32_t adjacency) {
  std::vector<int> predicted(window.n_blocks, 0);
  const std::int64_t lo =
      static_cast<std::int64_t>(window.anchor_row) - adjacency;
  const std::int64_t hi =
      static_cast<std::int64_t>(window.anchor_row) + adjacency;
  for (std::size_t b = 0; b < window.n_blocks; ++b) {
    const auto range = window.BlockRange(b);
    if (!range.has_value()) continue;
    if (static_cast<std::int64_t>(range->second) >= lo &&
        static_cast<std::int64_t>(range->first) <= hi) {
      predicted[b] = 1;
    }
  }
  return predicted;
}

}  // namespace

PipelineResult CordialPipeline::Run(const trace::GeneratedFleet& fleet,
                                    std::uint64_t seed) const {
  hbm::AddressCodec codec(fleet.topology);
  return RunOnBanks(fleet.log.GroupByBank(codec), seed);
}

PipelineResult CordialPipeline::RunOnBanks(
    const std::vector<trace::BankHistory>& banks, std::uint64_t seed) const {
  Rng rng(seed);
  analysis::PatternLabeler labeler(topology_);

  // Reference labels from the complete history of every UER bank. Labelling
  // is a pure per-bank function, so the banks fan out across threads.
  std::vector<const trace::BankHistory*> uer_banks;
  for (const trace::BankHistory& bank : banks) {
    if (bank.HasUer()) uer_banks.push_back(&bank);
  }
  const std::vector<hbm::FailureClass> labels =
      ParallelMap<hbm::FailureClass>(uer_banks.size(), [&](std::size_t i) {
        return labeler.LabelClass(*uer_banks[i]);
      });
  std::vector<LabelledBank> labelled;
  labelled.reserve(uer_banks.size());
  for (std::size_t i = 0; i < uer_banks.size(); ++i) {
    labelled.push_back(LabelledBank{uer_banks[i], labels[i]});
  }
  CORDIAL_CHECK_MSG(labelled.size() >= 10,
                    "pipeline needs at least 10 UER banks");

  // 70:30 stratified split at bank granularity.
  ml::Dataset label_only(/*num_features=*/1, hbm::kNumFailureClasses);
  for (const LabelledBank& lb : labelled) {
    const double zero = 0.0;
    label_only.AddRow(std::span<const double>(&zero, 1),
                      static_cast<int>(lb.label));
  }
  const ml::TrainTestSplit split =
      ml::StratifiedSplit(label_only, config_.test_fraction, rng);

  std::vector<LabelledBank> train, test;
  for (std::size_t i : split.train) train.push_back(labelled[i]);
  for (std::size_t i : split.test) test.push_back(labelled[i]);

  PipelineResult result;
  result.train_banks = train.size();
  result.test_banks = test.size();

  // --- Stage 1: pattern classification ---
  PatternClassifier classifier(topology_, config_.learner, config_.max_uers);
  classifier.Train(train, rng);
  result.pattern_confusion = classifier.Evaluate(test);

  // --- Stage 2: per-class cross-row predictors ---
  CrossRowConfig crossrow_config = config_.crossrow;
  CrossRowPredictor single_predictor(topology_, config_.learner,
                                     crossrow_config);
  CrossRowPredictor double_predictor(topology_, config_.learner,
                                     crossrow_config);

  std::vector<const trace::BankHistory*> single_train, double_train;
  for (const LabelledBank& lb : train) {
    if (lb.label == FailureClass::kSingleRowClustering) {
      single_train.push_back(lb.bank);
    } else if (lb.label == FailureClass::kDoubleRowClustering) {
      double_train.push_back(lb.bank);
    }
  }

  auto trainable = [&](const CrossRowPredictor& p,
                       const std::vector<const trace::BankHistory*>& set) {
    if (set.empty()) return false;
    const ml::Dataset data = p.BuildDataset(set);
    if (data.empty()) return false;
    const auto counts = data.ClassCounts();
    return counts[0] > 0 && counts[1] > 0;
  };

  CORDIAL_CHECK_MSG(trainable(single_predictor, single_train),
                    "not enough single-row clustering training data");
  single_predictor.Train(single_train, rng);
  result.crossrow_train_samples_single =
      single_predictor.BuildDataset(single_train).size();

  // Small fleets can lack usable double-cluster banks; fall back to the
  // single-cluster model rather than failing the run.
  const bool double_ok = trainable(double_predictor, double_train);
  if (double_ok) {
    double_predictor.Train(double_train, rng);
    result.crossrow_train_samples_double =
        double_predictor.BuildDataset(double_train).size();
  }
  const CrossRowPredictor& effective_double =
      double_ok ? double_predictor : single_predictor;

  // --- Stage 3: block-level prediction metrics (Table IV) ---
  // Every test bank is scored through the (const, trained) models
  // independently; per-bank confusion matrices are summed afterwards, which
  // is order-insensitive and therefore thread-count-invariant.
  struct BankBlocks {
    ml::ConfusionMatrix cordial{2};
    ml::ConfusionMatrix baseline{2};
  };
  const std::vector<BankBlocks> per_bank = ParallelMap<BankBlocks>(
      test.size(), [&](std::size_t t) {
        const LabelledBank& lb = test[t];
        BankBlocks blocks;
        const std::vector<Anchor> anchors =
            single_predictor.AnchorsOf(*lb.bank);
        if (anchors.empty()) return blocks;

        // Baseline predicts around every anchor regardless of pattern.
        for (const Anchor& anchor : anchors) {
          const BlockWindow window =
              single_predictor.extractor().WindowAt(anchor.row);
          AccumulateBlockMetrics(
              single_predictor, *lb.bank,
              NeighborBlockPredictions(window, config_.baseline_adjacency),
              anchor, blocks.baseline);
        }

        // Cordial predicts only for banks it classifies as aggregation. One
        // incremental profile per bank serves the classification and every
        // anchor: O(events) per bank instead of a rescan per anchor.
        BankProfile profile(config_.max_uers);
        std::size_t cursor = 0;
        const auto advance_to = [&](double time_s) {
          while (cursor < lb.bank->events.size() &&
                 lb.bank->events[cursor].time_s <= time_s) {
            profile.Observe(lb.bank->events[cursor]);
            ++cursor;
          }
        };
        // By the first anchor the truncated classification view is closed
        // (the trigger is at or past the truncation depth), so classifying
        // here equals classifying the complete history.
        advance_to(anchors.front().time_s);
        const FailureClass predicted_class = classifier.ClassifyProfile(profile);
        if (predicted_class == FailureClass::kScattered) return blocks;
        const CrossRowPredictor& predictor =
            predicted_class == FailureClass::kSingleRowClustering
                ? single_predictor
                : effective_double;
        for (const Anchor& anchor : anchors) {
          advance_to(anchor.time_s);
          AccumulateBlockMetrics(
              predictor, *lb.bank,
              predictor.PredictBlocksFromProfile(profile, anchor), anchor,
              blocks.cordial);
        }
        return blocks;
      });
  ml::ConfusionMatrix cordial_blocks(2), baseline_blocks(2);
  for (const BankBlocks& blocks : per_bank) {
    cordial_blocks.Merge(blocks.cordial);
    baseline_blocks.Merge(blocks.baseline);
  }

  // --- Stage 4: Isolation Coverage Rate ---
  std::vector<const trace::BankHistory*> test_banks;
  for (const LabelledBank& lb : test) test_banks.push_back(lb.bank);
  IcrEvaluator evaluator(topology_, config_.budget);

  CordialStrategy cordial_strategy(classifier, single_predictor,
                                   effective_double, config_.policy);
  NeighborRowsStrategy neighbor_strategy(config_.baseline_adjacency,
                                         topology_);
  InRowStrategy in_row_strategy;

  result.cordial.method =
      std::string("Cordial-") + ml::LearnerKindName(config_.learner);
  result.cordial.block_metrics = cordial_blocks.Metrics(1);
  result.cordial.icr = evaluator.Evaluate(test_banks, cordial_strategy);

  result.neighbor_baseline.method = "Neighbor Rows";
  result.neighbor_baseline.block_metrics = baseline_blocks.Metrics(1);
  result.neighbor_baseline.icr =
      evaluator.Evaluate(test_banks, neighbor_strategy);

  result.in_row_icr = evaluator.Evaluate(test_banks, in_row_strategy);
  return result;
}

}  // namespace cordial::core
