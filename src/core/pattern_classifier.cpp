#include "core/pattern_classifier.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "common/parallel.hpp"
#include "core/persist.hpp"

namespace cordial::core {

PatternClassifier::PatternClassifier(const hbm::TopologyConfig& topology,
                                     ml::LearnerKind kind,
                                     std::size_t max_uers)
    : extractor_(topology, max_uers), kind_(kind) {
  model_ = ml::MakeClassifier(kind);
}

ml::Dataset PatternClassifier::BuildDataset(
    const std::vector<LabelledBank>& banks) const {
  ml::Dataset data(extractor_.num_features(), hbm::kNumFailureClasses,
                   extractor_.feature_names());
  for (const LabelledBank& lb : banks) {
    CORDIAL_CHECK_MSG(lb.bank != nullptr, "null bank in labelled set");
    data.AddRow(extractor_.Extract(*lb.bank), static_cast<int>(lb.label));
  }
  return data;
}

void PatternClassifier::Train(const std::vector<LabelledBank>& banks,
                              Rng& rng) {
  CORDIAL_CHECK_MSG(!banks.empty(), "cannot train on zero banks");
  const ml::Dataset data = BuildDataset(banks);
  model_->Fit(data, rng);
  trained_ = true;
}

hbm::FailureClass PatternClassifier::Classify(
    const trace::BankHistory& bank) const {
  CORDIAL_CHECK_MSG(trained_, "classifier not trained");
  return static_cast<hbm::FailureClass>(
      model_->Predict(extractor_.Extract(bank)));
}

std::vector<double> PatternClassifier::ClassifyProba(
    const trace::BankHistory& bank) const {
  CORDIAL_CHECK_MSG(trained_, "classifier not trained");
  return model_->PredictProba(extractor_.Extract(bank));
}

hbm::FailureClass PatternClassifier::ClassifyProfile(
    const BankProfile& profile) const {
  CORDIAL_CHECK_MSG(trained_, "classifier not trained");
  return static_cast<hbm::FailureClass>(
      model_->Predict(extractor_.ExtractFromProfile(profile)));
}

std::vector<double> PatternClassifier::ClassifyProbaProfile(
    const BankProfile& profile) const {
  CORDIAL_CHECK_MSG(trained_, "classifier not trained");
  return model_->PredictProba(extractor_.ExtractFromProfile(profile));
}

ml::ConfusionMatrix PatternClassifier::Evaluate(
    const std::vector<LabelledBank>& banks) const {
  CORDIAL_CHECK_MSG(trained_, "classifier not trained");
  // Classification is const per bank; predictions fan out and the matrix is
  // filled in bank order afterwards.
  const std::vector<int> predicted =
      ParallelMap<int>(banks.size(), [&](std::size_t i) {
        return static_cast<int>(Classify(*banks[i].bank));
      });
  ml::ConfusionMatrix cm(hbm::kNumFailureClasses);
  for (std::size_t i = 0; i < banks.size(); ++i) {
    cm.Add(static_cast<int>(banks[i].label), predicted[i]);
  }
  return cm;
}

void PatternClassifier::SaveModel(std::ostream& out) const {
  CORDIAL_CHECK_MSG(trained_, "cannot save an untrained classifier");
  std::ostringstream payload;
  payload << "features " << extractor_.num_features() << '\n';
  ml::SaveClassifier(*model_, payload);
  WriteFramed(out, kPatternModelMagic, kModelFrameVersion, payload.str());
}

void PatternClassifier::LoadModel(std::istream& in) {
  std::istringstream payload(
      ReadFramed(in, kPatternModelMagic, kModelFrameVersion));
  // A model trained against a different feature layout would not fail to
  // parse — it would silently read shifted columns and mispredict. Reject
  // it here, naming both counts.
  ExpectToken(payload, "features");
  const std::uint64_t saved = ReadU64Token(payload, "pattern model features");
  if (saved != extractor_.num_features()) {
    throw ParseError("pattern model: feature count mismatch (model has " +
                     std::to_string(saved) + ", extractor expects " +
                     std::to_string(extractor_.num_features()) + ")");
  }
  model_ = ml::LoadClassifier(payload);
  trained_ = true;
}

PatternClassifier::PatternClassifier(const PatternClassifier& other)
    : extractor_(other.extractor_),
      kind_(other.kind_),
      model_(other.model_->Clone()),
      trained_(other.trained_) {}

std::vector<double> PatternClassifier::FeatureImportance() const {
  CORDIAL_CHECK_MSG(trained_, "classifier not trained");
  return model_->FeatureImportance();
}

}  // namespace cordial::core
