// Feature extraction for Cordial (paper §IV-B and §IV-D).
//
// Two extractors, both consuming nothing but a bank's MCE history:
//
//  * ClassificationFeatureExtractor — per-bank features from all CEs/UEOs
//    plus the FIRST THREE UER events (the paper's pragmatic trade-off for
//    early pattern identification): spatial (row extrema, consecutive row
//    differences), temporal (consecutive inter-arrival extrema per type),
//    and count features (error density before the first UER).
//
//  * CrossRowFeatureExtractor — per-(anchor, block) features for the
//    block-level UER prediction: the +/-64-row window around the last
//    observed UER row is divided into 16 blocks of 8 rows, and each block
//    gets geometry features (offset from anchor, proximity of earlier
//    errors) on top of the bank's spatial/temporal/count profile.
//
// Missing quantities (e.g. no UEO observed) are encoded with the sentinel
// kMissing, which tree learners isolate with a single split.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bank_profile.hpp"
#include "hbm/topology.hpp"
#include "trace/error_log.hpp"

namespace cordial::core {

inline constexpr double kMissing = -1.0;

/// A bank's history truncated at the classification trigger: all CE/UEO
/// events up to (and including) the time of the `max_uers`-th UER event,
/// plus the first `max_uers` UER events themselves.
struct TruncatedHistory {
  std::vector<trace::MceRecord> events;  ///< time-ordered, truncated
  double cutoff_s = 0.0;                 ///< time of the last included UER
  std::size_t uer_count = 0;             ///< UER events included (<= max_uers)
};

/// Truncate `bank` at its `max_uers`-th UER event (default 3, §IV-C).
/// Banks with fewer UERs are truncated at their last UER.
TruncatedHistory TruncateAtUer(const trace::BankHistory& bank,
                               std::size_t max_uers = 3);

/// Estimated repeat stride of the failing rows: the smallest gap between
/// neighbouring distinct rows that exceeds `adjacency_floor` (micro-
/// adjacency from sense-amp collateral is ignored). Sub-wordline-driver
/// faults hit every stride-th row, so this exposes the strip geometry to
/// the predictors; it is robust to occasional one-row jitter. Returns 0
/// when no usable gap exists.
std::uint32_t EstimateRowStride(const std::vector<std::uint32_t>& rows,
                                std::uint32_t adjacency_floor = 4);

class ClassificationFeatureExtractor {
 public:
  explicit ClassificationFeatureExtractor(const hbm::TopologyConfig& topology,
                                          std::size_t max_uers = 3);

  std::size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  std::size_t max_uers() const { return max_uers_; }

  /// Feature vector for one UER bank. The bank must contain at least one
  /// UER event. Thin wrapper: builds a BankProfile over the history and
  /// queries it.
  std::vector<double> Extract(const trace::BankHistory& bank) const;

  /// Feature vector from an incrementally maintained profile. The profile
  /// must have been constructed with the same max_uers and have absorbed at
  /// least one UER. Bit-identical to the batch overload fed the same
  /// events. O(1) in the history length.
  std::vector<double> ExtractFromProfile(const BankProfile& profile) const;

 private:
  hbm::TopologyConfig topology_;
  std::size_t max_uers_;
  std::vector<std::string> feature_names_;
};

/// Geometry of the prediction window around an anchor row (§IV-D: 128 rows
/// = 16 blocks x 8 rows by default).
struct BlockWindow {
  std::uint32_t anchor_row = 0;
  std::uint32_t block_size = 8;
  std::uint32_t n_blocks = 16;
  std::uint32_t rows_per_bank = 0;

  std::uint32_t radius() const { return block_size * n_blocks / 2; }
  /// First row of the (unclipped) window; may be conceptually negative,
  /// returned as int64.
  std::int64_t WindowStart() const {
    return static_cast<std::int64_t>(anchor_row) -
           static_cast<std::int64_t>(radius());
  }
  /// Row span [lo, hi] of block `i`, clipped to the bank; nullopt if the
  /// block lies entirely outside the bank.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> BlockRange(
      std::size_t i) const;
  /// Block containing `row`, or nullopt if outside the window.
  std::optional<std::size_t> BlockOf(std::uint32_t row) const;
};

class CrossRowFeatureExtractor {
 public:
  CrossRowFeatureExtractor(const hbm::TopologyConfig& topology,
                           std::uint32_t block_size = 8,
                           std::uint32_t n_blocks = 16);

  std::size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  std::uint32_t block_size() const { return block_size_; }
  std::uint32_t n_blocks() const { return n_blocks_; }

  BlockWindow WindowAt(std::uint32_t anchor_row) const;

  /// Features for block `block` of the window anchored at `anchor_row`,
  /// computed from the events with time <= `anchor_time_s` in `bank`.
  /// Thin wrapper: feeds that prefix into a BankProfile and queries it.
  std::vector<double> Extract(const trace::BankHistory& bank,
                              double anchor_time_s, std::uint32_t anchor_row,
                              std::size_t block) const;

  /// Same features from an incrementally maintained profile that has
  /// absorbed exactly the events with time <= `anchor_time_s` (and at least
  /// one UER). Bit-identical to the batch overload; O(log d) per call.
  std::vector<double> ExtractFromProfile(const BankProfile& profile,
                                         double anchor_time_s,
                                         std::uint32_t anchor_row,
                                         std::size_t block) const;

 private:
  hbm::TopologyConfig topology_;
  std::uint32_t block_size_;
  std::uint32_t n_blocks_;
  std::vector<std::string> feature_names_;
};

}  // namespace cordial::core
