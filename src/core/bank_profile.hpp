// Incremental per-bank error-state accumulator (the online engine's core).
//
// A BankProfile ingests a bank's MCE records one at a time (non-decreasing
// timestamps) and maintains, in O(log d) per event and O(d) memory (d =
// distinct error rows), every spatial/temporal/count statistic the two
// feature extractors need:
//
//  * a CLASSIFICATION view — the history truncated at the `max_uers`-th UER
//    exactly as TruncateAtUer defines it (CE/UEO up to and including the
//    cutoff timestamp, UERs capped), maintained as a *live* accumulator plus
//    a *frozen* snapshot taken at each accepted UER. The snapshot-at-UER
//    construction preserves the batch path's left-to-right summation order,
//    so derived features are bit-identical to scanning the truncated events.
//
//  * a CROSS-ROW view — untruncated running statistics over the full prefix:
//    per-type sorted distinct rows (window proximity and range counts by
//    binary search), consecutive row-difference and inter-arrival chains,
//    row extrema, and the multiset of gaps between distinct UER rows (so
//    EstimateRowStride's "smallest gap above the adjacency floor" is an
//    O(log d) query instead of a rescan).
//
// Feeding a profile the prefix of events with time <= t reproduces, bit for
// bit, what the batch extractors compute from a BankHistory scanned up to t;
// tests/core/bank_profile_test.cpp pins this property against reference
// implementations of the pre-refactor scans.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <set>
#include <vector>

#include "trace/error_log.hpp"

namespace cordial::persist {
class BinaryWriter;
class BinaryReader;
}  // namespace cordial::persist

namespace cordial::core {

/// Running min/max/sum over consecutive absolute differences of a pushed
/// sequence, matching Summarize(ConsecutiveAbsDiffs(values)) of the batch
/// extractors: `min`/`max` compare with `<`/`>` in push order and `sum`
/// accumulates left to right, so queries are bit-identical to the batch
/// reduction.
struct DiffChain {
  std::size_t count = 0;  ///< number of differences (pushes - 1, if any)
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  bool has_last = false;
  double last = 0.0;

  void Push(double value) {
    if (has_last) {
      const double d = value >= last ? value - last : last - value;
      if (count == 0 || d < min) min = d;
      if (count == 0 || d > max) max = d;
      sum += d;
      ++count;
    }
    has_last = true;
    last = value;
  }
};

/// Statistics of the truncated (classification) view. Cheap to copy: the
/// only dynamic member is the distinct-UER-row vector, capped at max_uers.
struct ClassAccumulator {
  std::size_t ce_total = 0, ueo_total = 0, uer_events = 0;
  double ce_row_min = 0.0, ce_row_max = 0.0;
  double ueo_row_min = 0.0, ueo_row_max = 0.0;
  double uer_row_min = 0.0, uer_row_max = 0.0;
  DiffChain uer_row_diff, all_row_diff;  ///< rows, event order
  DiffChain ce_dt, ueo_dt, uer_dt;       ///< timestamps, per type
  double first_uer_time = 0.0, last_uer_time = 0.0;
  std::vector<double> distinct_uer_rows;  ///< sorted ascending, <= max_uers
  double ce_before_first_uer = 0.0, ueo_before_first_uer = 0.0;

  // Counts at the newest timestamp, for the strictly-before-first-UER
  // semantics of the density features.
  bool any_event = false;
  double last_time = 0.0;
  std::size_t ce_at_last_time = 0, ueo_at_last_time = 0;

  void Absorb(const trace::MceRecord& record);
};

/// Untruncated running statistics over the full event prefix.
struct CrossRowAccumulator {
  std::size_t ce_count = 0, ueo_count = 0, uer_count = 0, all_count = 0;
  DiffChain uer_row_diff, all_row_diff;
  DiffChain ce_dt, ueo_dt, uer_dt;
  double uer_row_min = 0.0, uer_row_max = 0.0;
  double first_uer_time = 0.0;
  double last_event_time = 0.0;
  std::vector<double> ce_rows, ueo_rows, uer_rows;  ///< sorted distinct rows
  std::multiset<std::uint32_t> uer_row_gaps;  ///< gaps of sorted distinct UERs

  void Absorb(const trace::MceRecord& record);

  /// EstimateRowStride over the distinct UER rows: the smallest gap above
  /// `adjacency_floor`, or 0 when none exists. O(log d).
  std::uint32_t EstimatedUerStride(std::uint32_t adjacency_floor = 4) const {
    const auto it = uer_row_gaps.upper_bound(adjacency_floor);
    return it == uer_row_gaps.end() ? 0 : *it;
  }
};

class BankProfile {
 public:
  explicit BankProfile(std::size_t max_uers = 3);

  /// Ingest one record. Records must arrive in non-decreasing time order.
  void Observe(const trace::MceRecord& record);
  /// Feed an entire (time-sorted) history.
  void ObserveAll(const trace::BankHistory& bank);

  std::size_t max_uers() const { return max_uers_; }
  std::size_t event_count() const { return events_; }
  bool empty() const { return events_ == 0; }
  /// Timestamp of the newest observed record (only valid when !empty()).
  double last_time_s() const { return last_time_; }

  // --- classification (truncated) view -----------------------------------
  /// True once at least one UER has been accepted into the truncated view.
  bool HasClassificationView() const { return uer_accepted_ > 0; }
  /// Time of the last accepted UER == TruncateAtUer(...).cutoff_s.
  double classification_cutoff_s() const;
  /// UER events in the truncated view == TruncateAtUer(...).uer_count.
  std::size_t classification_uer_count() const { return uer_accepted_; }
  const ClassAccumulator& classification() const { return frozen_; }

  // --- cross-row (untruncated) view --------------------------------------
  const CrossRowAccumulator& crossrow() const { return crossrow_; }
  /// Total UER events observed (untruncated).
  std::size_t uer_event_count() const { return crossrow_.uer_count; }
  std::size_t distinct_uer_row_count() const {
    return crossrow_.uer_rows.size();
  }
  /// Whether `row` has already shown a UER — O(log d).
  bool HasUerRow(std::uint32_t row) const;

  /// Serialize every accumulator as a token stream: a profile restored by
  /// Load continues absorbing events bit-identically to the original (the
  /// checkpoint/restore layer depends on this).
  void Save(std::ostream& out) const;
  static BankProfile Load(std::istream& in);

  /// Binary codec (engine-state frame v2 and delta payloads): the same
  /// fields in the same order as Save/Load, as fixed-width little-endian
  /// values with doubles as raw bit patterns — so a binary round trip is
  /// bit-identical to a text one. uer_row_gaps is rebuilt on load, exactly
  /// as the text reader does.
  void SaveBinary(persist::BinaryWriter& out) const;
  static BankProfile LoadBinary(persist::BinaryReader& in);

 private:
  std::size_t max_uers_;
  std::size_t events_ = 0;
  double last_time_ = 0.0;
  std::size_t uer_accepted_ = 0;  ///< UERs in the truncated view
  bool capped_ = false;           ///< reached max_uers accepted UERs
  double cutoff_ = 0.0;           ///< time of the last accepted UER
  ClassAccumulator live_;    ///< all pre-cap events, in arrival order
  ClassAccumulator frozen_;  ///< snapshot at the last accepted UER (+ ties)
  CrossRowAccumulator crossrow_;
};

}  // namespace cordial::core
