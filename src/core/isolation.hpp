// Isolation strategies and the Isolation Coverage Rate evaluator (§V-A).
//
// ICR measures the proportion of UER rows that were already isolated when
// they first failed — i.e. failures that deployment would have prevented.
// The evaluator replays each bank's event stream in time order and lets a
// strategy spend sparing resources after every observed event, with no
// lookahead; a row counts as covered iff it was isolated strictly before
// its first UER.
//
// Strategies provided:
//   * InRowStrategy        — the traditional paradigm: a row is isolated
//                            once it shows a CE/UEO (its ICR ceiling is the
//                            non-sudden row ratio, 4.39% in the paper).
//   * NeighborRowsStrategy — the industrial baseline of Table IV: isolate
//                            the 8 rows adjacent to every observed UER row.
//   * CordialStrategy      — the paper's method: classify the bank at the
//                            3rd UER, then cross-row-predict blocks in the
//                            ±64-row window at every further UER; scattered
//                            banks are bank-spared (not counted in ICR, as
//                            that coverage does not come from cross-row
//                            prediction).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/crossrow.hpp"
#include "core/engine.hpp"
#include "core/pattern_classifier.hpp"
#include "hbm/sparing.hpp"
#include "trace/error_log.hpp"

namespace cordial::core {

class IsolationStrategy {
 public:
  virtual ~IsolationStrategy() = default;

  /// Reset per-bank state.
  virtual void OnBankStart(const trace::BankHistory& bank) = 0;

  /// Observe event `event_index` of `bank` (in time order) and optionally
  /// isolate rows/banks via `ledger`. Must not inspect later events.
  virtual void OnEvent(const trace::BankHistory& bank,
                       std::size_t event_index,
                       hbm::SparingLedger& ledger) = 0;

  /// Copy of this strategy's configuration (per-bank replay state need not
  /// be carried over — OnBankStart resets it). The evaluator replays banks
  /// in parallel through independent clones; the default of nullptr opts a
  /// strategy out, falling back to a serial single-instance replay.
  virtual std::unique_ptr<IsolationStrategy> Clone() const { return nullptr; }

  virtual const std::string& name() const = 0;
};

struct IcrResult {
  std::uint64_t covered_rows = 0;  ///< first failure hit an isolated row
  std::uint64_t covered_by_bank_spare = 0;
  std::uint64_t total_uer_rows = 0;
  std::uint64_t rows_spared = 0;
  std::uint64_t banks_spared = 0;
  double sparing_cost = 0.0;

  /// The paper's ICR: cross-row/row-level coverage only.
  double Icr() const {
    return total_uer_rows == 0
               ? 0.0
               : static_cast<double>(covered_rows) /
                     static_cast<double>(total_uer_rows);
  }
  /// Extension metric: counting bank-sparing coverage too.
  double IcrWithBankSparing() const {
    return total_uer_rows == 0
               ? 0.0
               : static_cast<double>(covered_rows + covered_by_bank_spare) /
                     static_cast<double>(total_uer_rows);
  }
};

class IcrEvaluator {
 public:
  IcrEvaluator(const hbm::TopologyConfig& topology,
               hbm::SparingBudget budget = {});

  /// Replay `banks` under `strategy`. Denominator: every distinct UER row
  /// in every bank (first UERs included — they are never predictable).
  IcrResult Evaluate(const std::vector<const trace::BankHistory*>& banks,
                     IsolationStrategy& strategy) const;

 private:
  hbm::TopologyConfig topology_;
  hbm::SparingBudget budget_;
};

// ------------------------------------------------------------- strategies

class InRowStrategy final : public IsolationStrategy {
 public:
  void OnBankStart(const trace::BankHistory&) override {}
  void OnEvent(const trace::BankHistory& bank, std::size_t event_index,
               hbm::SparingLedger& ledger) override;
  std::unique_ptr<IsolationStrategy> Clone() const override {
    return std::make_unique<InRowStrategy>(*this);
  }
  const std::string& name() const override { return name_; }

 private:
  std::string name_ = "In-row";
};

class NeighborRowsStrategy final : public IsolationStrategy {
 public:
  /// Row bounds come from the deployment topology — no hardcoded bank
  /// geometry.
  NeighborRowsStrategy(std::uint32_t adjacency,
                       const hbm::TopologyConfig& topology);
  void OnBankStart(const trace::BankHistory&) override {}
  void OnEvent(const trace::BankHistory& bank, std::size_t event_index,
               hbm::SparingLedger& ledger) override;
  std::unique_ptr<IsolationStrategy> Clone() const override {
    return std::make_unique<NeighborRowsStrategy>(*this);
  }
  const std::string& name() const override { return name_; }

 private:
  std::uint32_t adjacency_;
  std::uint32_t rows_per_bank_;
  std::string name_ = "Neighbor Rows";
};

class CordialStrategy final : public IsolationStrategy {
 public:
  /// All referenced components must outlive the strategy and be trained.
  CordialStrategy(const PatternClassifier& classifier,
                  const CrossRowPredictor& single_predictor,
                  const CrossRowPredictor& double_predictor,
                  CordialPolicyConfig config = {});

  void OnBankStart(const trace::BankHistory& bank) override;
  void OnEvent(const trace::BankHistory& bank, std::size_t event_index,
               hbm::SparingLedger& ledger) override;
  std::unique_ptr<IsolationStrategy> Clone() const override {
    return std::make_unique<CordialStrategy>(*this);
  }
  const std::string& name() const override { return name_; }

 private:
  const PatternClassifier& classifier_;
  const CrossRowPredictor& single_predictor_;
  const CrossRowPredictor& double_predictor_;
  CordialPolicyConfig config_;
  std::string name_ = "Cordial";

  // Per-bank replay state: an incrementally maintained profile plus the
  // shared Cordial decision state (decisions delegate to StepCordial, the
  // same code path PredictionEngine runs live). The feed cursor absorbs
  // whole same-timestamp groups before each decision, matching the batch
  // extractors' closed-history tie semantics.
  BankProfile profile_;
  CordialBankState state_;
  std::size_t feed_cursor_ = 0;
};

}  // namespace cordial::core
