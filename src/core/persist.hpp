// Magic strings and frame versions for every persisted cordial stream
// (model files and engine snapshots). Bump a version when its payload
// format changes; LoadModel / RestoreState reject mismatches with a
// ParseError instead of misparsing a stream from another build.
#pragma once

#include <cstdint>

namespace cordial::core {

inline constexpr char kPatternModelMagic[] = "cordial_pattern_model";
inline constexpr char kCrossRowModelMagic[] = "cordial_crossrow_model";
// v2: payload leads with `features <n>` so a stale model trained against a
// different extractor layout is rejected at load time instead of silently
// mispredicting from shifted feature columns.
inline constexpr std::uint32_t kModelFrameVersion = 2;

inline constexpr char kOutcomeStoreMagic[] = "cordial_outcome_store";
inline constexpr std::uint32_t kOutcomeStoreVersion = 1;

inline constexpr char kEngineStateMagic[] = "cordial_engine_state";
inline constexpr std::uint32_t kEngineStateVersion = 1;
// v2: same magic, binary payload (persist/binary_io.hpp codec — fixed-width
// little-endian fields, doubles as raw IEEE-754 bit patterns). v1 text
// payloads still load; RestoreState dispatches on the frame version.
inline constexpr std::uint32_t kEngineStateBinaryVersion = 2;

// Delta snapshot: only the banks dirtied since the last checkpoint, plus the
// global counters. Always binary; applied on top of a restored full state.
inline constexpr char kEngineDeltaMagic[] = "cordial_engine_delta";
inline constexpr std::uint32_t kEngineDeltaVersion = 1;

}  // namespace cordial::core
