#include "core/features.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/check.hpp"

namespace cordial::core {

using hbm::ErrorType;

namespace {

/// min/max/avg of a consecutive-difference chain; kMissing triple when the
/// chain holds no differences. Matches the historical batch reduction
/// (min/max via element comparison, sum accumulated left to right).
struct Summary {
  double min = kMissing;
  double max = kMissing;
  double avg = kMissing;
};

Summary ChainSummary(const DiffChain& chain) {
  if (chain.count == 0) return {};
  return {chain.min, chain.max,
          chain.sum / static_cast<double>(chain.count)};
}

}  // namespace

TruncatedHistory TruncateAtUer(const trace::BankHistory& bank,
                               std::size_t max_uers) {
  CORDIAL_CHECK_MSG(max_uers >= 1, "must keep at least one UER");
  TruncatedHistory out;
  // Find the cutoff: time of the max_uers-th UER event (or last UER).
  std::size_t uers_seen = 0;
  double cutoff = -std::numeric_limits<double>::infinity();
  for (const trace::MceRecord& r : bank.events) {
    if (r.type != ErrorType::kUer) continue;
    ++uers_seen;
    cutoff = r.time_s;
    if (uers_seen == max_uers) break;
  }
  CORDIAL_CHECK_MSG(uers_seen >= 1, "TruncateAtUer requires a UER bank");
  out.cutoff_s = cutoff;

  std::size_t uers_kept = 0;
  for (const trace::MceRecord& r : bank.events) {
    if (r.time_s > out.cutoff_s) break;
    if (r.type == ErrorType::kUer) {
      if (uers_kept == max_uers) continue;  // ties beyond the cap
      ++uers_kept;
    }
    out.events.push_back(r);
  }
  out.uer_count = uers_kept;
  return out;
}

std::uint32_t EstimateRowStride(const std::vector<std::uint32_t>& rows,
                                std::uint32_t adjacency_floor) {
  std::set<std::uint32_t> distinct(rows.begin(), rows.end());
  std::uint32_t stride = 0;
  std::optional<std::uint32_t> prev;
  for (std::uint32_t row : distinct) {
    if (prev.has_value()) {
      const std::uint32_t gap = row - *prev;
      if (gap > adjacency_floor && (stride == 0 || gap < stride)) {
        stride = gap;
      }
    }
    prev = row;
  }
  return stride;
}

// ------------------------------------------------------- classification

ClassificationFeatureExtractor::ClassificationFeatureExtractor(
    const hbm::TopologyConfig& topology, std::size_t max_uers)
    : topology_(topology), max_uers_(max_uers) {
  topology_.Validate();
  CORDIAL_CHECK_MSG(max_uers_ >= 1, "max_uers must be >= 1");
  feature_names_ = {
      // spatial
      "ce_row_min", "ce_row_max", "ueo_row_min", "ueo_row_max",
      "uer_row_min", "uer_row_max", "uer_row_span", "uer_row_span_ratio",
      "uer_row_diff_min", "uer_row_diff_max", "uer_row_diff_avg",
      "all_row_diff_min", "all_row_diff_max", "all_row_diff_avg",
      "uer_half_alias_gap",
      // temporal
      "ce_dt_min", "ce_dt_max", "ce_dt_avg",
      "ueo_dt_min", "ueo_dt_max", "ueo_dt_avg",
      "uer_dt_min", "uer_dt_max", "uer_dt_avg",
      "uer_time_span",
      // counts
      "ce_count_before_first_uer", "ueo_count_before_first_uer",
      "ce_count_total", "ueo_count_total", "uer_distinct_rows",
  };
}

std::vector<double> ClassificationFeatureExtractor::Extract(
    const trace::BankHistory& bank) const {
  BankProfile profile(max_uers_);
  profile.ObserveAll(bank);
  return ExtractFromProfile(profile);
}

std::vector<double> ClassificationFeatureExtractor::ExtractFromProfile(
    const BankProfile& profile) const {
  CORDIAL_CHECK_MSG(profile.max_uers() == max_uers_,
                    "profile truncation depth mismatch");
  const ClassAccumulator& a = profile.classification();
  CORDIAL_CHECK_MSG(a.uer_events >= 1, "classification features need a UER");

  const double uer_min = a.uer_row_min;
  const double uer_max = a.uer_row_max;
  const double uer_span = uer_max - uer_min;

  // Half-bank aliasing indicator: minimal |pairwise distance - rows/2| over
  // distinct UER row pairs (the signature of half total-row clusters). At
  // most max_uers distinct rows, so the pair loop is O(1).
  double half_alias_gap = kMissing;
  {
    const std::vector<double>& distinct = a.distinct_uer_rows;
    const double half = static_cast<double>(topology_.rows_per_bank) / 2.0;
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      for (std::size_t j = i + 1; j < distinct.size(); ++j) {
        const double gap = std::fabs(std::fabs(distinct[j] - distinct[i]) - half);
        if (half_alias_gap == kMissing || gap < half_alias_gap) {
          half_alias_gap = gap;
        }
      }
    }
  }

  const Summary uer_row_diff = ChainSummary(a.uer_row_diff);
  const Summary all_row_diff = ChainSummary(a.all_row_diff);
  const Summary ce_dt = ChainSummary(a.ce_dt);
  const Summary ueo_dt = ChainSummary(a.ueo_dt);
  const Summary uer_dt = ChainSummary(a.uer_dt);

  const double uer_time_span =
      a.uer_events < 2 ? kMissing : a.last_uer_time - a.first_uer_time;

  std::vector<double> features = {
      a.ce_total == 0 ? kMissing : a.ce_row_min,
      a.ce_total == 0 ? kMissing : a.ce_row_max,
      a.ueo_total == 0 ? kMissing : a.ueo_row_min,
      a.ueo_total == 0 ? kMissing : a.ueo_row_max,
      uer_min, uer_max, uer_span,
      uer_span / static_cast<double>(topology_.rows_per_bank),
      uer_row_diff.min, uer_row_diff.max, uer_row_diff.avg,
      all_row_diff.min, all_row_diff.max, all_row_diff.avg,
      half_alias_gap,
      ce_dt.min, ce_dt.max, ce_dt.avg,
      ueo_dt.min, ueo_dt.max, ueo_dt.avg,
      uer_dt.min, uer_dt.max, uer_dt.avg,
      uer_time_span,
      a.ce_before_first_uer, a.ueo_before_first_uer,
      static_cast<double>(a.ce_total),
      static_cast<double>(a.ueo_total),
      static_cast<double>(a.distinct_uer_rows.size()),
  };
  CORDIAL_CHECK_MSG(features.size() == feature_names_.size(),
                    "classification feature arity drifted");
  return features;
}

// ------------------------------------------------------------ block window

std::optional<std::pair<std::uint32_t, std::uint32_t>> BlockWindow::BlockRange(
    std::size_t i) const {
  CORDIAL_CHECK_MSG(i < n_blocks, "block index out of range");
  const std::int64_t lo =
      WindowStart() + static_cast<std::int64_t>(i) * block_size;
  const std::int64_t hi = lo + static_cast<std::int64_t>(block_size) - 1;
  const std::int64_t bank_hi = static_cast<std::int64_t>(rows_per_bank) - 1;
  if (hi < 0 || lo > bank_hi) return std::nullopt;
  return std::make_pair(
      static_cast<std::uint32_t>(std::max<std::int64_t>(lo, 0)),
      static_cast<std::uint32_t>(std::min(hi, bank_hi)));
}

std::optional<std::size_t> BlockWindow::BlockOf(std::uint32_t row) const {
  const std::int64_t offset = static_cast<std::int64_t>(row) - WindowStart();
  if (offset < 0) return std::nullopt;
  const auto block = static_cast<std::size_t>(offset / block_size);
  if (block >= n_blocks) return std::nullopt;
  return block;
}

// --------------------------------------------------------------- cross-row

CrossRowFeatureExtractor::CrossRowFeatureExtractor(
    const hbm::TopologyConfig& topology, std::uint32_t block_size,
    std::uint32_t n_blocks)
    : topology_(topology), block_size_(block_size), n_blocks_(n_blocks) {
  topology_.Validate();
  CORDIAL_CHECK_MSG(block_size_ > 0 && n_blocks_ > 0,
                    "block geometry must be non-trivial");
  CORDIAL_CHECK_MSG(n_blocks_ % 2 == 0,
                    "window must have an even number of blocks");
  feature_names_ = {
      // block geometry
      "block_index", "block_center_offset", "block_abs_offset",
      "anchor_row_ratio",
      // spatial proximity of earlier errors to the block
      "nearest_ce_row_dist", "nearest_ueo_row_dist", "nearest_uer_row_dist",
      "ce_rows_in_block", "ueo_rows_in_block", "uer_rows_in_block",
      "uer_rows_in_window", "uer_rows_within_8",
      // bank spatial profile
      "uer_row_diff_min", "uer_row_diff_max", "uer_row_diff_avg",
      "all_row_diff_min", "all_row_diff_max", "all_row_diff_avg",
      "uer_row_span",
      // strip-geometry features
      "est_stride", "block_offset_fold_stride", "block_k_positions",
      // temporal profile
      "ce_dt_min", "ce_dt_max", "ueo_dt_min", "ueo_dt_max",
      "uer_dt_min", "uer_dt_max", "uer_dt_avg",
      "time_since_last_event", "time_since_first_uer",
      // counts
      "ce_count", "ueo_count", "uer_count", "uce_count", "all_count",
  };
}

BlockWindow CrossRowFeatureExtractor::WindowAt(std::uint32_t anchor_row) const {
  BlockWindow w;
  w.anchor_row = anchor_row;
  w.block_size = block_size_;
  w.n_blocks = n_blocks_;
  w.rows_per_bank = topology_.rows_per_bank;
  return w;
}

std::vector<double> CrossRowFeatureExtractor::Extract(
    const trace::BankHistory& bank, double anchor_time_s,
    std::uint32_t anchor_row, std::size_t block) const {
  BankProfile profile;
  for (const trace::MceRecord& r : bank.events) {
    if (r.time_s > anchor_time_s) break;
    profile.Observe(r);
  }
  return ExtractFromProfile(profile, anchor_time_s, anchor_row, block);
}

std::vector<double> CrossRowFeatureExtractor::ExtractFromProfile(
    const BankProfile& profile, double anchor_time_s,
    std::uint32_t anchor_row, std::size_t block) const {
  const BlockWindow window = WindowAt(anchor_row);
  const auto range = window.BlockRange(block);
  CORDIAL_CHECK_MSG(range.has_value(),
                    "cannot extract features for an out-of-bank block");
  const CrossRowAccumulator& a = profile.crossrow();
  CORDIAL_CHECK_MSG(a.uer_count >= 1,
                    "cross-row features need at least one prior UER");
  CORDIAL_CHECK_MSG(profile.last_time_s() <= anchor_time_s,
                    "profile contains events newer than the anchor");
  const double block_center =
      0.5 * (static_cast<double>(range->first) +
             static_cast<double>(range->second));

  // Sorted distinct rows make proximity a two-candidate binary search. The
  // minimum distance over distinct rows equals the batch minimum over all
  // rows, computed with the same |row - center| arithmetic.
  auto nearest_dist = [&](const std::vector<double>& rows) {
    double best = kMissing;
    const auto it = std::lower_bound(rows.begin(), rows.end(), block_center);
    if (it != rows.end()) best = std::fabs(*it - block_center);
    if (it != rows.begin()) {
      const double d = std::fabs(*(it - 1) - block_center);
      if (best == kMissing || d < best) best = d;
    }
    return best;
  };
  auto rows_in_span = [](const std::vector<double>& rows, double lo,
                         double hi) {
    return static_cast<double>(
        std::upper_bound(rows.begin(), rows.end(), hi) -
        std::lower_bound(rows.begin(), rows.end(), lo));
  };
  auto rows_in_range = [&](const std::vector<double>& rows) {
    return rows_in_span(rows, static_cast<double>(range->first),
                        static_cast<double>(range->second));
  };

  const double anchor = static_cast<double>(anchor_row);
  const double radius = static_cast<double>(window.radius());
  const double uer_in_window =
      rows_in_span(a.uer_rows, anchor - radius, anchor + radius);
  const double uer_within_8 = rows_in_span(a.uer_rows, anchor - 8.0,
                                           anchor + 8.0);

  const Summary uer_row_diff = ChainSummary(a.uer_row_diff);
  const Summary all_row_diff = ChainSummary(a.all_row_diff);
  const Summary ce_dt = ChainSummary(a.ce_dt);
  const Summary ueo_dt = ChainSummary(a.ueo_dt);
  const Summary uer_dt = ChainSummary(a.uer_dt);

  const double uer_span = a.uer_row_max - a.uer_row_min;

  // Strip geometry: fold the block offset onto the estimated stride. A
  // block sitting on a strip position folds to ~0 and is a likely target.
  const std::uint32_t stride = a.EstimatedUerStride();
  double fold = kMissing;
  double k_positions = kMissing;
  if (stride > 0) {
    // Fold relative to the nearest prior UER row, not the anchor alone:
    // strip positions repeat from any failed row.
    const double nearest_uer = nearest_dist(a.uer_rows);
    const double mod = std::fmod(nearest_uer, static_cast<double>(stride));
    fold = std::min(mod, static_cast<double>(stride) - mod);
    k_positions = nearest_uer / static_cast<double>(stride);
  }

  std::vector<double> features = {
      static_cast<double>(block),
      block_center - anchor,
      std::fabs(block_center - anchor),
      anchor / static_cast<double>(topology_.rows_per_bank),
      nearest_dist(a.ce_rows), nearest_dist(a.ueo_rows),
      nearest_dist(a.uer_rows),
      rows_in_range(a.ce_rows), rows_in_range(a.ueo_rows),
      rows_in_range(a.uer_rows),
      uer_in_window, uer_within_8,
      uer_row_diff.min, uer_row_diff.max, uer_row_diff.avg,
      all_row_diff.min, all_row_diff.max, all_row_diff.avg,
      uer_span,
      stride == 0 ? kMissing : static_cast<double>(stride), fold, k_positions,
      ce_dt.min, ce_dt.max, ueo_dt.min, ueo_dt.max,
      uer_dt.min, uer_dt.max, uer_dt.avg,
      a.all_count == 0 ? kMissing : anchor_time_s - a.last_event_time,
      anchor_time_s - a.first_uer_time,
      static_cast<double>(a.ce_count),
      static_cast<double>(a.ueo_count),
      static_cast<double>(a.uer_count),
      static_cast<double>(a.ueo_count + a.uer_count),
      static_cast<double>(a.all_count),
  };
  CORDIAL_CHECK_MSG(features.size() == feature_names_.size(),
                    "cross-row feature arity drifted");
  return features;
}

}  // namespace cordial::core
