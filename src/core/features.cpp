#include "core/features.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/check.hpp"

namespace cordial::core {

using hbm::ErrorType;

namespace {

/// min/max/avg over a vector; kMissing triple when empty.
struct Summary {
  double min = kMissing;
  double max = kMissing;
  double avg = kMissing;
};

Summary Summarize(const std::vector<double>& values) {
  if (values.empty()) return {};
  Summary s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (double v : values) total += v;
  s.avg = total / static_cast<double>(values.size());
  return s;
}

std::vector<double> ConsecutiveAbsDiffs(const std::vector<double>& values) {
  std::vector<double> diffs;
  for (std::size_t i = 1; i < values.size(); ++i) {
    diffs.push_back(std::fabs(values[i] - values[i - 1]));
  }
  return diffs;
}

}  // namespace

TruncatedHistory TruncateAtUer(const trace::BankHistory& bank,
                               std::size_t max_uers) {
  CORDIAL_CHECK_MSG(max_uers >= 1, "must keep at least one UER");
  TruncatedHistory out;
  // Find the cutoff: time of the max_uers-th UER event (or last UER).
  std::size_t uers_seen = 0;
  double cutoff = -std::numeric_limits<double>::infinity();
  for (const trace::MceRecord& r : bank.events) {
    if (r.type != ErrorType::kUer) continue;
    ++uers_seen;
    cutoff = r.time_s;
    if (uers_seen == max_uers) break;
  }
  CORDIAL_CHECK_MSG(uers_seen >= 1, "TruncateAtUer requires a UER bank");
  out.cutoff_s = cutoff;

  std::size_t uers_kept = 0;
  for (const trace::MceRecord& r : bank.events) {
    if (r.time_s > out.cutoff_s) break;
    if (r.type == ErrorType::kUer) {
      if (uers_kept == max_uers) continue;  // ties beyond the cap
      ++uers_kept;
    }
    out.events.push_back(r);
  }
  out.uer_count = uers_kept;
  return out;
}

std::uint32_t EstimateRowStride(const std::vector<std::uint32_t>& rows,
                                std::uint32_t adjacency_floor) {
  std::set<std::uint32_t> distinct(rows.begin(), rows.end());
  std::uint32_t stride = 0;
  std::optional<std::uint32_t> prev;
  for (std::uint32_t row : distinct) {
    if (prev.has_value()) {
      const std::uint32_t gap = row - *prev;
      if (gap > adjacency_floor && (stride == 0 || gap < stride)) {
        stride = gap;
      }
    }
    prev = row;
  }
  return stride;
}

// ------------------------------------------------------- classification

ClassificationFeatureExtractor::ClassificationFeatureExtractor(
    const hbm::TopologyConfig& topology, std::size_t max_uers)
    : topology_(topology), max_uers_(max_uers) {
  topology_.Validate();
  CORDIAL_CHECK_MSG(max_uers_ >= 1, "max_uers must be >= 1");
  feature_names_ = {
      // spatial
      "ce_row_min", "ce_row_max", "ueo_row_min", "ueo_row_max",
      "uer_row_min", "uer_row_max", "uer_row_span", "uer_row_span_ratio",
      "uer_row_diff_min", "uer_row_diff_max", "uer_row_diff_avg",
      "all_row_diff_min", "all_row_diff_max", "all_row_diff_avg",
      "uer_half_alias_gap",
      // temporal
      "ce_dt_min", "ce_dt_max", "ce_dt_avg",
      "ueo_dt_min", "ueo_dt_max", "ueo_dt_avg",
      "uer_dt_min", "uer_dt_max", "uer_dt_avg",
      "uer_time_span",
      // counts
      "ce_count_before_first_uer", "ueo_count_before_first_uer",
      "ce_count_total", "ueo_count_total", "uer_distinct_rows",
  };
}

std::vector<double> ClassificationFeatureExtractor::Extract(
    const trace::BankHistory& bank) const {
  const TruncatedHistory view = TruncateAtUer(bank, max_uers_);

  std::vector<double> ce_rows, ueo_rows, uer_rows, all_rows;
  std::vector<double> ce_times, ueo_times, uer_times;
  double first_uer_t = std::numeric_limits<double>::infinity();
  for (const trace::MceRecord& r : view.events) {
    const auto row = static_cast<double>(r.address.row);
    all_rows.push_back(row);
    switch (r.type) {
      case ErrorType::kCe:
        ce_rows.push_back(row);
        ce_times.push_back(r.time_s);
        break;
      case ErrorType::kUeo:
        ueo_rows.push_back(row);
        ueo_times.push_back(r.time_s);
        break;
      case ErrorType::kUer:
        uer_rows.push_back(row);
        uer_times.push_back(r.time_s);
        first_uer_t = std::min(first_uer_t, r.time_s);
        break;
    }
  }
  CORDIAL_CHECK_MSG(!uer_rows.empty(), "classification features need a UER");

  auto min_or_missing = [](const std::vector<double>& v) {
    return v.empty() ? kMissing : *std::min_element(v.begin(), v.end());
  };
  auto max_or_missing = [](const std::vector<double>& v) {
    return v.empty() ? kMissing : *std::max_element(v.begin(), v.end());
  };

  const double uer_min = min_or_missing(uer_rows);
  const double uer_max = max_or_missing(uer_rows);
  const double uer_span = uer_max - uer_min;

  // Half-bank aliasing indicator: minimal |pairwise distance - rows/2| over
  // distinct UER row pairs (the signature of half total-row clusters).
  double half_alias_gap = kMissing;
  {
    std::set<double> distinct(uer_rows.begin(), uer_rows.end());
    const double half = static_cast<double>(topology_.rows_per_bank) / 2.0;
    for (auto a = distinct.begin(); a != distinct.end(); ++a) {
      for (auto b = std::next(a); b != distinct.end(); ++b) {
        const double gap = std::fabs(std::fabs(*b - *a) - half);
        if (half_alias_gap == kMissing || gap < half_alias_gap) {
          half_alias_gap = gap;
        }
      }
    }
  }

  const Summary uer_row_diff = Summarize(ConsecutiveAbsDiffs(uer_rows));
  const Summary all_row_diff = Summarize(ConsecutiveAbsDiffs(all_rows));
  const Summary ce_dt = Summarize(ConsecutiveAbsDiffs(ce_times));
  const Summary ueo_dt = Summarize(ConsecutiveAbsDiffs(ueo_times));
  const Summary uer_dt = Summarize(ConsecutiveAbsDiffs(uer_times));

  const double uer_time_span =
      uer_times.size() < 2 ? kMissing : uer_times.back() - uer_times.front();

  double ce_before = 0.0, ueo_before = 0.0;
  for (const trace::MceRecord& r : view.events) {
    if (r.time_s >= first_uer_t) break;
    if (r.type == ErrorType::kCe) ce_before += 1.0;
    if (r.type == ErrorType::kUeo) ueo_before += 1.0;
  }

  std::set<double> distinct_uer_rows(uer_rows.begin(), uer_rows.end());

  std::vector<double> features = {
      min_or_missing(ce_rows), max_or_missing(ce_rows),
      min_or_missing(ueo_rows), max_or_missing(ueo_rows),
      uer_min, uer_max, uer_span,
      uer_span / static_cast<double>(topology_.rows_per_bank),
      uer_row_diff.min, uer_row_diff.max, uer_row_diff.avg,
      all_row_diff.min, all_row_diff.max, all_row_diff.avg,
      half_alias_gap,
      ce_dt.min, ce_dt.max, ce_dt.avg,
      ueo_dt.min, ueo_dt.max, ueo_dt.avg,
      uer_dt.min, uer_dt.max, uer_dt.avg,
      uer_time_span,
      ce_before, ueo_before,
      static_cast<double>(ce_rows.size()),
      static_cast<double>(ueo_rows.size()),
      static_cast<double>(distinct_uer_rows.size()),
  };
  CORDIAL_CHECK_MSG(features.size() == feature_names_.size(),
                    "classification feature arity drifted");
  return features;
}

// ------------------------------------------------------------ block window

std::optional<std::pair<std::uint32_t, std::uint32_t>> BlockWindow::BlockRange(
    std::size_t i) const {
  CORDIAL_CHECK_MSG(i < n_blocks, "block index out of range");
  const std::int64_t lo =
      WindowStart() + static_cast<std::int64_t>(i) * block_size;
  const std::int64_t hi = lo + static_cast<std::int64_t>(block_size) - 1;
  const std::int64_t bank_hi = static_cast<std::int64_t>(rows_per_bank) - 1;
  if (hi < 0 || lo > bank_hi) return std::nullopt;
  return std::make_pair(
      static_cast<std::uint32_t>(std::max<std::int64_t>(lo, 0)),
      static_cast<std::uint32_t>(std::min(hi, bank_hi)));
}

std::optional<std::size_t> BlockWindow::BlockOf(std::uint32_t row) const {
  const std::int64_t offset = static_cast<std::int64_t>(row) - WindowStart();
  if (offset < 0) return std::nullopt;
  const auto block = static_cast<std::size_t>(offset / block_size);
  if (block >= n_blocks) return std::nullopt;
  return block;
}

// --------------------------------------------------------------- cross-row

CrossRowFeatureExtractor::CrossRowFeatureExtractor(
    const hbm::TopologyConfig& topology, std::uint32_t block_size,
    std::uint32_t n_blocks)
    : topology_(topology), block_size_(block_size), n_blocks_(n_blocks) {
  topology_.Validate();
  CORDIAL_CHECK_MSG(block_size_ > 0 && n_blocks_ > 0,
                    "block geometry must be non-trivial");
  CORDIAL_CHECK_MSG(n_blocks_ % 2 == 0,
                    "window must have an even number of blocks");
  feature_names_ = {
      // block geometry
      "block_index", "block_center_offset", "block_abs_offset",
      "anchor_row_ratio",
      // spatial proximity of earlier errors to the block
      "nearest_ce_row_dist", "nearest_ueo_row_dist", "nearest_uer_row_dist",
      "ce_rows_in_block", "ueo_rows_in_block", "uer_rows_in_block",
      "uer_rows_in_window", "uer_rows_within_8",
      // bank spatial profile
      "uer_row_diff_min", "uer_row_diff_max", "uer_row_diff_avg",
      "all_row_diff_min", "all_row_diff_max", "all_row_diff_avg",
      "uer_row_span",
      // strip-geometry features
      "est_stride", "block_offset_fold_stride", "block_k_positions",
      // temporal profile
      "ce_dt_min", "ce_dt_max", "ueo_dt_min", "ueo_dt_max",
      "uer_dt_min", "uer_dt_max", "uer_dt_avg",
      "time_since_last_event", "time_since_first_uer",
      // counts
      "ce_count", "ueo_count", "uer_count", "uce_count", "all_count",
  };
}

BlockWindow CrossRowFeatureExtractor::WindowAt(std::uint32_t anchor_row) const {
  BlockWindow w;
  w.anchor_row = anchor_row;
  w.block_size = block_size_;
  w.n_blocks = n_blocks_;
  w.rows_per_bank = topology_.rows_per_bank;
  return w;
}

std::vector<double> CrossRowFeatureExtractor::Extract(
    const trace::BankHistory& bank, double anchor_time_s,
    std::uint32_t anchor_row, std::size_t block) const {
  const BlockWindow window = WindowAt(anchor_row);
  const auto range = window.BlockRange(block);
  CORDIAL_CHECK_MSG(range.has_value(),
                    "cannot extract features for an out-of-bank block");
  const double block_center =
      0.5 * (static_cast<double>(range->first) +
             static_cast<double>(range->second));

  std::vector<double> ce_rows, ueo_rows, uer_rows, all_rows;
  std::vector<double> ce_times, ueo_times, uer_times;
  double last_event_t = kMissing;
  for (const trace::MceRecord& r : bank.events) {
    if (r.time_s > anchor_time_s) break;
    const auto row = static_cast<double>(r.address.row);
    all_rows.push_back(row);
    last_event_t = r.time_s;
    switch (r.type) {
      case ErrorType::kCe:
        ce_rows.push_back(row);
        ce_times.push_back(r.time_s);
        break;
      case ErrorType::kUeo:
        ueo_rows.push_back(row);
        ueo_times.push_back(r.time_s);
        break;
      case ErrorType::kUer:
        uer_rows.push_back(row);
        uer_times.push_back(r.time_s);
        break;
    }
  }
  CORDIAL_CHECK_MSG(!uer_rows.empty(),
                    "cross-row features need at least one prior UER");

  auto nearest_dist = [&](const std::vector<double>& rows) {
    double best = kMissing;
    for (double row : rows) {
      const double d = std::fabs(row - block_center);
      if (best == kMissing || d < best) best = d;
    }
    return best;
  };
  auto rows_in_range = [&](const std::vector<double>& rows) {
    std::set<double> distinct;
    for (double row : rows) {
      if (row >= static_cast<double>(range->first) &&
          row <= static_cast<double>(range->second)) {
        distinct.insert(row);
      }
    }
    return static_cast<double>(distinct.size());
  };

  std::set<double> distinct_uer(uer_rows.begin(), uer_rows.end());
  double uer_in_window = 0.0, uer_within_8 = 0.0;
  for (double row : distinct_uer) {
    if (std::fabs(row - static_cast<double>(anchor_row)) <=
        static_cast<double>(window.radius())) {
      uer_in_window += 1.0;
    }
    if (std::fabs(row - static_cast<double>(anchor_row)) <= 8.0) {
      uer_within_8 += 1.0;
    }
  }

  const Summary uer_row_diff = Summarize(ConsecutiveAbsDiffs(uer_rows));
  const Summary all_row_diff = Summarize(ConsecutiveAbsDiffs(all_rows));
  const Summary ce_dt = Summarize(ConsecutiveAbsDiffs(ce_times));
  const Summary ueo_dt = Summarize(ConsecutiveAbsDiffs(ueo_times));
  const Summary uer_dt = Summarize(ConsecutiveAbsDiffs(uer_times));

  const double uer_span =
      *std::max_element(uer_rows.begin(), uer_rows.end()) -
      *std::min_element(uer_rows.begin(), uer_rows.end());

  // Strip geometry: fold the block offset onto the estimated stride. A
  // block sitting on a strip position folds to ~0 and is a likely target.
  std::vector<std::uint32_t> uer_rows_u32;
  uer_rows_u32.reserve(uer_rows.size());
  for (double row : uer_rows) {
    uer_rows_u32.push_back(static_cast<std::uint32_t>(row));
  }
  const std::uint32_t stride = EstimateRowStride(uer_rows_u32);
  double fold = kMissing;
  double k_positions = kMissing;
  if (stride > 0) {
    // Fold relative to the nearest prior UER row, not the anchor alone:
    // strip positions repeat from any failed row.
    const double nearest_uer = nearest_dist(uer_rows);
    const double mod = std::fmod(nearest_uer, static_cast<double>(stride));
    fold = std::min(mod, static_cast<double>(stride) - mod);
    k_positions = nearest_uer / static_cast<double>(stride);
  }

  std::vector<double> features = {
      static_cast<double>(block),
      block_center - static_cast<double>(anchor_row),
      std::fabs(block_center - static_cast<double>(anchor_row)),
      static_cast<double>(anchor_row) /
          static_cast<double>(topology_.rows_per_bank),
      nearest_dist(ce_rows), nearest_dist(ueo_rows), nearest_dist(uer_rows),
      rows_in_range(ce_rows), rows_in_range(ueo_rows), rows_in_range(uer_rows),
      uer_in_window, uer_within_8,
      uer_row_diff.min, uer_row_diff.max, uer_row_diff.avg,
      all_row_diff.min, all_row_diff.max, all_row_diff.avg,
      uer_span,
      stride == 0 ? kMissing : static_cast<double>(stride), fold, k_positions,
      ce_dt.min, ce_dt.max, ueo_dt.min, ueo_dt.max,
      uer_dt.min, uer_dt.max, uer_dt.avg,
      last_event_t == kMissing ? kMissing : anchor_time_s - last_event_t,
      anchor_time_s - uer_times.front(),
      static_cast<double>(ce_rows.size()),
      static_cast<double>(ueo_rows.size()),
      static_cast<double>(uer_rows.size()),
      static_cast<double>(ueo_rows.size() + uer_rows.size()),
      static_cast<double>(all_rows.size()),
  };
  CORDIAL_CHECK_MSG(features.size() == feature_names_.size(),
                    "cross-row feature arity drifted");
  return features;
}

}  // namespace cordial::core
