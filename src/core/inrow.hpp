// Learned in-row failure prediction — the paradigm Cordial replaces.
//
// Existing frameworks (paper §I, §II-C) forecast a row's UERs from that
// row's own prior errors: precursor CEs/UEOs are treated as signals that
// the same row will fail. This module implements that paradigm honestly —
// a binary tree model over per-row precursor features — so the repository
// can measure, rather than assume, its ceiling: since 95.61% of UER rows
// are sudden (no in-row precursor, Table I), even a perfect in-row model
// cannot cover more than ~4.4% of failures.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/isolation.hpp"
#include "hbm/topology.hpp"
#include "ml/classifier.hpp"
#include "trace/error_log.hpp"

namespace cordial::core {

struct InRowConfig {
  /// Positive probability needed to isolate the row.
  double positive_threshold = 0.5;
  /// Observation points per row are capped (each precursor event is one).
  std::size_t max_observations_per_row = 3;
  /// Negative rows per bank kept for training (downsampling the huge
  /// never-fails majority).
  std::size_t max_negative_rows_per_bank = 8;
};

class InRowPredictor {
 public:
  InRowPredictor(const hbm::TopologyConfig& topology, ml::LearnerKind kind,
                 InRowConfig config = {});

  const InRowConfig& config() const { return config_; }
  std::size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Features for row `row` of `bank` as of `time_s` (events after the
  /// cutoff are invisible). The row must have at least one CE/UEO at or
  /// before the cutoff.
  std::vector<double> Extract(const trace::BankHistory& bank,
                              std::uint32_t row, double time_s) const;

  /// One sample per (row, precursor observation) pair; label 1 iff the row
  /// raises a UER strictly after the observation time.
  ml::Dataset BuildDataset(
      const std::vector<const trace::BankHistory*>& banks) const;

  void Train(const std::vector<const trace::BankHistory*>& banks, Rng& rng);
  bool trained() const { return trained_; }

  /// P(row fails later | its error history up to time_s).
  double PredictRowFailure(const trace::BankHistory& bank, std::uint32_t row,
                           double time_s) const;

 private:
  hbm::TopologyConfig topology_;
  InRowConfig config_;
  std::vector<std::string> feature_names_;
  std::unique_ptr<ml::Classifier> model_;
  bool trained_ = false;
};

/// Deployment strategy for the learned in-row paradigm: on every CE/UEO,
/// re-evaluate that row and spare it when the model fires.
class LearnedInRowStrategy final : public IsolationStrategy {
 public:
  explicit LearnedInRowStrategy(const InRowPredictor& predictor);

  void OnBankStart(const trace::BankHistory&) override {}
  void OnEvent(const trace::BankHistory& bank, std::size_t event_index,
               hbm::SparingLedger& ledger) override;
  const std::string& name() const override { return name_; }

 private:
  const InRowPredictor& predictor_;
  std::string name_ = "Learned In-row";
};

}  // namespace cordial::core
