// Versioned, atomically-published model bundle for online refresh.
//
// A `ModelSet` is an immutable snapshot of the three trained models the
// Cordial policy consults (pattern classifier, single- and double-row
// cross-row predictors). A `ModelSlot` publishes one ModelSet at a time,
// RCU-style: writers (the shadow trainer, an admin force-swap) swap the
// shared_ptr under a mutex and bump a monotonic version counter; readers
// (one PredictionEngine per serving shard) poll the version with a single
// relaxed atomic load per Observe and only take the mutex when it moved.
// Old sets stay alive until the last engine drops its shared_ptr, so an
// in-flight decision never sees a model die under it, and a swap can only
// take effect at a record boundary — the property the hot-swap determinism
// tests pin (a run with K swaps of an identical model is byte-identical to
// a no-swap run).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

namespace cordial::core {

class PatternClassifier;
class CrossRowPredictor;

/// Wrap an externally-owned model in a non-owning shared_ptr (the caller
/// guarantees the referee outlives every ModelSet holding it). Lets the
/// boot-time models — typically stack- or daemon-owned — seed a slot whose
/// later champions are heap-owned by their sets.
template <typename T>
std::shared_ptr<const T> UnownedModel(const T& model) {
  return std::shared_ptr<const T>(&model, [](const T*) {});
}

/// One immutable generation of the serving models. `double_row` may be
/// null: the single-row predictor then serves both clustering classes,
/// mirroring the PredictionEngine constructor's contract.
struct ModelSet {
  std::uint64_t version = 0;  ///< assigned by the slot on publish
  std::shared_ptr<const PatternClassifier> classifier;
  std::shared_ptr<const CrossRowPredictor> single;
  std::shared_ptr<const CrossRowPredictor> double_row;
};

class ModelSlot {
 public:
  /// Seeds the slot with generation 1. `initial.classifier` and
  /// `initial.single` must be non-null and trained.
  explicit ModelSlot(ModelSet initial);

  ModelSlot(const ModelSlot&) = delete;
  ModelSlot& operator=(const ModelSlot&) = delete;

  /// Publish a new generation; assigns and returns its version (previous
  /// + 1). Readers acquire it at their next version poll. Thread-safe.
  std::uint64_t Publish(ModelSet next);

  /// The currently published generation. Thread-safe; the returned set is
  /// immutable and stays valid for as long as the caller holds it.
  std::shared_ptr<const ModelSet> Acquire() const;

  /// Version of the current generation — one relaxed atomic load, the
  /// per-record poll engines pay. Starts at 1.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  void Validate(const ModelSet& set) const;

  mutable std::mutex mutex_;
  std::shared_ptr<const ModelSet> current_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace cordial::core
