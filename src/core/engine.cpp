#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "core/persist.hpp"
#include "persist/binary_io.hpp"

namespace cordial::core {

using hbm::ErrorType;
using hbm::FailureClass;

IsolationActions StepCordial(CordialBankState& state,
                             const BankProfile& profile,
                             const trace::MceRecord& record,
                             const PatternClassifier& classifier,
                             const CrossRowPredictor& single_predictor,
                             const CrossRowPredictor& double_predictor,
                             const CordialPolicyConfig& policy) {
  IsolationActions actions;
  if (record.type != ErrorType::kUer) return actions;
  ++state.uer_events_seen;

  const std::size_t trigger = single_predictor.config().trigger_uers;
  if (state.uer_events_seen < trigger) return actions;

  if (!state.classified) {
    // The profile's classification view truncates at the trigger-th UER,
    // which is exactly the current event — no lookahead.
    state.bank_class = classifier.ClassifyProfile(profile);
    state.classified = true;
    actions.classified_now = true;
    actions.bank_class = state.bank_class;
    if (state.bank_class == FailureClass::kScattered) {
      actions.bank_spare = policy.bank_spare_scattered;
      return actions;
    }
  }
  actions.bank_class = state.bank_class;
  if (state.bank_class == FailureClass::kScattered) return actions;

  // Re-anchor at every new UER row, mirroring CrossRowPredictor::AnchorsOf.
  if (static_cast<std::int64_t>(record.address.row) == state.last_anchor_row) {
    return actions;
  }
  if (state.anchors_used >= single_predictor.config().max_anchors_per_bank) {
    return actions;
  }
  state.last_anchor_row = record.address.row;
  ++state.anchors_used;

  const CrossRowPredictor& predictor =
      state.bank_class == FailureClass::kSingleRowClustering
          ? single_predictor
          : double_predictor;
  const Anchor anchor{record.time_s, record.address.row,
                      state.uer_events_seen};
  const std::vector<int> blocks =
      predictor.PredictBlocksFromProfile(profile, anchor);
  const BlockWindow window = predictor.extractor().WindowAt(anchor.row);
  actions.prediction_issued = true;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b] != 1) continue;
    const auto range = window.BlockRange(b);
    if (!range.has_value()) continue;
    actions.predicted_spans.push_back(RowSpan{range->first, range->second});
  }
  return actions;
}

PredictionEngine::PredictionEngine(const hbm::TopologyConfig& topology,
                                   const PatternClassifier& classifier,
                                   const CrossRowPredictor& single_predictor,
                                   const CrossRowPredictor* double_predictor,
                                   EngineConfig config)
    : codec_(topology),
      classifier_(&classifier),
      single_(&single_predictor),
      double_(double_predictor != nullptr ? double_predictor
                                          : &single_predictor),
      config_(config),
      replayer_(codec_, config.retention),
      ledger_(config.budget) {
  CORDIAL_CHECK_MSG(classifier_->trained(), "classifier must be trained");
  CORDIAL_CHECK_MSG(single_->trained() && double_->trained(),
                    "cross-row predictors must be trained");
  // With the trigger at or past the truncation depth, the classification
  // cutoff can never be later than the triggering event — the profile view
  // is guaranteed lookahead-free.
  CORDIAL_CHECK_MSG(
      single_->config().trigger_uers >= classifier_->extractor().max_uers(),
      "cross-row trigger must not precede the classification truncation");
}

void PredictionEngine::AttachModelSlot(const ModelSlot& slot) {
  model_slot_ = &slot;
  // Adopting the attach-time generation is wiring, not a swap — neither
  // model_swaps() nor the swap counter moves.
  RefreshModels();
}

void PredictionEngine::RefreshModels() {
  std::shared_ptr<const ModelSet> set = model_slot_->Acquire();
  const PatternClassifier& classifier = *set->classifier;
  const CrossRowPredictor& single = *set->single;
  const CrossRowPredictor& double_row =
      set->double_row != nullptr ? *set->double_row : *set->single;
  // A generation that changes the feature layout or trigger contract would
  // silently misread the accumulated per-bank profiles — refuse it and
  // keep serving the current one.
  CORDIAL_CHECK_MSG(
      classifier.extractor().max_uers() == classifier_->extractor().max_uers(),
      "model swap must keep the classification truncation depth");
  CORDIAL_CHECK_MSG(
      single.config().trigger_uers >= classifier.extractor().max_uers(),
      "cross-row trigger must not precede the classification truncation");
  classifier_ = &classifier;
  single_ = &single;
  double_ = &double_row;
  active_models_ = std::move(set);
  model_version_.store(active_models_->version, std::memory_order_relaxed);
  if (metrics_.model_version) {
    metrics_.model_version->Set(
        static_cast<std::int64_t>(active_models_->version));
  }
}

void PredictionEngine::AttachMetrics(obs::MetricRegistry& registry,
                                     const obs::Labels& labels,
                                     std::size_t latency_sample_every) {
  CORDIAL_CHECK_MSG(latency_sample_every >= 1,
                    "latency sample stride must be >= 1");
  latency_sample_every_ = latency_sample_every;
  metrics_.observe_latency = &registry.GetHistogram(
      "cordial_engine_observe_seconds",
      "Latency of PredictionEngine::Observe (ingest + policy + ledger)",
      obs::DefaultLatencyBuckets(), labels);
  metrics_.events = &registry.GetCounter(
      "cordial_engine_events_total", "MCE records the engine accepted",
      labels);
  metrics_.uer_events = &registry.GetCounter(
      "cordial_engine_uer_events_total", "Accepted records that were UERs",
      labels);
  metrics_.banks_classified = &registry.GetCounter(
      "cordial_engine_banks_classified_total",
      "Banks whose failure pattern was classified", labels);
  metrics_.banks_spared = &registry.GetCounter(
      "cordial_engine_banks_spared_total",
      "Banks the sparing ledger actually retired", labels);
  metrics_.block_predictions = &registry.GetCounter(
      "cordial_engine_block_predictions_total",
      "Cross-row block predictions issued", labels);
  metrics_.rows_spared = &registry.GetCounter(
      "cordial_engine_rows_spared_total",
      "Rows newly isolated by predictions (idempotent re-spares excluded)",
      labels);
  metrics_.skew_dropped = &registry.GetCounter(
      "cordial_engine_records_skew_dropped_total",
      "Stale records discarded by the time-skew drop policy", labels);
  replayer_.SetRetentionEvictionCounter(&registry.GetCounter(
      "cordial_replay_retention_evictions_total",
      "Raw records evicted from the replayer's bounded per-bank window",
      labels));
  metrics_.model_version = &registry.GetGauge(
      "cordial_engine_model_version",
      "Model-slot generation this engine is serving (0 = no slot attached)",
      labels);
  metrics_.model_version->Set(static_cast<std::int64_t>(model_version()));
  metrics_.model_swaps = &registry.GetCounter(
      "cordial_engine_model_swaps_total",
      "Model generations hot-swapped in at a record boundary", labels);
}

IsolationActions PredictionEngine::Observe(const trace::MceRecord& logical_record) {
  using Clock = std::chrono::steady_clock;
  // Device row scramble: operate in physical row space so locality features
  // and ledger rows reflect true adjacency. Identity mapping costs nothing.
  trace::MceRecord remapped_storage;
  const trace::MceRecord& record = [&]() -> const trace::MceRecord& {
    if (config_.row_mapping.identity()) return logical_record;
    remapped_storage = logical_record;
    remapped_storage.address.row =
        config_.row_mapping.ToPhysical(logical_record.address.row);
    return remapped_storage;
  }();
  // Record-boundary model swap: adopt a newly published generation BEFORE
  // this record is ingested, so every record is decided by exactly one
  // generation. Costs one relaxed atomic load when nothing was published.
  if (model_slot_ != nullptr &&
      model_slot_->version() != model_version_.load(std::memory_order_relaxed)) {
    RefreshModels();
    model_swaps_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.model_swaps) metrics_.model_swaps->Increment();
  }
  // Threshold compare, not modulo — a division per record is measurable.
  const bool timed =
      metrics_.observe_latency != nullptr && observe_calls_ >= next_timed_;
  if (timed) next_timed_ = observe_calls_ + latency_sample_every_;
  ++observe_calls_;
  const Clock::time_point start = timed ? Clock::now() : Clock::time_point{};
  const auto record_latency = [&] {
    if (timed) {
      metrics_.observe_latency->Observe(
          std::chrono::duration<double>(Clock::now() - start).count());
    }
  };

  const trace::BankHistory* bank = replayer_.Ingest(record);
  if (bank == nullptr) {
    // Rejected by the drop skew policy: no profile, no decision, no stats
    // beyond the drop counter (keeps `events` == accepted records).
    ++stats_.records_skew_dropped;
    if (metrics_.skew_dropped) metrics_.skew_dropped->Increment();
    record_latency();
    return IsolationActions{};
  }
  ++stats_.events;
  if (metrics_.events) metrics_.events->Increment();
  const auto [it, inserted] =
      banks_.try_emplace(bank->bank_key, classifier_->extractor().max_uers());
  BankState& state = it->second;
  // Dirty-bank tracking for delta checkpoints: every mutation below (the
  // profile, the Cordial state, this bank's ledger rows) touches only this
  // bank plus global counters — which every delta carries — so stamping
  // here is exact at record boundaries. O(1): one compare per record.
  if (state.dirty_epoch != snapshot_epoch_) {
    state.dirty_epoch = snapshot_epoch_;
    ++dirty_banks_;
  }

  IsolationActions coverage;
  if (record.type == ErrorType::kUer) {
    ++stats_.uer_events;
    if (metrics_.uer_events) metrics_.uer_events->Increment();
    // First-failure coverage, judged against the ledger as it stood before
    // this record (the profile has not absorbed it yet).
    if (!state.profile.HasUerRow(record.address.row)) {
      coverage.first_failure = true;
      ++stats_.uer_rows_total;
      if (ledger_.IsRowSpared(bank->bank_key, record.address.row)) {
        coverage.covered_by_row_spare = true;
        ++stats_.uer_rows_covered;
      } else if (ledger_.IsBankSpared(bank->bank_key)) {
        coverage.covered_by_bank_spare = true;
        ++stats_.uer_rows_covered_by_bank;
      }
    }
  }

  state.profile.Observe(record);
  IsolationActions actions =
      StepCordial(state.cordial, state.profile, record, *classifier_,
                  *single_, *double_, config_.policy);
  actions.first_failure = coverage.first_failure;
  actions.covered_by_row_spare = coverage.covered_by_row_spare;
  actions.covered_by_bank_spare = coverage.covered_by_bank_spare;

  if (actions.classified_now) {
    ++stats_.banks_classified;
    if (metrics_.banks_classified) metrics_.banks_classified->Increment();
  }
  if (actions.bank_spare) {
    // TrySpareBank is idempotent and may be unavailable; count only banks
    // the ledger actually retired, mirroring the row accounting below.
    const std::uint64_t banks_before = ledger_.banks_spared();
    ledger_.TrySpareBank(bank->bank_key);
    const std::uint64_t banks_newly = ledger_.banks_spared() - banks_before;
    stats_.banks_bank_spared += banks_newly;
    if (metrics_.banks_spared) metrics_.banks_spared->Increment(banks_newly);
  }
  if (actions.prediction_issued) {
    ++stats_.predictions_issued;
    if (metrics_.block_predictions) metrics_.block_predictions->Increment();
  }
  // TrySpareRow is idempotent (true for an already-spared row), so count
  // newly isolated rows off the ledger's tally, not the return values.
  const std::uint64_t spared_before = ledger_.rows_spared();
  for (const RowSpan& span : actions.predicted_spans) {
    for (std::uint32_t row = span.first; row <= span.last; ++row) {
      ledger_.TrySpareRow(bank->bank_key, row);
    }
  }
  actions.rows_newly_spared = ledger_.rows_spared() - spared_before;
  stats_.rows_isolated += actions.rows_newly_spared;
  if (metrics_.rows_spared) {
    metrics_.rows_spared->Increment(actions.rows_newly_spared);
  }
  record_latency();
  return actions;
}

const BankProfile* PredictionEngine::FindProfile(std::uint64_t bank_key) const {
  const auto it = banks_.find(bank_key);
  return it == banks_.end() ? nullptr : &it->second.profile;
}

// ------------------------------------------------- binary state codec (v2)
//
// Full (cordial_engine_state v2) and delta (cordial_engine_delta v1)
// payloads share one self-delimiting shape:
//
//   u32 header_len | header | u64 bank_count | bank records...
//   bank record := u64 bank_key | u32 blob_len | blob
//
// The explicit lengths make the payload structurally parseable without
// models or topology: the offline inspector (persist::) folds a delta chain
// by overlaying bank records keyed by bank_key and keeping the newest
// header verbatim — producing exactly the bytes a live full save would.
// Bank records are emitted in ascending key order so equal states
// serialize identically.

namespace {

/// Everything global in an engine snapshot: stats, the ledger's budget and
/// spend counters, the replayer's counters and clock. Deltas carry the
/// same header as fulls — the counters are tiny and every one of them can
/// move on any record.
struct StateHeader {
  EngineStats stats;
  hbm::SparingBudget budget;
  std::uint64_t rows_spared = 0;
  std::uint64_t banks_spared = 0;
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  std::uint64_t skew_dropped = 0;
  double now = 0.0;
};

void EncodeStateHeader(persist::BinaryWriter& out, const EngineStats& stats,
                       const hbm::SparingLedger& ledger,
                       const trace::StreamReplayer& replayer) {
  out.U64(stats.events);
  out.U64(stats.uer_events);
  out.U64(stats.banks_classified);
  out.U64(stats.banks_bank_spared);
  out.U64(stats.predictions_issued);
  out.U64(stats.rows_isolated);
  out.U64(stats.uer_rows_total);
  out.U64(stats.uer_rows_covered);
  out.U64(stats.uer_rows_covered_by_bank);
  out.U64(stats.records_skew_dropped);
  const hbm::SparingBudget& budget = ledger.budget();
  out.U32(budget.rows_per_bank);
  out.U8(budget.bank_sparing_available ? 1 : 0);
  out.F64(budget.row_spare_cost);
  out.F64(budget.bank_spare_cost);
  out.U64(ledger.rows_spared());
  out.U64(ledger.banks_spared());
  out.U64(replayer.record_count());
  out.U64(replayer.records_dropped());
  out.U64(replayer.records_skew_dropped());
  out.F64(replayer.now());
}

StateHeader DecodeStateHeader(persist::BinaryReader& in) {
  StateHeader h;
  h.stats.events = static_cast<std::size_t>(in.U64());
  h.stats.uer_events = static_cast<std::size_t>(in.U64());
  h.stats.banks_classified = static_cast<std::size_t>(in.U64());
  h.stats.banks_bank_spared = static_cast<std::size_t>(in.U64());
  h.stats.predictions_issued = static_cast<std::size_t>(in.U64());
  h.stats.rows_isolated = static_cast<std::size_t>(in.U64());
  h.stats.uer_rows_total = static_cast<std::size_t>(in.U64());
  h.stats.uer_rows_covered = static_cast<std::size_t>(in.U64());
  h.stats.uer_rows_covered_by_bank = static_cast<std::size_t>(in.U64());
  h.stats.records_skew_dropped = static_cast<std::size_t>(in.U64());
  h.budget.rows_per_bank = in.U32();
  h.budget.bank_sparing_available = in.U8() != 0;
  h.budget.row_spare_cost = in.F64();
  h.budget.bank_spare_cost = in.F64();
  h.rows_spared = in.U64();
  h.banks_spared = in.U64();
  h.records = in.U64();
  h.dropped = in.U64();
  h.skew_dropped = in.U64();
  h.now = in.F64();
  return h;
}

constexpr std::uint8_t kBlobHasLedgerEntry = 1u << 0;
constexpr std::uint8_t kBlobBankSpared = 1u << 1;

/// One bank's full slice of engine state: Cordial decision state, the
/// profile, this bank's ledger section (the has-entry flag distinguishes
/// "no spared-row entry" from "an entry with zero rows" — TrySpareRow
/// creates the latter when rows_per_bank is 0, and the text serializer
/// lists it, so byte-identity needs the distinction), and the replayer's
/// retained event window.
void EncodeBankBlob(persist::BinaryWriter& out, const CordialBankState& cordial,
                    const BankProfile& profile,
                    const hbm::SparingLedger& ledger, std::uint64_t key,
                    const trace::BankHistory* window,
                    const hbm::AddressCodec& codec) {
  out.U64(cordial.uer_events_seen);
  out.U64(cordial.anchors_used);
  out.U8(cordial.classified ? 1 : 0);
  out.U8(static_cast<std::uint8_t>(cordial.bank_class));
  out.I64(cordial.last_anchor_row);
  profile.SaveBinary(out);

  const std::unordered_set<std::uint32_t>* rows = ledger.FindRowEntry(key);
  std::uint8_t flags = 0;
  if (rows != nullptr) flags |= kBlobHasLedgerEntry;
  if (ledger.IsBankSpared(key)) flags |= kBlobBankSpared;
  out.U8(flags);
  if (rows != nullptr) {
    std::vector<std::uint32_t> sorted(rows->begin(), rows->end());
    std::sort(sorted.begin(), sorted.end());
    out.U32(static_cast<std::uint32_t>(sorted.size()));
    for (const std::uint32_t row : sorted) out.U32(row);
  }

  const std::size_t events = window != nullptr ? window->events.size() : 0;
  out.U32(static_cast<std::uint32_t>(events));
  if (window != nullptr) {
    for (const trace::MceRecord& r : window->events) {
      out.F64(r.time_s);
      out.U64(codec.Pack(r.address));
      out.U8(static_cast<std::uint8_t>(r.type));
    }
  }
}

struct BankBlob {
  CordialBankState cordial;
  BankProfile profile{1};
  bool has_ledger_entry = false;
  bool bank_spared = false;
  std::vector<std::uint32_t> rows;
  trace::BankHistory window;
};

BankBlob DecodeBankBlob(persist::BinaryReader& in, std::uint64_t key,
                        const hbm::AddressCodec& codec) {
  BankBlob blob;
  blob.cordial.uer_events_seen = static_cast<std::size_t>(in.U64());
  blob.cordial.anchors_used = static_cast<std::size_t>(in.U64());
  blob.cordial.classified = in.U8() != 0;
  const std::uint8_t bank_class = in.U8();
  if (bank_class > 2) {
    throw ParseError("engine bank: unknown failure class");
  }
  blob.cordial.bank_class = static_cast<hbm::FailureClass>(bank_class);
  blob.cordial.last_anchor_row = in.I64();
  blob.profile = BankProfile::LoadBinary(in);

  const std::uint8_t flags = in.U8();
  blob.has_ledger_entry = (flags & kBlobHasLedgerEntry) != 0;
  blob.bank_spared = (flags & kBlobBankSpared) != 0;
  if (blob.has_ledger_entry) {
    const std::uint32_t nrows = in.Count32(4);
    blob.rows.reserve(nrows);
    for (std::uint32_t i = 0; i < nrows; ++i) blob.rows.push_back(in.U32());
  }

  const std::uint32_t nevents = in.Count32(17);  // f64 + u64 + u8 per event
  blob.window.bank_key = key;
  blob.window.events.reserve(nevents);
  for (std::uint32_t e = 0; e < nevents; ++e) {
    trace::MceRecord r;
    r.time_s = in.F64();
    r.address = codec.Unpack(in.U64());
    const std::uint8_t type = in.U8();
    if (type > 2) throw ParseError("engine bank event: unknown error type");
    r.type = static_cast<hbm::ErrorType>(type);
    blob.window.events.push_back(r);
  }
  return blob;
}

}  // namespace

void PredictionEngine::SaveState(std::ostream& out,
                                 StateEncoding encoding) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(banks_.size());
  for (const auto& [key, state] : banks_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  if (encoding == StateEncoding::kBinary) {
    std::string payload;
    persist::BinaryWriter writer(payload);
    std::string header;
    persist::BinaryWriter header_writer(header);
    EncodeStateHeader(header_writer, stats_, ledger_, replayer_);
    writer.U32(static_cast<std::uint32_t>(header.size()));
    writer.Bytes(header);
    writer.U64(keys.size());
    std::string blob;
    for (const std::uint64_t key : keys) {
      const BankState& state = banks_.at(key);
      blob.clear();
      persist::BinaryWriter blob_writer(blob);
      EncodeBankBlob(blob_writer, state.cordial, state.profile, ledger_, key,
                     replayer_.Find(key), codec_);
      writer.U64(key);
      writer.U32(static_cast<std::uint32_t>(blob.size()));
      writer.Bytes(blob);
    }
    WriteFramed(out, kEngineStateMagic, kEngineStateBinaryVersion, payload);
    return;
  }

  std::ostringstream payload;
  payload << "stats " << stats_.events << ' ' << stats_.uer_events << ' '
          << stats_.banks_classified << ' ' << stats_.banks_bank_spared << ' '
          << stats_.predictions_issued << ' ' << stats_.rows_isolated << ' '
          << stats_.uer_rows_total << ' ' << stats_.uer_rows_covered << ' '
          << stats_.uer_rows_covered_by_bank << ' '
          << stats_.records_skew_dropped << '\n';
  ledger_.Save(payload);
  replayer_.Save(payload);

  payload << "banks " << keys.size() << '\n';
  for (const std::uint64_t key : keys) {
    const BankState& state = banks_.at(key);
    payload << key << ' ' << state.cordial.uer_events_seen << ' '
            << state.cordial.anchors_used << ' '
            << (state.cordial.classified ? 1 : 0) << ' '
            << static_cast<int>(state.cordial.bank_class) << ' '
            << state.cordial.last_anchor_row << '\n';
    state.profile.Save(payload);
  }
  WriteFramed(out, kEngineStateMagic, kEngineStateVersion, payload.str());
}

std::uint64_t PredictionEngine::SaveDeltaState(std::ostream& out) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(dirty_banks_);
  for (const auto& [key, state] : banks_) {
    if (state.dirty_epoch == snapshot_epoch_) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());

  std::string payload;
  persist::BinaryWriter writer(payload);
  std::string header;
  persist::BinaryWriter header_writer(header);
  EncodeStateHeader(header_writer, stats_, ledger_, replayer_);
  writer.U32(static_cast<std::uint32_t>(header.size()));
  writer.Bytes(header);
  writer.U64(keys.size());
  std::string blob;
  for (const std::uint64_t key : keys) {
    const BankState& state = banks_.at(key);
    blob.clear();
    persist::BinaryWriter blob_writer(blob);
    EncodeBankBlob(blob_writer, state.cordial, state.profile, ledger_, key,
                   replayer_.Find(key), codec_);
    writer.U64(key);
    writer.U32(static_cast<std::uint32_t>(blob.size()));
    writer.Bytes(blob);
  }
  WriteFramed(out, kEngineDeltaMagic, kEngineDeltaVersion, payload);
  return keys.size();
}

void PredictionEngine::MarkCheckpointClean() {
  ++snapshot_epoch_;
  dirty_banks_ = 0;
}

struct PredictionEngine::StagedState::Impl {
  EngineStats stats;
  hbm::SparingLedger ledger;
  trace::StagedReplayerState replayer;
  std::unordered_map<std::uint64_t, BankState> banks;
};

PredictionEngine::StagedState::StagedState() : impl_(new Impl()) {}
PredictionEngine::StagedState::StagedState(StagedState&&) noexcept = default;
PredictionEngine::StagedState& PredictionEngine::StagedState::operator=(
    StagedState&&) noexcept = default;
PredictionEngine::StagedState::~StagedState() = default;

void PredictionEngine::RestoreState(std::istream& in) {
  CommitState(ParseState(in));
}

PredictionEngine::StagedState PredictionEngine::ParseState(
    std::istream& in) const {
  std::uint32_t version = 0;
  std::string raw = ReadFramedAny(
      in, kEngineStateMagic, {kEngineStateVersion, kEngineStateBinaryVersion},
      &version);
  if (version == kEngineStateBinaryVersion) {
    StagedState staged;
    persist::BinaryReader reader(raw, "engine state v2");
    const std::uint32_t header_len = reader.Count32(1);
    persist::BinaryReader header_reader(reader.Bytes(header_len),
                                        "engine state header");
    const StateHeader header = DecodeStateHeader(header_reader);
    header_reader.ExpectEnd();
    staged.impl_->stats = header.stats;
    hbm::SparingLedger ledger(header.budget);
    trace::StagedReplayerState& replayer = staged.impl_->replayer;
    replayer.records = static_cast<std::size_t>(header.records);
    replayer.dropped = static_cast<std::size_t>(header.dropped);
    replayer.skew_dropped = static_cast<std::size_t>(header.skew_dropped);
    replayer.now = header.now;

    const std::uint64_t bank_count = reader.Count(8 + 4);
    std::unordered_map<std::uint64_t, BankState>& banks = staged.impl_->banks;
    banks.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(bank_count, 1 << 16)));
    for (std::uint64_t b = 0; b < bank_count; ++b) {
      const std::uint64_t key = reader.U64();
      const std::uint32_t blob_len = reader.Count32(1);
      persist::BinaryReader blob_reader(reader.Bytes(blob_len),
                                        "engine bank blob");
      BankBlob blob = DecodeBankBlob(blob_reader, key, codec_);
      blob_reader.ExpectEnd();
      const auto [it, inserted] =
          banks.try_emplace(key, classifier_->extractor().max_uers());
      if (!inserted) throw ParseError("engine bank: duplicate bank key");
      it->second.cordial = blob.cordial;
      it->second.profile = std::move(blob.profile);
      ledger.RestoreBankSection(key, blob.has_ledger_entry, blob.rows,
                                blob.bank_spared);
      if (!blob.window.events.empty()) {
        replayer.banks.emplace(key, std::move(blob.window));
      }
    }
    reader.ExpectEnd();
    ledger.RestoreCounters(header.rows_spared, header.banks_spared);
    staged.impl_->ledger = std::move(ledger);
    return staged;
  }

  std::istringstream payload(std::move(raw));
  StagedState staged;
  ExpectToken(payload, "stats");
  EngineStats& stats = staged.impl_->stats;
  stats.events = ReadU64Token(payload, "engine stats");
  stats.uer_events = ReadU64Token(payload, "engine stats");
  stats.banks_classified = ReadU64Token(payload, "engine stats");
  stats.banks_bank_spared = ReadU64Token(payload, "engine stats");
  stats.predictions_issued = ReadU64Token(payload, "engine stats");
  stats.rows_isolated = ReadU64Token(payload, "engine stats");
  stats.uer_rows_total = ReadU64Token(payload, "engine stats");
  stats.uer_rows_covered = ReadU64Token(payload, "engine stats");
  stats.uer_rows_covered_by_bank = ReadU64Token(payload, "engine stats");
  stats.records_skew_dropped = ReadU64Token(payload, "engine stats");

  staged.impl_->ledger = hbm::SparingLedger::Load(payload);
  staged.impl_->replayer = replayer_.ParseState(payload);

  ExpectToken(payload, "banks");
  const std::uint64_t bank_count = ReadU64Token(payload, "engine banks");
  std::unordered_map<std::uint64_t, BankState>& banks = staged.impl_->banks;
  // Cap the reserve: a corrupt count fails below on a token read, and must
  // not pre-allocate an absurd table first.
  banks.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(bank_count, 1 << 16)));
  for (std::uint64_t b = 0; b < bank_count; ++b) {
    const std::uint64_t key = ReadU64Token(payload, "engine bank");
    const auto [it, inserted] =
        banks.try_emplace(key, classifier_->extractor().max_uers());
    if (!inserted) throw ParseError("engine bank: duplicate bank key");
    BankState& state = it->second;
    state.cordial.uer_events_seen = ReadU64Token(payload, "engine bank");
    state.cordial.anchors_used = ReadU64Token(payload, "engine bank");
    state.cordial.classified = ReadU64Token(payload, "engine bank") != 0;
    const std::int64_t bank_class = ReadI64Token(payload, "engine bank");
    if (bank_class < 0 || bank_class > 2) {
      throw ParseError("engine bank: unknown failure class");
    }
    state.cordial.bank_class = static_cast<hbm::FailureClass>(bank_class);
    state.cordial.last_anchor_row = ReadI64Token(payload, "engine bank");
    state.profile = BankProfile::Load(payload);
  }
  return staged;
}

void PredictionEngine::CommitState(StagedState&& staged) {
  stats_ = staged.impl_->stats;
  ledger_ = std::move(staged.impl_->ledger);
  replayer_.CommitState(std::move(staged.impl_->replayer));
  banks_ = std::move(staged.impl_->banks);
  // Freshly parsed BankStates carry dirty_epoch 0, which can never equal
  // snapshot_epoch_ (>= 1): the restored state is entirely clean.
  dirty_banks_ = 0;
}

struct PredictionEngine::StagedDelta::Impl {
  EngineStats stats;
  std::uint64_t rows_spared = 0;
  std::uint64_t banks_spared = 0;
  std::size_t records = 0;
  std::size_t dropped = 0;
  std::size_t skew_dropped = 0;
  double now = 0.0;
  struct Bank {
    std::uint64_t key = 0;
    BankBlob blob;
  };
  std::vector<Bank> banks;
};

PredictionEngine::StagedDelta::StagedDelta() : impl_(new Impl()) {}
PredictionEngine::StagedDelta::StagedDelta(StagedDelta&&) noexcept = default;
PredictionEngine::StagedDelta& PredictionEngine::StagedDelta::operator=(
    StagedDelta&&) noexcept = default;
PredictionEngine::StagedDelta::~StagedDelta() = default;

PredictionEngine::StagedDelta PredictionEngine::ParseDeltaState(
    std::istream& in) const {
  const std::string raw = ReadFramed(in, kEngineDeltaMagic, kEngineDeltaVersion);
  StagedDelta staged;
  persist::BinaryReader reader(raw, "engine delta");
  const std::uint32_t header_len = reader.Count32(1);
  persist::BinaryReader header_reader(reader.Bytes(header_len),
                                      "engine delta header");
  const StateHeader header = DecodeStateHeader(header_reader);
  header_reader.ExpectEnd();
  // The budget in a delta header describes the chain's full snapshot; the
  // live ledger already carries it, so only the counters are staged.
  staged.impl_->stats = header.stats;
  staged.impl_->rows_spared = header.rows_spared;
  staged.impl_->banks_spared = header.banks_spared;
  staged.impl_->records = static_cast<std::size_t>(header.records);
  staged.impl_->dropped = static_cast<std::size_t>(header.dropped);
  staged.impl_->skew_dropped = static_cast<std::size_t>(header.skew_dropped);
  staged.impl_->now = header.now;

  const std::uint64_t bank_count = reader.Count(8 + 4);
  staged.impl_->banks.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(bank_count, 1 << 16)));
  std::uint64_t prev_key = 0;
  for (std::uint64_t b = 0; b < bank_count; ++b) {
    StagedDelta::Impl::Bank bank;
    bank.key = reader.U64();
    if (b > 0 && bank.key <= prev_key) {
      throw ParseError("engine delta: bank keys not strictly ascending");
    }
    prev_key = bank.key;
    const std::uint32_t blob_len = reader.Count32(1);
    persist::BinaryReader blob_reader(reader.Bytes(blob_len),
                                      "engine delta bank blob");
    bank.blob = DecodeBankBlob(blob_reader, bank.key, codec_);
    blob_reader.ExpectEnd();
    staged.impl_->banks.push_back(std::move(bank));
  }
  reader.ExpectEnd();
  return staged;
}

void PredictionEngine::CommitDeltaState(StagedDelta&& staged) {
  stats_ = staged.impl_->stats;
  ledger_.RestoreCounters(staged.impl_->rows_spared,
                          staged.impl_->banks_spared);
  replayer_.RestoreCounters(staged.impl_->records, staged.impl_->dropped,
                            staged.impl_->skew_dropped, staged.impl_->now);
  for (StagedDelta::Impl::Bank& bank : staged.impl_->banks) {
    BankBlob& blob = bank.blob;
    ledger_.RestoreBankSection(bank.key, blob.has_ledger_entry, blob.rows,
                               blob.bank_spared);
    if (!blob.window.events.empty()) {
      replayer_.OverwriteBank(std::move(blob.window));
    }
    const auto [it, inserted] =
        banks_.try_emplace(bank.key, classifier_->extractor().max_uers());
    if (!inserted && it->second.dirty_epoch == snapshot_epoch_) {
      --dirty_banks_;
    }
    it->second.cordial = blob.cordial;
    it->second.profile = std::move(blob.profile);
    // The committed bank now matches the checkpoint that carried it.
    it->second.dirty_epoch = 0;
  }
}

void PredictionEngine::ApplyDeltaState(std::istream& in) {
  CommitDeltaState(ParseDeltaState(in));
}

}  // namespace cordial::core
