#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "core/persist.hpp"

namespace cordial::core {

using hbm::ErrorType;
using hbm::FailureClass;

IsolationActions StepCordial(CordialBankState& state,
                             const BankProfile& profile,
                             const trace::MceRecord& record,
                             const PatternClassifier& classifier,
                             const CrossRowPredictor& single_predictor,
                             const CrossRowPredictor& double_predictor,
                             const CordialPolicyConfig& policy) {
  IsolationActions actions;
  if (record.type != ErrorType::kUer) return actions;
  ++state.uer_events_seen;

  const std::size_t trigger = single_predictor.config().trigger_uers;
  if (state.uer_events_seen < trigger) return actions;

  if (!state.classified) {
    // The profile's classification view truncates at the trigger-th UER,
    // which is exactly the current event — no lookahead.
    state.bank_class = classifier.ClassifyProfile(profile);
    state.classified = true;
    actions.classified_now = true;
    actions.bank_class = state.bank_class;
    if (state.bank_class == FailureClass::kScattered) {
      actions.bank_spare = policy.bank_spare_scattered;
      return actions;
    }
  }
  actions.bank_class = state.bank_class;
  if (state.bank_class == FailureClass::kScattered) return actions;

  // Re-anchor at every new UER row, mirroring CrossRowPredictor::AnchorsOf.
  if (static_cast<std::int64_t>(record.address.row) == state.last_anchor_row) {
    return actions;
  }
  if (state.anchors_used >= single_predictor.config().max_anchors_per_bank) {
    return actions;
  }
  state.last_anchor_row = record.address.row;
  ++state.anchors_used;

  const CrossRowPredictor& predictor =
      state.bank_class == FailureClass::kSingleRowClustering
          ? single_predictor
          : double_predictor;
  const Anchor anchor{record.time_s, record.address.row,
                      state.uer_events_seen};
  const std::vector<int> blocks =
      predictor.PredictBlocksFromProfile(profile, anchor);
  const BlockWindow window = predictor.extractor().WindowAt(anchor.row);
  actions.prediction_issued = true;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b] != 1) continue;
    const auto range = window.BlockRange(b);
    if (!range.has_value()) continue;
    actions.predicted_spans.push_back(RowSpan{range->first, range->second});
  }
  return actions;
}

PredictionEngine::PredictionEngine(const hbm::TopologyConfig& topology,
                                   const PatternClassifier& classifier,
                                   const CrossRowPredictor& single_predictor,
                                   const CrossRowPredictor* double_predictor,
                                   EngineConfig config)
    : codec_(topology),
      classifier_(&classifier),
      single_(&single_predictor),
      double_(double_predictor != nullptr ? double_predictor
                                          : &single_predictor),
      config_(config),
      replayer_(codec_, config.retention),
      ledger_(config.budget) {
  CORDIAL_CHECK_MSG(classifier_->trained(), "classifier must be trained");
  CORDIAL_CHECK_MSG(single_->trained() && double_->trained(),
                    "cross-row predictors must be trained");
  // With the trigger at or past the truncation depth, the classification
  // cutoff can never be later than the triggering event — the profile view
  // is guaranteed lookahead-free.
  CORDIAL_CHECK_MSG(
      single_->config().trigger_uers >= classifier_->extractor().max_uers(),
      "cross-row trigger must not precede the classification truncation");
}

void PredictionEngine::AttachModelSlot(const ModelSlot& slot) {
  model_slot_ = &slot;
  // Adopting the attach-time generation is wiring, not a swap — neither
  // model_swaps() nor the swap counter moves.
  RefreshModels();
}

void PredictionEngine::RefreshModels() {
  std::shared_ptr<const ModelSet> set = model_slot_->Acquire();
  const PatternClassifier& classifier = *set->classifier;
  const CrossRowPredictor& single = *set->single;
  const CrossRowPredictor& double_row =
      set->double_row != nullptr ? *set->double_row : *set->single;
  // A generation that changes the feature layout or trigger contract would
  // silently misread the accumulated per-bank profiles — refuse it and
  // keep serving the current one.
  CORDIAL_CHECK_MSG(
      classifier.extractor().max_uers() == classifier_->extractor().max_uers(),
      "model swap must keep the classification truncation depth");
  CORDIAL_CHECK_MSG(
      single.config().trigger_uers >= classifier.extractor().max_uers(),
      "cross-row trigger must not precede the classification truncation");
  classifier_ = &classifier;
  single_ = &single;
  double_ = &double_row;
  active_models_ = std::move(set);
  model_version_.store(active_models_->version, std::memory_order_relaxed);
  if (metrics_.model_version) {
    metrics_.model_version->Set(
        static_cast<std::int64_t>(active_models_->version));
  }
}

void PredictionEngine::AttachMetrics(obs::MetricRegistry& registry,
                                     const obs::Labels& labels,
                                     std::size_t latency_sample_every) {
  CORDIAL_CHECK_MSG(latency_sample_every >= 1,
                    "latency sample stride must be >= 1");
  latency_sample_every_ = latency_sample_every;
  metrics_.observe_latency = &registry.GetHistogram(
      "cordial_engine_observe_seconds",
      "Latency of PredictionEngine::Observe (ingest + policy + ledger)",
      obs::DefaultLatencyBuckets(), labels);
  metrics_.events = &registry.GetCounter(
      "cordial_engine_events_total", "MCE records the engine accepted",
      labels);
  metrics_.uer_events = &registry.GetCounter(
      "cordial_engine_uer_events_total", "Accepted records that were UERs",
      labels);
  metrics_.banks_classified = &registry.GetCounter(
      "cordial_engine_banks_classified_total",
      "Banks whose failure pattern was classified", labels);
  metrics_.banks_spared = &registry.GetCounter(
      "cordial_engine_banks_spared_total",
      "Banks the sparing ledger actually retired", labels);
  metrics_.block_predictions = &registry.GetCounter(
      "cordial_engine_block_predictions_total",
      "Cross-row block predictions issued", labels);
  metrics_.rows_spared = &registry.GetCounter(
      "cordial_engine_rows_spared_total",
      "Rows newly isolated by predictions (idempotent re-spares excluded)",
      labels);
  metrics_.skew_dropped = &registry.GetCounter(
      "cordial_engine_records_skew_dropped_total",
      "Stale records discarded by the time-skew drop policy", labels);
  replayer_.SetRetentionEvictionCounter(&registry.GetCounter(
      "cordial_replay_retention_evictions_total",
      "Raw records evicted from the replayer's bounded per-bank window",
      labels));
  metrics_.model_version = &registry.GetGauge(
      "cordial_engine_model_version",
      "Model-slot generation this engine is serving (0 = no slot attached)",
      labels);
  metrics_.model_version->Set(static_cast<std::int64_t>(model_version()));
  metrics_.model_swaps = &registry.GetCounter(
      "cordial_engine_model_swaps_total",
      "Model generations hot-swapped in at a record boundary", labels);
}

IsolationActions PredictionEngine::Observe(const trace::MceRecord& record) {
  using Clock = std::chrono::steady_clock;
  // Record-boundary model swap: adopt a newly published generation BEFORE
  // this record is ingested, so every record is decided by exactly one
  // generation. Costs one relaxed atomic load when nothing was published.
  if (model_slot_ != nullptr &&
      model_slot_->version() != model_version_.load(std::memory_order_relaxed)) {
    RefreshModels();
    model_swaps_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_.model_swaps) metrics_.model_swaps->Increment();
  }
  // Threshold compare, not modulo — a division per record is measurable.
  const bool timed =
      metrics_.observe_latency != nullptr && observe_calls_ >= next_timed_;
  if (timed) next_timed_ = observe_calls_ + latency_sample_every_;
  ++observe_calls_;
  const Clock::time_point start = timed ? Clock::now() : Clock::time_point{};
  const auto record_latency = [&] {
    if (timed) {
      metrics_.observe_latency->Observe(
          std::chrono::duration<double>(Clock::now() - start).count());
    }
  };

  const trace::BankHistory* bank = replayer_.Ingest(record);
  if (bank == nullptr) {
    // Rejected by the drop skew policy: no profile, no decision, no stats
    // beyond the drop counter (keeps `events` == accepted records).
    ++stats_.records_skew_dropped;
    if (metrics_.skew_dropped) metrics_.skew_dropped->Increment();
    record_latency();
    return IsolationActions{};
  }
  ++stats_.events;
  if (metrics_.events) metrics_.events->Increment();
  const auto [it, inserted] =
      banks_.try_emplace(bank->bank_key, classifier_->extractor().max_uers());
  BankState& state = it->second;

  IsolationActions coverage;
  if (record.type == ErrorType::kUer) {
    ++stats_.uer_events;
    if (metrics_.uer_events) metrics_.uer_events->Increment();
    // First-failure coverage, judged against the ledger as it stood before
    // this record (the profile has not absorbed it yet).
    if (!state.profile.HasUerRow(record.address.row)) {
      coverage.first_failure = true;
      ++stats_.uer_rows_total;
      if (ledger_.IsRowSpared(bank->bank_key, record.address.row)) {
        coverage.covered_by_row_spare = true;
        ++stats_.uer_rows_covered;
      } else if (ledger_.IsBankSpared(bank->bank_key)) {
        coverage.covered_by_bank_spare = true;
        ++stats_.uer_rows_covered_by_bank;
      }
    }
  }

  state.profile.Observe(record);
  IsolationActions actions =
      StepCordial(state.cordial, state.profile, record, *classifier_,
                  *single_, *double_, config_.policy);
  actions.first_failure = coverage.first_failure;
  actions.covered_by_row_spare = coverage.covered_by_row_spare;
  actions.covered_by_bank_spare = coverage.covered_by_bank_spare;

  if (actions.classified_now) {
    ++stats_.banks_classified;
    if (metrics_.banks_classified) metrics_.banks_classified->Increment();
  }
  if (actions.bank_spare) {
    // TrySpareBank is idempotent and may be unavailable; count only banks
    // the ledger actually retired, mirroring the row accounting below.
    const std::uint64_t banks_before = ledger_.banks_spared();
    ledger_.TrySpareBank(bank->bank_key);
    const std::uint64_t banks_newly = ledger_.banks_spared() - banks_before;
    stats_.banks_bank_spared += banks_newly;
    if (metrics_.banks_spared) metrics_.banks_spared->Increment(banks_newly);
  }
  if (actions.prediction_issued) {
    ++stats_.predictions_issued;
    if (metrics_.block_predictions) metrics_.block_predictions->Increment();
  }
  // TrySpareRow is idempotent (true for an already-spared row), so count
  // newly isolated rows off the ledger's tally, not the return values.
  const std::uint64_t spared_before = ledger_.rows_spared();
  for (const RowSpan& span : actions.predicted_spans) {
    for (std::uint32_t row = span.first; row <= span.last; ++row) {
      ledger_.TrySpareRow(bank->bank_key, row);
    }
  }
  actions.rows_newly_spared = ledger_.rows_spared() - spared_before;
  stats_.rows_isolated += actions.rows_newly_spared;
  if (metrics_.rows_spared) {
    metrics_.rows_spared->Increment(actions.rows_newly_spared);
  }
  record_latency();
  return actions;
}

const BankProfile* PredictionEngine::FindProfile(std::uint64_t bank_key) const {
  const auto it = banks_.find(bank_key);
  return it == banks_.end() ? nullptr : &it->second.profile;
}

void PredictionEngine::SaveState(std::ostream& out) const {
  std::ostringstream payload;
  payload << "stats " << stats_.events << ' ' << stats_.uer_events << ' '
          << stats_.banks_classified << ' ' << stats_.banks_bank_spared << ' '
          << stats_.predictions_issued << ' ' << stats_.rows_isolated << ' '
          << stats_.uer_rows_total << ' ' << stats_.uer_rows_covered << ' '
          << stats_.uer_rows_covered_by_bank << ' '
          << stats_.records_skew_dropped << '\n';
  ledger_.Save(payload);
  replayer_.Save(payload);

  std::vector<std::uint64_t> keys;
  keys.reserve(banks_.size());
  for (const auto& [key, state] : banks_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  payload << "banks " << keys.size() << '\n';
  for (const std::uint64_t key : keys) {
    const BankState& state = banks_.at(key);
    payload << key << ' ' << state.cordial.uer_events_seen << ' '
            << state.cordial.anchors_used << ' '
            << (state.cordial.classified ? 1 : 0) << ' '
            << static_cast<int>(state.cordial.bank_class) << ' '
            << state.cordial.last_anchor_row << '\n';
    state.profile.Save(payload);
  }
  WriteFramed(out, kEngineStateMagic, kEngineStateVersion, payload.str());
}

struct PredictionEngine::StagedState::Impl {
  EngineStats stats;
  hbm::SparingLedger ledger;
  trace::StagedReplayerState replayer;
  std::unordered_map<std::uint64_t, BankState> banks;
};

PredictionEngine::StagedState::StagedState() : impl_(new Impl()) {}
PredictionEngine::StagedState::StagedState(StagedState&&) noexcept = default;
PredictionEngine::StagedState& PredictionEngine::StagedState::operator=(
    StagedState&&) noexcept = default;
PredictionEngine::StagedState::~StagedState() = default;

void PredictionEngine::RestoreState(std::istream& in) {
  CommitState(ParseState(in));
}

PredictionEngine::StagedState PredictionEngine::ParseState(
    std::istream& in) const {
  std::istringstream payload(
      ReadFramed(in, kEngineStateMagic, kEngineStateVersion));
  StagedState staged;
  ExpectToken(payload, "stats");
  EngineStats& stats = staged.impl_->stats;
  stats.events = ReadU64Token(payload, "engine stats");
  stats.uer_events = ReadU64Token(payload, "engine stats");
  stats.banks_classified = ReadU64Token(payload, "engine stats");
  stats.banks_bank_spared = ReadU64Token(payload, "engine stats");
  stats.predictions_issued = ReadU64Token(payload, "engine stats");
  stats.rows_isolated = ReadU64Token(payload, "engine stats");
  stats.uer_rows_total = ReadU64Token(payload, "engine stats");
  stats.uer_rows_covered = ReadU64Token(payload, "engine stats");
  stats.uer_rows_covered_by_bank = ReadU64Token(payload, "engine stats");
  stats.records_skew_dropped = ReadU64Token(payload, "engine stats");

  staged.impl_->ledger = hbm::SparingLedger::Load(payload);
  staged.impl_->replayer = replayer_.ParseState(payload);

  ExpectToken(payload, "banks");
  const std::uint64_t bank_count = ReadU64Token(payload, "engine banks");
  std::unordered_map<std::uint64_t, BankState>& banks = staged.impl_->banks;
  // Cap the reserve: a corrupt count fails below on a token read, and must
  // not pre-allocate an absurd table first.
  banks.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(bank_count, 1 << 16)));
  for (std::uint64_t b = 0; b < bank_count; ++b) {
    const std::uint64_t key = ReadU64Token(payload, "engine bank");
    const auto [it, inserted] =
        banks.try_emplace(key, classifier_->extractor().max_uers());
    if (!inserted) throw ParseError("engine bank: duplicate bank key");
    BankState& state = it->second;
    state.cordial.uer_events_seen = ReadU64Token(payload, "engine bank");
    state.cordial.anchors_used = ReadU64Token(payload, "engine bank");
    state.cordial.classified = ReadU64Token(payload, "engine bank") != 0;
    const std::int64_t bank_class = ReadI64Token(payload, "engine bank");
    if (bank_class < 0 || bank_class > 2) {
      throw ParseError("engine bank: unknown failure class");
    }
    state.cordial.bank_class = static_cast<hbm::FailureClass>(bank_class);
    state.cordial.last_anchor_row = ReadI64Token(payload, "engine bank");
    state.profile = BankProfile::Load(payload);
  }
  return staged;
}

void PredictionEngine::CommitState(StagedState&& staged) {
  stats_ = staged.impl_->stats;
  ledger_ = std::move(staged.impl_->ledger);
  replayer_.CommitState(std::move(staged.impl_->replayer));
  banks_ = std::move(staged.impl_->banks);
}

}  // namespace cordial::core
