// End-to-end Cordial pipeline (paper Fig 5 + §V).
//
// Orchestrates: bank grouping -> reference labelling -> 70:30 stratified
// split -> pattern-classifier training -> per-class cross-row predictor
// training -> Table III evaluation (pattern classification) -> Table IV
// evaluation (block-level prediction metrics + ICR for Cordial, the
// Neighbor-Rows industrial baseline, and the idealized in-row paradigm).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/labeler.hpp"
#include "core/crossrow.hpp"
#include "core/isolation.hpp"
#include "core/pattern_classifier.hpp"
#include "ml/metrics.hpp"
#include "trace/fleet.hpp"

namespace cordial::core {

struct PipelineConfig {
  ml::LearnerKind learner = ml::LearnerKind::kRandomForest;
  std::size_t max_uers = 3;  ///< UERs used for pattern classification
  CrossRowConfig crossrow;
  double test_fraction = 0.3;  ///< paper's 7:3 split
  hbm::SparingBudget budget;
  CordialPolicyConfig policy;
  std::uint32_t baseline_adjacency = 4;  ///< baseline isolates 2*adjacency rows
};

/// Prediction-quality bundle for one method (one row of Table IV).
struct PredictionEvaluation {
  std::string method;
  ml::ClassMetrics block_metrics;  ///< positive class over all (anchor, block)
  IcrResult icr;
};

struct PipelineResult {
  /// Table III for this pipeline's learner.
  ml::ConfusionMatrix pattern_confusion{hbm::kNumFailureClasses};
  /// Table IV rows.
  PredictionEvaluation cordial;
  PredictionEvaluation neighbor_baseline;
  IcrResult in_row_icr;

  std::size_t train_banks = 0;
  std::size_t test_banks = 0;
  std::size_t crossrow_train_samples_single = 0;
  std::size_t crossrow_train_samples_double = 0;
};

class CordialPipeline {
 public:
  CordialPipeline(const hbm::TopologyConfig& topology,
                  PipelineConfig config = {});

  const PipelineConfig& config() const { return config_; }

  /// Run the full train/evaluate cycle on a generated fleet. Reference
  /// labels come from the rule-based labeler applied to the complete bank
  /// history (hindsight), mirroring how field data is labelled.
  PipelineResult Run(const trace::GeneratedFleet& fleet,
                     std::uint64_t seed) const;

  /// Same, on pre-grouped bank histories (e.g. loaded from CSV).
  PipelineResult RunOnBanks(const std::vector<trace::BankHistory>& banks,
                            std::uint64_t seed) const;

 private:
  hbm::TopologyConfig topology_;
  PipelineConfig config_;
};

}  // namespace cordial::core
