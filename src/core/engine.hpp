// Online prediction engine: the single ingestion/inference path shared by
// the offline pipeline, the ICR replay and live streaming deployment.
//
// One `PredictionEngine` owns the trained models' wiring, a sparing ledger
// and per-bank incremental state (`core::BankProfile` + `CordialBankState`);
// `Observe(record)` consumes one MCE record and returns the isolation
// actions the Cordial policy took for it. The decision logic itself lives in
// the free function `StepCordial`, which the offline `CordialStrategy`
// replays through as well — so batch evaluation and live monitoring cannot
// drift apart.
//
// Every decision is computed from a BankProfile, never by rescanning raw
// event lists: ICR replay drops from O(events^2) to O(events) per bank, and
// streaming memory stays bounded (the engine's StreamReplayer retains only
// a window of raw records; profiles never need the dropped ones).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/crossrow.hpp"
#include "core/model_slot.hpp"
#include "core/pattern_classifier.hpp"
#include "hbm/address.hpp"
#include "hbm/sparing.hpp"
#include "obs/metrics.hpp"
#include "trace/replay.hpp"

namespace cordial::core {

/// Inclusive row range [first, last] within one bank.
struct RowSpan {
  std::uint32_t first = 0;
  std::uint32_t last = 0;

  friend bool operator==(const RowSpan&, const RowSpan&) = default;
};

struct CordialPolicyConfig {
  /// Bank-spare scattered-classified banks.
  bool bank_spare_scattered = true;
};

/// Per-bank Cordial decision state, advanced one UER event at a time.
struct CordialBankState {
  std::size_t uer_events_seen = 0;
  std::size_t anchors_used = 0;
  bool classified = false;
  hbm::FailureClass bank_class = hbm::FailureClass::kScattered;
  std::int64_t last_anchor_row = -1;
};

/// What the Cordial policy decided (and, in the engine, what happened) for
/// one observed record.
struct IsolationActions {
  // -- coverage accounting (filled by PredictionEngine::Observe only) --
  bool first_failure = false;  ///< record is a row's first UER in its bank
  bool covered_by_row_spare = false;
  bool covered_by_bank_spare = false;
  /// Rows this record's prediction newly isolated (ledger successes).
  std::size_t rows_newly_spared = 0;

  // -- policy decisions (filled by StepCordial) --
  bool classified_now = false;  ///< the bank was classified on this record
  hbm::FailureClass bank_class = hbm::FailureClass::kScattered;
  bool bank_spare = false;  ///< policy asks for a bank spare
  bool prediction_issued = false;
  std::vector<RowSpan> predicted_spans;  ///< rows the policy asks to spare

  bool covered() const { return covered_by_row_spare || covered_by_bank_spare; }

  friend bool operator==(const IsolationActions&,
                         const IsolationActions&) = default;
};

/// Advance the Cordial policy by one record whose bank state is `profile`
/// (which must already have absorbed the record). Pure decision logic: the
/// caller applies `bank_spare` / `predicted_spans` to its ledger. Shared by
/// PredictionEngine (live) and CordialStrategy (offline replay).
IsolationActions StepCordial(CordialBankState& state, const BankProfile& profile,
                             const trace::MceRecord& record,
                             const PatternClassifier& classifier,
                             const CrossRowPredictor& single_predictor,
                             const CrossRowPredictor& double_predictor,
                             const CordialPolicyConfig& policy);

struct EngineConfig {
  CordialPolicyConfig policy;
  hbm::SparingBudget budget;
  /// Raw-record retention for the engine's stream replayer. Decisions come
  /// from BankProfile accumulators, so any bound (even 1) leaves them
  /// bit-identical; the retained window only serves debugging/inspection.
  trace::RetentionPolicy retention{64};
  /// Logical->physical row map of the device feeding this engine. With a
  /// non-identity mapping every incoming record's row is remapped to
  /// physical space before ingestion, so locality features, predictions,
  /// ledger rows and checkpoints all live in physical row coordinates.
  /// Like the rest of the config it is NOT serialized: a restoring engine
  /// must be constructed with the same mapping.
  hbm::RowMapping row_mapping;
};

/// Payload encoding of a full engine snapshot. Text (frame v1) is the
/// original human-greppable token stream; binary (frame v2, the
/// persist/binary_io.hpp codec) is the compact fixed-width form chain
/// checkpoints use. Both restore bit-identically; RestoreState dispatches
/// on the frame version it finds.
enum class StateEncoding {
  kText,
  kBinary,
};

/// Running tallies over everything the engine observed.
struct EngineStats {
  std::size_t events = 0;
  std::size_t uer_events = 0;
  std::size_t banks_classified = 0;
  std::size_t banks_bank_spared = 0;
  std::size_t predictions_issued = 0;
  std::size_t rows_isolated = 0;
  std::size_t uer_rows_total = 0;
  std::size_t uer_rows_covered = 0;  ///< first failure hit a spared row
  std::size_t uer_rows_covered_by_bank = 0;
  /// Records rejected by the replayer's time-skew drop policy; such records
  /// never reach a profile or the policy and are excluded from `events`.
  std::size_t records_skew_dropped = 0;

  friend bool operator==(const EngineStats&, const EngineStats&) = default;

  /// The paper's ICR: row-level coverage only (matches IcrResult::Icr).
  double Icr() const {
    return uer_rows_total == 0
               ? 0.0
               : static_cast<double>(uer_rows_covered) /
                     static_cast<double>(uer_rows_total);
  }
  double IcrWithBankSparing() const {
    return uer_rows_total == 0
               ? 0.0
               : static_cast<double>(uer_rows_covered +
                                     uer_rows_covered_by_bank) /
                     static_cast<double>(uer_rows_total);
  }
};

/// Owns the online deployment state: stream ingestion, per-bank profiles,
/// Cordial decision state, the sparing ledger and coverage stats. Models are
/// held by reference and must be trained and outlive the engine.
class PredictionEngine {
 public:
  /// `double_predictor` may be nullptr; the single-row predictor then serves
  /// both clustering classes (as the examples do when no double-row training
  /// banks exist).
  PredictionEngine(const hbm::TopologyConfig& topology,
                   const PatternClassifier& classifier,
                   const CrossRowPredictor& single_predictor,
                   const CrossRowPredictor* double_predictor = nullptr,
                   EngineConfig config = {});

  /// Ingest one record (records must arrive in non-decreasing time order
  /// across the whole fleet) and apply the Cordial policy for its bank.
  /// Under RetentionPolicy::kDrop a time-skewed record is counted in
  /// `stats().records_skew_dropped` and returns empty actions.
  IsolationActions Observe(const trace::MceRecord& record);

  /// Checkpoint the full mutable state (stats, ledger, replayer window,
  /// per-bank profiles and Cordial decision state) as a versioned framed
  /// stream. Deterministic: equal state serializes byte-identically.
  /// Models and config are NOT serialized — a restoring engine must be
  /// constructed with the same models, topology and config.
  void SaveState(std::ostream& out,
                 StateEncoding encoding = StateEncoding::kText) const;

  /// Replace this engine's mutable state with a SaveState stream's. Throws
  /// ParseError on malformed input or version mismatch. Strong guarantee:
  /// after a throw the engine is unchanged (the whole stream is parsed
  /// into a StagedState before anything commits), so a recovery loop can
  /// try the next checkpoint candidate on the same engine. After a
  /// successful RestoreState the engine resumes bit-identically to the
  /// saver.
  void RestoreState(std::istream& in);

  /// A fully parsed — but not yet adopted — SaveState stream (opaque,
  /// move-only). ParseState never touches the engine; CommitState never
  /// throws. RestoreState is ParseState + CommitState; the split exists so
  /// a multi-engine checkpoint (serve::FleetServer) can parse every
  /// section before committing any of them — a corrupt shard N must not
  /// leave shards 0..N-1 restored and the rest stale.
  class StagedState {
   public:
    StagedState(StagedState&&) noexcept;
    StagedState& operator=(StagedState&&) noexcept;
    ~StagedState();

   private:
    friend class PredictionEngine;
    StagedState();
    struct Impl;
    std::unique_ptr<Impl> impl_;
  };
  StagedState ParseState(std::istream& in) const;
  void CommitState(StagedState&& staged);

  // --- delta checkpoints ---------------------------------------------------
  // The engine tracks which banks changed since the last checkpoint: every
  // Observe stamps the record's bank with the current snapshot epoch, and
  // MarkCheckpointClean (called after a checkpoint is durably on disk)
  // advances the epoch, making every bank clean in O(1). A delta snapshot
  // carries only the dirty banks plus all global counters; applied on top of
  // the full snapshot it chains from, it restores bit-identically to a full
  // snapshot taken at the same record boundary.

  /// Serialize a cordial_engine_delta frame (always binary): the banks
  /// dirtied since the last MarkCheckpointClean, plus stats / ledger /
  /// replayer counters. Const — the dirty set is NOT cleared here, so a
  /// failed write loses nothing; call MarkCheckpointClean once the bytes
  /// are durable. Returns the number of banks written.
  std::uint64_t SaveDeltaState(std::ostream& out) const;

  /// Start a new snapshot epoch: every bank becomes clean. Call only after
  /// the snapshot (full or delta) that captured the current state is
  /// durably persisted.
  void MarkCheckpointClean();

  /// Banks dirtied since the last MarkCheckpointClean.
  std::size_t dirty_bank_count() const { return dirty_banks_; }
  std::size_t bank_count() const { return banks_.size(); }

  /// Parsed-but-unapplied delta (opaque, move-only), mirroring StagedState:
  /// ParseDeltaState never touches the engine, CommitDeltaState never
  /// throws, and a fleet checkpoint stages every shard's delta before
  /// committing any of them.
  class StagedDelta {
   public:
    StagedDelta(StagedDelta&&) noexcept;
    StagedDelta& operator=(StagedDelta&&) noexcept;
    ~StagedDelta();

   private:
    friend class PredictionEngine;
    StagedDelta();
    struct Impl;
    std::unique_ptr<Impl> impl_;
  };
  StagedDelta ParseDeltaState(std::istream& in) const;
  /// Upsert the delta's banks over the current state and overwrite the
  /// global counters. Committed banks come out clean (they now match the
  /// checkpoint that carried them).
  void CommitDeltaState(StagedDelta&& staged);
  /// ParseDeltaState + CommitDeltaState.
  void ApplyDeltaState(std::istream& in);

  /// Register this engine's live metrics (`cordial_engine_*` counters, the
  /// Observe latency histogram, and the replayer's retention-eviction
  /// counter) in `registry` and start feeding them. `labels` is attached to
  /// every metric (a serving shard passes its shard index). The registry
  /// must outlive the engine. Without an attach, Observe pays nothing —
  /// null-pointer checks only. Counters are process-local and monotonic:
  /// RestoreState rewinds stats() but never the attached counters
  /// (Prometheus counter semantics).
  ///
  /// `latency_sample_every` strides the Observe latency histogram: only
  /// every Nth call is timed (counters stay exact — they cost relaxed
  /// atomics, while timing costs two clock reads per sample). 1 times every
  /// call; serving shards default to a coarser stride (QueueConfig).
  void AttachMetrics(obs::MetricRegistry& registry,
                     const obs::Labels& labels = {},
                     std::size_t latency_sample_every = 1);
  bool instrumented() const { return metrics_.observe_latency != nullptr; }

  /// Subscribe this engine to a published model slot. From now on every
  /// Observe polls the slot's version (one relaxed atomic load) and, when a
  /// new generation was published, adopts it BEFORE ingesting the record —
  /// a swap always lands on an exact record boundary, and an in-flight
  /// Observe finishes entirely on the generation it started with. The new
  /// generation must keep the feature layout compatible with the engine's
  /// accumulated per-bank state (same classification truncation depth and
  /// cross-row trigger contract); violations are a ContractViolation at
  /// swap time, leaving the previous generation serving.
  ///
  /// The slot must outlive the engine. Call while no Observe is in flight
  /// (single-threaded engines anywhere; sharded engines before Start or
  /// while drained). The constructor-time models keep serving until the
  /// slot's version moves past the attached generation. Model versions are
  /// NOT persisted by SaveState: a restored engine serves whatever its
  /// slot currently publishes, which is what keeps checkpoints byte-
  /// identical across swap histories.
  void AttachModelSlot(const ModelSlot& slot);
  /// Version of the generation currently serving (0 when never attached).
  /// Safe to read from any thread while the engine runs (relaxed atomic) —
  /// the /modelz admin page polls it against live shard workers.
  std::uint64_t model_version() const {
    return model_version_.load(std::memory_order_relaxed);
  }
  /// Generations adopted since construction (attach itself not counted).
  std::uint64_t model_swaps() const {
    return model_swaps_.load(std::memory_order_relaxed);
  }

  const EngineStats& stats() const { return stats_; }
  const hbm::SparingLedger& ledger() const { return ledger_; }
  const trace::StreamReplayer& replayer() const { return replayer_; }
  const hbm::AddressCodec& codec() const { return codec_; }
  const EngineConfig& config() const { return config_; }

  /// Incremental profile of a bank, or nullptr if it produced no events.
  const BankProfile* FindProfile(std::uint64_t bank_key) const;

  double now() const { return replayer_.now(); }

 private:
  struct BankState {
    BankProfile profile;
    CordialBankState cordial;
    /// Snapshot epoch this bank was last mutated in; dirty iff it equals
    /// the engine's current snapshot_epoch_. 0 (pre-first-epoch) == clean.
    std::uint64_t dirty_epoch = 0;
    explicit BankState(std::size_t max_uers) : profile(max_uers) {}
  };

  /// Hot-path metric handles, all null until AttachMetrics.
  struct Metrics {
    obs::Histogram* observe_latency = nullptr;
    obs::Counter* events = nullptr;
    obs::Counter* uer_events = nullptr;
    obs::Counter* banks_classified = nullptr;
    obs::Counter* banks_spared = nullptr;
    obs::Counter* block_predictions = nullptr;
    obs::Counter* rows_spared = nullptr;
    obs::Counter* skew_dropped = nullptr;
    obs::Gauge* model_version = nullptr;
    obs::Counter* model_swaps = nullptr;
  };

  /// Adopt the slot's current generation (record-boundary call site).
  void RefreshModels();

  hbm::AddressCodec codec_;
  // Always non-null; constructor-time referees until a slot swap replaces
  // them with the active ModelSet's models (kept alive by active_models_).
  const PatternClassifier* classifier_;
  const CrossRowPredictor* single_;
  const CrossRowPredictor* double_;
  const ModelSlot* model_slot_ = nullptr;
  std::shared_ptr<const ModelSet> active_models_;
  /// Generation serving / generations adopted. Written only by the Observe
  /// thread; atomic (relaxed) so status pages can read them while running.
  /// Never persisted — checkpoints stay byte-identical across swap
  /// histories.
  std::atomic<std::uint64_t> model_version_{0};
  std::atomic<std::uint64_t> model_swaps_{0};
  EngineConfig config_;
  Metrics metrics_;
  std::size_t latency_sample_every_ = 1;
  std::size_t observe_calls_ = 0;  ///< for latency sampling; never persisted
  std::size_t next_timed_ = 0;     ///< observe_calls_ value to time next
  trace::StreamReplayer replayer_;
  hbm::SparingLedger ledger_;
  std::unordered_map<std::uint64_t, BankState> banks_;
  EngineStats stats_;
  /// Current snapshot epoch (starts at 1 so default dirty_epoch 0 = clean)
  /// and an O(1)-maintained count of banks stamped with it.
  std::uint64_t snapshot_epoch_ = 1;
  std::size_t dirty_banks_ = 0;
};

}  // namespace cordial::core
