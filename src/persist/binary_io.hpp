// Fixed-width little-endian binary codec primitives for checkpoint
// payloads — the byte-level layer under engine-state frame v2 and the
// delta/manifest formats (DESIGN.md §14).
//
// Header-only on purpose: the per-component encoders live next to the
// state they serialize (BankProfile, SparingLedger, StreamReplayer,
// PredictionEngine), which sit below cordial_persist in the link graph.
// cordial_common already exports the src/ include root, so any library can
// include this without a dependency edge; the persist *library* owns the
// file-level formats (chains, manifests, folding) built on top.
//
// Conventions:
//   * all integers little-endian, fixed width (u8/u32/u64/i64);
//   * doubles as their raw IEEE-754 bit pattern (via memcpy), so every
//     value — including nan/-nan/inf/-inf and signalling payloads — round-
//     trips bit-exactly, matching the %.17g + strtod guarantee of the text
//     codec without the formatting cost;
//   * variable-size sequences carry an explicit leading count, and readers
//     must sanity-check counts against remaining() before reserving — a
//     flipped bit in a count must be a ParseError, not a bad_alloc.
//
// BinaryReader throws ParseError (never reads out of bounds) so corrupt
// payloads fail closed through the same exception path as the text codec;
// the CRC in the enclosing frame catches corruption first in practice, and
// these checks make the codec safe even on an unframed buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/check.hpp"

namespace cordial::persist {

/// Appends fixed-width little-endian fields to a std::string buffer.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string& out) : out_(out) {}

  void U8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }

  void U32(std::uint32_t value) {
    char bytes[4];
    for (int i = 0; i < 4; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
    }
    out_.append(bytes, sizeof(bytes));
  }

  void U64(std::uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
    }
    out_.append(bytes, sizeof(bytes));
  }

  void I64(std::int64_t value) { U64(static_cast<std::uint64_t>(value)); }

  void F64(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
    std::memcpy(&bits, &value, sizeof(bits));
    U64(bits);
  }

  void Bytes(std::string_view data) { out_.append(data.data(), data.size()); }

  std::string& buffer() { return out_; }

 private:
  std::string& out_;
};

/// Bounds-checked reader over an in-memory payload. Every accessor throws
/// ParseError naming `context` when fewer bytes remain than the field needs.
class BinaryReader {
 public:
  BinaryReader(std::string_view data, const char* context)
      : data_(data), context_(context) {}

  std::uint8_t U8() {
    Need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t U32() {
    Need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  std::uint64_t U64() {
    Need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  double F64() {
    const std::uint64_t bits = U64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::string_view Bytes(std::size_t n) {
    Need(n);
    const std::string_view view = data_.substr(pos_, n);
    pos_ += n;
    return view;
  }

  /// Read a leading element count and reject it unless `count *
  /// min_bytes_per_element` could still fit in the remaining payload — the
  /// reserve-cap guard for corrupt counts, applied before any allocation.
  std::uint64_t Count(std::size_t min_bytes_per_element) {
    const std::uint64_t count = U64();
    CheckCount(count, min_bytes_per_element);
    return count;
  }

  std::uint32_t Count32(std::size_t min_bytes_per_element) {
    const std::uint32_t count = U32();
    CheckCount(count, min_bytes_per_element);
    return count;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  /// Require the payload to be fully consumed — trailing garbage after the
  /// last field means the buffer is not what the writer produced.
  void ExpectEnd() const {
    if (!AtEnd()) {
      throw ParseError(std::string(context_) + ": " +
                       std::to_string(remaining()) +
                       " unexpected trailing byte(s)");
    }
  }

 private:
  void Need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw ParseError(std::string(context_) + ": truncated payload (need " +
                       std::to_string(n) + " byte(s) at offset " +
                       std::to_string(pos_) + ", have " +
                       std::to_string(remaining()) + ")");
    }
  }

  void CheckCount(std::uint64_t count, std::size_t min_bytes_per_element) const {
    if (min_bytes_per_element != 0 &&
        count > remaining() / min_bytes_per_element) {
      throw ParseError(std::string(context_) + ": implausible element count " +
                       std::to_string(count) + " (only " +
                       std::to_string(remaining()) + " payload byte(s) left)");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  const char* context_;
};

}  // namespace cordial::persist
