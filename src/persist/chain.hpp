// Checkpoint chains: full + delta members under one manifest, with
// fail-closed recovery and compaction (DESIGN.md §14).
//
// A chain lives in one directory:
//
//   full-<epoch>.ckpt         binary full fleet checkpoint (epoch base)
//   delta-<epoch>.<seq>.ckpt  dirty-bank deltas, seq = 1..n, contiguous
//   MANIFEST (+ .prev)        framed index: every member's size and CRC-32
//
// Every member is itself a CRC-framed stream, and the manifest re-records
// each member's whole-file CRC — so recovery can reject a member that was
// truncated, bit-flipped, or swapped without parsing it. The manifest is
// written durably (WriteFileDurably, retain_prev) AFTER its member, so a
// crash between the two leaves an unlisted member file that the next write
// simply overwrites; members themselves skip `.prev` (their history IS the
// chain).
//
// Recovery policy (fail closed to the newest intact prefix):
//   1. load MANIFEST, falling back to MANIFEST.prev (corrupt ones are
//      quarantined to `.corrupt`);
//   2. restore the chain's full member, then apply its deltas in sequence
//      order; the first corrupt member is quarantined BY NAME, the members
//      after it are dropped, and the state stands at the intact prefix;
//   3. a corrupt full member fails the whole epoch: scan the directory for
//      an older epoch's chain and repeat;
//   4. nothing restorable → fresh start.
// Any fallback (quarantine, scan rescue, fresh start) forces the next
// Write() to begin a new epoch with a full snapshot, so a damaged chain is
// never extended.
//
// Write policy: Write() appends a delta while the chain is appendable and
// shorter than compact_every deltas, then folds by writing a fresh full
// from live state (new epoch) and pruning the old generation. The dirty
// set is cleared only after both the member and the manifest are durable —
// a failed write loses nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cordial::serve {
class FleetServer;
}  // namespace cordial::serve

namespace cordial::persist {

inline constexpr char kManifestMagic[] = "cordial_ckpt_manifest";
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr char kManifestFileName[] = "MANIFEST";

/// One member of a chain, as the manifest records it.
struct ChainEntry {
  bool is_full = false;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;  ///< 0 for the full member, 1..n for deltas
  std::string file;       ///< file name within the chain directory
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;  ///< CRC-32 of the whole member file
};

struct Manifest {
  std::uint64_t epoch = 0;          ///< current chain's epoch (0 = none yet)
  std::vector<ChainEntry> entries;  ///< full first, then deltas by seq
};

/// Framed manifest codec (text payload behind kManifestMagic).
std::string EncodeManifest(const Manifest& manifest);
Manifest DecodeManifest(std::istream& in);  ///< throws ParseError

struct ChainConfig {
  std::string directory;
  /// Deltas per epoch before Write() folds the chain into a fresh full.
  std::size_t compact_every = 16;
};

struct ChainWriteResult {
  bool full = false;  ///< member kind written
  std::string file;   ///< full path of the member
  std::uint64_t bytes = 0;
  std::uint64_t banks_written = 0;  ///< banks serialized into the member
  std::size_t chain_length = 0;     ///< members now in the chain (incl. full)
};

struct ChainRecoveryOutcome {
  /// Summary of what restored, e.g. "full-000003.ckpt + 2 delta(s)";
  /// empty = fresh start.
  std::string restored_from;
  std::vector<std::string> applied;      ///< members applied, in order
  std::vector<std::string> quarantined;  ///< corrupt members/manifests, renamed
  std::vector<std::string> errors;       ///< one reason per quarantined file
  bool fell_back = false;  ///< newest chain could not be fully used

  bool fresh_start() const { return restored_from.empty(); }
};

/// Owns one chain directory: boot recovery plus the full/delta write and
/// compaction policy. Not thread-safe; the serving daemon calls it from its
/// checkpoint path while the server is drained.
class CheckpointChain {
 public:
  explicit CheckpointChain(ChainConfig config);

  /// Boot-time recovery (policy above). Also positions the writer: after an
  /// intact-chain restore Write() keeps appending deltas to it; after any
  /// fallback the next Write() starts a new epoch with a full.
  ChainRecoveryOutcome Recover(serve::FleetServer& server);

  /// Write the next member per policy (delta while appendable and short of
  /// compact_every, else a full that starts a new epoch and prunes the old
  /// one). The server must be drained. Clears the server's dirty set only
  /// after the member and manifest are durable.
  ChainWriteResult Write(serve::FleetServer& server);
  /// Force a full member (new epoch) regardless of chain length.
  ChainWriteResult WriteFull(serve::FleetServer& server);

  /// Members in the current chain (0 when the next write starts fresh).
  std::size_t chain_length() const {
    return can_append_ ? manifest_.entries.size() : 0;
  }
  std::uint64_t epoch() const { return manifest_.epoch; }
  const ChainConfig& config() const { return config_; }

 private:
  ChainWriteResult WriteDelta(serve::FleetServer& server);
  void PersistManifest() const;
  std::string PathOf(const std::string& file) const;

  ChainConfig config_;
  Manifest manifest_;
  /// True only while the on-disk chain matches manifest_ and may grow.
  bool can_append_ = false;
};

// --- offline inspection / folding (no models, binary members only) --------

/// What the inspector learned about one chain member.
struct MemberInfo {
  ChainEntry entry;
  bool exists = false;
  bool crc_ok = false;  ///< whole-file CRC matches the manifest
  std::uint64_t actual_bytes = 0;
  std::size_t shard_count = 0;   ///< from structural parse (0 on failure)
  std::uint64_t bank_count = 0;  ///< bank records in the member
  std::string error;             ///< empty = member is sound
};

struct ChainInspection {
  bool has_manifest = false;
  Manifest manifest;
  std::vector<MemberInfo> members;
  std::vector<std::string> errors;  ///< manifest-level problems

  bool ok() const {
    if (!has_manifest || !errors.empty()) return false;
    for (const MemberInfo& m : members) {
      if (!m.exists || !m.crc_ok || !m.error.empty()) return false;
    }
    return true;
  }
};

/// Verify a chain offline: manifest, member existence, CRCs, structural
/// shape (shard counts, bank records). Never throws; problems land in the
/// returned report.
ChainInspection InspectChain(const std::string& directory);

/// Fold the chain into the bytes of an equivalent binary full checkpoint
/// (cordial_fleet_checkpoint frame) without models or topology: the newest
/// member's header section is kept verbatim and bank records are overlaid
/// by key. Byte-identical to what the serving process would write as a
/// binary full at the same record boundary. Throws ParseError on a missing/
/// corrupt manifest or member, or on text-encoded members.
std::string FoldChain(const std::string& directory);

/// Force-compact on disk: fold the chain, write it as full-<epoch+1>.ckpt
/// with a fresh manifest, and prune the previous generation's files.
/// Throws on a chain FoldChain rejects.
ChainWriteResult CompactChainFiles(const std::string& directory);

}  // namespace cordial::persist
