#include "persist/chain.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "core/persist.hpp"
#include "persist/binary_io.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fleet_server.hpp"

namespace cordial::persist {

namespace {

std::string FullFileName(std::uint64_t epoch) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "full-%06llu.ckpt",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string DeltaFileName(std::uint64_t epoch, std::uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "delta-%06llu.%04llu.ckpt",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(seq));
  return buf;
}

std::string JoinPath(const std::string& directory, const std::string& file) {
  if (directory.empty()) return file;
  if (directory.back() == '/') return directory + file;
  return directory + "/" + file;
}

bool ReadFileBytes(const std::string& path, std::string& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  bytes = buffer.str();
  return true;
}

/// Rename a corrupt file to `<file>.corrupt` for post-mortem inspection.
void Quarantine(const std::string& path) {
  std::rename(path.c_str(), (path + ".corrupt").c_str());
}

/// Parse "full-<epoch>.ckpt" / "delta-<epoch>.<seq>.ckpt". Returns false
/// for anything else (manifests, tmp files, quarantined members).
bool ParseMemberName(const std::string& name, ChainEntry& entry) {
  const auto digits = [](const std::string& s, std::size_t from,
                         std::size_t to, std::uint64_t& value) {
    if (from >= to) return false;
    value = 0;
    for (std::size_t i = from; i < to; ++i) {
      if (s[i] < '0' || s[i] > '9') return false;
      value = value * 10 + static_cast<std::uint64_t>(s[i] - '0');
    }
    return true;
  };
  const std::string suffix = ".ckpt";
  if (name.size() <= suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::size_t end = name.size() - suffix.size();
  if (name.rfind("full-", 0) == 0) {
    if (!digits(name, 5, end, entry.epoch)) return false;
    entry.is_full = true;
    entry.seq = 0;
    entry.file = name;
    return true;
  }
  if (name.rfind("delta-", 0) == 0) {
    const std::size_t dot = name.find('.', 6);
    if (dot == std::string::npos || dot >= end) return false;
    if (!digits(name, 6, dot, entry.epoch)) return false;
    if (!digits(name, dot + 1, end, entry.seq)) return false;
    entry.is_full = false;
    entry.file = name;
    return true;
  }
  return false;
}

/// All chain-member files in `directory` (by name shape only).
std::vector<ChainEntry> ScanMembers(const std::string& directory) {
  std::vector<ChainEntry> members;
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) return members;
  while (dirent* ent = ::readdir(dir)) {
    ChainEntry entry;
    if (ParseMemberName(ent->d_name, entry)) members.push_back(entry);
  }
  ::closedir(dir);
  return members;
}

/// Group scanned members into restore candidates, newest epoch first: each
/// candidate is a full plus its contiguous deltas (seq 1..n, stopping at
/// the first gap). Epochs without a full cannot be restored and are
/// skipped.
std::vector<std::vector<ChainEntry>> ScanChains(const std::string& directory) {
  std::map<std::uint64_t, std::vector<ChainEntry>> by_epoch;
  for (ChainEntry& entry : ScanMembers(directory)) {
    by_epoch[entry.epoch].push_back(std::move(entry));
  }
  std::vector<std::vector<ChainEntry>> chains;
  for (auto it = by_epoch.rbegin(); it != by_epoch.rend(); ++it) {
    std::vector<ChainEntry>& members = it->second;
    std::sort(members.begin(), members.end(),
              [](const ChainEntry& a, const ChainEntry& b) {
                if (a.is_full != b.is_full) return a.is_full;
                return a.seq < b.seq;
              });
    if (members.empty() || !members.front().is_full) continue;
    std::vector<ChainEntry> chain;
    chain.push_back(members.front());
    std::uint64_t expect_seq = 1;
    for (std::size_t i = 1; i < members.size(); ++i) {
      if (members[i].is_full || members[i].seq != expect_seq) break;
      chain.push_back(members[i]);
      ++expect_seq;
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

std::uint64_t MaxEpochOnDisk(const std::string& directory) {
  std::uint64_t max_epoch = 0;
  for (const ChainEntry& entry : ScanMembers(directory)) {
    max_epoch = std::max(max_epoch, entry.epoch);
  }
  return max_epoch;
}

/// Load and decode a manifest file. Returns false when the file does not
/// exist; throws ParseError when it exists but is malformed.
bool LoadManifestFile(const std::string& path, Manifest& manifest) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  manifest = DecodeManifest(in);
  return true;
}

/// Remove every chain-member file in `directory` that `keep` does not list.
/// Quarantined (`.corrupt`) files and manifests are untouched. Best-effort:
/// pruning runs only after the new manifest is durable, so a leftover file
/// is garbage, not state.
void PruneExcept(const std::string& directory, const Manifest& keep) {
  for (const ChainEntry& entry : ScanMembers(directory)) {
    bool kept = false;
    for (const ChainEntry& k : keep.entries) {
      if (k.file == entry.file) {
        kept = true;
        break;
      }
    }
    if (!kept) ::unlink(JoinPath(directory, entry.file).c_str());
  }
}

// --- structural member images (offline fold) ------------------------------

/// One shard's section of a member, kept as opaque bytes: the header blob
/// verbatim plus each bank's blob keyed for overlay. The fold never decodes
/// bank contents — it only needs the self-delimiting lengths.
struct ShardImage {
  std::string header;
  std::map<std::uint64_t, std::string> banks;  ///< sorted, as the codec writes
};

struct FleetImage {
  bool is_delta = false;
  std::vector<ShardImage> shards;
};

FleetImage ParseMemberImage(const std::string& bytes,
                            const std::string& member) {
  std::istringstream in(bytes);
  const std::string magic = PeekMagic(in);
  FleetImage image;
  std::string payload;
  if (magic == serve::kFleetCheckpointMagic) {
    payload = ReadFramed(in, serve::kFleetCheckpointMagic,
                         serve::kFleetCheckpointVersion);
  } else if (magic == serve::kFleetDeltaMagic) {
    image.is_delta = true;
    payload = ReadFramed(in, serve::kFleetDeltaMagic, serve::kFleetDeltaVersion);
  } else {
    throw ParseError(member + ": not a chain member (magic \"" + magic +
                     "\")");
  }
  std::istringstream sections(payload);
  ExpectToken(sections, "shards");
  const std::uint64_t shard_count = ReadU64Token(sections, "chain member");
  image.shards.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(shard_count, 1u << 12)));
  for (std::uint64_t s = 0; s < shard_count; ++s) {
    std::string engine_payload;
    if (image.is_delta) {
      engine_payload = ReadFramed(sections, core::kEngineDeltaMagic,
                                  core::kEngineDeltaVersion);
    } else {
      std::uint32_t version = 0;
      engine_payload = ReadFramedAny(
          sections, core::kEngineStateMagic,
          {core::kEngineStateVersion, core::kEngineStateBinaryVersion},
          &version);
      if (version != core::kEngineStateBinaryVersion) {
        throw ParseError(member +
                         ": text-encoded engine payload; the offline fold "
                         "needs binary members (run the server with "
                         "--checkpoint-mode=delta, which writes binary "
                         "fulls)");
      }
    }
    BinaryReader reader(engine_payload, "chain member shard");
    ShardImage shard;
    const std::uint32_t header_len = reader.Count32(1);
    shard.header.assign(reader.Bytes(header_len));
    const std::uint64_t bank_count = reader.Count(8 + 4);
    for (std::uint64_t b = 0; b < bank_count; ++b) {
      const std::uint64_t key = reader.U64();
      const std::uint32_t blob_len = reader.Count32(1);
      if (!shard.banks.emplace(key, std::string(reader.Bytes(blob_len)))
               .second) {
        throw ParseError(member + ": duplicate bank key in shard section");
      }
    }
    reader.ExpectEnd();
    image.shards.push_back(std::move(shard));
  }
  return image;
}

/// Apply a delta image on top of a full image: headers are replaced (the
/// delta carries the newest global counters), bank blobs overlay by key.
void OverlayImage(FleetImage& base, FleetImage&& delta,
                  const std::string& member) {
  if (delta.shards.size() != base.shards.size()) {
    throw ParseError(member + ": delta has " +
                     std::to_string(delta.shards.size()) +
                     " shard(s) but the chain's full has " +
                     std::to_string(base.shards.size()));
  }
  for (std::size_t s = 0; s < base.shards.size(); ++s) {
    base.shards[s].header = std::move(delta.shards[s].header);
    for (auto& [key, blob] : delta.shards[s].banks) {
      base.shards[s].banks[key] = std::move(blob);
    }
  }
}

/// Serialize an image as the bytes of a binary full checkpoint — the same
/// frame nesting and field layout the live server writes, so a fold of
/// full+deltas is byte-identical to the full the server would have written
/// at the same record boundary.
std::string SerializeImageAsFull(const FleetImage& image) {
  std::ostringstream payload;
  payload << "shards " << image.shards.size() << '\n';
  for (const ShardImage& shard : image.shards) {
    std::string engine_payload;
    BinaryWriter writer(engine_payload);
    writer.U32(static_cast<std::uint32_t>(shard.header.size()));
    writer.Bytes(shard.header);
    writer.U64(shard.banks.size());
    for (const auto& [key, blob] : shard.banks) {
      writer.U64(key);
      writer.U32(static_cast<std::uint32_t>(blob.size()));
      writer.Bytes(blob);
    }
    WriteFramed(payload, core::kEngineStateMagic,
                core::kEngineStateBinaryVersion, engine_payload);
  }
  std::ostringstream out;
  WriteFramed(out, serve::kFleetCheckpointMagic, serve::kFleetCheckpointVersion,
              payload.str());
  return out.str();
}

/// Load the manifest for an offline tool: MANIFEST, then MANIFEST.prev.
/// Throws ParseError naming the directory when neither is usable.
Manifest RequireManifest(const std::string& directory) {
  Manifest manifest;
  const std::string primary = JoinPath(directory, kManifestFileName);
  std::string first_error;
  try {
    if (LoadManifestFile(primary, manifest)) return manifest;
    first_error = primary + ": no such file";
  } catch (const ParseError& e) {
    first_error = primary + ": " + e.what();
  }
  try {
    if (LoadManifestFile(primary + ".prev", manifest)) return manifest;
  } catch (const ParseError&) {
  }
  throw ParseError("no usable chain manifest in " + directory + " (" +
                   first_error + ")");
}

/// Read one member's bytes and require the manifest's size + CRC to match.
std::string RequireMemberBytes(const std::string& directory,
                               const ChainEntry& entry) {
  const std::string path = JoinPath(directory, entry.file);
  std::string bytes;
  if (!ReadFileBytes(path, bytes)) {
    throw ParseError(entry.file + ": chain member missing");
  }
  if (bytes.size() != entry.bytes || Crc32(bytes) != entry.crc32) {
    throw ParseError(entry.file +
                     ": chain member does not match its manifest record "
                     "(size/CRC-32 mismatch)");
  }
  return bytes;
}

FleetImage FoldManifest(const std::string& directory,
                        const Manifest& manifest) {
  CORDIAL_CHECK_MSG(!manifest.entries.empty(), "fold: empty manifest");
  FleetImage image = ParseMemberImage(
      RequireMemberBytes(directory, manifest.entries.front()),
      manifest.entries.front().file);
  if (image.is_delta) {
    throw ParseError(manifest.entries.front().file +
                     ": chain's first member is not a full checkpoint");
  }
  for (std::size_t i = 1; i < manifest.entries.size(); ++i) {
    const ChainEntry& entry = manifest.entries[i];
    FleetImage delta =
        ParseMemberImage(RequireMemberBytes(directory, entry), entry.file);
    if (!delta.is_delta) {
      throw ParseError(entry.file + ": expected a delta member");
    }
    OverlayImage(image, std::move(delta), entry.file);
  }
  return image;
}

}  // namespace

// --- manifest codec -------------------------------------------------------

std::string EncodeManifest(const Manifest& manifest) {
  std::ostringstream payload;
  payload << "epoch " << manifest.epoch << '\n';
  payload << "entries " << manifest.entries.size() << '\n';
  for (const ChainEntry& entry : manifest.entries) {
    payload << (entry.is_full ? "full" : "delta") << ' ' << entry.epoch << ' '
            << entry.seq << ' ' << entry.bytes << ' ' << entry.crc32 << ' '
            << entry.file << '\n';
  }
  std::ostringstream out;
  WriteFramed(out, kManifestMagic, kManifestVersion, payload.str());
  return out.str();
}

Manifest DecodeManifest(std::istream& in) {
  std::istringstream payload(ReadFramed(in, kManifestMagic, kManifestVersion));
  Manifest manifest;
  ExpectToken(payload, "epoch");
  manifest.epoch = ReadU64Token(payload, "manifest epoch");
  ExpectToken(payload, "entries");
  const std::uint64_t count = ReadU64Token(payload, "manifest entries");
  if (count == 0) throw ParseError("manifest: chain has no members");
  manifest.entries.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 16)));
  for (std::uint64_t i = 0; i < count; ++i) {
    ChainEntry entry;
    std::string kind;
    payload >> kind;
    if (kind == "full") {
      entry.is_full = true;
    } else if (kind == "delta") {
      entry.is_full = false;
    } else {
      throw ParseError("manifest: unknown member kind \"" + kind + "\"");
    }
    entry.epoch = ReadU64Token(payload, "manifest member epoch");
    entry.seq = ReadU64Token(payload, "manifest member seq");
    entry.bytes = ReadU64Token(payload, "manifest member bytes");
    entry.crc32 = static_cast<std::uint32_t>(
        ReadU64Token(payload, "manifest member crc32"));
    payload >> entry.file;
    if (entry.file.empty()) {
      throw ParseError("manifest: member " + std::to_string(i) +
                       " has no file name");
    }
    if (entry.epoch != manifest.epoch) {
      throw ParseError("manifest: member " + entry.file +
                       " belongs to epoch " + std::to_string(entry.epoch) +
                       ", chain is epoch " + std::to_string(manifest.epoch));
    }
    manifest.entries.push_back(std::move(entry));
  }
  if (!manifest.entries.front().is_full) {
    throw ParseError("manifest: chain must start with a full member");
  }
  for (std::size_t i = 1; i < manifest.entries.size(); ++i) {
    if (manifest.entries[i].is_full || manifest.entries[i].seq != i) {
      throw ParseError("manifest: member " + manifest.entries[i].file +
                       " breaks the delta sequence (expected delta seq " +
                       std::to_string(i) + ")");
    }
  }
  return manifest;
}

// --- CheckpointChain ------------------------------------------------------

CheckpointChain::CheckpointChain(ChainConfig config)
    : config_(std::move(config)) {
  CORDIAL_CHECK_MSG(!config_.directory.empty(),
                    "checkpoint chain needs a directory");
  CORDIAL_CHECK_MSG(config_.compact_every >= 1,
                    "checkpoint chain needs compact_every >= 1");
}

std::string CheckpointChain::PathOf(const std::string& file) const {
  return JoinPath(config_.directory, file);
}

ChainRecoveryOutcome CheckpointChain::Recover(serve::FleetServer& server) {
  ChainRecoveryOutcome outcome;
  manifest_ = Manifest{};
  can_append_ = false;

  // Restore candidates: the manifest's chain first (CRC-verified against
  // its records), then — when the manifest is unusable or its chain's full
  // is — every restorable chain the directory scan finds, newest epoch
  // first (no manifest CRCs to check; the members' own frame checksums
  // still gate every byte).
  enum class Attempt { kFailed, kPartial, kIntact };
  const auto try_chain = [&](const std::vector<ChainEntry>& entries,
                             bool verify_crc) -> Attempt {
    const ChainEntry& full = entries.front();
    const std::string full_path = PathOf(full.file);
    std::string bytes;
    if (!ReadFileBytes(full_path, bytes)) {
      outcome.errors.push_back(full.file + ": chain member missing");
      return Attempt::kFailed;
    }
    if (verify_crc &&
        (bytes.size() != full.bytes || Crc32(bytes) != full.crc32)) {
      Quarantine(full_path);
      outcome.quarantined.push_back(full_path);
      outcome.errors.push_back(
          full.file + ": full member does not match its manifest record "
                      "(size/CRC-32 mismatch)");
      return Attempt::kFailed;
    }
    try {
      std::istringstream in(bytes);
      server.RestoreCheckpoint(in);
    } catch (const ParseError& e) {
      Quarantine(full_path);
      outcome.quarantined.push_back(full_path);
      outcome.errors.push_back(full.file + ": " + e.what());
      return Attempt::kFailed;
    }
    outcome.applied.push_back(full.file);
    for (std::size_t i = 1; i < entries.size(); ++i) {
      const ChainEntry& delta = entries[i];
      const std::string delta_path = PathOf(delta.file);
      if (!ReadFileBytes(delta_path, bytes)) {
        outcome.errors.push_back(delta.file + ": chain member missing");
        return Attempt::kPartial;
      }
      if (verify_crc &&
          (bytes.size() != delta.bytes || Crc32(bytes) != delta.crc32)) {
        Quarantine(delta_path);
        outcome.quarantined.push_back(delta_path);
        outcome.errors.push_back(
            delta.file + ": delta member does not match its manifest record "
                         "(size/CRC-32 mismatch)");
        return Attempt::kPartial;
      }
      try {
        std::istringstream in(bytes);
        server.ApplyDeltaCheckpoint(in);
      } catch (const ParseError& e) {
        Quarantine(delta_path);
        outcome.quarantined.push_back(delta_path);
        outcome.errors.push_back(delta.file + ": " + e.what());
        return Attempt::kPartial;
      }
      outcome.applied.push_back(delta.file);
    }
    return Attempt::kIntact;
  };

  const auto summarize = [&](const std::vector<ChainEntry>& entries) {
    std::string summary = entries.front().file;
    const std::size_t deltas = outcome.applied.size() - 1;
    if (deltas > 0) {
      summary += " + " + std::to_string(deltas) + " delta(s)";
    }
    outcome.restored_from = summary;
  };

  // 1. The manifest's chain.
  Manifest manifest;
  bool have_manifest = false;
  const std::string manifest_path = PathOf(kManifestFileName);
  for (const std::string& candidate : {manifest_path, manifest_path + ".prev"}) {
    try {
      if (LoadManifestFile(candidate, manifest)) {
        have_manifest = true;
        break;
      }
    } catch (const ParseError& e) {
      Quarantine(candidate);
      outcome.quarantined.push_back(candidate);
      outcome.errors.push_back(candidate + ": " + e.what());
      outcome.fell_back = true;
    }
  }
  if (have_manifest) {
    const Attempt attempt = try_chain(manifest.entries, /*verify_crc=*/true);
    if (attempt == Attempt::kIntact) {
      manifest_ = std::move(manifest);
      // Append only when nothing upstream was damaged (e.g. a quarantined
      // primary MANIFEST whose .prev restored): any fallback starts a new
      // epoch instead of growing a chain that already lost members once.
      can_append_ = !outcome.fell_back;
      summarize(manifest_.entries);
      return outcome;
    }
    manifest_.epoch = manifest.epoch;  // never reuse a damaged chain's epoch
    if (attempt == Attempt::kPartial) {
      outcome.fell_back = true;
      summarize(manifest.entries);
      return outcome;
    }
    outcome.fell_back = true;  // kFailed: fall through to the scan
  }

  // 2. Directory-scan rescue (also the fresh-directory path).
  for (const std::vector<ChainEntry>& chain : ScanChains(config_.directory)) {
    const Attempt attempt = try_chain(chain, /*verify_crc=*/false);
    if (attempt == Attempt::kFailed) continue;
    outcome.fell_back = outcome.fell_back || have_manifest ||
                        !outcome.quarantined.empty() ||
                        attempt == Attempt::kPartial;
    manifest_.epoch = std::max(manifest_.epoch, chain.front().epoch);
    summarize(chain);
    return outcome;
  }

  // 3. Fresh start. Never reuse an epoch a stale file might still claim.
  manifest_.epoch = std::max(manifest_.epoch, MaxEpochOnDisk(config_.directory));
  return outcome;
}

void CheckpointChain::PersistManifest() const {
  serve::WriteFileDurably(PathOf(kManifestFileName), EncodeManifest(manifest_),
                          /*retain_prev=*/true);
}

ChainWriteResult CheckpointChain::WriteFull(serve::FleetServer& server) {
  std::ostringstream buffer;
  server.SaveCheckpoint(buffer, core::StateEncoding::kBinary);
  std::string bytes = buffer.str();

  ChainEntry entry;
  entry.is_full = true;
  entry.epoch = manifest_.epoch + 1;
  entry.seq = 0;
  entry.file = FullFileName(entry.epoch);
  entry.bytes = bytes.size();
  entry.crc32 = Crc32(bytes);

  ChainWriteResult result;
  result.full = true;
  result.file = PathOf(entry.file);
  result.bytes = entry.bytes;
  result.banks_written = server.TotalBankCount();

  serve::WriteFileDurably(result.file, bytes, /*retain_prev=*/false);
  const Manifest previous = manifest_;
  manifest_.epoch = entry.epoch;
  manifest_.entries.clear();
  manifest_.entries.push_back(std::move(entry));
  try {
    PersistManifest();
  } catch (...) {
    // The new full sits on disk unlisted; the old manifest still rules.
    // Re-attempting later rewrites the same epoch's full and manifest.
    manifest_ = previous;
    can_append_ = false;
    throw;
  }
  server.MarkCheckpointClean();
  can_append_ = true;
  PruneExcept(config_.directory, manifest_);
  result.chain_length = manifest_.entries.size();
  return result;
}

ChainWriteResult CheckpointChain::WriteDelta(serve::FleetServer& server) {
  std::ostringstream buffer;
  const std::uint64_t banks = server.SaveDeltaCheckpoint(buffer);
  std::string bytes = buffer.str();

  ChainEntry entry;
  entry.is_full = false;
  entry.epoch = manifest_.epoch;
  entry.seq = manifest_.entries.back().seq + 1;
  entry.file = DeltaFileName(entry.epoch, entry.seq);
  entry.bytes = bytes.size();
  entry.crc32 = Crc32(bytes);

  ChainWriteResult result;
  result.full = false;
  result.file = PathOf(entry.file);
  result.bytes = entry.bytes;
  result.banks_written = banks;

  // Member first, manifest second, dirty set cleared last: a crash or
  // failure at any point leaves the previous chain restorable and the
  // not-yet-persisted banks still dirty.
  serve::WriteFileDurably(result.file, bytes, /*retain_prev=*/false);
  manifest_.entries.push_back(std::move(entry));
  try {
    PersistManifest();
  } catch (...) {
    // The member sits on disk unlisted; the retry reuses its seq and simply
    // overwrites it (the dirty set was not cleared, so nothing is lost).
    manifest_.entries.pop_back();
    throw;
  }
  server.MarkCheckpointClean();
  result.chain_length = manifest_.entries.size();
  return result;
}

ChainWriteResult CheckpointChain::Write(serve::FleetServer& server) {
  if (!can_append_ ||
      manifest_.entries.size() - 1 >= config_.compact_every) {
    return WriteFull(server);
  }
  return WriteDelta(server);
}

// --- offline tools --------------------------------------------------------

ChainInspection InspectChain(const std::string& directory) {
  ChainInspection report;
  const std::string manifest_path = JoinPath(directory, kManifestFileName);
  for (const std::string& candidate : {manifest_path, manifest_path + ".prev"}) {
    try {
      if (LoadManifestFile(candidate, report.manifest)) {
        report.has_manifest = true;
        break;
      }
      report.errors.push_back(candidate + ": no such file");
    } catch (const ParseError& e) {
      report.errors.push_back(candidate + ": " + e.what());
    }
  }
  if (!report.has_manifest) return report;
  for (const ChainEntry& entry : report.manifest.entries) {
    MemberInfo info;
    info.entry = entry;
    std::string bytes;
    if (!ReadFileBytes(JoinPath(directory, entry.file), bytes)) {
      info.error = "missing";
      report.members.push_back(std::move(info));
      continue;
    }
    info.exists = true;
    info.actual_bytes = bytes.size();
    info.crc_ok = bytes.size() == entry.bytes && Crc32(bytes) == entry.crc32;
    if (!info.crc_ok) {
      info.error = "size/CRC-32 mismatch vs manifest";
      report.members.push_back(std::move(info));
      continue;
    }
    try {
      const FleetImage image = ParseMemberImage(bytes, entry.file);
      if (image.is_delta == entry.is_full) {
        info.error = entry.is_full ? "manifest says full, file is a delta"
                                   : "manifest says delta, file is a full";
      }
      info.shard_count = image.shards.size();
      for (const ShardImage& shard : image.shards) {
        info.bank_count += shard.banks.size();
      }
    } catch (const ParseError& e) {
      info.error = e.what();
    }
    report.members.push_back(std::move(info));
  }
  return report;
}

std::string FoldChain(const std::string& directory) {
  const Manifest manifest = RequireManifest(directory);
  return SerializeImageAsFull(FoldManifest(directory, manifest));
}

ChainWriteResult CompactChainFiles(const std::string& directory) {
  const Manifest manifest = RequireManifest(directory);
  const FleetImage image = FoldManifest(directory, manifest);
  const std::string bytes = SerializeImageAsFull(image);

  ChainEntry entry;
  entry.is_full = true;
  entry.epoch = manifest.epoch + 1;
  entry.seq = 0;
  entry.file = FullFileName(entry.epoch);
  entry.bytes = bytes.size();
  entry.crc32 = Crc32(bytes);

  ChainWriteResult result;
  result.full = true;
  result.file = JoinPath(directory, entry.file);
  result.bytes = entry.bytes;
  for (const ShardImage& shard : image.shards) {
    result.banks_written += shard.banks.size();
  }

  serve::WriteFileDurably(result.file, bytes, /*retain_prev=*/false);
  Manifest compacted;
  compacted.epoch = entry.epoch;
  compacted.entries.push_back(std::move(entry));
  serve::WriteFileDurably(JoinPath(directory, kManifestFileName),
                          EncodeManifest(compacted), /*retain_prev=*/true);
  PruneExcept(directory, compacted);
  result.chain_length = 1;
  return result;
}

}  // namespace cordial::persist
