#include "learn/shadow_trainer.hpp"

#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/isolation.hpp"
#include "core/pattern_classifier.hpp"
#include "hbm/fault.hpp"
#include "ml/metrics.hpp"

namespace cordial::learn {

namespace {

std::int64_t Ppm(double ratio) {
  return static_cast<std::int64_t>(ratio * 1e6);
}

std::vector<const trace::BankHistory*> BanksOf(
    const std::vector<std::shared_ptr<const LabelledOutcome>>& outcomes) {
  std::vector<const trace::BankHistory*> banks;
  banks.reserve(outcomes.size());
  for (const auto& outcome : outcomes) banks.push_back(&outcome->bank);
  return banks;
}

std::vector<core::LabelledBank> LabelledOf(
    const std::vector<std::shared_ptr<const LabelledOutcome>>& outcomes) {
  std::vector<core::LabelledBank> labelled;
  labelled.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    labelled.push_back({&outcome->bank, outcome->label});
  }
  return labelled;
}

}  // namespace

ShadowTrainer::ShadowTrainer(const hbm::TopologyConfig& topology,
                             core::ModelSlot& slot,
                             OutcomeCollector& collector, TrainerConfig config)
    : topology_(topology),
      slot_(slot),
      collector_(collector),
      config_(config),
      rng_(config.seed) {
  CORDIAL_CHECK_MSG(config_.refresh_every_s > 0.0,
                    "refresh period must be positive");
  CORDIAL_CHECK_MSG(config_.min_holdout_outcomes >= 1,
                    "need at least one held-out outcome to evaluate");
}

ShadowTrainer::~ShadowTrainer() { Stop(); }

RoundResult ShadowTrainer::RunOnce() {
  RoundResult result;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    result.round = ++rounds_run_;
  }
  if (metrics_.rounds) metrics_.rounds->Increment();

  result.harvested = collector_.HarvestMature(collector_.MaxTimeSeen());
  if (metrics_.harvested && result.harvested > 0) {
    metrics_.harvested->Increment(result.harvested);
  }
  const OutcomeCollector::ReplaySplit replay = collector_.SnapshotReplay();
  result.train_outcomes = replay.train.size();
  result.holdout_outcomes = replay.holdout.size();

  const std::shared_ptr<const core::ModelSet> champion = slot_.Acquire();
  result.published_version = champion->version;

  if (replay.train.size() < config_.min_train_outcomes) {
    result.skip_reason = "train set below min_train_outcomes";
  } else if (replay.holdout.size() < config_.min_holdout_outcomes) {
    result.skip_reason = "holdout set below min_holdout_outcomes";
  }
  if (!result.skip_reason.empty()) {
    if (metrics_.skipped) metrics_.skipped->Increment();
    FinishRound(result);
    return result;
  }

  // Train the challenger: the champion's architecture, a fresh fit on the
  // harvested replay. Round-forked RNG: reproducible, rounds independent.
  auto challenger = std::make_shared<core::PatternClassifier>(
      topology_, champion->classifier->kind(),
      champion->classifier->extractor().max_uers());
  Rng round_rng = rng_.Fork(result.round);
  challenger->Train(LabelledOf(replay.train), round_rng);
  result.trained = true;

  // Held-out evaluation, champion vs challenger. Both replay the full
  // Cordial strategy (classification gates cross-row prediction), sharing
  // the champion's predictors — promotion replaces only the classifier.
  const std::vector<const trace::BankHistory*> holdout_banks =
      BanksOf(replay.holdout);
  const std::vector<core::LabelledBank> holdout_labelled =
      LabelledOf(replay.holdout);
  const core::IcrEvaluator evaluator(topology_, config_.eval_budget);
  const core::CrossRowPredictor& double_row =
      champion->double_row ? *champion->double_row : *champion->single;
  core::CordialStrategy champion_strategy(*champion->classifier,
                                          *champion->single, double_row,
                                          config_.policy);
  core::CordialStrategy challenger_strategy(*challenger, *champion->single,
                                            double_row, config_.policy);
  result.champion_icr =
      evaluator.Evaluate(holdout_banks, champion_strategy).Icr();
  result.challenger_icr =
      evaluator.Evaluate(holdout_banks, challenger_strategy).Icr();
  result.champion_f1 =
      champion->classifier->Evaluate(holdout_labelled).MacroAverage().f1;
  result.challenger_f1 =
      challenger->Evaluate(holdout_labelled).MacroAverage().f1;

  // Drift: what the fleet produces now vs what the champion expects, and
  // how far the challenger's confidence surface moved from the champion's.
  const ScoreProfile champion_profile =
      BuildScoreProfile(*champion->classifier, replay.train);
  const ScoreProfile challenger_profile =
      BuildScoreProfile(*challenger, replay.train);
  result.drift.mix_divergence =
      MixDivergence(collector_.LiveClassMix(), champion_profile.class_counts);
  result.drift.score_divergence =
      ScoreDivergence(champion_profile, challenger_profile);

  const bool clears_floor = result.challenger_icr >= config_.promotion_min_icr;
  const bool clears_gain =
      result.challenger_icr - result.champion_icr >= config_.min_icr_gain;
  const bool clears_f1 =
      result.champion_f1 - result.challenger_f1 <= config_.max_f1_regression;
  if (clears_floor && clears_gain && clears_f1) {
    std::lock_guard<std::mutex> lock(publish_mutex_);
    core::ModelSet next;
    next.classifier = std::move(challenger);
    next.single = champion->single;
    next.double_row = champion->double_row;
    previous_ = *champion;
    result.published_version = slot_.Publish(std::move(next));
    result.promoted = true;
    if (metrics_.promotions) metrics_.promotions->Increment();
  } else if (!clears_floor) {
    result.skip_reason = "challenger below promotion_min_icr";
  } else if (!clears_gain) {
    result.skip_reason = "ICR gain below min_icr_gain";
  } else {
    result.skip_reason = "macro-F1 regression above max_f1_regression";
  }

  FinishRound(result);
  return result;
}

void ShadowTrainer::FinishRound(const RoundResult& result) {
  const CollectorStats stats = collector_.Stats();
  if (metrics_.model_version) {
    metrics_.model_version->Set(
        static_cast<std::int64_t>(slot_.version()));
  }
  if (metrics_.replay_banks) {
    metrics_.replay_banks->Set(static_cast<std::int64_t>(stats.replay_banks));
  }
  if (metrics_.open_banks) {
    metrics_.open_banks->Set(static_cast<std::int64_t>(stats.open_banks));
  }
  if (result.trained) {
    if (metrics_.champion_icr_ppm) {
      metrics_.champion_icr_ppm->Set(Ppm(result.champion_icr));
    }
    if (metrics_.challenger_icr_ppm) {
      metrics_.challenger_icr_ppm->Set(Ppm(result.challenger_icr));
    }
    if (metrics_.champion_f1_ppm) {
      metrics_.champion_f1_ppm->Set(Ppm(result.champion_f1));
    }
    if (metrics_.challenger_f1_ppm) {
      metrics_.challenger_f1_ppm->Set(Ppm(result.challenger_f1));
    }
    if (metrics_.mix_divergence_ppm) {
      metrics_.mix_divergence_ppm->Set(Ppm(result.drift.mix_divergence));
    }
    if (metrics_.score_divergence_ppm) {
      metrics_.score_divergence_ppm->Set(Ppm(result.drift.score_divergence));
    }
  }
  std::lock_guard<std::mutex> lock(state_mutex_);
  last_round_ = result;
}

void ShadowTrainer::Start() {
  std::lock_guard<std::mutex> lock(loop_mutex_);
  CORDIAL_CHECK_MSG(!running_, "trainer loop already running");
  stop_requested_ = false;
  running_ = true;
  loop_ = std::thread([this] { LoopBody(); });
}

void ShadowTrainer::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  loop_.join();
  std::lock_guard<std::mutex> lock(loop_mutex_);
  running_ = false;
}

void ShadowTrainer::LoopBody() {
  const auto period = std::chrono::duration<double>(config_.refresh_every_s);
  std::unique_lock<std::mutex> lock(loop_mutex_);
  while (!stop_requested_) {
    if (loop_cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    RunOnce();
    lock.lock();
  }
}

std::uint64_t ShadowTrainer::ForceSwap() {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  const std::shared_ptr<const core::ModelSet> current = slot_.Acquire();
  core::ModelSet same;
  same.classifier = current->classifier;
  same.single = current->single;
  same.double_row = current->double_row;
  previous_ = *current;
  const std::uint64_t version = slot_.Publish(std::move(same));
  if (metrics_.forced_swaps) metrics_.forced_swaps->Increment();
  if (metrics_.model_version) {
    metrics_.model_version->Set(static_cast<std::int64_t>(version));
  }
  return version;
}

std::uint64_t ShadowTrainer::ForceRollback() {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  if (!previous_.classifier) return 0;
  const std::shared_ptr<const core::ModelSet> current = slot_.Acquire();
  core::ModelSet back = std::move(previous_);
  previous_ = *current;
  const std::uint64_t version = slot_.Publish(std::move(back));
  if (metrics_.rollbacks) metrics_.rollbacks->Increment();
  if (metrics_.model_version) {
    metrics_.model_version->Set(static_cast<std::int64_t>(version));
  }
  return version;
}

RoundResult ShadowTrainer::LastRound() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return last_round_;
}

void ShadowTrainer::AttachMetrics(obs::MetricRegistry& registry,
                                  const obs::Labels& labels) {
  metrics_.rounds = &registry.GetCounter(
      "cordial_learn_rounds_total", "Shadow-training rounds run", labels);
  metrics_.promotions = &registry.GetCounter(
      "cordial_learn_promotions_total",
      "Challenger models promoted into the serving slot", labels);
  metrics_.skipped = &registry.GetCounter(
      "cordial_learn_skipped_rounds_total",
      "Rounds skipped (too little replay data)", labels);
  metrics_.forced_swaps = &registry.GetCounter(
      "cordial_learn_forced_swaps_total",
      "Admin-forced republishes of the current champion", labels);
  metrics_.rollbacks = &registry.GetCounter(
      "cordial_learn_rollbacks_total",
      "Admin-forced rollbacks to the previous generation", labels);
  metrics_.harvested = &registry.GetCounter(
      "cordial_learn_outcomes_harvested_total",
      "Labelled outcomes matured into the replay store", labels);
  metrics_.model_version = &registry.GetGauge(
      "cordial_learn_model_version",
      "Model-slot generation most recently published", labels);
  metrics_.model_version->Set(static_cast<std::int64_t>(slot_.version()));
  metrics_.replay_banks = &registry.GetGauge(
      "cordial_learn_replay_banks",
      "Labelled outcomes currently in the replay store", labels);
  metrics_.open_banks = &registry.GetGauge(
      "cordial_learn_open_banks",
      "Banks accumulating events, label not yet mature", labels);
  metrics_.champion_icr_ppm = &registry.GetGauge(
      "cordial_learn_champion_icr_ppm",
      "Champion held-out ICR, parts per million", labels);
  metrics_.challenger_icr_ppm = &registry.GetGauge(
      "cordial_learn_challenger_icr_ppm",
      "Challenger held-out ICR, parts per million", labels);
  metrics_.champion_f1_ppm = &registry.GetGauge(
      "cordial_learn_champion_f1_ppm",
      "Champion held-out macro-F1, parts per million", labels);
  metrics_.challenger_f1_ppm = &registry.GetGauge(
      "cordial_learn_challenger_f1_ppm",
      "Challenger held-out macro-F1, parts per million", labels);
  metrics_.mix_divergence_ppm = &registry.GetGauge(
      "cordial_learn_mix_divergence_ppm",
      "Live vs model-predicted pattern-mix divergence, ppm", labels);
  metrics_.score_divergence_ppm = &registry.GetGauge(
      "cordial_learn_score_divergence_ppm",
      "Champion vs challenger score-distribution divergence, ppm", labels);
}

std::string ShadowTrainer::StatusPage() const {
  const RoundResult round = LastRound();
  const CollectorStats stats = collector_.Stats();
  std::ostringstream out;
  out << "online learning\n";
  out << "===============\n";
  out << "slot version: " << slot_.version() << '\n';
  out << "gates: promotion_min_icr=" << config_.promotion_min_icr
      << " min_icr_gain=" << config_.min_icr_gain
      << " max_f1_regression=" << config_.max_f1_regression << '\n';
  out << "replay store: " << stats.replay_banks << " labelled bank(s), "
      << stats.open_banks << " open, " << stats.matured_total
      << " matured total, " << stats.evicted_total << " evicted\n";
  if (round.round == 0) {
    out << "no training round has run yet\n";
    return out.str();
  }
  out << "round " << round.round << ": harvested=" << round.harvested
      << " train=" << round.train_outcomes
      << " holdout=" << round.holdout_outcomes << '\n';
  if (!round.trained) {
    out << "  skipped: " << round.skip_reason << '\n';
    return out.str();
  }
  out << "  champion:   icr=" << round.champion_icr
      << " macro_f1=" << round.champion_f1 << '\n';
  out << "  challenger: icr=" << round.challenger_icr
      << " macro_f1=" << round.challenger_f1 << '\n';
  out << "  drift: mix=" << round.drift.mix_divergence
      << " score=" << round.drift.score_divergence << '\n';
  if (round.promoted) {
    out << "  PROMOTED as generation " << round.published_version << '\n';
  } else {
    out << "  not promoted: " << round.skip_reason << '\n';
  }
  return out.str();
}

}  // namespace cordial::learn
