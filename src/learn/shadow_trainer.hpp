// Shadow training: the champion/challenger loop that closes train → serve.
//
// The serving engines run the *champion* model set, published through a
// core::ModelSlot. A ShadowTrainer periodically (or on demand, RunOnce):
//
//   1. harvests matured labelled outcomes from its OutcomeCollector,
//   2. trains a *challenger* pattern classifier — same architecture as the
//      champion, fresh fit on the harvested replay data — off the serving
//      threads (the existing parallel Fit path),
//   3. evaluates champion vs challenger on the held-out replay split: ICR
//      via IcrEvaluator replaying the full Cordial strategy, macro-F1 via
//      the classifier confusion matrix,
//   4. promotes the challenger iff it clears the gates (an absolute ICR
//      floor, a minimum ICR gain over the champion, and a bounded F1
//      regression) by publishing a new ModelSet generation into the slot —
//      the serving engines adopt it at each shard's next record boundary,
//   5. measures drift (live pattern mix vs model-predicted mix; champion vs
//      challenger score distributions) and exports everything as
//      `cordial_learn_*` metrics.
//
// The trainer never touches a serving thread: training and evaluation run
// on its own background thread against snapshot copies; the only shared
// write is the slot publish (mutex + release store), and the only thing
// serving pays is its existing once-per-record version poll.
//
// Promotion only replaces the pattern classifier; the cross-row predictors
// are shared from the champion generation (retraining them needs block
// truth, which matures much later — an open roadmap item).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/model_slot.hpp"
#include "hbm/sparing.hpp"
#include "learn/drift.hpp"
#include "learn/outcome_log.hpp"
#include "obs/metrics.hpp"

namespace cordial::learn {

struct TrainerConfig {
  /// Background-loop period, wall seconds (Start/Stop). RunOnce ignores it.
  double refresh_every_s = 30.0;
  /// Gate 1: the challenger's held-out ICR must be at least this.
  double promotion_min_icr = 0.0;
  /// Gate 2: challenger ICR minus champion ICR must be at least this.
  double min_icr_gain = 0.0;
  /// Gate 3: champion macro-F1 minus challenger macro-F1 must not exceed
  /// this (a better-ICR challenger that forgot how to classify is refused).
  double max_f1_regression = 0.05;
  /// Train on fewer outcomes than this and the round is skipped.
  std::size_t min_train_outcomes = 8;
  /// Skip rounds whose held-out split is smaller than this.
  std::size_t min_holdout_outcomes = 2;
  /// Root seed; round k trains with Fork(k) so rounds are independent and
  /// the whole history is reproducible from (seed, feed).
  std::uint64_t seed = 0x5eed1ea51ULL;
  /// Policy + budget the held-out ICR replay evaluates under (should match
  /// the serving engine's config).
  core::CordialPolicyConfig policy;
  hbm::SparingBudget eval_budget;
};

/// Everything one RunOnce did — the /modelz page renders the latest one.
struct RoundResult {
  std::uint64_t round = 0;
  std::size_t harvested = 0;        ///< outcomes matured this round
  std::size_t train_outcomes = 0;
  std::size_t holdout_outcomes = 0;
  bool trained = false;             ///< a challenger was fitted
  bool promoted = false;            ///< ...and published
  std::string skip_reason;          ///< non-empty when !trained
  double champion_icr = 0.0;
  double challenger_icr = 0.0;
  double champion_f1 = 0.0;
  double challenger_f1 = 0.0;
  DriftReport drift;
  std::uint64_t published_version = 0;  ///< slot version after the round
};

/// Owns the retrain loop. Thread-safe: RunOnce (trainer thread) and the
/// Force* admin calls may race; publishes are serialized internally.
class ShadowTrainer {
 public:
  /// `slot` is where promotions land; `collector` supplies the replay data.
  /// Both must outlive the trainer. The slot must already be seeded with a
  /// trained champion generation.
  ShadowTrainer(const hbm::TopologyConfig& topology, core::ModelSlot& slot,
                OutcomeCollector& collector, TrainerConfig config = {});
  ~ShadowTrainer();

  ShadowTrainer(const ShadowTrainer&) = delete;
  ShadowTrainer& operator=(const ShadowTrainer&) = delete;

  /// One synchronous harvest→train→evaluate→maybe-promote round. Safe from
  /// any thread; this is what the background loop calls.
  RoundResult RunOnce();

  /// Spawn the background loop: RunOnce every refresh_every_s wall seconds
  /// until Stop. Attach metrics first if they are wanted.
  void Start();
  /// Stop and join the background loop. Idempotent; also run by ~.
  void Stop();

  /// Republish the CURRENT champion models as a fresh generation (same
  /// bits, new version). Every serving engine re-adopts at its next record
  /// boundary — the determinism property tests force swaps this way, and
  /// operators use it to verify swap plumbing. Returns the new version.
  std::uint64_t ForceSwap();

  /// Republish the generation the last promotion replaced. Returns the new
  /// version, or 0 when there is nothing to roll back to. Rolling back
  /// twice toggles between the two newest generations.
  std::uint64_t ForceRollback();

  /// Latest finished round (value copy; zero-initialized before any round).
  RoundResult LastRound() const;

  /// Register the `cordial_learn_*` metrics. Call before Start. Ratios and
  /// divergences are exported ppm-scaled (gauges are integers).
  void AttachMetrics(obs::MetricRegistry& registry,
                     const obs::Labels& labels = {});

  /// Human-readable /modelz body: slot version, gates, last round, drift,
  /// replay-store occupancy.
  std::string StatusPage() const;

  const TrainerConfig& config() const { return config_; }

 private:
  struct Metrics {
    obs::Counter* rounds = nullptr;
    obs::Counter* promotions = nullptr;
    obs::Counter* skipped = nullptr;
    obs::Counter* forced_swaps = nullptr;
    obs::Counter* rollbacks = nullptr;
    obs::Counter* harvested = nullptr;
    obs::Gauge* model_version = nullptr;
    obs::Gauge* replay_banks = nullptr;
    obs::Gauge* open_banks = nullptr;
    obs::Gauge* champion_icr_ppm = nullptr;
    obs::Gauge* challenger_icr_ppm = nullptr;
    obs::Gauge* champion_f1_ppm = nullptr;
    obs::Gauge* challenger_f1_ppm = nullptr;
    obs::Gauge* mix_divergence_ppm = nullptr;
    obs::Gauge* score_divergence_ppm = nullptr;
  };

  void LoopBody();
  /// Export a finished round's gauges and stash it as LastRound.
  void FinishRound(const RoundResult& result);

  hbm::TopologyConfig topology_;
  core::ModelSlot& slot_;
  OutcomeCollector& collector_;
  TrainerConfig config_;
  Rng rng_;
  Metrics metrics_;

  /// Serializes slot publishes and guards previous_ (rollback target).
  std::mutex publish_mutex_;
  core::ModelSet previous_;  ///< generation the last publish replaced

  mutable std::mutex state_mutex_;
  RoundResult last_round_;
  std::uint64_t rounds_run_ = 0;

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread loop_;
};

}  // namespace cordial::learn
