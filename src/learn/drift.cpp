#include "learn/drift.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace cordial::learn {

void ScoreHistogram::Add(double score) {
  const double clamped = std::clamp(score, 0.0, 1.0);
  std::size_t bin = static_cast<std::size_t>(clamped * kBins);
  if (bin >= kBins) bin = kBins - 1;  // score == 1.0
  ++counts[bin];
  ++total;
}

ScoreProfile BuildScoreProfile(
    const core::PatternClassifier& classifier,
    const std::vector<std::shared_ptr<const LabelledOutcome>>& outcomes) {
  CORDIAL_CHECK_MSG(classifier.trained(), "profile needs a trained model");
  ScoreProfile profile;
  for (const auto& outcome : outcomes) {
    const std::vector<double> proba =
        classifier.ClassifyProba(outcome->bank);
    std::size_t winner = 0;
    for (std::size_t c = 1; c < proba.size() && c < 3; ++c) {
      if (proba[c] > proba[winner]) winner = c;
    }
    ++profile.class_counts[winner];
    profile.score_hists[winner].Add(proba[winner]);
  }
  return profile;
}

double MixDivergence(const std::array<std::uint64_t, 3>& a,
                     const std::array<std::uint64_t, 3>& b) {
  const double total_a =
      static_cast<double>(a[0]) + static_cast<double>(a[1]) +
      static_cast<double>(a[2]);
  const double total_b =
      static_cast<double>(b[0]) + static_cast<double>(b[1]) +
      static_cast<double>(b[2]);
  if (total_a == 0.0 || total_b == 0.0) return 0.0;
  double tv = 0.0;
  for (std::size_t c = 0; c < 3; ++c) {
    tv += std::abs(static_cast<double>(a[c]) / total_a -
                   static_cast<double>(b[c]) / total_b);
  }
  return tv / 2.0;
}

namespace {

double HistogramTv(const ScoreHistogram& a, const ScoreHistogram& b) {
  double tv = 0.0;
  for (std::size_t bin = 0; bin < ScoreHistogram::kBins; ++bin) {
    tv += std::abs(static_cast<double>(a.counts[bin]) /
                       static_cast<double>(a.total) -
                   static_cast<double>(b.counts[bin]) /
                       static_cast<double>(b.total));
  }
  return tv / 2.0;
}

}  // namespace

double ScoreDivergence(const ScoreProfile& a, const ScoreProfile& b) {
  double sum = 0.0;
  std::size_t comparable = 0;
  for (std::size_t c = 0; c < 3; ++c) {
    if (a.score_hists[c].total == 0 || b.score_hists[c].total == 0) continue;
    sum += HistogramTv(a.score_hists[c], b.score_hists[c]);
    ++comparable;
  }
  return comparable == 0 ? 0.0 : sum / static_cast<double>(comparable);
}

}  // namespace cordial::learn
