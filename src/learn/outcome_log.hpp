// Outcome collection for the online learning loop: turning served records
// into labelled training data.
//
// An OutcomeCollector taps the serving path (a FleetServer ActionSink or any
// per-record hook) and accumulates per-bank event histories plus the live
// decisions the engine took for them. A bank's outcome is *labelled* only in
// hindsight: once the bank has at least `min_uers` UER events and the label
// maturity horizon has elapsed since its first UER, the rule-based
// analysis::PatternLabeler assigns its ground-truth failure class and the
// bank moves into a bounded replay store. The replay store is what the
// ShadowTrainer retrains from — split deterministically into train and
// held-out sets by a hash of the bank key, so the challenger is never
// evaluated on banks it trained on.
//
// Concurrency: Record() is called from every shard's worker thread
// concurrently. Open banks are striped by SplitMix64(bank_key) % stripes,
// each stripe behind its own mutex — two workers contend only when their
// banks share a stripe. Harvest/snapshot/save take the stripe locks briefly
// and never block the hot path for long.
//
// Determinism: each bank's history and tallies are deterministic (a bank's
// records arrive on one shard in submission order), and every read-side view
// (SnapshotReplay, Save) is sorted by bank key — so the training set, and
// everything downstream of it, is independent of thread interleaving while
// the replay store stays under its cap.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/labeler.hpp"
#include "core/engine.hpp"
#include "hbm/address.hpp"
#include "trace/error_log.hpp"

namespace cordial::learn {

struct CollectorConfig {
  /// Seconds after a bank's FIRST UER before its label is trusted (the
  /// label-maturity horizon): by then the failure pattern has unfolded
  /// enough for the hindsight labeler to read its shape.
  double label_maturity_s = 600.0;
  /// Banks with fewer UER events than this never mature — too little
  /// signal for a pattern label (3 = the classification trigger).
  std::size_t min_uers = 3;
  /// Events retained per open bank. Later events are counted but dropped
  /// (the outcome is marked truncated); bounds memory on noisy banks.
  std::size_t per_bank_event_cap = 512;
  /// Labelled outcomes retained in the replay store; harvesting past the
  /// cap evicts the oldest-harvested outcome (FIFO).
  std::size_t max_replay_banks = 4096;
  /// 1-in-N banks (by key hash) land in the held-out set the trainer
  /// evaluates on; the rest train. Must be >= 2.
  std::uint64_t holdout_modulus = 5;
  /// Lock stripes for the open-bank table. Must be >= 1.
  std::size_t stripes = 16;
};

/// One matured, hindsight-labelled bank: its (possibly truncated) event
/// history, the ground-truth class, and what serving did for it live.
struct LabelledOutcome {
  trace::BankHistory bank;
  hbm::FailureClass label = hbm::FailureClass::kScattered;
  bool truncated = false;  ///< per_bank_event_cap dropped later events
  // Live serving tallies, accumulated while the bank was open:
  std::size_t live_first_failures = 0;  ///< distinct UER rows observed
  std::size_t live_covered = 0;         ///< of those, already isolated
};

/// Collector-wide tallies (merged across stripes; exact under quiescence).
struct CollectorStats {
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped_cap = 0;  ///< over per_bank_event_cap
  std::uint64_t open_banks = 0;          ///< currently accumulating
  std::uint64_t matured_total = 0;       ///< outcomes ever harvested
  std::uint64_t evicted_total = 0;       ///< outcomes FIFO-evicted
  std::uint64_t replay_banks = 0;        ///< outcomes currently stored
};

class OutcomeCollector {
 public:
  explicit OutcomeCollector(const hbm::TopologyConfig& topology,
                            CollectorConfig config = {});

  /// Hot-path tap: absorb one served record and the actions the engine took
  /// for it. Thread-safe (striped); call from shard ActionSinks. Records
  /// for banks that already matured are ignored — one outcome per bank.
  void Record(const trace::MceRecord& record,
              const core::IsolationActions& actions);

  /// Move every open bank whose label has matured (>= min_uers UERs and
  /// first UER at least label_maturity_s before `now_s`) into the replay
  /// store, labelling it via the hindsight PatternLabeler. Returns how many
  /// matured. Thread-safe, but meant for the trainer thread.
  std::size_t HarvestMature(double now_s);

  /// Largest record time ever recorded (0 before any record) — the
  /// trainer's notion of "now" so maturity follows stream time, not wall
  /// time.
  double MaxTimeSeen() const;

  /// Deterministic view of the replay store, split into train and held-out
  /// outcomes by bank-key hash and sorted by bank key. The shared_ptrs keep
  /// outcomes alive across subsequent eviction.
  struct ReplaySplit {
    std::vector<std::shared_ptr<const LabelledOutcome>> train;
    std::vector<std::shared_ptr<const LabelledOutcome>> holdout;
  };
  ReplaySplit SnapshotReplay() const;

  /// Live classification mix: how often the serving engines classified a
  /// bank into each class (indexed by FailureClass). Feeds drift detection.
  std::array<std::uint64_t, 3> LiveClassMix() const;

  CollectorStats Stats() const;

  /// Persist the replay store (matured outcomes only — open banks are
  /// in-flight state the stream will rebuild) as a framed, checksummed
  /// stream, sorted by bank key. Deterministic under the cap.
  void Save(std::ostream& out) const;
  /// Replace the replay store with a Save stream's. Throws ParseError on
  /// malformed input; the store is unchanged on throw. Open banks are
  /// untouched.
  void Load(std::istream& in);

  const CollectorConfig& config() const { return config_; }

  /// True iff the key's bank belongs to the held-out split.
  bool IsHoldoutKey(std::uint64_t bank_key) const;

 private:
  struct OpenBank {
    trace::BankHistory bank;
    std::size_t uer_events = 0;
    double first_uer_s = 0.0;
    bool has_uer = false;
    bool truncated = false;
    std::size_t live_first_failures = 0;
    std::size_t live_covered = 0;
  };
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, OpenBank> open;
    std::unordered_set<std::uint64_t> retired;  ///< matured keys, ignored
    double max_time_s = 0.0;
    std::uint64_t events_recorded = 0;
    std::uint64_t events_dropped_cap = 0;
    std::array<std::uint64_t, 3> live_class_mix{};
  };

  Stripe& StripeOf(std::uint64_t bank_key);
  const Stripe& StripeOf(std::uint64_t bank_key) const;

  hbm::AddressCodec codec_;
  analysis::PatternLabeler labeler_;
  CollectorConfig config_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  /// Replay store: matured outcomes in harvest order (FIFO eviction).
  mutable std::mutex replay_mutex_;
  std::vector<std::shared_ptr<const LabelledOutcome>> replay_;
  std::uint64_t matured_total_ = 0;
  std::uint64_t evicted_total_ = 0;
};

}  // namespace cordial::learn
