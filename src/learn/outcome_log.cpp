#include "learn/outcome_log.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "common/rng.hpp"
#include "core/persist.hpp"

namespace cordial::learn {

namespace {

/// Salt separating the holdout hash from the shard-routing hash: a bank's
/// shard must not correlate with its train/holdout side.
constexpr std::uint64_t kHoldoutSalt = 0x9d5cb1a9u;

}  // namespace

OutcomeCollector::OutcomeCollector(const hbm::TopologyConfig& topology,
                                   CollectorConfig config)
    : codec_(topology), labeler_(topology), config_(config) {
  CORDIAL_CHECK_MSG(config_.stripes >= 1, "collector needs >= 1 stripe");
  CORDIAL_CHECK_MSG(config_.holdout_modulus >= 2,
                    "holdout modulus must be >= 2 (1 would hold out all)");
  CORDIAL_CHECK_MSG(config_.per_bank_event_cap >= 1,
                    "per-bank event cap must be >= 1");
  CORDIAL_CHECK_MSG(config_.max_replay_banks >= 1,
                    "replay store must hold >= 1 bank");
  stripes_.reserve(config_.stripes);
  for (std::size_t s = 0; s < config_.stripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

OutcomeCollector::Stripe& OutcomeCollector::StripeOf(std::uint64_t bank_key) {
  std::uint64_t state = bank_key;
  return *stripes_[SplitMix64(state) % stripes_.size()];
}

const OutcomeCollector::Stripe& OutcomeCollector::StripeOf(
    std::uint64_t bank_key) const {
  std::uint64_t state = bank_key;
  return *stripes_[SplitMix64(state) % stripes_.size()];
}

bool OutcomeCollector::IsHoldoutKey(std::uint64_t bank_key) const {
  std::uint64_t state = bank_key ^ kHoldoutSalt;
  return SplitMix64(state) % config_.holdout_modulus == 0;
}

void OutcomeCollector::Record(const trace::MceRecord& record,
                              const core::IsolationActions& actions) {
  const std::uint64_t key = codec_.BankKey(record.address);
  Stripe& stripe = StripeOf(key);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.max_time_s = std::max(stripe.max_time_s, record.time_s);
  if (actions.classified_now) {
    ++stripe.live_class_mix[static_cast<std::size_t>(actions.bank_class)];
  }
  if (stripe.retired.contains(key)) return;  // one outcome per bank
  ++stripe.events_recorded;
  const auto [it, inserted] = stripe.open.try_emplace(key);
  OpenBank& open = it->second;
  if (inserted) open.bank.bank_key = key;
  if (record.type == hbm::ErrorType::kUer) {
    if (!open.has_uer) {
      open.has_uer = true;
      open.first_uer_s = record.time_s;
    }
    ++open.uer_events;
  }
  if (actions.first_failure) {
    ++open.live_first_failures;
    if (actions.covered()) ++open.live_covered;
  }
  if (open.bank.events.size() < config_.per_bank_event_cap) {
    open.bank.events.push_back(record);
  } else {
    open.truncated = true;
    ++stripe.events_dropped_cap;
  }
}

std::size_t OutcomeCollector::HarvestMature(double now_s) {
  std::vector<std::shared_ptr<const LabelledOutcome>> matured;
  for (auto& stripe_ptr : stripes_) {
    Stripe& stripe = *stripe_ptr;
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (auto it = stripe.open.begin(); it != stripe.open.end();) {
      OpenBank& open = it->second;
      if (!open.has_uer || open.uer_events < config_.min_uers ||
          now_s - open.first_uer_s < config_.label_maturity_s) {
        ++it;
        continue;
      }
      auto outcome = std::make_shared<LabelledOutcome>();
      outcome->bank = std::move(open.bank);
      outcome->label = labeler_.LabelClass(outcome->bank);
      outcome->truncated = open.truncated;
      outcome->live_first_failures = open.live_first_failures;
      outcome->live_covered = open.live_covered;
      matured.push_back(std::move(outcome));
      stripe.retired.insert(it->first);
      it = stripe.open.erase(it);
    }
  }
  if (matured.empty()) return 0;
  // Harvest order within one call is stripe/table order — nondeterministic
  // across runs. Sorting here keeps the replay store's FIFO order (and so
  // its eviction choices) deterministic per harvest batch.
  std::sort(matured.begin(), matured.end(),
            [](const auto& a, const auto& b) {
              return a->bank.bank_key < b->bank.bank_key;
            });
  std::lock_guard<std::mutex> lock(replay_mutex_);
  for (auto& outcome : matured) replay_.push_back(std::move(outcome));
  matured_total_ += matured.size();
  if (replay_.size() > config_.max_replay_banks) {
    const std::size_t excess = replay_.size() - config_.max_replay_banks;
    replay_.erase(replay_.begin(),
                  replay_.begin() + static_cast<std::ptrdiff_t>(excess));
    evicted_total_ += excess;
  }
  return matured.size();
}

double OutcomeCollector::MaxTimeSeen() const {
  double max_time = 0.0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    max_time = std::max(max_time, stripe->max_time_s);
  }
  return max_time;
}

OutcomeCollector::ReplaySplit OutcomeCollector::SnapshotReplay() const {
  std::vector<std::shared_ptr<const LabelledOutcome>> all;
  {
    std::lock_guard<std::mutex> lock(replay_mutex_);
    all = replay_;
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a->bank.bank_key < b->bank.bank_key;
  });
  ReplaySplit split;
  for (auto& outcome : all) {
    (IsHoldoutKey(outcome->bank.bank_key) ? split.holdout : split.train)
        .push_back(std::move(outcome));
  }
  return split;
}

std::array<std::uint64_t, 3> OutcomeCollector::LiveClassMix() const {
  std::array<std::uint64_t, 3> mix{};
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    for (std::size_t c = 0; c < mix.size(); ++c) {
      mix[c] += stripe->live_class_mix[c];
    }
  }
  return mix;
}

CollectorStats OutcomeCollector::Stats() const {
  CollectorStats stats;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mutex);
    stats.events_recorded += stripe->events_recorded;
    stats.events_dropped_cap += stripe->events_dropped_cap;
    stats.open_banks += stripe->open.size();
  }
  std::lock_guard<std::mutex> lock(replay_mutex_);
  stats.matured_total = matured_total_;
  stats.evicted_total = evicted_total_;
  stats.replay_banks = replay_.size();
  return stats;
}

void OutcomeCollector::Save(std::ostream& out) const {
  std::vector<std::shared_ptr<const LabelledOutcome>> all;
  {
    std::lock_guard<std::mutex> lock(replay_mutex_);
    all = replay_;
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a->bank.bank_key < b->bank.bank_key;
  });
  std::ostringstream payload;
  payload << "outcomes " << all.size() << '\n';
  for (const auto& outcome : all) {
    payload << outcome->bank.bank_key << ' '
            << static_cast<int>(outcome->label) << ' '
            << (outcome->truncated ? 1 : 0) << ' '
            << outcome->live_first_failures << ' ' << outcome->live_covered
            << ' ' << outcome->bank.events.size() << '\n';
    for (const trace::MceRecord& r : outcome->bank.events) {
      WriteDoubleToken(payload, r.time_s);
      payload << ' ' << codec_.Pack(r.address) << ' '
              << static_cast<int>(r.type) << '\n';
    }
  }
  WriteFramed(out, core::kOutcomeStoreMagic, core::kOutcomeStoreVersion,
              payload.str());
}

void OutcomeCollector::Load(std::istream& in) {
  std::istringstream payload(
      ReadFramed(in, core::kOutcomeStoreMagic, core::kOutcomeStoreVersion));
  ExpectToken(payload, "outcomes");
  const std::uint64_t count = ReadU64Token(payload, "outcome store");
  std::vector<std::shared_ptr<const LabelledOutcome>> loaded;
  loaded.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    auto outcome = std::make_shared<LabelledOutcome>();
    outcome->bank.bank_key = ReadU64Token(payload, "outcome bank key");
    const std::uint64_t label = ReadU64Token(payload, "outcome label");
    if (label >= 3) throw ParseError("outcome store: label out of range");
    outcome->label = static_cast<hbm::FailureClass>(label);
    outcome->truncated = ReadU64Token(payload, "outcome truncated") != 0;
    outcome->live_first_failures =
        ReadU64Token(payload, "outcome first failures");
    outcome->live_covered = ReadU64Token(payload, "outcome covered");
    const std::uint64_t events = ReadU64Token(payload, "outcome event count");
    outcome->bank.events.reserve(events);
    for (std::uint64_t e = 0; e < events; ++e) {
      trace::MceRecord record;
      record.time_s = ReadDoubleToken(payload, "outcome event time");
      record.address =
          codec_.Unpack(ReadU64Token(payload, "outcome event address"));
      const std::uint64_t type = ReadU64Token(payload, "outcome event type");
      if (type > 2) throw ParseError("outcome store: event type out of range");
      record.type = static_cast<hbm::ErrorType>(type);
      outcome->bank.events.push_back(record);
    }
    loaded.push_back(std::move(outcome));
  }
  std::lock_guard<std::mutex> lock(replay_mutex_);
  replay_ = std::move(loaded);
  // Loaded outcomes count as matured here; eviction history does not carry.
  matured_total_ = replay_.size();
  evicted_total_ = 0;
}

}  // namespace cordial::learn
