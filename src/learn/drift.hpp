// Drift detection for the online learning loop.
//
// Two complementary signals, both cheap and deterministic:
//
//  * Pattern-mix divergence — the live serving engines classify banks as
//    they hit the trigger; the collector tallies that class mix. Comparing
//    it against the class mix a model predicts over the replay store says
//    whether the *data* the fleet now produces still looks like what the
//    model was promoted on.
//
//  * Score-distribution shift — classifying the same replay banks under two
//    models (champion vs challenger, or the same model across rounds) and
//    histogramming each predicted class's winning score shows whether the
//    *model's* confidence surface moved, even when the argmax mix did not.
//
// Divergences are total-variation distances in [0, 1]: 0 = identical
// distributions, 1 = disjoint. The trainer exports them ppm-scaled through
// the integer gauge metrics (`cordial_learn_*_divergence_ppm`).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/pattern_classifier.hpp"
#include "learn/outcome_log.hpp"

namespace cordial::learn {

/// Fixed-bin histogram of winning-class scores over [0, 1].
struct ScoreHistogram {
  static constexpr std::size_t kBins = 10;
  std::array<std::uint64_t, kBins> counts{};
  std::uint64_t total = 0;

  void Add(double score);
};

/// What a classifier's predictions over a bank set look like: the predicted
/// class mix plus, per predicted class, the distribution of the winning
/// probability.
struct ScoreProfile {
  std::array<std::uint64_t, 3> class_counts{};
  std::array<ScoreHistogram, 3> score_hists;

  std::uint64_t total() const {
    return class_counts[0] + class_counts[1] + class_counts[2];
  }
};

/// Classify every outcome's bank and accumulate its profile. The classifier
/// must be trained.
ScoreProfile BuildScoreProfile(
    const core::PatternClassifier& classifier,
    const std::vector<std::shared_ptr<const LabelledOutcome>>& outcomes);

/// Total-variation distance between two class mixes (each normalized by its
/// own total). 0 when either side is empty — no evidence is not drift.
double MixDivergence(const std::array<std::uint64_t, 3>& a,
                     const std::array<std::uint64_t, 3>& b);

/// Mean per-class total-variation distance between the score histograms,
/// averaged over classes where both sides have samples. 0 when no class is
/// comparable.
double ScoreDivergence(const ScoreProfile& a, const ScoreProfile& b);

/// One round's drift readout (see ShadowTrainer::RunOnce).
struct DriftReport {
  /// Live serving class mix vs the champion's predicted mix on replay.
  double mix_divergence = 0.0;
  /// Champion vs challenger score distributions on the same replay banks.
  double score_divergence = 0.0;
};

}  // namespace cordial::learn
