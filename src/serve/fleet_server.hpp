// Sharded fleet server: N PredictionEngines behind deterministic routing.
//
// A fleet feed is one globally time-ordered MCE stream; a single engine
// consumes it serially. The server splits the fleet's banks across N
// EngineShards via a fixed hash of the global bank key (SplitMix64, so
// adjacent keys scatter), each with its own queue + worker. Because Cordial
// is per-bank — profiles, decision state, ledger entries never cross banks —
// a bank's records all land on one shard in submission order, and the
// sharded server's decisions, ledgers and aggregate stats are bit-identical
// to the single engine's (pinned by tests/serve/fleet_server_test.cpp).
//
// Checkpointing: SaveCheckpoint serializes every shard's engine into one
// versioned frame; RestoreCheckpoint rebuilds a same-shape server that
// resumes bit-identically. Both require the server to be drained.
//
// Migration: a shard's engine state can leave one server and land in
// another. ExportShard drains the shard and returns its framed engine
// section (the exact bytes a checkpoint would hold for it); ImportShard
// installs such a section into the same-index shard of another server.
// Routing is position-based — ShardIndexOf(bank_key, shard_count) is a pure
// function every process agrees on — so a driver that runs N servers each
// constructed with the full shard_count, feeds each server only the shards
// it owns, and moves ownership with Export/Import, produces per-shard
// engine states bit-identical to one server consuming the whole feed
// (pinned by tests/serve/migration_test.cpp and the tier-1 two-process
// smoke).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "serve/shard.hpp"

namespace cordial::serve {

struct FleetServerConfig {
  std::size_t shard_count = 1;  ///< must be >= 1
  core::EngineConfig engine;    ///< per-shard engine configuration
  QueueConfig queue;            ///< per-shard queue bound + overload policy
  /// Per-shard metrics (queue depth, latency histograms, engine action
  /// counters, labelled shard="<index>"). Near-free on the hot path —
  /// relaxed atomics and two steady_clock reads per record — but can be
  /// turned off to benchmark the bare path (bench/perf_obs_overhead).
  bool instrument = true;
  /// When set, every shard's engine subscribes to this slot
  /// (PredictionEngine::AttachModelSlot): newly published model generations
  /// are adopted per shard at its next record boundary. The slot must
  /// outlive the server. Null = models are fixed for the server's lifetime.
  const core::ModelSlot* model_slot = nullptr;
};

class FleetServer {
 public:
  /// Sink invoked on each shard's worker thread after every engine step.
  /// Distinct shards call it concurrently — the sink must be thread-safe
  /// (per-shard sinks can be built by dispatching on `shard`).
  using ActionSink = std::function<void(std::size_t shard,
                                        const trace::MceRecord& record,
                                        const core::IsolationActions&)>;

  FleetServer(const hbm::TopologyConfig& topology,
              const core::PatternClassifier& classifier,
              const core::CrossRowPredictor& single_predictor,
              const core::CrossRowPredictor* double_predictor = nullptr,
              FleetServerConfig config = {}, ActionSink sink = nullptr);

  /// Movable (factory-style construction); the atomic invalid-record tally
  /// carries over with a relaxed load — only valid between submissions,
  /// which is the only time moving a server is sane anyway.
  FleetServer(FleetServer&& other) noexcept
      : codec_(std::move(other.codec_)),
        shards_(std::move(other.shards_)),
        invalid_records_(
            other.invalid_records_.load(std::memory_order_relaxed)) {}

  void Start();  ///< start every shard's worker
  /// Route one record to its bank's shard. Returns false when that shard
  /// refused it (kReject overload policy). The && overload moves the record
  /// all the way into its shard's ring slot.
  ///
  /// Records with an out-of-topology address or a non-finite timestamp are
  /// silently consumed: counted in invalid_records(), reported as accepted
  /// (no spurious backpressure to remote feeders), never routed to a shard.
  /// Without this guard such a record would trip BankKey's contract check on
  /// the submitter's thread and take the daemon down with it.
  bool Submit(const trace::MceRecord& record);
  bool Submit(trace::MceRecord&& record);
  /// Route a batch: bucket the span by shard (stable — records keep their
  /// span order within each bucket, which is all determinism needs since a
  /// bank never spans shards), then hand each bucket to its shard's
  /// SubmitBatch. Returns the number of records accepted; invalid records
  /// follow the Submit contract (counted, included in the return, dropped).
  std::size_t SubmitBatch(std::span<const trace::MceRecord> records);
  void Drain();  ///< block until every shard is idle with an empty queue
  void Stop();   ///< drain remaining work and join all workers; idempotent

  std::size_t shard_count() const { return shards_.size(); }
  const EngineShard& shard(std::size_t index) const {
    return *shards_[index];
  }
  /// Deterministic bank→shard routing: SplitMix64(bank_key) % shard_count.
  std::size_t ShardOf(std::uint64_t bank_key) const;
  /// The same routing as a pure function — remote feeders use it to agree
  /// with every server on which shard owns a bank.
  static std::size_t ShardIndexOf(std::uint64_t bank_key,
                                  std::size_t shard_count);
  const hbm::AddressCodec& codec() const { return codec_; }

  // --- shard migration -----------------------------------------------------

  /// Block until shard `index` is idle with an empty queue.
  void DrainShard(std::size_t index);
  /// Drain shard `index` and return its engine's framed state — the exact
  /// bytes SaveCheckpoint writes for that shard's section. The caller must
  /// stop submitting records routed to this shard first, or the export is a
  /// snapshot of a moving target.
  std::string ExportShard(std::size_t index);
  /// Drain shard `index` and replace its engine state with a section
  /// previously produced by ExportShard (here or on another server with the
  /// same engine config). Throws ParseError on malformed input and leaves
  /// the shard unchanged.
  void ImportShard(std::size_t index, const std::string& state);

  /// Records consumed by Submit/SubmitBatch that never reached a shard
  /// because their address fell outside the topology or their timestamp was
  /// non-finite.
  std::uint64_t invalid_records() const {
    return invalid_records_.load(std::memory_order_relaxed);
  }

  /// Element-wise sum of every shard engine's stats (ratios recompute from
  /// the summed tallies). Meaningful when drained.
  core::EngineStats AggregateStats() const;
  /// Element-wise sum of every shard's queue counters.
  ShardCounters AggregateCounters() const;

  /// Merge every shard registry's snapshot into one deterministic scrape
  /// (samples sorted by name + shard label). Safe to call at any time,
  /// concurrently with submission and the workers — this is the /metrics
  /// read path. When the server is uninstrumented the snapshot is empty.
  obs::RegistrySnapshot MetricsSnapshot() const;

  /// Per-shard model generation currently being served, read from each
  /// engine's model-version gauge path (an acquire load — safe while
  /// running). Shards adopt a published generation independently at their
  /// next record boundary, so the entries may briefly disagree right after
  /// a publish; they converge as every shard touches its next record.
  std::vector<std::uint64_t> ModelVersions() const;

  /// Human-readable per-shard table (queue counters, depth, live engine
  /// action counters) for /statusz. Safe while running: every cell comes
  /// from a mutex-guarded counter copy or an atomic metric, never from the
  /// engines themselves.
  std::string StatusTable() const;

  /// Serialize every shard engine into one framed checkpoint. The server
  /// must be drained (Drain() or Stop() first). The outer fleet frame is
  /// the same for both encodings ("shards N" + nested engine frames); each
  /// nested engine frame self-describes v1 text or v2 binary, so
  /// RestoreCheckpoint reads either transparently.
  void SaveCheckpoint(std::ostream& out, core::StateEncoding encoding =
                                             core::StateEncoding::kText) const;
  /// Restore from a SaveCheckpoint stream. Throws ParseError on malformed
  /// input, version mismatch, or a shard-count mismatch (a checkpoint only
  /// restores into a server with the same shard count). Strong guarantee:
  /// every shard section is parsed before any shard commits, so a throw
  /// leaves the whole server unchanged — never half-restored.
  void RestoreCheckpoint(std::istream& in);

  // --- delta checkpoints (server must be drained throughout) ---------------

  /// Serialize every shard's dirty banks into one cordial_fleet_delta
  /// frame. Dirty sets are NOT cleared — call MarkCheckpointClean once the
  /// bytes are durable, so a failed write loses nothing. Returns the total
  /// number of banks written across shards.
  std::uint64_t SaveDeltaCheckpoint(std::ostream& out) const;
  /// Apply a delta on top of the current state (the full snapshot it chains
  /// from, plus any earlier deltas). Same strong guarantee and shard-count
  /// check as RestoreCheckpoint: every shard's delta is parsed before any
  /// commits.
  void ApplyDeltaCheckpoint(std::istream& in);
  /// Advance every shard's snapshot epoch (all banks become clean).
  void MarkCheckpointClean();
  /// Banks dirtied since the last MarkCheckpointClean, across all shards.
  std::size_t DirtyBankCount() const;
  std::size_t TotalBankCount() const;

 private:
  bool ValidRecord(const trace::MceRecord& record) const;

  hbm::AddressCodec codec_;
  std::vector<std::unique_ptr<EngineShard>> shards_;
  std::atomic<std::uint64_t> invalid_records_{0};
};

}  // namespace cordial::serve
