#include "serve/shard.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.hpp"

namespace cordial::serve {

namespace {

/// Bounded spin with periodic yields so an oversubscribed (or single-core)
/// host hands the cycles to whichever thread can make the condition true.
/// Returns the condition's final value.
template <typename Ready>
bool SpinFor(std::size_t budget, Ready&& ready) {
  for (std::size_t i = 0; i < budget; ++i) {
    if (ready()) return true;
    if ((i & 15u) == 15u) {
      std::this_thread::yield();
    } else {
      CpuRelax();
    }
  }
  return ready();
}

}  // namespace

EngineShard::EngineShard(const hbm::TopologyConfig& topology,
                         const core::PatternClassifier& classifier,
                         const core::CrossRowPredictor& single_predictor,
                         const core::CrossRowPredictor* double_predictor,
                         core::EngineConfig engine_config,
                         QueueConfig queue_config, ActionSink sink,
                         bool instrument, obs::Labels metric_labels)
    : engine_(topology, classifier, single_predictor, double_predictor,
              engine_config),
      queue_config_(queue_config),
      sink_(std::move(sink)),
      ring_([&] {
        CORDIAL_CHECK_MSG(queue_config.capacity >= 1,
                          "shard queue capacity must be >= 1");
        return queue_config.capacity;
      }()) {
  CORDIAL_CHECK_MSG(queue_config_.latency_sample_every >= 1,
                    "latency sample stride must be >= 1");
  CORDIAL_CHECK_MSG(queue_config_.batch_max >= 1,
                    "worker drain batch must be >= 1");
  if (instrument) {
    queue_metrics_.depth = &metrics_registry_.GetGauge(
        "cordial_shard_queue_depth", "Records waiting in the shard queue",
        metric_labels);
    queue_metrics_.latency = &metrics_registry_.GetHistogram(
        "cordial_shard_latency_seconds",
        "Submit-to-processed latency through the shard queue",
        obs::DefaultLatencyBuckets(), metric_labels);
    queue_metrics_.submitted = &metrics_registry_.GetCounter(
        "cordial_shard_records_submitted_total",
        "Records accepted into the shard queue", metric_labels);
    queue_metrics_.processed = &metrics_registry_.GetCounter(
        "cordial_shard_records_processed_total",
        "Records the shard's engine consumed", metric_labels);
    queue_metrics_.dropped_oldest = &metrics_registry_.GetCounter(
        "cordial_shard_records_dropped_oldest_total",
        "Queued records evicted under the drop-oldest overload policy",
        metric_labels);
    queue_metrics_.rejected = &metrics_registry_.GetCounter(
        "cordial_shard_records_rejected_total",
        "Records refused under the reject overload policy or while stopping",
        metric_labels);
    engine_.AttachMetrics(metrics_registry_, metric_labels,
                          queue_config_.latency_sample_every);
  }
}

EngineShard::~EngineShard() { Stop(); }

void EngineShard::Start() {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(state_.load(std::memory_order_acquire) == State::kIdle,
                    "shard already started or stopped");
  drain_buf_.resize(queue_config_.batch_max);
  state_.store(State::kRunning, std::memory_order_release);
  worker_ = std::thread(&EngineShard::WorkerLoop, this);
}

void EngineShard::AttachModelSlot(const core::ModelSlot& slot) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  // The engine belongs to the worker once started; a running shard must be
  // drained first so no Observe is in flight during the attach.
  CORDIAL_CHECK_MSG(state_.load(std::memory_order_acquire) != State::kRunning ||
                        DrainedNow(),
                    "attach a model slot before Start or while drained");
  engine_.AttachModelSlot(slot);
}

void EngineShard::CountRejected(std::uint64_t n) {
  rejected_.fetch_add(n, std::memory_order_release);
  if (queue_metrics_.rejected) queue_metrics_.rejected->Increment(n);
}

void EngineShard::CountDropped(std::uint64_t n) {
  dropped_.fetch_add(n, std::memory_order_release);
  if (queue_metrics_.dropped_oldest) {
    queue_metrics_.dropped_oldest->Increment(n);
  }
  // A drop can be the event that completes a Drain (every accepted record
  // consumed one way or the other) — wake it if it is parked.
  idle_.Notify();
}

void EngineShard::CountSubmitted(std::uint64_t n) {
  submitted_.fetch_add(n, std::memory_order_release);
  if (queue_metrics_.submitted) queue_metrics_.submitted->Increment(n);
}

std::chrono::steady_clock::time_point EngineShard::MaybeStamp(
    std::uint64_t ticket) {
  if (queue_metrics_.latency == nullptr) return {};
  // Threshold compare, not modulo: a u64 division per record is measurable
  // here. A zero time_point means "don't time this one" — the worker skips
  // the latency histogram for unstamped records. Concurrent producers may
  // race the threshold update and sample slightly off-stride; for a single
  // producer the stride is exact.
  if (ticket < next_latency_stamp_.load(std::memory_order_relaxed)) return {};
  next_latency_stamp_.store(ticket + queue_config_.latency_sample_every,
                            std::memory_order_relaxed);
  return std::chrono::steady_clock::now();
}

bool EngineShard::Submit(const trace::MceRecord& record) {
  return SubmitImpl(trace::MceRecord(record));
}

bool EngineShard::Submit(trace::MceRecord&& record) {
  return SubmitImpl(std::move(record));
}

bool EngineShard::SubmitImpl(trace::MceRecord&& record) {
  if (StoppingOrStopped()) {
    CountRejected(1);
    return false;
  }
  QueueItem item(std::move(record),
                 MaybeStamp(submitted_.load(std::memory_order_relaxed)));
  if (!PushWithPolicy(std::move(item))) return false;
  CountSubmitted(1);
  not_empty_.Notify();
  return true;
}

bool EngineShard::PushWithPolicy(QueueItem&& item) {
  if (ring_.TryPush(std::move(item))) return true;  // fast path: not full
  switch (queue_config_.policy) {
    case OverloadPolicy::kReject:
      CountRejected(1);
      return false;
    case OverloadPolicy::kDropOldest:
      // Evict from the head until the push lands. TryPop is MPMC-safe, so
      // this races cleanly with the worker draining (a worker pop between
      // our pop and push just means one fewer eviction).
      for (;;) {
        QueueItem victim;
        if (ring_.TryPop(victim)) CountDropped(1);
        if (ring_.TryPush(std::move(item))) return true;
      }
    case OverloadPolicy::kBlock:
      for (;;) {
        bool pushed = false;
        SpinFor(queue_config_.spin_budget, [&] {
          if (ring_.TryPush(std::move(item))) {
            pushed = true;
            return true;
          }
          return StoppingOrStopped();
        });
        if (pushed) return true;
        if (StoppingOrStopped()) {
          CountRejected(1);
          return false;
        }
        const std::uint64_t epoch = not_full_.PrepareWait();
        if (StoppingOrStopped() ||
            ring_.ApproxSize() < queue_config_.capacity) {
          not_full_.CancelWait();
          continue;
        }
        not_full_.Wait(epoch);
      }
  }
  return false;  // unreachable: the switch covers every policy
}

std::size_t EngineShard::SubmitBatch(
    std::span<const trace::MceRecord> records) {
  if (records.empty()) return 0;
  if (StoppingOrStopped()) {
    CountRejected(records.size());
    return 0;
  }
  // Stage span slices in a small stack chunk of ring items, then claim
  // contiguous slot runs. The chunk bounds per-call stack use; the ring
  // claim is still one CAS per contiguous run it manages to take.
  constexpr std::size_t kChunk = 64;
  QueueItem chunk[kChunk];
  std::size_t accepted = 0;
  std::size_t i = 0;
  while (i < records.size()) {
    const std::size_t len = std::min(kChunk, records.size() - i);
    const std::uint64_t base = submitted_.load(std::memory_order_relaxed);
    for (std::size_t j = 0; j < len; ++j) {
      chunk[j] = QueueItem(records[i + j], MaybeStamp(base + j));
    }
    std::size_t off = 0;
    while (off < len) {
      const std::size_t pushed = ring_.TryPushBatch(chunk + off, len - off);
      if (pushed > 0) {
        off += pushed;
        accepted += pushed;
        CountSubmitted(pushed);
        not_empty_.Notify();
        continue;
      }
      // Ring full: apply the overload policy to the un-pushed remainder.
      const std::size_t remaining = records.size() - i - off;
      if (queue_config_.policy == OverloadPolicy::kReject) {
        CountRejected(remaining);
        return accepted;
      }
      if (queue_config_.policy == OverloadPolicy::kDropOldest) {
        QueueItem victim;
        if (ring_.TryPop(victim)) CountDropped(1);
        continue;
      }
      // kBlock: spin for space, then park until the worker frees slots.
      SpinFor(queue_config_.spin_budget, [&] {
        return StoppingOrStopped() ||
               ring_.ApproxSize() < queue_config_.capacity;
      });
      if (StoppingOrStopped()) {
        CountRejected(remaining);
        return accepted;
      }
      const std::uint64_t epoch = not_full_.PrepareWait();
      if (StoppingOrStopped() ||
          ring_.ApproxSize() < queue_config_.capacity) {
        not_full_.CancelWait();
        continue;
      }
      not_full_.Wait(epoch);
    }
    i += len;
  }
  return accepted;
}

void EngineShard::Drain() {
  CORDIAL_CHECK_MSG(
      state_.load(std::memory_order_acquire) == State::kRunning ||
          ring_.ApproxEmpty(),
      "draining a non-empty shard requires a running worker");
  if (SpinFor(queue_config_.spin_budget, [&] { return DrainedNow(); })) {
    return;
  }
  for (;;) {
    const std::uint64_t epoch = idle_.PrepareWait();
    if (DrainedNow()) {
      idle_.CancelWait();
      return;
    }
    idle_.Wait(epoch);
  }
}

void EngineShard::Stop() {
  std::lock_guard<std::mutex> lock(control_mutex_);
  const State s = state_.load(std::memory_order_acquire);
  if (s == State::kStopped) return;
  if (s == State::kIdle) {
    // Never-started shards become terminal too.
    state_.store(State::kStopped, std::memory_order_release);
    return;
  }
  state_.store(State::kStopping, std::memory_order_seq_cst);
  not_empty_.Notify();  // wake the worker to drain and exit
  not_full_.Notify();   // wake blocked producers to reject and return
  worker_.join();
  state_.store(State::kStopped, std::memory_order_release);
}

ShardCounters EngineShard::counters() const {
  ShardCounters c;
  c.submitted = submitted_.load(std::memory_order_acquire);
  c.processed = processed_.load(std::memory_order_acquire);
  c.dropped_oldest = dropped_.load(std::memory_order_acquire);
  c.rejected = rejected_.load(std::memory_order_acquire);
  return c;
}

obs::RegistrySnapshot EngineShard::MetricsSnapshot() const {
  if (queue_metrics_.depth) {
    queue_metrics_.depth->Set(static_cast<std::int64_t>(queue_depth()));
  }
  return metrics_registry_.Snapshot();
}

void EngineShard::SaveState(std::ostream& out,
                            core::StateEncoding encoding) const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(
      ring_.ApproxEmpty() && !busy_.load(std::memory_order_acquire),
      "shard must be drained before checkpointing");
  engine_.SaveState(out, encoding);
}

std::uint64_t EngineShard::SaveDeltaState(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(
      ring_.ApproxEmpty() && !busy_.load(std::memory_order_acquire),
      "shard must be drained before checkpointing");
  return engine_.SaveDeltaState(out);
}

core::PredictionEngine::StagedDelta EngineShard::ParseDeltaState(
    std::istream& in) const {
  return engine_.ParseDeltaState(in);
}

void EngineShard::CommitDeltaState(
    core::PredictionEngine::StagedDelta&& staged) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(
      ring_.ApproxEmpty() && !busy_.load(std::memory_order_acquire),
      "shard must be drained before restoring");
  engine_.CommitDeltaState(std::move(staged));
}

void EngineShard::MarkCheckpointClean() {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(
      ring_.ApproxEmpty() && !busy_.load(std::memory_order_acquire),
      "shard must be drained before marking a checkpoint clean");
  engine_.MarkCheckpointClean();
}

std::size_t EngineShard::dirty_bank_count() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(
      ring_.ApproxEmpty() && !busy_.load(std::memory_order_acquire),
      "shard must be drained before reading dirty state");
  return engine_.dirty_bank_count();
}

std::size_t EngineShard::bank_count() const {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(
      ring_.ApproxEmpty() && !busy_.load(std::memory_order_acquire),
      "shard must be drained before reading dirty state");
  return engine_.bank_count();
}

void EngineShard::RestoreState(std::istream& in) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(
      ring_.ApproxEmpty() && !busy_.load(std::memory_order_acquire),
      "shard must be drained before restoring");
  engine_.RestoreState(in);
}

core::PredictionEngine::StagedState EngineShard::ParseState(
    std::istream& in) const {
  return engine_.ParseState(in);
}

void EngineShard::CommitState(core::PredictionEngine::StagedState&& staged) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  CORDIAL_CHECK_MSG(
      ring_.ApproxEmpty() && !busy_.load(std::memory_order_acquire),
      "shard must be drained before restoring");
  engine_.CommitState(std::move(staged));
}

void EngineShard::WorkerLoop() {
  QueueItem* const buf = drain_buf_.data();
  const std::size_t batch_max = queue_config_.batch_max;
  for (;;) {
    // busy_ goes up before the claim so the drained-shard contract checks
    // (SaveState etc.) never see "ring empty, worker idle" while a batch
    // is in flight between the ring and the engine.
    busy_.store(true, std::memory_order_release);
    const std::size_t n = ring_.TryPopBatch(buf, batch_max);
    if (n == 0) {
      busy_.store(false, std::memory_order_release);
      idle_.Notify();  // a Drain may be parked on exactly this moment
      const bool stopping =
          state_.load(std::memory_order_acquire) == State::kStopping;
      if (stopping && ring_.ApproxEmpty()) return;
      const auto ready = [&] {
        return ring_.PoppableNow() ||
               state_.load(std::memory_order_acquire) == State::kStopping;
      };
      if (SpinFor(queue_config_.spin_budget, ready)) continue;
      const std::uint64_t epoch = not_empty_.PrepareWait();
      if (ready()) {
        not_empty_.CancelWait();
      } else {
        not_empty_.Wait(epoch);
      }
      continue;
    }
    // Freed n slots: wake kBlock producers before the engine work, not
    // after, so they refill the ring while the engine computes.
    not_full_.Notify();
    for (std::size_t i = 0; i < n; ++i) {
      const QueueItem& item = buf[i];
      const core::IsolationActions actions = engine_.Observe(item.first);
      if (sink_) sink_(item.first, actions);
      if (queue_metrics_.latency &&
          item.second != std::chrono::steady_clock::time_point{}) {
        queue_metrics_.latency->Observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          item.second)
                .count());
      }
    }
    processed_.fetch_add(n, std::memory_order_release);
    if (queue_metrics_.processed) queue_metrics_.processed->Increment(n);
    busy_.store(false, std::memory_order_release);
    if (ring_.ApproxEmpty()) idle_.Notify();
  }
}

}  // namespace cordial::serve
