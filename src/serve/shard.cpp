#include "serve/shard.hpp"

#include <utility>

#include "common/check.hpp"

namespace cordial::serve {

EngineShard::EngineShard(const hbm::TopologyConfig& topology,
                         const core::PatternClassifier& classifier,
                         const core::CrossRowPredictor& single_predictor,
                         const core::CrossRowPredictor* double_predictor,
                         core::EngineConfig engine_config,
                         QueueConfig queue_config, ActionSink sink)
    : engine_(topology, classifier, single_predictor, double_predictor,
              engine_config),
      queue_config_(queue_config),
      sink_(std::move(sink)) {
  CORDIAL_CHECK_MSG(queue_config_.capacity >= 1,
                    "shard queue capacity must be >= 1");
}

EngineShard::~EngineShard() { Stop(); }

void EngineShard::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(!started_ && !stopped_,
                    "shard already started or stopped");
  started_ = true;
  worker_ = std::thread(&EngineShard::WorkerLoop, this);
}

bool EngineShard::Submit(const trace::MceRecord& record) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || stopped_) {
    ++counters_.rejected;
    return false;
  }
  if (queue_.size() >= queue_config_.capacity) {
    switch (queue_config_.policy) {
      case OverloadPolicy::kBlock:
        not_full_.wait(lock, [&] {
          return queue_.size() < queue_config_.capacity || stopping_;
        });
        if (stopping_) {
          ++counters_.rejected;
          return false;
        }
        break;
      case OverloadPolicy::kDropOldest:
        while (queue_.size() >= queue_config_.capacity) {
          queue_.pop_front();
          ++counters_.dropped_oldest;
        }
        break;
      case OverloadPolicy::kReject:
        ++counters_.rejected;
        return false;
    }
  }
  queue_.push_back(record);
  ++counters_.submitted;
  not_empty_.notify_one();
  return true;
}

void EngineShard::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(started_ || queue_.empty(),
                    "draining a non-empty shard requires a running worker");
  idle_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

void EngineShard::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      stopped_ = true;  // never-started shards become terminal too
      return;
    }
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
  stopping_ = false;
  stopped_ = true;
}

ShardCounters EngineShard::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void EngineShard::SaveState(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(queue_.empty() && !busy_,
                    "shard must be drained before checkpointing");
  engine_.SaveState(out);
}

void EngineShard::RestoreState(std::istream& in) {
  std::lock_guard<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(queue_.empty() && !busy_,
                    "shard must be drained before restoring");
  engine_.RestoreState(in);
}

void EngineShard::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained
    const trace::MceRecord record = queue_.front();
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    not_full_.notify_one();
    const core::IsolationActions actions = engine_.Observe(record);
    if (sink_) sink_(record, actions);
    lock.lock();
    busy_ = false;
    ++counters_.processed;
    if (queue_.empty()) idle_.notify_all();
  }
}

}  // namespace cordial::serve
