#include "serve/shard.hpp"

#include <utility>

#include "common/check.hpp"

namespace cordial::serve {

EngineShard::EngineShard(const hbm::TopologyConfig& topology,
                         const core::PatternClassifier& classifier,
                         const core::CrossRowPredictor& single_predictor,
                         const core::CrossRowPredictor* double_predictor,
                         core::EngineConfig engine_config,
                         QueueConfig queue_config, ActionSink sink,
                         bool instrument, obs::Labels metric_labels)
    : engine_(topology, classifier, single_predictor, double_predictor,
              engine_config),
      queue_config_(queue_config),
      sink_(std::move(sink)) {
  CORDIAL_CHECK_MSG(queue_config_.capacity >= 1,
                    "shard queue capacity must be >= 1");
  CORDIAL_CHECK_MSG(queue_config_.latency_sample_every >= 1,
                    "latency sample stride must be >= 1");
  if (instrument) {
    queue_metrics_.depth = &metrics_registry_.GetGauge(
        "cordial_shard_queue_depth", "Records waiting in the shard queue",
        metric_labels);
    queue_metrics_.latency = &metrics_registry_.GetHistogram(
        "cordial_shard_latency_seconds",
        "Submit-to-processed latency through the shard queue",
        obs::DefaultLatencyBuckets(), metric_labels);
    queue_metrics_.submitted = &metrics_registry_.GetCounter(
        "cordial_shard_records_submitted_total",
        "Records accepted into the shard queue", metric_labels);
    queue_metrics_.processed = &metrics_registry_.GetCounter(
        "cordial_shard_records_processed_total",
        "Records the shard's engine consumed", metric_labels);
    queue_metrics_.dropped_oldest = &metrics_registry_.GetCounter(
        "cordial_shard_records_dropped_oldest_total",
        "Queued records evicted under the drop-oldest overload policy",
        metric_labels);
    queue_metrics_.rejected = &metrics_registry_.GetCounter(
        "cordial_shard_records_rejected_total",
        "Records refused under the reject overload policy or while stopping",
        metric_labels);
    engine_.AttachMetrics(metrics_registry_, metric_labels,
                          queue_config_.latency_sample_every);
  }
}

EngineShard::~EngineShard() { Stop(); }

void EngineShard::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(!started_ && !stopped_,
                    "shard already started or stopped");
  started_ = true;
  worker_ = std::thread(&EngineShard::WorkerLoop, this);
}

bool EngineShard::Submit(const trace::MceRecord& record) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_ || stopped_) {
    ++counters_.rejected;
    if (queue_metrics_.rejected) queue_metrics_.rejected->Increment();
    return false;
  }
  if (queue_.size() >= queue_config_.capacity) {
    switch (queue_config_.policy) {
      case OverloadPolicy::kBlock:
        not_full_.wait(lock, [&] {
          return queue_.size() < queue_config_.capacity || stopping_;
        });
        if (stopping_) {
          ++counters_.rejected;
          if (queue_metrics_.rejected) queue_metrics_.rejected->Increment();
          return false;
        }
        break;
      case OverloadPolicy::kDropOldest:
        while (queue_.size() >= queue_config_.capacity) {
          queue_.pop_front();
          ++counters_.dropped_oldest;
          if (queue_metrics_.dropped_oldest) {
            queue_metrics_.dropped_oldest->Increment();
          }
        }
        break;
      case OverloadPolicy::kReject:
        ++counters_.rejected;
        if (queue_metrics_.rejected) queue_metrics_.rejected->Increment();
        return false;
    }
  }
  // Sampled stamp: a zero time_point means "don't time this one" — the
  // worker skips the latency histograms for unstamped records. Threshold
  // compare, not modulo: a u64 division per record is measurable here.
  const bool stamp = queue_metrics_.latency != nullptr &&
                     counters_.submitted >= next_latency_stamp_;
  if (stamp) {
    next_latency_stamp_ =
        counters_.submitted + queue_config_.latency_sample_every;
  }
  queue_.emplace_back(record, stamp ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{});
  ++counters_.submitted;
  if (queue_metrics_.submitted) queue_metrics_.submitted->Increment();
  not_empty_.notify_one();
  return true;
}

void EngineShard::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(started_ || queue_.empty(),
                    "draining a non-empty shard requires a running worker");
  idle_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

void EngineShard::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) {
      stopped_ = true;  // never-started shards become terminal too
      return;
    }
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
  stopping_ = false;
  stopped_ = true;
}

ShardCounters EngineShard::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::size_t EngineShard::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

obs::RegistrySnapshot EngineShard::MetricsSnapshot() const {
  if (queue_metrics_.depth) {
    queue_metrics_.depth->Set(static_cast<std::int64_t>(queue_depth()));
  }
  return metrics_registry_.Snapshot();
}

void EngineShard::SaveState(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(queue_.empty() && !busy_,
                    "shard must be drained before checkpointing");
  engine_.SaveState(out);
}

void EngineShard::RestoreState(std::istream& in) {
  std::lock_guard<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(queue_.empty() && !busy_,
                    "shard must be drained before restoring");
  engine_.RestoreState(in);
}

core::PredictionEngine::StagedState EngineShard::ParseState(
    std::istream& in) const {
  return engine_.ParseState(in);
}

void EngineShard::CommitState(core::PredictionEngine::StagedState&& staged) {
  std::lock_guard<std::mutex> lock(mutex_);
  CORDIAL_CHECK_MSG(queue_.empty() && !busy_,
                    "shard must be drained before restoring");
  engine_.CommitState(std::move(staged));
}

void EngineShard::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    not_empty_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and fully drained
    const QueueItem item = queue_.front();
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    not_full_.notify_one();
    const core::IsolationActions actions = engine_.Observe(item.first);
    if (sink_) sink_(item.first, actions);
    if (queue_metrics_.latency &&
        item.second != std::chrono::steady_clock::time_point{}) {
      queue_metrics_.latency->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        item.second)
              .count());
    }
    if (queue_metrics_.processed) queue_metrics_.processed->Increment();
    lock.lock();
    busy_ = false;
    ++counters_.processed;
    if (queue_.empty()) idle_.notify_all();
  }
}

}  // namespace cordial::serve
