// One serving shard: a PredictionEngine behind a lock-free bounded MPSC
// ring (common/mpsc_ring.hpp).
//
// The fleet server partitions banks across shards; each shard's worker
// thread consumes its ring in FIFO order, so every bank's records reach its
// engine in exactly the submission order — the property that makes an
// N-shard server's decisions bit-identical to one engine consuming the same
// feed (banks never span shards, and Cordial's policy is per-bank).
//
// Hot path: Submit is one CAS on the ring tail plus a release store — no
// mutex, no condvar signal, no allocation (records move into pre-allocated
// cache-line-padded slots). SubmitBatch claims a contiguous run of slots
// with a single CAS. The worker drains up to `QueueConfig::batch_max`
// records per wakeup into a worker-local buffer before touching the engine,
// so the per-record queue cost amortizes across the batch. Waiting is
// adaptive spin-then-park: a bounded spin (QueueConfig::spin_budget), then
// a futex-style park on an atomic epoch (ParkingSpot) — the pre-ring
// not_empty_/not_full_/idle_ condvars survive only inside that park
// mechanism, and nobody touches them while the queue is moving.
//
// The queue is bounded; what happens when producers outrun the worker is the
// OverloadPolicy: block the producer (lossless, backpressure), drop the
// oldest queued record (bounded latency, lossy — the producer evicts the
// ring head itself, which is why pops are MPMC-safe), or reject the new
// record (caller decides). Every lossy outcome is counted.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/mpsc_ring.hpp"
#include "core/engine.hpp"
#include "obs/metrics.hpp"

namespace cordial::serve {

/// What Submit does when the shard's queue is full.
enum class OverloadPolicy {
  kBlock,       ///< wait for space — lossless backpressure
  kDropOldest,  ///< evict the oldest queued record, keep the new one
  kReject,      ///< refuse the new record (Submit returns false)
};

struct QueueConfig {
  std::size_t capacity = 1024;  ///< must be >= 1 (exact bound, any value)
  OverloadPolicy policy = OverloadPolicy::kBlock;
  /// Latency-histogram sampling stride (must be >= 1): only every Nth
  /// submitted record is clock-stamped, and only stamped records feed the
  /// queue and engine latency histograms. Counters and gauges stay exact —
  /// they cost relaxed atomics, while a timed record costs up to four
  /// steady_clock reads, which at multi-M records/s dominates the
  /// observability bill. 1 = time everything (exact for a single producer;
  /// concurrent producers may sample a near-miss of the stride); 64 keeps
  /// the instrumented hot path within the perf_obs_overhead budget.
  std::size_t latency_sample_every = 64;
  /// Max records the worker drains from the ring per wakeup (must be
  /// >= 1). Larger batches amortize ring claims and wakeups; the records
  /// still hit the engine one at a time, in FIFO order.
  std::size_t batch_max = 256;
  /// Spin iterations before a waiter (blocked producer, empty worker,
  /// Drain) parks on its ParkingSpot. 0 = park immediately. Keep small on
  /// oversubscribed hosts — the spin yields periodically so a single core
  /// still makes progress.
  std::size_t spin_budget = 128;
};

/// Tallies of everything that crossed (or failed to cross) a shard's queue.
struct ShardCounters {
  std::uint64_t submitted = 0;      ///< records accepted into the queue
  std::uint64_t processed = 0;      ///< records the engine consumed
  std::uint64_t dropped_oldest = 0; ///< evictions under kDropOldest
  std::uint64_t rejected = 0;       ///< refusals under kReject

  friend bool operator==(const ShardCounters&,
                         const ShardCounters&) = default;
};

/// A single engine + ring + worker thread. Thread-safe for any number of
/// producers calling Submit/SubmitBatch concurrently; the engine itself is
/// touched only by the worker.
class EngineShard {
 public:
  /// Called by the worker after each engine step (still on the worker
  /// thread, engine state already advanced). May be empty.
  using ActionSink = std::function<void(const trace::MceRecord&,
                                        const core::IsolationActions&)>;

  /// `instrument` turns on the shard's own metric registry: queue depth
  /// gauge, submit→processed latency histogram, overload counters, plus the
  /// engine's cordial_engine_* metrics — all labelled with `metric_labels`
  /// (the fleet server passes {{"shard", "<index>"}}). Everything is
  /// accumulated with relaxed atomics on the hot path; scraping merges
  /// per-shard registries so producers and workers never contend on a
  /// shared metrics lock. With instrument=false the shard runs the bare
  /// hot path (no clock reads, null metric pointers).
  EngineShard(const hbm::TopologyConfig& topology,
              const core::PatternClassifier& classifier,
              const core::CrossRowPredictor& single_predictor,
              const core::CrossRowPredictor* double_predictor,
              core::EngineConfig engine_config, QueueConfig queue_config = {},
              ActionSink sink = nullptr, bool instrument = true,
              obs::Labels metric_labels = {});
  ~EngineShard();

  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  /// Spawn the worker thread. Submitting before Start is allowed (records
  /// queue up), but kBlock submits to a full unstarted shard would wait
  /// forever — start first under that policy.
  void Start();

  /// Subscribe this shard's engine to a published model slot (see
  /// PredictionEngine::AttachModelSlot). The worker adopts newly published
  /// generations at record boundaries. Call before Start or while the
  /// shard is drained; the slot must outlive the shard.
  void AttachModelSlot(const core::ModelSlot& slot);

  /// Enqueue one record. Returns false only when the record was refused
  /// (kReject on a full queue, or the shard is stopping). The && overload
  /// moves the record straight into its ring slot.
  bool Submit(const trace::MceRecord& record);
  bool Submit(trace::MceRecord&& record);

  /// Enqueue a run of records in order, claiming contiguous slot runs with
  /// one CAS each. Returns how many were accepted (all of them under
  /// kBlock/kDropOldest unless the shard is stopping; under kReject the
  /// tail of the span past the first full encounter is refused and
  /// counted). Per-bank record order is preserved: the span lands in the
  /// ring exactly in span order.
  std::size_t SubmitBatch(std::span<const trace::MceRecord> records);

  /// Block until every accepted record has been processed (or dropped) and
  /// the worker is idle. Requires the worker to be running if anything is
  /// queued.
  void Drain();

  /// Process everything still queued, then join the worker. Idempotent.
  void Stop();

  /// The shard's engine. Safe to read only while the shard is drained or
  /// stopped and no producer is submitting.
  const core::PredictionEngine& engine() const { return engine_; }

  /// Model generation the engine currently serves. Unlike engine(), safe
  /// while the worker runs (relaxed atomic read).
  std::uint64_t model_version() const { return engine_.model_version(); }

  ShardCounters counters() const;

  /// Records currently queued, read straight off the ring's head/tail
  /// tickets (racy by nature; exact once drained). Costs two atomic loads
  /// and touches nothing the hot path writes per-record.
  std::size_t queue_depth() const { return ring_.ApproxSize(); }

  bool instrumented() const { return queue_metrics_.depth != nullptr; }

  /// Scrape this shard's registry. Safe at any time, concurrently with
  /// producers and the worker; cheap (atomic loads under the registry
  /// registration lock). The queue-depth gauge is refreshed here from the
  /// ring's head/tail tickets rather than on the hot path — a gauge
  /// written by both the producer and the worker would ping-pong its cache
  /// line millions of times per second for a value only scrapes ever read.
  obs::RegistrySnapshot MetricsSnapshot() const;

  /// Checkpoint the engine (PredictionEngine::SaveState). The shard must be
  /// drained or stopped — enforced by a contract check.
  void SaveState(std::ostream& out,
                 core::StateEncoding encoding = core::StateEncoding::kText) const;
  /// Restore the engine from a SaveState stream (same contract). Strong
  /// guarantee: a ParseError leaves the engine unchanged.
  void RestoreState(std::istream& in);

  /// Parse a SaveState stream without touching the engine; the fleet
  /// server stages every shard before committing any (see
  /// FleetServer::RestoreCheckpoint).
  core::PredictionEngine::StagedState ParseState(std::istream& in) const;
  /// Adopt a staged state (drained-shard contract; never throws past it).
  void CommitState(core::PredictionEngine::StagedState&& staged);

  // --- delta checkpoints (drained-shard contract throughout) ---------------
  /// Serialize this engine's dirty banks (PredictionEngine::SaveDeltaState);
  /// the dirty set is not cleared — call MarkCheckpointClean once the bytes
  /// are durable. Returns the number of banks written.
  std::uint64_t SaveDeltaState(std::ostream& out) const;
  /// Parse a delta without touching the engine (lock-free, like ParseState).
  core::PredictionEngine::StagedDelta ParseDeltaState(std::istream& in) const;
  /// Apply a staged delta on top of the current engine state.
  void CommitDeltaState(core::PredictionEngine::StagedDelta&& staged);
  /// Advance the engine's snapshot epoch (all banks become clean).
  void MarkCheckpointClean();
  std::size_t dirty_bank_count() const;
  std::size_t bank_count() const;

 private:
  enum class State : int { kIdle, kRunning, kStopping, kStopped };

  /// Hot-path metric handles, null when the shard is uninstrumented.
  struct QueueMetrics {
    obs::Gauge* depth = nullptr;
    obs::Histogram* latency = nullptr;  // submit → processed, seconds
    obs::Counter* submitted = nullptr;
    obs::Counter* processed = nullptr;
    obs::Counter* dropped_oldest = nullptr;
    obs::Counter* rejected = nullptr;
  };
  /// A queued record plus its enqueue instant (zero when unstamped).
  using QueueItem =
      std::pair<trace::MceRecord, std::chrono::steady_clock::time_point>;

  bool SubmitImpl(trace::MceRecord&& record);
  /// Push one already-built item, applying the overload policy. Returns
  /// false when the item was refused (kReject full, or stopping).
  bool PushWithPolicy(QueueItem&& item);
  /// Stride-sampled enqueue stamp for the record holding ticket `ticket`.
  std::chrono::steady_clock::time_point MaybeStamp(std::uint64_t ticket);
  bool StoppingOrStopped() const {
    const State s = state_.load(std::memory_order_acquire);
    return s == State::kStopping || s == State::kStopped;
  }
  /// True when every accepted record has been consumed (processed or
  /// dropped). Acquire loads, so a true answer also publishes the worker's
  /// engine writes to the caller.
  bool DrainedNow() const {
    return processed_.load(std::memory_order_acquire) +
               dropped_.load(std::memory_order_acquire) >=
           submitted_.load(std::memory_order_acquire);
  }
  void CountRejected(std::uint64_t n);
  void CountDropped(std::uint64_t n);
  void CountSubmitted(std::uint64_t n);
  void WorkerLoop();

  core::PredictionEngine engine_;
  QueueConfig queue_config_;
  ActionSink sink_;
  obs::MetricRegistry metrics_registry_;
  QueueMetrics queue_metrics_;

  MpscRing<QueueItem> ring_;
  /// Queue counters. Release on write / acquire on read so counters() and
  /// DrainedNow() observers see the work the counts describe.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> next_latency_stamp_{0};
  std::atomic<bool> busy_{false};  ///< worker is inside an engine batch
  std::atomic<State> state_{State::kIdle};

  /// Park points (spin-then-park waiters only; never touched while the
  /// queue is moving). These are the surviving descendants of the pre-ring
  /// not_empty_/not_full_/idle_ condvars.
  ParkingSpot not_empty_;  ///< worker parks here when the ring is empty
  ParkingSpot not_full_;   ///< kBlock producers park here when full
  ParkingSpot idle_;       ///< Drain parks here until the shard quiesces

  /// Serializes Start/Stop/checkpoint calls (mutable: SaveState is const).
  mutable std::mutex control_mutex_;
  std::vector<QueueItem> drain_buf_;  ///< worker-local batch buffer
  std::thread worker_;
};

}  // namespace cordial::serve
