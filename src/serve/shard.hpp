// One serving shard: a PredictionEngine behind a bounded MPSC queue.
//
// The fleet server partitions banks across shards; each shard's worker
// thread consumes its queue in FIFO order, so every bank's records reach its
// engine in exactly the submission order — the property that makes an
// N-shard server's decisions bit-identical to one engine consuming the same
// feed (banks never span shards, and Cordial's policy is per-bank).
//
// The queue is bounded; what happens when producers outrun the worker is the
// OverloadPolicy: block the producer (lossless, backpressure), drop the
// oldest queued record (bounded latency, lossy), or reject the new record
// (caller decides). Every lossy outcome is counted.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <utility>

#include "core/engine.hpp"
#include "obs/metrics.hpp"

namespace cordial::serve {

/// What Submit does when the shard's queue is full.
enum class OverloadPolicy {
  kBlock,       ///< wait for space — lossless backpressure
  kDropOldest,  ///< evict the oldest queued record, keep the new one
  kReject,      ///< refuse the new record (Submit returns false)
};

struct QueueConfig {
  std::size_t capacity = 1024;  ///< must be >= 1
  OverloadPolicy policy = OverloadPolicy::kBlock;
  /// Latency-histogram sampling stride (must be >= 1): only every Nth
  /// submitted record is clock-stamped, and only stamped records feed the
  /// queue and engine latency histograms. Counters and gauges stay exact —
  /// they cost relaxed atomics, while a timed record costs up to four
  /// steady_clock reads, which at multi-M records/s dominates the
  /// observability bill. 1 = time everything (tests); 64 keeps the
  /// instrumented hot path within the perf_obs_overhead budget.
  std::size_t latency_sample_every = 64;
};

/// Tallies of everything that crossed (or failed to cross) a shard's queue.
struct ShardCounters {
  std::uint64_t submitted = 0;      ///< records accepted into the queue
  std::uint64_t processed = 0;      ///< records the engine consumed
  std::uint64_t dropped_oldest = 0; ///< evictions under kDropOldest
  std::uint64_t rejected = 0;       ///< refusals under kReject

  friend bool operator==(const ShardCounters&,
                         const ShardCounters&) = default;
};

/// A single engine + queue + worker thread. Thread-safe for any number of
/// producers calling Submit concurrently; the engine itself is touched only
/// by the worker.
class EngineShard {
 public:
  /// Called by the worker after each engine step (still on the worker
  /// thread, engine state already advanced). May be empty.
  using ActionSink = std::function<void(const trace::MceRecord&,
                                        const core::IsolationActions&)>;

  /// `instrument` turns on the shard's own metric registry: queue depth
  /// gauge, submit→processed latency histogram, overload counters, plus the
  /// engine's cordial_engine_* metrics — all labelled with `metric_labels`
  /// (the fleet server passes {{"shard", "<index>"}}). Everything is
  /// accumulated with relaxed atomics on the hot path; scraping merges
  /// per-shard registries so producers and workers never contend on a
  /// shared metrics lock. With instrument=false the shard runs the bare
  /// PR-3 hot path (no clock reads, null metric pointers).
  EngineShard(const hbm::TopologyConfig& topology,
              const core::PatternClassifier& classifier,
              const core::CrossRowPredictor& single_predictor,
              const core::CrossRowPredictor* double_predictor,
              core::EngineConfig engine_config, QueueConfig queue_config = {},
              ActionSink sink = nullptr, bool instrument = true,
              obs::Labels metric_labels = {});
  ~EngineShard();

  EngineShard(const EngineShard&) = delete;
  EngineShard& operator=(const EngineShard&) = delete;

  /// Spawn the worker thread. Submitting before Start is allowed (records
  /// queue up), but kBlock submits to a full unstarted shard would wait
  /// forever — start first under that policy.
  void Start();

  /// Enqueue one record. Returns false only when the record was refused
  /// (kReject on a full queue, or the shard is stopping).
  bool Submit(const trace::MceRecord& record);

  /// Block until the queue is empty and the worker is idle. Requires the
  /// worker to be running if anything is queued.
  void Drain();

  /// Process everything still queued, then join the worker. Idempotent.
  void Stop();

  /// The shard's engine. Safe to read only while the shard is drained or
  /// stopped and no producer is submitting.
  const core::PredictionEngine& engine() const { return engine_; }

  ShardCounters counters() const;

  /// Records currently queued (racy by nature; exact once drained).
  std::size_t queue_depth() const;

  bool instrumented() const { return queue_metrics_.depth != nullptr; }

  /// Scrape this shard's registry. Safe at any time, concurrently with
  /// producers and the worker; cheap (atomic loads under the registry
  /// registration lock). The queue-depth gauge is refreshed here rather
  /// than on the hot path — a gauge written by both the producer and the
  /// worker would ping-pong its cache line millions of times per second
  /// for a value only scrapes ever read.
  obs::RegistrySnapshot MetricsSnapshot() const;

  /// Checkpoint the engine (PredictionEngine::SaveState). The shard must be
  /// drained or stopped — enforced by a contract check.
  void SaveState(std::ostream& out) const;
  /// Restore the engine from a SaveState stream (same contract). Strong
  /// guarantee: a ParseError leaves the engine unchanged.
  void RestoreState(std::istream& in);

  /// Parse a SaveState stream without touching the engine; the fleet
  /// server stages every shard before committing any (see
  /// FleetServer::RestoreCheckpoint).
  core::PredictionEngine::StagedState ParseState(std::istream& in) const;
  /// Adopt a staged state (drained-shard contract; never throws past it).
  void CommitState(core::PredictionEngine::StagedState&& staged);

 private:
  /// Hot-path metric handles, null when the shard is uninstrumented.
  struct QueueMetrics {
    obs::Gauge* depth = nullptr;
    obs::Histogram* latency = nullptr;  // submit → processed, seconds
    obs::Counter* submitted = nullptr;
    obs::Counter* processed = nullptr;
    obs::Counter* dropped_oldest = nullptr;
    obs::Counter* rejected = nullptr;
  };
  /// A queued record plus its enqueue instant (zero when uninstrumented).
  using QueueItem =
      std::pair<trace::MceRecord, std::chrono::steady_clock::time_point>;

  void WorkerLoop();

  core::PredictionEngine engine_;
  QueueConfig queue_config_;
  ActionSink sink_;
  obs::MetricRegistry metrics_registry_;
  QueueMetrics queue_metrics_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<QueueItem> queue_;
  ShardCounters counters_;
  std::uint64_t next_latency_stamp_ = 0;  ///< submitted count to stamp next
  bool busy_ = false;      ///< worker is inside an engine step
  bool started_ = false;
  bool stopping_ = false;
  bool stopped_ = false;   ///< Stop completed — the shard is terminal
  std::thread worker_;
};

}  // namespace cordial::serve
