// Checkpoint framing constants, crash-safe file helpers and the boot-time
// recovery policy for the serve layer.
//
// A fleet checkpoint is one frame (common/framing.hpp) whose payload holds
// the shard count followed by each shard engine's own framed state, in shard
// order. Frames nest, so every section self-describes its version, length
// and CRC-32, and a truncated or bit-rotted file is rejected rather than
// half-loaded.
//
// Crash-consistency contract of WriteCheckpointFile:
//   1. the full serialized state is written to `<path>.tmp` and fsync'd —
//      the data is on disk before anything points at it;
//   2. the previous `<path>` (if any) is retained as `<path>.prev` via a
//      hard link, so one older generation survives a corrupting write;
//   3. `<path>.tmp` is renamed over `<path>` (atomic within a filesystem);
//   4. the containing directory is fsync'd, making the rename itself
//      durable — without this a power cut can roll the directory entry
//      back to the old file even though the data blocks were flushed.
// On any failure the tmp file is unlinked and ContractViolation is thrown;
// a crash at any instant leaves either the old complete checkpoint or the
// new complete checkpoint at `<path>`, never a torn one.
//
// Every step is wired with a failpoint (common/failpoint.hpp) so the
// failure paths stay testable: serve.checkpoint.{open,write,fsync,rename,
// dirsync} make the corresponding syscall report EIO, and
// serve.checkpoint.crash_before_rename power-cuts the process (::_exit)
// after the tmp file is durable but before it is published.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cordial::serve {

class FleetServer;

inline constexpr char kFleetCheckpointMagic[] = "cordial_fleet_checkpoint";
inline constexpr std::uint32_t kFleetCheckpointVersion = 1;

/// Fleet-wide delta checkpoint frame: the same "shards N" + nested engine
/// frame layout as a full checkpoint, but each nested frame is a
/// cordial_engine_delta carrying only that shard's dirty banks.
inline constexpr char kFleetDeltaMagic[] = "cordial_fleet_delta";
inline constexpr std::uint32_t kFleetDeltaVersion = 1;

/// The crash-consistency core shared by full checkpoints, chain members and
/// chain manifests: durably publish `bytes` at `path` via tmp + fsync +
/// rename + directory fsync (steps 1/3/4 of the contract above, wired with
/// the same serve.checkpoint.* failpoints). With `retain_prev` the previous
/// `<path>` survives as `<path>.prev` (step 2) — and the replacement of an
/// older `.prev` is itself atomic (link to `<path>.prev.tmp`, then rename),
/// so no instant exists where the fallback generation is missing. Chain
/// members pass retain_prev=false: their history lives in the chain itself,
/// and a stray `.prev` would only confuse the manifest. Throws
/// ContractViolation on failure; the tmp file is removed, `path` and
/// `<path>.prev` are left as they were.
void WriteFileDurably(const std::string& path, std::string_view bytes,
                      bool retain_prev);

/// Atomically and durably write `server`'s checkpoint to `path` (tmp +
/// fsync + rename + directory fsync, retaining the previous generation as
/// `<path>.prev`). The server must be drained. Throws ContractViolation
/// when the file cannot be written; the tmp file is removed on failure.
void WriteCheckpointFile(const FleetServer& server, const std::string& path);

/// Restore `server` from a checkpoint file. Returns false when `path` does
/// not exist (fresh start); throws ParseError on a malformed or
/// incompatible checkpoint (the server is left unchanged).
bool ReadCheckpointFile(FleetServer& server, const std::string& path);

/// What RecoverCheckpoint did at boot.
struct RecoveryOutcome {
  /// The file the server restored from; empty = fresh start (no candidate
  /// existed, or every one was corrupt and quarantined).
  std::string restored_from;
  /// Corrupt candidates, in the order found, after being renamed to
  /// `<candidate>.corrupt` for post-mortem inspection.
  std::vector<std::string> quarantined;
  /// One human-readable reason per quarantined file.
  std::vector<std::string> errors;

  /// True when the newest checkpoint could not be used (recovery fell back
  /// to an older generation or to a fresh start).
  bool fell_back() const { return !quarantined.empty(); }
};

/// Boot-time recovery: try `path`, then `path + ".prev"`. A candidate that
/// fails to restore (ParseError: truncation, bit rot, version mismatch) is
/// quarantined to `<candidate>.corrupt` and the next one is tried; the
/// server is untouched by failed candidates (strong restore guarantee), so
/// falling through to a fresh start is safe. Never throws ParseError.
RecoveryOutcome RecoverCheckpoint(FleetServer& server,
                                  const std::string& path);

}  // namespace cordial::serve
