// Checkpoint framing constants and atomic file helpers for the serve layer.
//
// A fleet checkpoint is one frame (common/framing.hpp) whose payload holds
// the shard count followed by each shard engine's own framed state, in shard
// order. Frames nest, so every section self-describes its version and length
// and a truncated file is rejected rather than half-loaded.
//
// The file helpers write through a `<path>.tmp` + rename sequence so a crash
// mid-checkpoint leaves the previous checkpoint intact — the restart path
// either sees the old complete file or the new complete file, never a torn
// one.
#pragma once

#include <cstdint>
#include <string>

namespace cordial::serve {

class FleetServer;

inline constexpr char kFleetCheckpointMagic[] = "cordial_fleet_checkpoint";
inline constexpr std::uint32_t kFleetCheckpointVersion = 1;

/// Atomically write `server`'s checkpoint to `path` (tmp + rename). The
/// server must be drained. Throws ContractViolation when the file cannot be
/// written.
void WriteCheckpointFile(const FleetServer& server, const std::string& path);

/// Restore `server` from a checkpoint file. Returns false when `path` does
/// not exist (fresh start); throws ParseError on a malformed or
/// incompatible checkpoint.
bool ReadCheckpointFile(FleetServer& server, const std::string& path);

}  // namespace cordial::serve
