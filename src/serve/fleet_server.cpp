#include "serve/fleet_server.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "serve/checkpoint.hpp"

namespace cordial::serve {

FleetServer::FleetServer(const hbm::TopologyConfig& topology,
                         const core::PatternClassifier& classifier,
                         const core::CrossRowPredictor& single_predictor,
                         const core::CrossRowPredictor* double_predictor,
                         FleetServerConfig config, ActionSink sink)
    : codec_(topology) {
  CORDIAL_CHECK_MSG(config.shard_count >= 1, "server needs at least 1 shard");
  shards_.reserve(config.shard_count);
  for (std::size_t s = 0; s < config.shard_count; ++s) {
    EngineShard::ActionSink shard_sink;
    if (sink) {
      shard_sink = [s, sink](const trace::MceRecord& record,
                             const core::IsolationActions& actions) {
        sink(s, record, actions);
      };
    }
    shards_.push_back(std::make_unique<EngineShard>(
        topology, classifier, single_predictor, double_predictor,
        config.engine, config.queue, std::move(shard_sink),
        config.instrument, obs::Labels{{"shard", std::to_string(s)}}));
    if (config.model_slot != nullptr) {
      shards_.back()->AttachModelSlot(*config.model_slot);
    }
  }
}

void FleetServer::Start() {
  for (auto& shard : shards_) shard->Start();
}

std::size_t FleetServer::ShardOf(std::uint64_t bank_key) const {
  return ShardIndexOf(bank_key, shards_.size());
}

std::size_t FleetServer::ShardIndexOf(std::uint64_t bank_key,
                                      std::size_t shard_count) {
  std::uint64_t state = bank_key;
  return static_cast<std::size_t>(SplitMix64(state) % shard_count);
}

void FleetServer::DrainShard(std::size_t index) {
  CORDIAL_CHECK_MSG(index < shards_.size(), "DrainShard: no such shard");
  shards_[index]->Drain();
}

std::string FleetServer::ExportShard(std::size_t index) {
  CORDIAL_CHECK_MSG(index < shards_.size(), "ExportShard: no such shard");
  shards_[index]->Drain();
  std::ostringstream state;
  shards_[index]->SaveState(state);
  return state.str();
}

void FleetServer::ImportShard(std::size_t index, const std::string& state) {
  CORDIAL_CHECK_MSG(index < shards_.size(), "ImportShard: no such shard");
  shards_[index]->Drain();
  std::istringstream in(state);
  shards_[index]->RestoreState(in);
}

bool FleetServer::ValidRecord(const trace::MceRecord& record) const {
  return std::isfinite(record.time_s) && codec_.IsValid(record.address);
}

bool FleetServer::Submit(const trace::MceRecord& record) {
  if (!ValidRecord(record)) {
    invalid_records_.fetch_add(1, std::memory_order_relaxed);
    return true;  // consumed, not backpressure — see the header contract
  }
  return shards_[ShardOf(codec_.BankKey(record.address))]->Submit(record);
}

bool FleetServer::Submit(trace::MceRecord&& record) {
  if (!ValidRecord(record)) {
    invalid_records_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const std::size_t s = ShardOf(codec_.BankKey(record.address));
  return shards_[s]->Submit(std::move(record));
}

std::size_t FleetServer::SubmitBatch(
    std::span<const trace::MceRecord> records) {
  if (records.empty()) return 0;
  // Cheap validity scan first; the common all-valid batch pays no copy.
  std::size_t invalid = 0;
  for (const trace::MceRecord& record : records) {
    if (!ValidRecord(record)) ++invalid;
  }
  if (invalid > 0) {
    invalid_records_.fetch_add(invalid, std::memory_order_relaxed);
    std::vector<trace::MceRecord> filtered;
    filtered.reserve(records.size() - invalid);
    for (const trace::MceRecord& record : records) {
      if (ValidRecord(record)) filtered.push_back(record);
    }
    return invalid + SubmitBatch(std::span<const trace::MceRecord>(filtered));
  }
  if (shards_.size() == 1) return shards_[0]->SubmitBatch(records);
  std::vector<std::vector<trace::MceRecord>> buckets(shards_.size());
  const std::size_t hint = records.size() / shards_.size() + 1;
  for (auto& bucket : buckets) bucket.reserve(hint);
  for (const trace::MceRecord& record : records) {
    buckets[ShardOf(codec_.BankKey(record.address))].push_back(record);
  }
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!buckets[s].empty()) accepted += shards_[s]->SubmitBatch(buckets[s]);
  }
  return accepted;
}

void FleetServer::Drain() {
  for (auto& shard : shards_) shard->Drain();
}

void FleetServer::Stop() {
  for (auto& shard : shards_) shard->Stop();
}

core::EngineStats FleetServer::AggregateStats() const {
  core::EngineStats total;
  for (const auto& shard : shards_) {
    const core::EngineStats& s = shard->engine().stats();
    total.events += s.events;
    total.uer_events += s.uer_events;
    total.banks_classified += s.banks_classified;
    total.banks_bank_spared += s.banks_bank_spared;
    total.predictions_issued += s.predictions_issued;
    total.rows_isolated += s.rows_isolated;
    total.uer_rows_total += s.uer_rows_total;
    total.uer_rows_covered += s.uer_rows_covered;
    total.uer_rows_covered_by_bank += s.uer_rows_covered_by_bank;
    total.records_skew_dropped += s.records_skew_dropped;
  }
  return total;
}

ShardCounters FleetServer::AggregateCounters() const {
  ShardCounters total;
  for (const auto& shard : shards_) {
    const ShardCounters c = shard->counters();
    total.submitted += c.submitted;
    total.processed += c.processed;
    total.dropped_oldest += c.dropped_oldest;
    total.rejected += c.rejected;
  }
  return total;
}

std::vector<std::uint64_t> FleetServer::ModelVersions() const {
  std::vector<std::uint64_t> versions;
  versions.reserve(shards_.size());
  for (const auto& shard : shards_) versions.push_back(shard->model_version());
  return versions;
}

obs::RegistrySnapshot FleetServer::MetricsSnapshot() const {
  std::vector<obs::RegistrySnapshot> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) parts.push_back(shard->MetricsSnapshot());
  return obs::MergeSnapshots(parts);
}

std::string FleetServer::StatusTable() const {
  TextTable table({"Shard", "Submitted", "Processed", "Queued", "Dropped",
                   "Rejected", "Events", "UERs", "Rows spared",
                   "Banks spared"});
  ShardCounters totals;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const ShardCounters c = shards_[s]->counters();
    totals.submitted += c.submitted;
    totals.processed += c.processed;
    totals.dropped_oldest += c.dropped_oldest;
    totals.rejected += c.rejected;
    const obs::RegistrySnapshot snap = shards_[s]->MetricsSnapshot();
    const auto engine_counter = [&](const char* name) {
      return shards_[s]->instrumented()
                 ? std::to_string(obs::SumCounterSamples(snap, name))
                 : std::string("-");
    };
    table.AddRow({std::to_string(s), std::to_string(c.submitted),
                  std::to_string(c.processed),
                  std::to_string(shards_[s]->queue_depth()),
                  std::to_string(c.dropped_oldest), std::to_string(c.rejected),
                  engine_counter("cordial_engine_events_total"),
                  engine_counter("cordial_engine_uer_events_total"),
                  engine_counter("cordial_engine_rows_spared_total"),
                  engine_counter("cordial_engine_banks_spared_total")});
  }
  const obs::RegistrySnapshot merged = MetricsSnapshot();
  const auto total_counter = [&](const char* name) {
    return std::to_string(obs::SumCounterSamples(merged, name));
  };
  table.AddSeparator();
  table.AddRow({"total", std::to_string(totals.submitted),
                std::to_string(totals.processed), "",
                std::to_string(totals.dropped_oldest),
                std::to_string(totals.rejected),
                total_counter("cordial_engine_events_total"),
                total_counter("cordial_engine_uer_events_total"),
                total_counter("cordial_engine_rows_spared_total"),
                total_counter("cordial_engine_banks_spared_total")});
  return table.Render("fleet server (" + std::to_string(shards_.size()) +
                      " shards)");
}

void FleetServer::SaveCheckpoint(std::ostream& out,
                                 core::StateEncoding encoding) const {
  std::ostringstream payload;
  payload << "shards " << shards_.size() << '\n';
  for (const auto& shard : shards_) shard->SaveState(payload, encoding);
  WriteFramed(out, kFleetCheckpointMagic, kFleetCheckpointVersion,
              payload.str());
}

std::uint64_t FleetServer::SaveDeltaCheckpoint(std::ostream& out) const {
  std::ostringstream payload;
  payload << "shards " << shards_.size() << '\n';
  std::uint64_t banks_written = 0;
  for (const auto& shard : shards_) {
    banks_written += shard->SaveDeltaState(payload);
  }
  WriteFramed(out, kFleetDeltaMagic, kFleetDeltaVersion, payload.str());
  return banks_written;
}

void FleetServer::ApplyDeltaCheckpoint(std::istream& in) {
  std::istringstream payload(
      ReadFramed(in, kFleetDeltaMagic, kFleetDeltaVersion));
  ExpectToken(payload, "shards");
  const std::uint64_t shard_count = ReadU64Token(payload, "delta checkpoint");
  if (shard_count != shards_.size()) {
    throw ParseError("delta checkpoint holds " + std::to_string(shard_count) +
                     " shard(s) but this server has " +
                     std::to_string(shards_.size()) +
                     " — shard counts must match to restore");
  }
  // Stage-all-then-commit-all, exactly like RestoreCheckpoint: a corrupt
  // shard N must leave every shard on its pre-delta state.
  std::vector<core::PredictionEngine::StagedDelta> staged;
  staged.reserve(shards_.size());
  for (auto& shard : shards_) {
    staged.push_back(shard->ParseDeltaState(payload));
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->CommitDeltaState(std::move(staged[s]));
  }
}

void FleetServer::MarkCheckpointClean() {
  for (auto& shard : shards_) shard->MarkCheckpointClean();
}

std::size_t FleetServer::DirtyBankCount() const {
  std::size_t dirty = 0;
  for (const auto& shard : shards_) dirty += shard->dirty_bank_count();
  return dirty;
}

std::size_t FleetServer::TotalBankCount() const {
  std::size_t banks = 0;
  for (const auto& shard : shards_) banks += shard->bank_count();
  return banks;
}

void FleetServer::RestoreCheckpoint(std::istream& in) {
  std::istringstream payload(
      ReadFramed(in, kFleetCheckpointMagic, kFleetCheckpointVersion));
  ExpectToken(payload, "shards");
  const std::uint64_t shard_count = ReadU64Token(payload, "checkpoint");
  if (shard_count != shards_.size()) {
    throw ParseError("checkpoint holds " + std::to_string(shard_count) +
                     " shard(s) but this server has " +
                     std::to_string(shards_.size()) +
                     " — shard counts must match to restore");
  }
  // Parse every shard's section before committing any of them: a corrupt
  // shard N must fail the whole restore with the server unchanged, never
  // leave shards 0..N-1 on the new state and the rest on the old (the
  // recovery path retries older checkpoints on this same server).
  std::vector<core::PredictionEngine::StagedState> staged;
  staged.reserve(shards_.size());
  for (auto& shard : shards_) staged.push_back(shard->ParseState(payload));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->CommitState(std::move(staged[s]));
  }
}

}  // namespace cordial::serve
