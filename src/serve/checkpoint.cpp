#include "serve/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/failpoint.hpp"
#include "serve/fleet_server.hpp"

namespace cordial::serve {

namespace {

/// Directory containing `path` ("." when the path has no separator).
std::string DirectoryOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// write(2) the whole buffer, retrying short writes and EINTR.
bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void WriteFileDurably(const std::string& path, std::string_view bytes,
                      bool retain_prev) {
  const std::string tmp = path + ".tmp";
  // Failure path shared by every step before the rename: drop the fd and
  // the tmp file so a failed checkpoint leaves no debris (and the previous
  // checkpoint untouched).
  const auto fail = [&](int fd, const std::string& what) {
    const std::string reason = std::strerror(errno);
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    CORDIAL_CHECK_MSG(false, what + " (" + tmp + "): " + reason);
  };

  int fd = failpoint::ShouldFail("serve.checkpoint.open")
               ? (errno = EIO, -1)
               : ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(-1, "cannot open checkpoint tmp file");

  const bool write_ok = failpoint::ShouldFail("serve.checkpoint.write")
                            ? (errno = EIO, false)
                            : WriteAll(fd, bytes.data(), bytes.size());
  if (!write_ok) fail(fd, "checkpoint tmp write failed");

  // The data must be on disk before anything points at it: rename first
  // and a crash can publish a name whose blocks never made it.
  const bool fsync_ok = failpoint::ShouldFail("serve.checkpoint.fsync")
                            ? (errno = EIO, false)
                            : ::fsync(fd) == 0;
  if (!fsync_ok) fail(fd, "checkpoint tmp fsync failed");
  if (::close(fd) != 0) fail(-1, "checkpoint tmp close failed");

  // Simulated power cut: the tmp file is durable, the rename never ran.
  // Recovery must come up from the previous checkpoint.
  CORDIAL_FAILPOINT("serve.checkpoint.crash_before_rename", ::_exit(121));

  // Retain one older generation for RecoverCheckpoint's fallback. Best
  // effort: a filesystem without hard links just loses the safety net.
  // The replacement must itself be atomic — link the current file to a
  // side name and rename it over the old `.prev`. The previous scheme
  // (unlink old .prev, then link) had a window where the fallback was
  // gone entirely: a failure between the two calls — or between this
  // block and the rename below — would leave neither generation behind
  // the published path. Now the old `.prev` survives until the new one
  // replaces it in one atomic step.
  if (retain_prev) {
    const std::string prev = path + ".prev";
    const std::string prev_tmp = prev + ".tmp";
    ::unlink(prev_tmp.c_str());
    if (::link(path.c_str(), prev_tmp.c_str()) == 0) {
      if (std::rename(prev_tmp.c_str(), prev.c_str()) != 0) {
        ::unlink(prev_tmp.c_str());
      }
    }
  }

  const bool rename_ok = failpoint::ShouldFail("serve.checkpoint.rename")
                             ? (errno = EIO, false)
                             : std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!rename_ok) fail(-1, "checkpoint rename failed");

  // fsync the directory so the rename itself survives a power cut; the
  // file's own durability was settled above.
  const std::string dir = DirectoryOf(path);
  int dir_fd = failpoint::ShouldFail("serve.checkpoint.dirsync")
                   ? (errno = EIO, -1)
                   : ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  bool dir_ok = dir_fd >= 0;
  if (dir_ok) {
    dir_ok = ::fsync(dir_fd) == 0;
    ::close(dir_fd);
  }
  // The rename already happened, so the new checkpoint is in place and
  // valid — do not unlink anything; just report that durability of the
  // directory entry is not guaranteed.
  CORDIAL_CHECK_MSG(dir_ok, "checkpoint directory fsync failed (" + dir +
                                "): " + std::strerror(errno));
}

void WriteCheckpointFile(const FleetServer& server, const std::string& path) {
  // Serialize first: a failure here costs nothing on disk.
  std::ostringstream buffer;
  server.SaveCheckpoint(buffer);
  WriteFileDurably(path, buffer.str(), /*retain_prev=*/true);
}

bool ReadCheckpointFile(FleetServer& server, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  server.RestoreCheckpoint(in);
  return true;
}

RecoveryOutcome RecoverCheckpoint(FleetServer& server,
                                  const std::string& path) {
  RecoveryOutcome outcome;
  const std::string candidates[] = {path, path + ".prev"};
  for (const std::string& candidate : candidates) {
    std::ifstream in(candidate, std::ios::binary);
    if (!in.good()) continue;
    try {
      server.RestoreCheckpoint(in);
      outcome.restored_from = candidate;
      return outcome;
    } catch (const ParseError& e) {
      in.close();
      const std::string quarantine = candidate + ".corrupt";
      ::unlink(quarantine.c_str());
      if (std::rename(candidate.c_str(), quarantine.c_str()) == 0) {
        outcome.quarantined.push_back(quarantine);
      } else {
        // Quarantine is best effort (read-only directory?); record the
        // original name so the operator still learns which file is bad.
        outcome.quarantined.push_back(candidate);
      }
      outcome.errors.push_back(candidate + ": " + e.what());
    }
  }
  return outcome;
}

}  // namespace cordial::serve
