#include "serve/checkpoint.hpp"

#include <cstdio>
#include <fstream>

#include "common/check.hpp"
#include "serve/fleet_server.hpp"

namespace cordial::serve {

void WriteCheckpointFile(const FleetServer& server, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    CORDIAL_CHECK_MSG(out.good(), "cannot open checkpoint tmp file");
    server.SaveCheckpoint(out);
    out.flush();
    CORDIAL_CHECK_MSG(out.good(), "checkpoint tmp write failed");
  }
  CORDIAL_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                    "checkpoint rename failed");
}

bool ReadCheckpointFile(FleetServer& server, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  server.RestoreCheckpoint(in);
  return true;
}

}  // namespace cordial::serve
