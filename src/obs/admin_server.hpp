// Minimal HTTP admin plane on the shared net::Reactor event loop — no
// external dependencies, one loop thread, Connection: close on every
// response.
//
// This is an operator endpoint, not a traffic server: a Prometheus scraper
// or a human with curl hits it every few seconds, so each connection
// carries exactly one request — GET for read-only routes, POST for the
// mutating ones (a route registered as POST rejects GET with a 405, so a
// crawler or a careless scrape cannot trip a model swap). Any request body
// is ignored. Connections are per-fd state machines on the
// reactor: non-blocking reads accumulate the request head, the response is
// flushed through a write backlog, and a per-connection timer closes
// clients that stall mid-request — a slow peer can no longer hold the
// plane hostage the way it could the old blocking accept thread. Handlers
// run on the loop thread; they must be safe to call concurrently with the
// daemon's workers (the obs metric snapshots are — atomics and
// per-registry locks only) and a throwing handler becomes a 500 rather
// than taking the daemon down.
//
// `/healthz` is built in (returns "ok"); `/metrics`, `/statusz` and anything
// else are added by the daemon via AddHandler. Binding port 0 picks an
// ephemeral port (exposed by port()) — the end-to-end tests rely on that.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/reactor.hpp"

namespace cordial::obs {

struct AdminServerConfig {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port.
  std::uint16_t port = 0;
  /// Interface to bind. Loopback by default: the admin plane is unsecured
  /// by design and must not face the fleet network unless opted in.
  std::string bind_address = "127.0.0.1";
};

class AdminServer {
 public:
  /// Produces a response body. Runs on the loop thread per request.
  using Handler = std::function<std::string()>;

  explicit AdminServer(AdminServerConfig config = {});
  ~AdminServer();  ///< stops the server if still running

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// HTTP method a route answers to. Read-only routes are kGet; routes
  /// with side effects (forced swaps, rollbacks) must be kPost so that
  /// GETs can never mutate state.
  enum class Method { kGet, kPost };

  /// Register (or replace) the handler for an exact path. Callable before
  /// or after Start.
  void AddHandler(const std::string& path, const std::string& content_type,
                  Handler handler, Method method = Method::kGet);

  /// Bind, listen and spawn the loop thread. Throws ContractViolation
  /// when the socket cannot be bound (port in use, bad address).
  void Start();

  /// Shut the listener down and join the loop thread. Idempotent.
  void Stop();

  /// The bound port — the kernel's choice when config.port was 0. Valid
  /// after Start.
  std::uint16_t port() const { return port_; }
  bool running() const;

 private:
  struct Route {
    std::string content_type;
    Handler handler;
    Method method = Method::kGet;
  };
  /// One in-flight request: head in, response backlog out.
  struct Connection {
    int fd = -1;
    std::string request;
    std::string out;
    bool responding = false;  ///< request parsed; only writes remain
    net::Reactor::TimerId stall_timer = net::Reactor::kInvalidTimer;
  };

  // Loop-thread-only connection machinery.
  void AcceptReady();
  void ConnReady(int fd, std::uint32_t events);
  void Respond(Connection& conn);
  bool FlushWrites(Connection& conn);
  void CloseConnection(int fd);

  AdminServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  net::Reactor reactor_;
  std::thread loop_thread_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  mutable std::mutex mutex_;  // guards routes_ and running_
  std::map<std::string, Route> routes_;
  bool running_ = false;
};

}  // namespace cordial::obs
