// Minimal blocking HTTP admin plane over plain BSD sockets — no external
// dependencies, one accept thread, Connection: close on every response.
//
// This is an operator endpoint, not a traffic server: a Prometheus scraper
// or a human with curl hits it every few seconds, so requests are handled
// serially on the accept thread and each connection carries exactly one GET.
// Handlers run on that thread; they must be safe to call concurrently with
// the daemon's workers (the obs metric snapshots are — atomics and
// per-registry locks only) and a throwing handler becomes a 500 rather than
// taking the daemon down.
//
// `/healthz` is built in (returns "ok"); `/metrics`, `/statusz` and anything
// else are added by the daemon via AddHandler. Binding port 0 picks an
// ephemeral port (exposed by port()) — the end-to-end tests rely on that.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace cordial::obs {

struct AdminServerConfig {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port.
  std::uint16_t port = 0;
  /// Interface to bind. Loopback by default: the admin plane is unsecured
  /// by design and must not face the fleet network unless opted in.
  std::string bind_address = "127.0.0.1";
};

class AdminServer {
 public:
  /// Produces a response body. Runs on the accept thread per request.
  using Handler = std::function<std::string()>;

  explicit AdminServer(AdminServerConfig config = {});
  ~AdminServer();  ///< stops the server if still running

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Register (or replace) the handler for an exact path. Callable before
  /// or after Start.
  void AddHandler(const std::string& path, const std::string& content_type,
                  Handler handler);

  /// Bind, listen and spawn the accept thread. Throws ContractViolation
  /// when the socket cannot be bound (port in use, bad address).
  void Start();

  /// Shut the listener down and join the accept thread. Idempotent.
  void Stop();

  /// The bound port — the kernel's choice when config.port was 0. Valid
  /// after Start.
  std::uint16_t port() const { return port_; }
  bool running() const;

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };

  void ServeLoop();
  void HandleConnection(int fd);

  AdminServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() unblocks the poll
  std::thread thread_;
  mutable std::mutex mutex_;  // guards routes_ and running_
  std::map<std::string, Route> routes_;
  bool running_ = false;
};

}  // namespace cordial::obs
