// Thread-safe metrics for the observability layer: counters, gauges and
// fixed-bucket latency histograms behind a named registry, rendered in
// Prometheus text exposition format.
//
// The hot-path contract is lock-free accumulation: Increment/Set/Observe are
// relaxed atomic operations on pre-registered metric objects — no lock, no
// allocation, no string handling — so instrumented code pays nanoseconds
// whether or not anyone is scraping. All aggregation cost lives on the
// scrape side: a registry produces a `RegistrySnapshot` (a plain value
// object), snapshots from per-shard registries merge deterministically
// (samples keyed and sorted by name + labels, counts summed bucket-wise),
// and the merged snapshot renders to text. This is why each serving shard
// owns its own registry instead of sharing one: writers never contend, and
// the scrape thread does the merge.
//
// Naming follows Prometheus conventions: `cordial_<subsystem>_<what>`, with
// `_total` suffixes on counters and `_seconds` on latency histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cordial::obs {

/// Label set attached to one metric instance, e.g. {{"shard", "3"}}. Kept
/// sorted by key inside the registry so equal sets compare equal.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count. Relaxed increments: safe from any thread.
/// Cache-line aligned so adjacent metrics (e.g. one bumped by a producer,
/// one by the worker) never false-share.
class alignas(64) Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, resident banks). Set/Add from
/// any thread. Aligned for the same reason as Counter.
class alignas(64) Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Merged/scraped view of one histogram: per-bucket (non-cumulative) counts
/// for each upper bound plus the implicit +Inf bucket at the back.
struct HistogramData {
  std::vector<double> bounds;          ///< ascending upper bounds (le)
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;

  friend bool operator==(const HistogramData&,
                         const HistogramData&) = default;
};

/// Fixed-bucket distribution. Observe is a relaxed per-bucket increment plus
/// a CAS-loop double add — no locks. A concurrent Snapshot sees each bucket
/// atomically but is not a cross-bucket point-in-time cut; after the writers
/// drain it is exact.
class Histogram {
 public:
  /// `bounds` are strictly ascending upper bounds; an +Inf bucket is
  /// implicit. An empty list leaves just the +Inf bucket.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  HistogramData Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double stored as bits
};

/// The bucket layout every latency histogram in cordial uses: 1µs … 10s,
/// roughly ×2.5 per step. Shared bounds keep cross-shard merges legal.
std::vector<double> DefaultLatencyBuckets();

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric instance's scraped state.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  Labels labels;
  std::uint64_t counter_value = 0;  // kCounter
  std::int64_t gauge_value = 0;     // kGauge
  HistogramData histogram;          // kHistogram

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

/// A registry's (or merge's) full scraped state, sorted by (name, labels).
struct RegistrySnapshot {
  std::vector<MetricSample> samples;

  friend bool operator==(const RegistrySnapshot&,
                         const RegistrySnapshot&) = default;
};

/// Named metric owner. Get* registers on first call and returns the same
/// instance on every subsequent call with the same (name, labels); the
/// returned reference stays valid for the registry's lifetime, so hot paths
/// resolve their metrics once and never touch the registry lock again.
/// Re-registering a name under a different kind (or a histogram under
/// different bounds) is a ContractViolation.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge& GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram& GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds, Labels labels = {});

  /// Scrape every registered metric. Safe concurrently with writers.
  RegistrySnapshot Snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string name;
    std::string help;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindLocked(std::string_view name, const Labels& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Merge snapshots from independent registries into one: samples with equal
/// (name, labels) are summed (counters and gauges add; histograms require
/// identical bounds and add bucket-wise), distinct ones concatenate. The
/// result is sorted by (name, labels), so the merge is deterministic,
/// associative and commutative (pinned by tests/obs/metrics_test.cpp).
/// Mismatched kinds or histogram bounds for one key are a ContractViolation.
RegistrySnapshot MergeSnapshots(const std::vector<RegistrySnapshot>& parts);

/// Render a snapshot in Prometheus text exposition format (version 0.0.4):
/// one HELP/TYPE block per metric name, histogram buckets as cumulative
/// `_bucket{le=...}` series plus `_sum`/`_count`. Deterministic for equal
/// snapshots (golden-tested).
std::string RenderPrometheus(const RegistrySnapshot& snapshot);

/// Sum of every counter sample named `name` across label sets (0 if none).
/// Convenience for status lines that want fleet-wide totals.
std::uint64_t SumCounterSamples(const RegistrySnapshot& snapshot,
                                std::string_view name);
/// Sum of every gauge sample named `name` across label sets.
std::int64_t SumGaugeSamples(const RegistrySnapshot& snapshot,
                             std::string_view name);
/// The sample with exactly this (name, labels), or nullptr.
const MetricSample* FindSample(const RegistrySnapshot& snapshot,
                               std::string_view name, const Labels& labels);

}  // namespace cordial::obs
