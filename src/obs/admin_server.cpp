#include "obs/admin_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"

namespace cordial::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;

std::string StatusLine(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK";
    case 404: return "HTTP/1.1 404 Not Found";
    case 405: return "HTTP/1.1 405 Method Not Allowed";
    default: return "HTTP/1.1 500 Internal Server Error";
  }
}

void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // signal mid-send: not peer-gone
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

void SendResponse(int fd, int code, const std::string& content_type,
                  const std::string& body) {
  std::string response = StatusLine(code);
  response += "\r\nContent-Type: " + content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  SendAll(fd, response);
}

/// Read until the header terminator (we never expect a body on GET).
std::string ReadRequestHead(int fd) {
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;  // signal mid-read: keep reading
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  return request;
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config)
    : config_(std::move(config)) {
  AddHandler("/healthz", "text/plain; charset=utf-8",
             [] { return std::string("ok\n"); });
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::AddHandler(const std::string& path,
                             const std::string& content_type,
                             Handler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  routes_[path] = Route{content_type, std::move(handler)};
}

void AdminServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CORDIAL_CHECK_MSG(!running_, "admin server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CORDIAL_CHECK_MSG(listen_fd_ >= 0, "admin server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    CORDIAL_CHECK_MSG(false,
                      "admin server: bad bind address " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    CORDIAL_CHECK_MSG(false, "admin server: cannot listen on " +
                                 config_.bind_address + ":" +
                                 std::to_string(config_.port) + " — " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  CORDIAL_CHECK_MSG(::pipe(wake_fds_) == 0, "admin server: pipe() failed");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = true;
  }
  thread_ = std::thread(&AdminServer::ServeLoop, this);
}

void AdminServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
}

bool AdminServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void AdminServer::ServeLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Bound how long a stalled client can hold the (single) accept thread.
    timeval timeout{2, 0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    HandleConnection(conn);
    ::close(conn);
  }
}

void AdminServer::HandleConnection(int fd) {
  const std::string request = ReadRequestHead(fd);
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  const std::size_t method_end = request_line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos
          ? std::string::npos
          : request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos) {
    SendResponse(fd, 405, "text/plain; charset=utf-8", "malformed request\n");
    return;
  }
  const std::string method = request_line.substr(0, method_end);
  std::string path =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    SendResponse(fd, 405, "text/plain; charset=utf-8",
                 "only GET is supported\n");
    return;
  }

  Route route;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = routes_.find(path);
    if (it != routes_.end()) {
      route = it->second;
      found = true;
    }
  }
  if (!found) {
    std::string body = "not found: " + path + "\navailable:\n";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [known_path, ignored] : routes_) {
        body += "  " + known_path + "\n";
      }
    }
    SendResponse(fd, 404, "text/plain; charset=utf-8", body);
    return;
  }
  try {
    SendResponse(fd, 200, route.content_type, route.handler());
  } catch (const std::exception& e) {
    SendResponse(fd, 500, "text/plain; charset=utf-8",
                 std::string("handler error: ") + e.what() + "\n");
  }
}

}  // namespace cordial::obs
