#include "obs/admin_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/check.hpp"

namespace cordial::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 16 * 1024;
/// A client that has not delivered its request head within this long is
/// stalled; the reactor timer closes it (the old blocking implementation
/// bounded the same hazard with SO_RCVTIMEO).
constexpr std::chrono::milliseconds kStallTimeout{2000};

std::string StatusLine(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK";
    case 404: return "HTTP/1.1 404 Not Found";
    case 405: return "HTTP/1.1 405 Method Not Allowed";
    default: return "HTTP/1.1 500 Internal Server Error";
  }
}

std::string BuildResponse(int code, const std::string& content_type,
                          const std::string& body) {
  std::string response = StatusLine(code);
  response += "\r\nContent-Type: " + content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

bool RequestHeadComplete(const std::string& request) {
  return request.find("\r\n\r\n") != std::string::npos ||
         request.find("\n\n") != std::string::npos;
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config)
    : config_(std::move(config)) {
  AddHandler("/healthz", "text/plain; charset=utf-8",
             [] { return std::string("ok\n"); });
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::AddHandler(const std::string& path,
                             const std::string& content_type, Handler handler,
                             Method method) {
  std::lock_guard<std::mutex> lock(mutex_);
  routes_[path] = Route{content_type, std::move(handler), method};
}

void AdminServer::Start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CORDIAL_CHECK_MSG(!running_, "admin server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CORDIAL_CHECK_MSG(listen_fd_ >= 0, "admin server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    CORDIAL_CHECK_MSG(false,
                      "admin server: bad bind address " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    CORDIAL_CHECK_MSG(false, "admin server: cannot listen on " +
                                 config_.bind_address + ":" +
                                 std::to_string(config_.port) + " — " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  net::SetNonBlocking(listen_fd_);

  // The loop has not started yet; registering from this thread is safe.
  reactor_.Add(listen_fd_, net::kReadable,
               [this](std::uint32_t) { AcceptReady(); });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = true;
  }
  loop_thread_ = std::thread([this] { reactor_.Run(); });
}

void AdminServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  reactor_.Stop();
  loop_thread_.join();
  for (auto& [fd, conn] : connections_) {
    reactor_.Remove(fd);
    ::close(fd);
  }
  connections_.clear();
  reactor_.Remove(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
}

bool AdminServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void AdminServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    net::SetNonBlocking(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->stall_timer =
        reactor_.AddTimer(kStallTimeout, [this, fd] { CloseConnection(fd); });
    connections_.emplace(fd, std::move(conn));
    reactor_.Add(fd, net::kReadable, [this, fd](std::uint32_t events) {
      ConnReady(fd, events);
    });
  }
}

void AdminServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (it->second->stall_timer != net::Reactor::kInvalidTimer) {
    reactor_.CancelTimer(it->second->stall_timer);
  }
  reactor_.Remove(fd);
  ::close(fd);
  connections_.erase(it);
}

void AdminServer::ConnReady(int fd, std::uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;

  if (events & net::kError) {
    CloseConnection(fd);
    return;
  }
  if (events & net::kWritable) {
    if (!FlushWrites(conn)) return;
  }
  if ((events & net::kReadable) == 0 || conn.responding) return;

  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      conn.request.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n == 0 && !RequestHeadComplete(conn.request)) {
      CloseConnection(fd);  // peer quit before finishing the request
      return;
    }
    break;  // EOF after a complete head, or a hard error surfacing below
  }
  if (RequestHeadComplete(conn.request) ||
      conn.request.size() >= kMaxRequestBytes) {
    Respond(conn);
  }
}

void AdminServer::Respond(Connection& conn) {
  conn.responding = true;
  const std::string& request = conn.request;
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);

  const std::size_t method_end = request_line.find(' ');
  const std::size_t target_end =
      method_end == std::string::npos
          ? std::string::npos
          : request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos) {
    conn.out = BuildResponse(405, "text/plain; charset=utf-8",
                             "malformed request\n");
    FlushWrites(conn);
    return;
  }
  const std::string method = request_line.substr(0, method_end);
  std::string path =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET" && method != "POST") {
    conn.out = BuildResponse(405, "text/plain; charset=utf-8",
                             "only GET and POST are supported\n");
    FlushWrites(conn);
    return;
  }

  Route route;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = routes_.find(path);
    if (it != routes_.end()) {
      route = it->second;
      found = true;
    }
  }
  if (found) {
    const std::string required =
        route.method == Method::kPost ? "POST" : "GET";
    if (method != required) {
      conn.out = BuildResponse(
          405, "text/plain; charset=utf-8",
          path + " requires " + required + ", got " + method + "\n");
      FlushWrites(conn);
      return;
    }
  }
  if (!found) {
    std::string body = "not found: " + path + "\navailable:\n";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [known_path, ignored] : routes_) {
        body += "  " + known_path + "\n";
      }
    }
    conn.out = BuildResponse(404, "text/plain; charset=utf-8", body);
    FlushWrites(conn);
    return;
  }
  try {
    conn.out = BuildResponse(200, route.content_type, route.handler());
  } catch (const std::exception& e) {
    conn.out = BuildResponse(500, "text/plain; charset=utf-8",
                             std::string("handler error: ") + e.what() + "\n");
  }
  FlushWrites(conn);
}

bool AdminServer::FlushWrites(Connection& conn) {
  const int fd = conn.fd;
  while (!conn.out.empty()) {
    const ssize_t n =
        ::send(fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      reactor_.SetInterest(fd, net::kReadable | net::kWritable);
      return true;
    }
    CloseConnection(fd);  // peer went away; nothing useful to do
    return false;
  }
  if (conn.responding) {
    CloseConnection(fd);  // one response per connection, then close
    return false;
  }
  return true;
}

}  // namespace cordial::obs
