#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/check.hpp"

namespace cordial::obs {

namespace {

/// Lock-free double accumulation over the bit representation.
void AtomicAddDouble(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t observed = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(observed) + delta;
    if (bits.compare_exchange_weak(observed, std::bit_cast<std::uint64_t>(next),
                                   std::memory_order_relaxed)) {
      return;
    }
  }
}

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// %g — compact, stable rendering for bucket bounds we choose ourselves.
std::string FormatBound(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", bound);
  return buf;
}

/// %.17g — lossless rendering for accumulated sums (framing.hpp convention).
std::string FormatDoubleExact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}`, optionally with a trailing `le` pair; empty labels
/// and no `le` render as nothing.
std::string RenderLabels(const Labels& labels, const std::string* le = nullptr) {
  if (labels.empty() && le == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (le != nullptr) {
    if (!first) out.push_back(',');
    out += "le=\"" + *le + "\"";
  }
  out.push_back('}');
  return out;
}

bool SampleOrder(const MetricSample& a, const MetricSample& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  CORDIAL_CHECK_MSG(
      std::is_sorted(bounds_.begin(), bounds_.end()) &&
          std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
      "histogram bounds must be strictly ascending");
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // +Inf when past-end
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_bits_, value);
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.buckets.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    data.buckets.push_back(bucket.load(std::memory_order_relaxed));
  }
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  return data;
}

std::vector<double> DefaultLatencyBuckets() {
  return {1e-6,  2.5e-6, 5e-6,  1e-5,  2.5e-5, 5e-5, 1e-4, 2.5e-4,
          5e-4,  1e-3,   2.5e-3, 5e-3, 1e-2,  2.5e-2, 5e-2, 1e-1,
          2.5e-1, 5e-1,  1.0,   2.5,   5.0,   10.0};
}

MetricRegistry::Entry* MetricRegistry::FindLocked(std::string_view name,
                                                 const Labels& labels) {
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) return entry.get();
  }
  return nullptr;
}

Counter& MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help, Labels labels) {
  CORDIAL_CHECK_MSG(ValidMetricName(name), "invalid metric name: " + name);
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, labels)) {
    CORDIAL_CHECK_MSG(existing->kind == MetricKind::kCounter,
                      name + " already registered with a different kind");
    return *existing->counter;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = MetricKind::kCounter;
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(labels);
  entry->counter = std::make_unique<Counter>();
  entries_.push_back(std::move(entry));
  return *entries_.back()->counter;
}

Gauge& MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help, Labels labels) {
  CORDIAL_CHECK_MSG(ValidMetricName(name), "invalid metric name: " + name);
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, labels)) {
    CORDIAL_CHECK_MSG(existing->kind == MetricKind::kGauge,
                      name + " already registered with a different kind");
    return *existing->gauge;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = MetricKind::kGauge;
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(labels);
  entry->gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(entry));
  return *entries_.back()->gauge;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        std::vector<double> bounds,
                                        Labels labels) {
  CORDIAL_CHECK_MSG(ValidMetricName(name), "invalid metric name: " + name);
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, labels)) {
    CORDIAL_CHECK_MSG(existing->kind == MetricKind::kHistogram,
                      name + " already registered with a different kind");
    CORDIAL_CHECK_MSG(existing->histogram->bounds() == bounds,
                      name + " already registered with different buckets");
    return *existing->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = MetricKind::kHistogram;
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(labels);
  entry->histogram = std::make_unique<Histogram>(std::move(bounds));
  entries_.push_back(std::move(entry));
  return *entries_.back()->histogram;
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.help = entry->help;
    sample.kind = entry->kind;
    sample.labels = entry->labels;
    switch (entry->kind) {
      case MetricKind::kCounter:
        sample.counter_value = entry->counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge_value = entry->gauge->value();
        break;
      case MetricKind::kHistogram:
        sample.histogram = entry->histogram->Snapshot();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(), SampleOrder);
  return snapshot;
}

RegistrySnapshot MergeSnapshots(const std::vector<RegistrySnapshot>& parts) {
  // std::map keys give the deterministic (name, labels) ordering directly.
  std::map<std::pair<std::string, Labels>, MetricSample> merged;
  for (const RegistrySnapshot& part : parts) {
    for (const MetricSample& sample : part.samples) {
      const auto key = std::make_pair(sample.name, sample.labels);
      const auto [it, inserted] = merged.try_emplace(key, sample);
      if (inserted) continue;
      MetricSample& into = it->second;
      CORDIAL_CHECK_MSG(into.kind == sample.kind,
                        sample.name + ": kind mismatch across merged parts");
      switch (sample.kind) {
        case MetricKind::kCounter:
          into.counter_value += sample.counter_value;
          break;
        case MetricKind::kGauge:
          into.gauge_value += sample.gauge_value;
          break;
        case MetricKind::kHistogram: {
          CORDIAL_CHECK_MSG(
              into.histogram.bounds == sample.histogram.bounds,
              sample.name + ": bucket bounds mismatch across merged parts");
          for (std::size_t b = 0; b < into.histogram.buckets.size(); ++b) {
            into.histogram.buckets[b] += sample.histogram.buckets[b];
          }
          into.histogram.count += sample.histogram.count;
          into.histogram.sum += sample.histogram.sum;
          break;
        }
      }
    }
  }
  RegistrySnapshot out;
  out.samples.reserve(merged.size());
  for (auto& [key, sample] : merged) out.samples.push_back(std::move(sample));
  return out;
}

std::string RenderPrometheus(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  std::string_view open_family;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name != open_family) {
      out << "# HELP " << sample.name << ' ' << sample.help << '\n';
      out << "# TYPE " << sample.name << ' ' << KindName(sample.kind) << '\n';
      open_family = sample.name;
    }
    switch (sample.kind) {
      case MetricKind::kCounter:
        out << sample.name << RenderLabels(sample.labels) << ' '
            << sample.counter_value << '\n';
        break;
      case MetricKind::kGauge:
        out << sample.name << RenderLabels(sample.labels) << ' '
            << sample.gauge_value << '\n';
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = sample.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          cumulative += h.buckets[b];
          const std::string le = b < h.bounds.size()
                                     ? FormatBound(h.bounds[b])
                                     : std::string("+Inf");
          out << sample.name << "_bucket" << RenderLabels(sample.labels, &le)
              << ' ' << cumulative << '\n';
        }
        out << sample.name << "_sum" << RenderLabels(sample.labels) << ' '
            << FormatDoubleExact(h.sum) << '\n';
        out << sample.name << "_count" << RenderLabels(sample.labels) << ' '
            << h.count << '\n';
        break;
      }
    }
  }
  return out.str();
}

std::uint64_t SumCounterSamples(const RegistrySnapshot& snapshot,
                                std::string_view name) {
  std::uint64_t total = 0;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name == name && sample.kind == MetricKind::kCounter) {
      total += sample.counter_value;
    }
  }
  return total;
}

std::int64_t SumGaugeSamples(const RegistrySnapshot& snapshot,
                             std::string_view name) {
  std::int64_t total = 0;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name == name && sample.kind == MetricKind::kGauge) {
      total += sample.gauge_value;
    }
  }
  return total;
}

const MetricSample* FindSample(const RegistrySnapshot& snapshot,
                               std::string_view name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name == name && sample.labels == sorted) return &sample;
  }
  return nullptr;
}

}  // namespace cordial::obs
