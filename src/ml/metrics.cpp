#include "ml/metrics.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace cordial::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<std::size_t>(num_classes) *
                 static_cast<std::size_t>(num_classes),
             0) {
  CORDIAL_CHECK_MSG(num_classes_ >= 2, "confusion matrix needs >=2 classes");
}

void ConfusionMatrix::Add(int truth, int predicted) {
  CORDIAL_CHECK_MSG(truth >= 0 && truth < num_classes_, "truth out of range");
  CORDIAL_CHECK_MSG(predicted >= 0 && predicted < num_classes_,
                    "prediction out of range");
  ++cells_[static_cast<std::size_t>(truth) *
               static_cast<std::size_t>(num_classes_) +
           static_cast<std::size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  CORDIAL_CHECK_MSG(other.num_classes_ == num_classes_,
                    "cannot merge confusion matrices of different sizes");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

std::uint64_t ConfusionMatrix::at(int truth, int predicted) const {
  CORDIAL_CHECK_MSG(truth >= 0 && truth < num_classes_ && predicted >= 0 &&
                        predicted < num_classes_,
                    "confusion index out of range");
  return cells_[static_cast<std::size_t>(truth) *
                    static_cast<std::size_t>(num_classes_) +
                static_cast<std::size_t>(predicted)];
}

ClassMetrics ConfusionMatrix::Metrics(int class_index) const {
  std::uint64_t tp = at(class_index, class_index);
  std::uint64_t fp = 0, fn = 0;
  for (int other = 0; other < num_classes_; ++other) {
    if (other == class_index) continue;
    fp += at(other, class_index);
    fn += at(class_index, other);
  }
  ClassMetrics m;
  m.support = tp + fn;
  m.precision = (tp + fp) == 0
                    ? 0.0
                    : static_cast<double>(tp) / static_cast<double>(tp + fp);
  m.recall = (tp + fn) == 0
                 ? 0.0
                 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  m.f1 = (m.precision + m.recall) == 0.0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

ClassMetrics ConfusionMatrix::WeightedAverage() const {
  ClassMetrics avg;
  std::uint64_t total_support = 0;
  for (int c = 0; c < num_classes_; ++c) {
    const ClassMetrics m = Metrics(c);
    avg.precision += m.precision * static_cast<double>(m.support);
    avg.recall += m.recall * static_cast<double>(m.support);
    avg.f1 += m.f1 * static_cast<double>(m.support);
    total_support += m.support;
  }
  avg.support = total_support;
  if (total_support > 0) {
    const auto d = static_cast<double>(total_support);
    avg.precision /= d;
    avg.recall /= d;
    avg.f1 /= d;
  }
  return avg;
}

ClassMetrics ConfusionMatrix::MacroAverage() const {
  ClassMetrics avg;
  for (int c = 0; c < num_classes_; ++c) {
    const ClassMetrics m = Metrics(c);
    avg.precision += m.precision;
    avg.recall += m.recall;
    avg.f1 += m.f1;
    avg.support += m.support;
  }
  const auto d = static_cast<double>(num_classes_);
  avg.precision /= d;
  avg.recall /= d;
  avg.f1 /= d;
  return avg;
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  std::uint64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += at(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& class_names) const {
  std::ostringstream os;
  os << "truth\\pred";
  for (int c = 0; c < num_classes_; ++c) {
    os << '\t'
       << (c < static_cast<int>(class_names.size())
               ? class_names[static_cast<std::size_t>(c)]
               : "c" + std::to_string(c));
  }
  os << '\n';
  for (int t = 0; t < num_classes_; ++t) {
    os << (t < static_cast<int>(class_names.size())
               ? class_names[static_cast<std::size_t>(t)]
               : "c" + std::to_string(t));
    for (int p = 0; p < num_classes_; ++p) os << '\t' << at(t, p);
    os << '\n';
  }
  return os.str();
}

ClassMetrics BinaryMetrics(const std::vector<int>& truth,
                           const std::vector<int>& predicted) {
  CORDIAL_CHECK_MSG(truth.size() == predicted.size(),
                    "truth/prediction size mismatch");
  ConfusionMatrix cm(2);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    cm.Add(truth[i], predicted[i]);
  }
  return cm.Metrics(1);
}

double BrierScore(const std::vector<double>& positive_proba,
                  const std::vector<int>& truth) {
  CORDIAL_CHECK_MSG(positive_proba.size() == truth.size(),
                    "proba/truth size mismatch");
  CORDIAL_CHECK_MSG(!truth.empty(), "Brier score of empty sample");
  double total = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    CORDIAL_CHECK_MSG(positive_proba[i] >= 0.0 && positive_proba[i] <= 1.0,
                      "probability out of [0,1]");
    CORDIAL_CHECK_MSG(truth[i] == 0 || truth[i] == 1, "binary truth expected");
    const double d = positive_proba[i] - static_cast<double>(truth[i]);
    total += d * d;
  }
  return total / static_cast<double>(truth.size());
}

std::vector<CalibrationBin> CalibrationCurve(
    const std::vector<double>& positive_proba, const std::vector<int>& truth,
    std::size_t n_bins) {
  CORDIAL_CHECK_MSG(positive_proba.size() == truth.size(),
                    "proba/truth size mismatch");
  CORDIAL_CHECK_MSG(n_bins >= 2, "need at least two calibration bins");
  std::vector<CalibrationBin> bins(n_bins);
  std::vector<double> proba_sum(n_bins, 0.0);
  std::vector<double> positive_sum(n_bins, 0.0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double p = positive_proba[i];
    CORDIAL_CHECK_MSG(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
    auto bin = static_cast<std::size_t>(p * static_cast<double>(n_bins));
    if (bin == n_bins) bin = n_bins - 1;  // p == 1.0
    ++bins[bin].count;
    proba_sum[bin] += p;
    positive_sum[bin] += static_cast<double>(truth[i]);
  }
  for (std::size_t b = 0; b < n_bins; ++b) {
    if (bins[b].count == 0) continue;
    const auto n = static_cast<double>(bins[b].count);
    bins[b].mean_predicted = proba_sum[b] / n;
    bins[b].fraction_positive = positive_sum[b] / n;
  }
  return bins;
}

double ExpectedCalibrationError(const std::vector<double>& positive_proba,
                                const std::vector<int>& truth,
                                std::size_t n_bins) {
  CORDIAL_CHECK_MSG(!truth.empty(), "ECE of empty sample");
  const auto bins = CalibrationCurve(positive_proba, truth, n_bins);
  double ece = 0.0;
  for (const CalibrationBin& bin : bins) {
    if (bin.count == 0) continue;
    ece += static_cast<double>(bin.count) *
           std::fabs(bin.mean_predicted - bin.fraction_positive);
  }
  return ece / static_cast<double>(truth.size());
}

}  // namespace cordial::ml
