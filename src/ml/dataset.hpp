// Dense labelled dataset for the tree learners, plus split utilities.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace cordial::ml {

/// Row-major dense feature matrix with integer class labels.
class Dataset {
 public:
  Dataset(std::size_t num_features, int num_classes,
          std::vector<std::string> feature_names = {});

  void AddRow(std::span<const double> features, int label);

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t num_features() const { return num_features_; }
  int num_classes() const { return num_classes_; }

  std::span<const double> row(std::size_t i) const;
  double at(std::size_t i, std::size_t feature) const;
  int label(std::size_t i) const;

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Per-class sample counts.
  std::vector<std::size_t> ClassCounts() const;

  /// New dataset containing the given rows (duplicates allowed — used for
  /// bootstrap resampling).
  Dataset Subset(const std::vector<std::size_t>& indices) const;

 private:
  std::size_t num_features_;
  int num_classes_;
  std::vector<std::string> feature_names_;
  std::vector<double> x_;  // row-major
  std::vector<int> labels_;
};

/// Index split of a dataset into train/test.
struct TrainTestSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified split: each class contributes ~test_fraction of its samples to
/// the test set (at least one test sample per class with >=2 samples).
/// Mirrors the paper's 7:3 split (§V-A).
TrainTestSplit StratifiedSplit(const Dataset& data, double test_fraction,
                               Rng& rng);

/// Plain random (non-stratified) split.
TrainTestSplit RandomSplit(std::size_t n, double test_fraction, Rng& rng);

}  // namespace cordial::ml
