// Uniform classifier interface over the three tree learners the paper
// evaluates (Random Forest, XGBoost, LightGBM — §IV-C), plus factories.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace cordial::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on the full dataset. `rng` drives all stochastic choices so a
  /// (data, seed) pair determines the model exactly.
  virtual void Fit(const Dataset& train, Rng& rng) = 0;

  /// Class-probability vector, size = num_classes of the training data.
  virtual std::vector<double> PredictProba(
      std::span<const double> features) const = 0;

  /// Argmax class.
  virtual int Predict(std::span<const double> features) const;

  virtual const std::string& name() const = 0;

  /// Per-feature importance normalized to sum 1 (empty before fitting).
  /// Forest: total Gini decrease; boosters: total split gain.
  virtual std::vector<double> FeatureImportance() const = 0;

  /// Text serialization of the fitted model (predict-path state only).
  virtual void Serialize(std::ostream& out) const = 0;

  /// Deep copy of the fitted model. Predictions of the clone are
  /// bit-identical to the original's, and the two are fully independent —
  /// the online refresh loop clones the champion so a challenger can train
  /// and evaluate concurrently with serving, without re-parsing a
  /// serialized stream on every evaluation round.
  virtual std::unique_ptr<Classifier> Clone() const = 0;
};

/// Persist / restore a fitted classifier with a type tag, so deployment
/// code can load whatever the training side produced.
void SaveClassifier(const Classifier& model, std::ostream& out);
std::unique_ptr<Classifier> LoadClassifier(std::istream& in);

/// The three learner families from the paper.
enum class LearnerKind {
  kRandomForest,  ///< bagged CART ensemble ("Random Forest")
  kXgbStyle,      ///< Newton boosting, exact level-wise trees ("XGBoost")
  kLgbmStyle,     ///< Newton boosting, histogram leaf-wise trees ("LightGBM")
};

const char* LearnerKindName(LearnerKind kind);

struct RandomForestOptions {
  int n_trees = 100;
  int max_depth = 24;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 = floor(sqrt(d)).
  std::size_t max_features = 0;
  bool bootstrap = true;
};

struct BoosterOptions {
  int n_rounds = 120;
  double learning_rate = 0.1;
  int max_depth = 6;    ///< level-wise cap (XGB-style)
  int max_leaves = 31;  ///< leaf-wise cap (LGBM-style); 0 for level-wise
  int max_bins = 0;     ///< 0 = exact splits; >0 = histogram
  double lambda = 1.0;
  double gamma = 0.0;
  double min_child_weight = 1e-3;
  std::size_t min_samples_leaf = 1;
  double subsample = 0.9;  ///< row subsampling per boosting round

  /// Gradient-based One-Side Sampling (the LightGBM paper's trick): keep
  /// the goss_top_rate largest-gradient rows, sample goss_other_rate of the
  /// rest and up-weight them by (1-top)/other. Replaces plain subsampling.
  bool goss = false;
  double goss_top_rate = 0.2;
  double goss_other_rate = 0.2;
};

std::unique_ptr<Classifier> MakeRandomForest(RandomForestOptions options = {});
std::unique_ptr<Classifier> MakeXgbStyleBooster(BoosterOptions options = {});
std::unique_ptr<Classifier> MakeLgbmStyleBooster(BoosterOptions options = {});

/// Factory with per-kind tuned defaults.
std::unique_ptr<Classifier> MakeClassifier(LearnerKind kind);

}  // namespace cordial::ml
