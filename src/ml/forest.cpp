#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace cordial::ml {

int Classifier::Predict(std::span<const double> features) const {
  const std::vector<double> proba = PredictProba(features);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

RandomForestClassifier::RandomForestClassifier(RandomForestOptions options)
    : options_(options) {
  CORDIAL_CHECK_MSG(options_.n_trees > 0, "forest needs at least one tree");
}

void RandomForestClassifier::Fit(const Dataset& train, Rng& rng) {
  CORDIAL_CHECK_MSG(!train.empty(), "cannot fit on an empty dataset");
  trees_.clear();
  num_classes_ = train.num_classes();

  ClassificationTreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features =
      options_.max_features > 0
          ? options_.max_features
          : static_cast<std::size_t>(std::max(
                1.0, std::floor(std::sqrt(
                         static_cast<double>(train.num_features())))));

  const std::size_t n = train.size();
  // One draw advances the caller's stream (so back-to-back fits differ);
  // every tree then forks the resulting stream at its own index. Bootstrap
  // indices come from the fork, not the shared stream, which makes each
  // tree a pure function of (salt, t) — trainable on any thread in any
  // order with a bit-identical forest.
  const Rng forker(rng.Next());
  trees_.assign(static_cast<std::size_t>(options_.n_trees),
                ClassificationTree(tree_options));
  ParallelFor(trees_.size(), 1, [&](std::size_t t) {
    Rng tree_rng = forker.Fork(t);
    std::vector<std::size_t> indices(n);
    if (options_.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        indices[i] = static_cast<std::size_t>(tree_rng.UniformU64(n));
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) indices[i] = i;
    }
    trees_[t].Fit(train, indices, tree_rng);
  });
}

std::vector<double> RandomForestClassifier::PredictProba(
    std::span<const double> features) const {
  CORDIAL_CHECK_MSG(!trees_.empty(), "forest not fitted");
  std::vector<double> avg(static_cast<std::size_t>(num_classes_), 0.0);
  for (const ClassificationTree& tree : trees_) {
    tree.PredictProbaInto(features, avg);
  }
  for (double& p : avg) p /= static_cast<double>(trees_.size());
  return avg;
}

std::vector<double> RandomForestClassifier::FeatureImportance() const {
  std::vector<double> total;
  for (const ClassificationTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importance();
    if (total.empty()) total.assign(imp.size(), 0.0);
    for (std::size_t f = 0; f < imp.size(); ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

void RandomForestClassifier::Serialize(std::ostream& out) const {
  CORDIAL_CHECK_MSG(!trees_.empty(), "cannot serialize an unfitted forest");
  out << "random_forest v1\nclasses " << num_classes_ << " trees "
      << trees_.size() << "\n";
  for (const ClassificationTree& tree : trees_) tree.Serialize(out);
}

std::unique_ptr<RandomForestClassifier> RandomForestClassifier::Deserialize(
    std::istream& in) {
  std::string token;
  in >> token;
  if (token != "random_forest") {
    throw ParseError("forest: bad magic '" + token + "'");
  }
  in >> token;
  if (token != "v1") throw ParseError("forest: unsupported version");
  long classes = 0, trees = 0;
  in >> token >> classes >> token >> trees;
  if (!in || classes < 2 || trees < 1) {
    throw ParseError("forest: malformed header");
  }
  auto forest = std::make_unique<RandomForestClassifier>();
  forest->num_classes_ = static_cast<int>(classes);
  forest->trees_.reserve(static_cast<std::size_t>(trees));
  for (long t = 0; t < trees; ++t) {
    forest->trees_.push_back(ClassificationTree::Deserialize(in));
  }
  return forest;
}

}  // namespace cordial::ml
