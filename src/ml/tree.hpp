// Decision trees.
//
// Two tree species cover the paper's three learners (§IV-C):
//   - ClassificationTree: CART with Gini impurity and per-node feature
//     subsampling — the Random Forest base learner.
//   - RegressionTree: second-order (Newton) gradient tree with L2-regularized
//     leaf values, supporting exact or histogram split finding and level-wise
//     or best-first (leaf-wise) growth — the base learner for both the
//     XGBoost-style and the LightGBM-style boosters.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"

namespace cordial::ml {

// ---------------------------------------------------------------- binning

/// Per-feature quantile binning for histogram split finding. Thresholds are
/// chosen from training-data quantiles; lookup is a binary search.
class FeatureBinner {
 public:
  /// Build from the rows of `data` indexed by `indices` (empty = all rows).
  FeatureBinner(const Dataset& data, const std::vector<std::size_t>& indices,
                int max_bins);

  int max_bins() const { return max_bins_; }
  /// Bin index of `value` for `feature`, in [0, NumBins(feature)).
  int BinOf(std::size_t feature, double value) const;
  int NumBins(std::size_t feature) const;
  /// Upper edge of bin b (split "value <= edge"); +inf for the last bin.
  double BinUpperEdge(std::size_t feature, int bin) const;

 private:
  int max_bins_;
  std::vector<std::vector<double>> edges_;  // per feature, ascending
};

// ----------------------------------------------------- classification tree

struct ClassificationTreeOptions {
  int max_depth = 24;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features tried per split; 0 = all (single tree), forests pass sqrt(d).
  std::size_t max_features = 0;
  double min_impurity_decrease = 1e-12;
};

class ClassificationTree {
 public:
  explicit ClassificationTree(ClassificationTreeOptions options = {})
      : options_(options) {}

  /// Fit on the rows of `data` listed in `indices` (duplicates allowed —
  /// bootstrap samples). `rng` drives feature subsampling.
  void Fit(const Dataset& data, const std::vector<std::size_t>& indices,
           Rng& rng);

  /// Class-probability vector (leaf class frequencies).
  std::vector<double> PredictProba(std::span<const double> features) const;
  /// Adds the leaf's class frequencies into `out` (size >= num_classes)
  /// without allocating — the ensemble-averaging fast path.
  void PredictProbaInto(std::span<const double> features,
                        std::span<double> out) const;
  int Predict(std::span<const double> features) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }

  /// Per-feature total impurity decrease (weighted by node size); empty
  /// before fitting. Not normalized.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  /// Line-based text serialization; Deserialize(Serialize(t)) reproduces
  /// identical predictions.
  void Serialize(std::ostream& out) const;
  static ClassificationTree Deserialize(std::istream& in);

 private:
  struct Node {
    int feature = -1;  ///< -1 for leaves
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::vector<double> proba;  ///< leaves only
  };

  std::int32_t Build(const Dataset& data, std::vector<std::size_t>& indices,
                     int depth, Rng& rng);

  ClassificationTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  int num_classes_ = 0;
  int depth_ = 0;
};

// -------------------------------------------------------- regression tree

struct RegressionTreeOptions {
  /// Depth cap; 0 = unlimited (useful with max_leaves).
  int max_depth = 6;
  /// Best-first growth with this many leaves at most; 0 = pure level-wise.
  int max_leaves = 0;
  /// Histogram bins for split finding; 0 = exact (sorted) splits.
  int max_bins = 0;
  double lambda = 1.0;  ///< L2 regularization on leaf values
  double gamma = 0.0;   ///< minimum split gain
  double min_child_weight = 1e-3;
  std::size_t min_samples_leaf = 1;
  std::size_t max_features = 0;  ///< 0 = all
};

/// Newton-step regression tree: fits -G/(H+lambda) leaf values to per-sample
/// gradient/hessian pairs, split gain = 1/2[GL^2/(HL+l) + GR^2/(HR+l)
/// - G^2/(H+l)] - gamma.
class RegressionTree {
 public:
  explicit RegressionTree(RegressionTreeOptions options = {})
      : options_(options) {}

  /// `binner` must be non-null iff options.max_bins > 0.
  void Fit(const Dataset& data, const std::vector<std::size_t>& indices,
           std::span<const double> gradients, std::span<const double> hessians,
           Rng& rng, const FeatureBinner* binner);

  double Predict(std::span<const double> features) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const;

  /// Per-feature total split gain; empty before fitting. Not normalized.
  const std::vector<double>& feature_importance() const {
    return importance_;
  }

  /// Line-based text serialization; Deserialize(Serialize(t)) reproduces
  /// identical predictions.
  void Serialize(std::ostream& out) const;
  static RegressionTree Deserialize(std::istream& in);

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  ///< leaves only
  };

  struct SplitResult {
    bool found = false;
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };

  SplitResult FindBestSplit(const Dataset& data,
                            const std::vector<std::size_t>& indices,
                            std::span<const double> gradients,
                            std::span<const double> hessians, Rng& rng,
                            const FeatureBinner* binner) const;

  RegressionTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

}  // namespace cordial::ml
