#include "ml/dataset.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cordial::ml {

Dataset::Dataset(std::size_t num_features, int num_classes,
                 std::vector<std::string> feature_names)
    : num_features_(num_features),
      num_classes_(num_classes),
      feature_names_(std::move(feature_names)) {
  CORDIAL_CHECK_MSG(num_features_ > 0, "dataset needs at least one feature");
  CORDIAL_CHECK_MSG(num_classes_ >= 2, "dataset needs at least two classes");
  if (feature_names_.empty()) {
    feature_names_.reserve(num_features_);
    for (std::size_t i = 0; i < num_features_; ++i) {
      feature_names_.push_back("f" + std::to_string(i));
    }
  }
  CORDIAL_CHECK_MSG(feature_names_.size() == num_features_,
                    "feature name count must match feature count");
}

void Dataset::AddRow(std::span<const double> features, int label) {
  CORDIAL_CHECK_MSG(features.size() == num_features_,
                    "feature vector width mismatch");
  CORDIAL_CHECK_MSG(label >= 0 && label < num_classes_, "label out of range");
  x_.insert(x_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

std::span<const double> Dataset::row(std::size_t i) const {
  CORDIAL_CHECK_MSG(i < size(), "row index out of range");
  return {x_.data() + i * num_features_, num_features_};
}

double Dataset::at(std::size_t i, std::size_t feature) const {
  CORDIAL_CHECK_MSG(i < size() && feature < num_features_,
                    "dataset index out of range");
  return x_[i * num_features_ + feature];
}

int Dataset::label(std::size_t i) const {
  CORDIAL_CHECK_MSG(i < size(), "label index out of range");
  return labels_[i];
}

std::vector<std::size_t> Dataset::ClassCounts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (int label : labels_) ++counts[static_cast<std::size_t>(label)];
  return counts;
}

Dataset Dataset::Subset(const std::vector<std::size_t>& indices) const {
  Dataset out(num_features_, num_classes_, feature_names_);
  for (std::size_t i : indices) {
    out.AddRow(row(i), label(i));
  }
  return out;
}

TrainTestSplit StratifiedSplit(const Dataset& data, double test_fraction,
                               Rng& rng) {
  CORDIAL_CHECK_MSG(test_fraction > 0.0 && test_fraction < 1.0,
                    "test_fraction must be in (0,1)");
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(data.num_classes()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.label(i))].push_back(i);
  }
  TrainTestSplit split;
  for (auto& members : by_class) {
    rng.Shuffle(members);
    std::size_t n_test = static_cast<std::size_t>(
        static_cast<double>(members.size()) * test_fraction);
    if (members.size() >= 2 && n_test == 0) n_test = 1;
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(members[i]);
    }
  }
  rng.Shuffle(split.train);
  rng.Shuffle(split.test);
  return split;
}

TrainTestSplit RandomSplit(std::size_t n, double test_fraction, Rng& rng) {
  CORDIAL_CHECK_MSG(test_fraction > 0.0 && test_fraction < 1.0,
                    "test_fraction must be in (0,1)");
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  const auto n_test =
      static_cast<std::size_t>(static_cast<double>(n) * test_fraction);
  TrainTestSplit split;
  split.test.assign(order.begin(), order.begin() + static_cast<long>(n_test));
  split.train.assign(order.begin() + static_cast<long>(n_test), order.end());
  return split;
}

}  // namespace cordial::ml
