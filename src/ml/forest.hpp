// Random Forest classifier: bootstrap-bagged CART trees with per-split
// feature subsampling and probability averaging.
#pragma once

#include "ml/classifier.hpp"
#include "ml/tree.hpp"

namespace cordial::ml {

class RandomForestClassifier final : public Classifier {
 public:
  explicit RandomForestClassifier(RandomForestOptions options = {});

  void Fit(const Dataset& train, Rng& rng) override;
  std::vector<double> PredictProba(
      std::span<const double> features) const override;
  const std::string& name() const override { return name_; }
  std::vector<double> FeatureImportance() const override;
  void Serialize(std::ostream& out) const override;
  static std::unique_ptr<RandomForestClassifier> Deserialize(std::istream& in);
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<RandomForestClassifier>(*this);
  }

  std::size_t tree_count() const { return trees_.size(); }

 private:
  RandomForestOptions options_;
  std::vector<ClassificationTree> trees_;
  int num_classes_ = 0;
  std::string name_ = "RandomForest";
};

}  // namespace cordial::ml
