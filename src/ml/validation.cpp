#include "ml/validation.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace cordial::ml {

CrossValidationResult CrossValidate(const Dataset& data,
                                    const ClassifierFactory& factory,
                                    std::size_t folds, Rng& rng) {
  CORDIAL_CHECK_MSG(folds >= 2, "cross-validation needs at least 2 folds");
  CORDIAL_CHECK_MSG(data.size() >= folds,
                    "cross-validation needs at least one sample per fold");

  // Stratified fold assignment: shuffle within each class, deal round-robin.
  std::vector<std::size_t> fold_of(data.size());
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(data.num_classes()));
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.label(i))].push_back(i);
  }
  std::size_t deal = 0;
  for (auto& members : by_class) {
    rng.Shuffle(members);
    for (std::size_t i : members) fold_of[i] = deal++ % folds;
  }

  CrossValidationResult result;
  RunningStats accuracy_stats;
  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<std::size_t> train_idx, eval_idx;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (fold_of[i] == fold ? eval_idx : train_idx).push_back(i);
    }
    CORDIAL_CHECK_MSG(!train_idx.empty() && !eval_idx.empty(),
                      "degenerate cross-validation fold");
    const Dataset train = data.Subset(train_idx);
    auto model = factory();
    model->Fit(train, rng);

    ConfusionMatrix cm(data.num_classes());
    for (std::size_t i : eval_idx) {
      cm.Add(data.label(i), model->Predict(data.row(i)));
    }
    result.fold_accuracy.push_back(cm.Accuracy());
    result.fold_weighted_f1.push_back(cm.WeightedAverage().f1);
    accuracy_stats.Add(cm.Accuracy());
    result.mean_weighted_f1 += cm.WeightedAverage().f1;
  }
  result.mean_accuracy = accuracy_stats.mean();
  result.stddev_accuracy = accuracy_stats.stddev();
  result.mean_weighted_f1 /= static_cast<double>(folds);
  return result;
}

std::vector<double> PermutationImportance(const Classifier& model,
                                          const Dataset& eval,
                                          std::size_t repeats, Rng& rng) {
  CORDIAL_CHECK_MSG(repeats >= 1, "need at least one permutation repeat");
  CORDIAL_CHECK_MSG(!eval.empty(), "permutation importance needs data");

  const auto baseline = [&] {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < eval.size(); ++i) {
      correct += model.Predict(eval.row(i)) == eval.label(i);
    }
    return static_cast<double>(correct) / static_cast<double>(eval.size());
  }();

  std::vector<double> importance(eval.num_features(), 0.0);
  std::vector<double> row(eval.num_features());
  std::vector<std::size_t> permutation(eval.size());
  for (std::size_t f = 0; f < eval.num_features(); ++f) {
    double drop_total = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      for (std::size_t i = 0; i < eval.size(); ++i) permutation[i] = i;
      rng.Shuffle(permutation);
      std::size_t correct = 0;
      for (std::size_t i = 0; i < eval.size(); ++i) {
        const auto original = eval.row(i);
        std::copy(original.begin(), original.end(), row.begin());
        row[f] = eval.at(permutation[i], f);  // shuffled column value
        correct += model.Predict(row) == eval.label(i);
      }
      const double shuffled_accuracy =
          static_cast<double>(correct) / static_cast<double>(eval.size());
      drop_total += baseline - shuffled_accuracy;
    }
    importance[f] = drop_total / static_cast<double>(repeats);
  }
  return importance;
}

}  // namespace cordial::ml
