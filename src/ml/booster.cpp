#include "ml/booster.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "ml/forest.hpp"

namespace cordial::ml {

std::vector<double> Softmax(std::span<const double> scores) {
  CORDIAL_CHECK_MSG(!scores.empty(), "softmax of empty vector");
  const double max_score = *std::max_element(scores.begin(), scores.end());
  std::vector<double> out(scores.size());
  double total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    out[i] = std::exp(scores[i] - max_score);
    total += out[i];
  }
  for (double& p : out) p /= total;
  return out;
}

GradientBoostedClassifier::GradientBoostedClassifier(std::string name,
                                                     BoosterOptions options,
                                                     bool histogram_leafwise)
    : name_(std::move(name)),
      options_(options),
      histogram_leafwise_(histogram_leafwise) {
  CORDIAL_CHECK_MSG(options_.n_rounds > 0, "booster needs at least one round");
  CORDIAL_CHECK_MSG(options_.learning_rate > 0.0,
                    "learning rate must be positive");
  CORDIAL_CHECK_MSG(options_.subsample > 0.0 && options_.subsample <= 1.0,
                    "subsample must be in (0,1]");
}

void GradientBoostedClassifier::Fit(const Dataset& train, Rng& rng) {
  CORDIAL_CHECK_MSG(!train.empty(), "cannot fit on an empty dataset");
  trees_.clear();
  num_classes_ = train.num_classes();
  const auto k = static_cast<std::size_t>(num_classes_);
  const std::size_t n = train.size();

  // Base score: log class prior (with +1 smoothing so empty classes are
  // representable).
  base_scores_.assign(k, 0.0);
  const std::vector<std::size_t> counts = train.ClassCounts();
  for (std::size_t c = 0; c < k; ++c) {
    base_scores_[c] = std::log((static_cast<double>(counts[c]) + 1.0) /
                               (static_cast<double>(n) + static_cast<double>(k)));
  }

  RegressionTreeOptions tree_options;
  tree_options.lambda = options_.lambda;
  tree_options.gamma = options_.gamma;
  tree_options.min_child_weight = options_.min_child_weight;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  if (histogram_leafwise_) {
    tree_options.max_depth = 0;  // LightGBM default: depth-unbounded
    tree_options.max_leaves = options_.max_leaves;
    tree_options.max_bins = options_.max_bins > 0 ? options_.max_bins : 256;
  } else {
    tree_options.max_depth = options_.max_depth;
    tree_options.max_leaves = 0;
    tree_options.max_bins = options_.max_bins;  // usually 0 -> exact
  }

  std::unique_ptr<FeatureBinner> binner;
  if (tree_options.max_bins > 0) {
    binner = std::make_unique<FeatureBinner>(train, std::vector<std::size_t>{},
                                             tree_options.max_bins);
  }

  // Current raw scores F[i][c], initialized to the base scores.
  std::vector<double> scores(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < k; ++c) scores[i * k + c] = base_scores_[c];
  }

  std::vector<double> grad(n), hess(n);
  // Row selection for one round: GOSS (which mutates grad/hess weights) or
  // plain Bernoulli subsampling.
  const auto select_rows = [&](std::vector<double>& g, std::vector<double>& h,
                               Rng& round_rng) {
    if (options_.goss) return GossSelect(g, h, round_rng);
    std::vector<std::size_t> selected;
    for (std::size_t i = 0; i < n; ++i) {
      if (options_.subsample >= 1.0 ||
          round_rng.Bernoulli(options_.subsample)) {
        selected.push_back(i);
      }
    }
    if (selected.empty()) selected.push_back(round_rng.UniformU64(n));
    return selected;
  };

  for (int round = 0; round < options_.n_rounds; ++round) {
    // Per-sample gradient and score-update loops fan out over rows: every
    // iteration writes only its own slot, so any thread count gives the
    // same result bit-for-bit.
    if (num_classes_ == 2) {
      // Binary logistic fast path: one tree per round on the class-1 score.
      ParallelFor(n, 0, [&](std::size_t i) {
        const double margin = scores[i * k + 1] - scores[i * k + 0];
        const double p = 1.0 / (1.0 + std::exp(-margin));
        const double y = train.label(i) == 1 ? 1.0 : 0.0;
        grad[i] = p - y;
        hess[i] = std::max(p * (1.0 - p), 1e-9);
      });
      const std::vector<std::size_t> round_indices =
          select_rows(grad, hess, rng);
      RegressionTree tree(tree_options);
      tree.Fit(train, round_indices, grad, hess, rng, binner.get());
      ParallelFor(n, 0, [&](std::size_t i) {
        scores[i * k + 1] += options_.learning_rate * tree.Predict(train.row(i));
      });
      trees_.push_back(std::move(tree));
      continue;
    }

    for (std::size_t c = 0; c < k; ++c) {
      ParallelFor(n, 0, [&](std::size_t i) {
        const std::span<const double> row_scores(&scores[i * k], k);
        const std::vector<double> p = Softmax(row_scores);
        const double y = train.label(i) == static_cast<int>(c) ? 1.0 : 0.0;
        grad[i] = p[c] - y;
        hess[i] = std::max(p[c] * (1.0 - p[c]), 1e-9);
      });
      const std::vector<std::size_t> round_indices =
          select_rows(grad, hess, rng);
      RegressionTree tree(tree_options);
      tree.Fit(train, round_indices, grad, hess, rng, binner.get());
      ParallelFor(n, 0, [&](std::size_t i) {
        scores[i * k + c] += options_.learning_rate * tree.Predict(train.row(i));
      });
      trees_.push_back(std::move(tree));
    }
  }
}

std::vector<std::size_t> GradientBoostedClassifier::GossSelect(
    std::vector<double>& gradients, std::vector<double>& hessians,
    Rng& rng) const {
  const std::size_t n = gradients.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(gradients[a]) > std::fabs(gradients[b]);
  });
  const std::size_t top_n = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.goss_top_rate *
                                  static_cast<double>(n)));
  std::vector<std::size_t> selected(order.begin(),
                                    order.begin() + std::min(top_n, n));
  const double weight =
      (1.0 - options_.goss_top_rate) / options_.goss_other_rate;
  for (std::size_t i = top_n; i < n; ++i) {
    if (!rng.Bernoulli(options_.goss_other_rate)) continue;
    const std::size_t sample = order[i];
    gradients[sample] *= weight;
    hessians[sample] *= weight;
    selected.push_back(sample);
  }
  return selected;
}

std::vector<double> GradientBoostedClassifier::FeatureImportance() const {
  std::vector<double> total;
  for (const RegressionTree& tree : trees_) {
    const std::vector<double>& imp = tree.feature_importance();
    if (total.empty()) total.assign(imp.size(), 0.0);
    for (std::size_t f = 0; f < imp.size(); ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

void GradientBoostedClassifier::Serialize(std::ostream& out) const {
  CORDIAL_CHECK_MSG(!trees_.empty(), "cannot serialize an unfitted booster");
  out << "gbdt v1\nname " << name_ << "\nclasses " << num_classes_
      << " learning_rate ";
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", options_.learning_rate);
    out << buf;
  }
  out << " trees " << trees_.size() << "\nbase";
  for (double s : base_scores_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", s);
    out << ' ' << buf;
  }
  out << '\n';
  for (const RegressionTree& tree : trees_) tree.Serialize(out);
}

std::unique_ptr<GradientBoostedClassifier>
GradientBoostedClassifier::Deserialize(std::istream& in) {
  std::string token;
  in >> token;
  if (token != "gbdt") throw ParseError("booster: bad magic '" + token + "'");
  in >> token;
  if (token != "v1") throw ParseError("booster: unsupported version");
  std::string name;
  in >> token >> name;
  long classes = 0, trees = 0;
  double learning_rate = 0.0;
  in >> token >> classes >> token >> learning_rate >> token >> trees;
  if (!in || classes < 2 || trees < 1 || learning_rate <= 0.0) {
    throw ParseError("booster: malformed header");
  }
  BoosterOptions options;
  options.learning_rate = learning_rate;
  auto booster = std::make_unique<GradientBoostedClassifier>(
      name, options, /*histogram_leafwise=*/false);
  booster->num_classes_ = static_cast<int>(classes);
  in >> token;  // "base"
  booster->base_scores_.resize(static_cast<std::size_t>(classes));
  for (double& s : booster->base_scores_) {
    if (!(in >> s)) throw ParseError("booster: malformed base scores");
  }
  booster->trees_.reserve(static_cast<std::size_t>(trees));
  for (long t = 0; t < trees; ++t) {
    booster->trees_.push_back(RegressionTree::Deserialize(in));
  }
  return booster;
}

std::vector<double> GradientBoostedClassifier::Scores(
    std::span<const double> features) const {
  const auto k = static_cast<std::size_t>(num_classes_);
  std::vector<double> scores(base_scores_);
  if (num_classes_ == 2) {
    // Binary fast path: all trees contribute to the class-1 score.
    for (const RegressionTree& tree : trees_) {
      scores[1] += options_.learning_rate * tree.Predict(features);
    }
    return scores;
  }
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    scores[t % k] += options_.learning_rate * trees_[t].Predict(features);
  }
  return scores;
}

std::vector<double> GradientBoostedClassifier::PredictProba(
    std::span<const double> features) const {
  CORDIAL_CHECK_MSG(!trees_.empty(), "booster not fitted");
  return Softmax(Scores(features));
}

const char* LearnerKindName(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kRandomForest: return "Random Forest";
    case LearnerKind::kXgbStyle: return "XGBoost";
    case LearnerKind::kLgbmStyle: return "LightGBM";
  }
  return "?";
}

std::unique_ptr<Classifier> MakeRandomForest(RandomForestOptions options) {
  return std::make_unique<RandomForestClassifier>(options);
}

std::unique_ptr<Classifier> MakeXgbStyleBooster(BoosterOptions options) {
  return std::make_unique<GradientBoostedClassifier>("XGBoost-style", options,
                                                     /*histogram_leafwise=*/false);
}

std::unique_ptr<Classifier> MakeLgbmStyleBooster(BoosterOptions options) {
  return std::make_unique<GradientBoostedClassifier>("LightGBM-style", options,
                                                     /*histogram_leafwise=*/true);
}

void SaveClassifier(const Classifier& model, std::ostream& out) {
  model.Serialize(out);
}

std::unique_ptr<Classifier> LoadClassifier(std::istream& in) {
  // Peek the magic token without consuming it.
  const auto start = in.tellg();
  std::string magic;
  if (!(in >> magic)) throw ParseError("classifier: empty stream");
  in.seekg(start);
  if (magic == "random_forest") return RandomForestClassifier::Deserialize(in);
  if (magic == "gbdt") return GradientBoostedClassifier::Deserialize(in);
  throw ParseError("classifier: unknown model type '" + magic + "'");
}

std::unique_ptr<Classifier> MakeClassifier(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kRandomForest:
      return MakeRandomForest();
    case LearnerKind::kXgbStyle: {
      BoosterOptions options;
      options.max_depth = 6;
      options.n_rounds = 120;
      return MakeXgbStyleBooster(options);
    }
    case LearnerKind::kLgbmStyle: {
      BoosterOptions options;
      options.max_leaves = 31;
      options.n_rounds = 120;
      options.goss = true;
      return MakeLgbmStyleBooster(options);
    }
  }
  CORDIAL_CHECK_MSG(false, "unknown learner kind");
  return nullptr;
}

}  // namespace cordial::ml
