// Model-validation utilities: k-fold cross-validation and model-agnostic
// permutation feature importance. Both operate through the Classifier
// interface, so they work identically for the forest and both boosters.
#pragma once

#include <functional>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace cordial::ml {

/// Factory for a fresh, unfitted model (cross-validation fits one per fold).
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

struct CrossValidationResult {
  std::vector<double> fold_accuracy;
  std::vector<double> fold_weighted_f1;
  double mean_accuracy = 0.0;
  double mean_weighted_f1 = 0.0;
  double stddev_accuracy = 0.0;
};

/// Stratified k-fold cross-validation. Folds preserve class proportions;
/// each sample appears in exactly one validation fold.
CrossValidationResult CrossValidate(const Dataset& data,
                                    const ClassifierFactory& factory,
                                    std::size_t folds, Rng& rng);

/// Permutation importance: accuracy drop when one feature's column is
/// shuffled in the evaluation set (averaged over `repeats`). Unlike the
/// gain-based importances, this measures what the *fitted* model actually
/// relies on, and is comparable across model families.
std::vector<double> PermutationImportance(const Classifier& model,
                                          const Dataset& eval,
                                          std::size_t repeats, Rng& rng);

}  // namespace cordial::ml
