// Classification metrics: confusion matrix, per-class precision / recall /
// F1, macro and support-weighted averages — the measures reported in the
// paper's Tables III and IV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cordial::ml {

struct ClassMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t support = 0;  ///< true samples of this class
};

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(int truth, int predicted);
  /// Cell-wise sum with `other` (same num_classes required) — combines
  /// per-shard matrices from a parallel evaluation.
  void Merge(const ConfusionMatrix& other);
  std::uint64_t at(int truth, int predicted) const;
  int num_classes() const { return num_classes_; }
  std::uint64_t total() const { return total_; }

  /// Precision / recall / F1 for one class (one-vs-rest). Zero denominators
  /// yield zero metrics, matching scikit-learn's zero_division=0 behaviour.
  ClassMetrics Metrics(int class_index) const;

  /// Support-weighted averages across classes (paper "Weighted Average").
  ClassMetrics WeightedAverage() const;
  /// Unweighted macro averages.
  ClassMetrics MacroAverage() const;

  double Accuracy() const;

  std::string ToString(const std::vector<std::string>& class_names = {}) const;

 private:
  int num_classes_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> cells_;  // truth-major
};

/// Convenience for binary problems given parallel truth/prediction vectors.
ClassMetrics BinaryMetrics(const std::vector<int>& truth,
                           const std::vector<int>& predicted);

// ------------------------------------------------ probability quality
//
// Cordial's isolation policy thresholds predicted probabilities, so the
// probabilities themselves must be trustworthy — these measure that.

/// Binary Brier score: mean (p - y)^2 over samples; 0 is perfect, 0.25 is
/// an uninformative coin.
double BrierScore(const std::vector<double>& positive_proba,
                  const std::vector<int>& truth);

/// One reliability-diagram bin.
struct CalibrationBin {
  double mean_predicted = 0.0;   ///< average predicted probability in bin
  double fraction_positive = 0.0;  ///< empirical positive rate in bin
  std::size_t count = 0;
};

/// Equal-width reliability bins over [0, 1]; empty bins are returned with
/// count == 0.
std::vector<CalibrationBin> CalibrationCurve(
    const std::vector<double>& positive_proba, const std::vector<int>& truth,
    std::size_t n_bins = 10);

/// Expected calibration error: count-weighted |confidence - accuracy|.
double ExpectedCalibrationError(const std::vector<double>& positive_proba,
                                const std::vector<int>& truth,
                                std::size_t n_bins = 10);

}  // namespace cordial::ml
