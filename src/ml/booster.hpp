// Gradient-boosted tree classifier with a softmax objective.
//
// Newton boosting: per round, per class, fit a RegressionTree to the softmax
// gradient g = p - y and hessian h = p(1-p), then add learning_rate * tree to
// the class score. Two configurations reproduce the paper's boosters:
//   XGBoost-style : exact split finding, level-wise growth to max_depth.
//   LightGBM-style: histogram split finding, leaf-wise growth to max_leaves.
// Binary problems use the same machinery with two classes.
#pragma once

#include "ml/classifier.hpp"
#include "ml/tree.hpp"

namespace cordial::ml {

class GradientBoostedClassifier final : public Classifier {
 public:
  GradientBoostedClassifier(std::string name, BoosterOptions options,
                            bool histogram_leafwise);

  void Fit(const Dataset& train, Rng& rng) override;
  std::vector<double> PredictProba(
      std::span<const double> features) const override;
  const std::string& name() const override { return name_; }
  std::vector<double> FeatureImportance() const override;
  void Serialize(std::ostream& out) const override;
  static std::unique_ptr<GradientBoostedClassifier> Deserialize(
      std::istream& in);
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<GradientBoostedClassifier>(*this);
  }

  std::size_t total_trees() const { return trees_.size(); }

 private:
  /// Raw (pre-softmax) scores for one feature vector.
  std::vector<double> Scores(std::span<const double> features) const;

  /// GOSS row selection: mutates grad/hess (up-weights the sampled
  /// small-gradient rows) and returns the selected row indices.
  std::vector<std::size_t> GossSelect(std::vector<double>& gradients,
                                      std::vector<double>& hessians,
                                      Rng& rng) const;

  std::string name_;
  BoosterOptions options_;
  bool histogram_leafwise_;
  int num_classes_ = 0;
  std::vector<double> base_scores_;          ///< log prior per class
  std::vector<RegressionTree> trees_;        ///< round-major, class-minor
};

/// Numerically-stable softmax (subtracts the max score).
std::vector<double> Softmax(std::span<const double> scores);

}  // namespace cordial::ml
