#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <istream>
#include <ostream>
#include <queue>
#include <string>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace cordial::ml {

namespace {

/// Per-feature split scans go parallel once a node holds this many samples;
/// below it the scheduling overhead outweighs the scan. The cutover only
/// affects speed — scans are pure and reduced in sampled-feature order, so
/// the chosen split is identical either way.
constexpr std::size_t kParallelSplitMinSamples = 2048;

/// Feature subset to try at one split: all features when max_features is 0
/// or >= d, otherwise a uniform sample without replacement.
std::vector<std::size_t> SampleFeatures(std::size_t num_features,
                                        std::size_t max_features, Rng& rng) {
  if (max_features == 0 || max_features >= num_features) {
    std::vector<std::size_t> all(num_features);
    for (std::size_t i = 0; i < num_features; ++i) all[i] = i;
    return all;
  }
  return rng.SampleWithoutReplacement(num_features, max_features);
}

double Gini(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

}  // namespace

// ---------------------------------------------------------------- binning

FeatureBinner::FeatureBinner(const Dataset& data,
                             const std::vector<std::size_t>& indices,
                             int max_bins)
    : max_bins_(max_bins) {
  CORDIAL_CHECK_MSG(max_bins_ >= 2, "binner needs at least 2 bins");
  const std::size_t d = data.num_features();
  edges_.resize(d);
  std::vector<double> values;
  for (std::size_t f = 0; f < d; ++f) {
    values.clear();
    if (indices.empty()) {
      values.reserve(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) values.push_back(data.at(i, f));
    } else {
      values.reserve(indices.size());
      for (std::size_t i : indices) values.push_back(data.at(i, f));
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    auto& edges = edges_[f];
    if (values.size() <= static_cast<std::size_t>(max_bins_)) {
      // One bin per distinct value: edges midway between neighbours.
      for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        edges.push_back(0.5 * (values[i] + values[i + 1]));
      }
    } else {
      // Quantile edges.
      for (int b = 1; b < max_bins_; ++b) {
        const double q = static_cast<double>(b) / max_bins_;
        const auto pos = static_cast<std::size_t>(
            q * static_cast<double>(values.size() - 1));
        const double edge = 0.5 * (values[pos] +
                                   values[std::min(pos + 1, values.size() - 1)]);
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
  }
}

int FeatureBinner::BinOf(std::size_t feature, double value) const {
  CORDIAL_CHECK_MSG(feature < edges_.size(), "binner feature out of range");
  const auto& edges = edges_[feature];
  // Bin b holds values in (edge[b-1], edge[b]]: lower_bound keeps a value
  // equal to an edge on the LEFT side, matching the tree's "value <=
  // threshold goes left" prediction rule.
  return static_cast<int>(
      std::lower_bound(edges.begin(), edges.end(), value) - edges.begin());
}

int FeatureBinner::NumBins(std::size_t feature) const {
  CORDIAL_CHECK_MSG(feature < edges_.size(), "binner feature out of range");
  return static_cast<int>(edges_[feature].size()) + 1;
}

double FeatureBinner::BinUpperEdge(std::size_t feature, int bin) const {
  const auto& edges = edges_[feature];
  if (bin >= static_cast<int>(edges.size())) {
    return std::numeric_limits<double>::infinity();
  }
  CORDIAL_CHECK_MSG(bin >= 0, "bin out of range");
  return edges[static_cast<std::size_t>(bin)];
}

// ----------------------------------------------------- classification tree

void ClassificationTree::Fit(const Dataset& data,
                             const std::vector<std::size_t>& indices,
                             Rng& rng) {
  CORDIAL_CHECK_MSG(!indices.empty(), "cannot fit a tree on zero samples");
  nodes_.clear();
  depth_ = 0;
  num_classes_ = data.num_classes();
  importance_.assign(data.num_features(), 0.0);
  std::vector<std::size_t> work(indices);
  Build(data, work, 0, rng);
}

std::int32_t ClassificationTree::Build(const Dataset& data,
                                       std::vector<std::size_t>& indices,
                                       int depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  const auto k = static_cast<std::size_t>(num_classes_);

  std::vector<double> counts(k, 0.0);
  for (std::size_t i : indices) {
    counts[static_cast<std::size_t>(data.label(i))] += 1.0;
  }
  const auto total = static_cast<double>(indices.size());
  const double parent_impurity = Gini(counts, total);

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.proba.resize(k);
    for (std::size_t c = 0; c < k; ++c) leaf.proba[c] = counts[c] / total;
    nodes_.push_back(std::move(leaf));
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const bool pure = std::any_of(counts.begin(), counts.end(), [&](double c) {
    return c == total;
  });
  if (pure || indices.size() < options_.min_samples_split ||
      (options_.max_depth > 0 && depth >= options_.max_depth)) {
    return make_leaf();
  }

  // Best Gini split over a feature subsample. Every candidate feature is
  // scanned independently (in parallel for large nodes) and the per-feature
  // winners are reduced in sampled order with strict improvement, which is
  // exactly the serial loop's first-strict-winner semantics — the chosen
  // split is identical at every thread count.
  struct FeatureSplit {
    bool found = false;
    double impurity = 0.0;
    double threshold = 0.0;
  };
  const double impurity_bar = parent_impurity - options_.min_impurity_decrease;
  const std::vector<std::size_t> feats =
      SampleFeatures(data.num_features(), options_.max_features, rng);
  auto scan_feature = [&](std::size_t f) {
    FeatureSplit split;
    std::vector<std::pair<double, int>> sorted;  // (value, label)
    sorted.reserve(indices.size());
    for (std::size_t i : indices) {
      sorted.emplace_back(data.at(i, f), data.label(i));
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) return split;  // constant

    double feature_best = impurity_bar;
    std::vector<double> left_counts(k, 0.0);
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      left_counts[static_cast<std::size_t>(sorted[i].second)] += 1.0;
      if (sorted[i].first == sorted[i + 1].first) continue;  // same value
      const auto n_left = static_cast<double>(i + 1);
      const double n_right = total - n_left;
      if (n_left < static_cast<double>(options_.min_samples_leaf) ||
          n_right < static_cast<double>(options_.min_samples_leaf)) {
        continue;
      }
      double right_sq = 0.0, left_sq = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        left_sq += left_counts[c] * left_counts[c];
        const double rc = counts[c] - left_counts[c];
        right_sq += rc * rc;
      }
      const double gini_left = 1.0 - left_sq / (n_left * n_left);
      const double gini_right = 1.0 - right_sq / (n_right * n_right);
      const double weighted =
          (n_left * gini_left + n_right * gini_right) / total;
      if (weighted < feature_best) {
        feature_best = weighted;
        split.found = true;
        split.impurity = weighted;
        split.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
    return split;
  };

  std::vector<FeatureSplit> splits;
  if (indices.size() >= kParallelSplitMinSamples && feats.size() > 1) {
    splits = ParallelMap<FeatureSplit>(
        feats.size(), [&](std::size_t fi) { return scan_feature(feats[fi]); });
  } else {
    splits.reserve(feats.size());
    for (std::size_t f : feats) splits.push_back(scan_feature(f));
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_impurity = impurity_bar;
  for (std::size_t fi = 0; fi < feats.size(); ++fi) {
    if (splits[fi].found && splits[fi].impurity < best_impurity) {
      best_impurity = splits[fi].impurity;
      best_feature = static_cast<int>(feats[fi]);
      best_threshold = splits[fi].threshold;
    }
  }

  if (best_feature < 0) return make_leaf();
  importance_[static_cast<std::size_t>(best_feature)] +=
      (parent_impurity - best_impurity) * total;

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    (data.at(i, static_cast<std::size_t>(best_feature)) <= best_threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return make_leaf();
  indices.clear();
  indices.shrink_to_fit();

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const std::int32_t left = Build(data, left_idx, depth + 1, rng);
  const std::int32_t right = Build(data, right_idx, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

std::vector<double> ClassificationTree::PredictProba(
    std::span<const double> features) const {
  CORDIAL_CHECK_MSG(!nodes_.empty(), "tree not fitted");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    const double v = features[static_cast<std::size_t>(n.feature)];
    node = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
  return nodes_[node].proba;
}

void ClassificationTree::PredictProbaInto(std::span<const double> features,
                                          std::span<double> out) const {
  CORDIAL_CHECK_MSG(!nodes_.empty(), "tree not fitted");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    const double v = features[static_cast<std::size_t>(n.feature)];
    node = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
  const std::vector<double>& proba = nodes_[node].proba;
  CORDIAL_CHECK_MSG(out.size() >= proba.size(),
                    "output span smaller than class count");
  for (std::size_t c = 0; c < proba.size(); ++c) out[c] += proba[c];
}

int ClassificationTree::Predict(std::span<const double> features) const {
  const std::vector<double> proba = PredictProba(features);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

// -------------------------------------------------------- regression tree

namespace {

struct GradSums {
  double g = 0.0;
  double h = 0.0;
};

double LeafValue(const GradSums& s, double lambda) {
  return -s.g / (s.h + lambda);
}

double ScoreOf(const GradSums& s, double lambda) {
  return s.g * s.g / (s.h + lambda);
}

}  // namespace

RegressionTree::SplitResult RegressionTree::FindBestSplit(
    const Dataset& data, const std::vector<std::size_t>& indices,
    std::span<const double> gradients, std::span<const double> hessians,
    Rng& rng, const FeatureBinner* binner) const {
  GradSums parent;
  for (std::size_t i : indices) {
    parent.g += gradients[i];
    parent.h += hessians[i];
  }
  const double parent_score = ScoreOf(parent, options_.lambda);

  // Per-feature scans (histogram or exact) are independent; for large nodes
  // they run in parallel and the winners are reduced in sampled-feature
  // order with strict improvement — identical to the serial loop's
  // first-strict-winner pick at every thread count.
  const std::vector<std::size_t> feats =
      SampleFeatures(data.num_features(), options_.max_features, rng);
  auto scan_feature = [&](std::size_t f) {
    SplitResult best;
    if (binner != nullptr) {
      // Histogram scan.
      const int bins = binner->NumBins(f);
      if (bins < 2) return best;
      std::vector<GradSums> hist(static_cast<std::size_t>(bins));
      std::vector<std::uint32_t> bin_count(static_cast<std::size_t>(bins), 0);
      for (std::size_t i : indices) {
        const int b = binner->BinOf(f, data.at(i, f));
        hist[static_cast<std::size_t>(b)].g += gradients[i];
        hist[static_cast<std::size_t>(b)].h += hessians[i];
        ++bin_count[static_cast<std::size_t>(b)];
      }
      GradSums left;
      std::size_t n_left = 0;
      for (int b = 0; b + 1 < bins; ++b) {
        left.g += hist[static_cast<std::size_t>(b)].g;
        left.h += hist[static_cast<std::size_t>(b)].h;
        n_left += bin_count[static_cast<std::size_t>(b)];
        if (n_left < options_.min_samples_leaf ||
            indices.size() - n_left < options_.min_samples_leaf) {
          continue;
        }
        const GradSums right{parent.g - left.g, parent.h - left.h};
        if (left.h < options_.min_child_weight ||
            right.h < options_.min_child_weight) {
          continue;
        }
        const double gain = 0.5 * (ScoreOf(left, options_.lambda) +
                                   ScoreOf(right, options_.lambda) -
                                   parent_score) -
                            options_.gamma;
        if (gain > best.gain) {
          best.found = true;
          best.gain = gain;
          best.feature = static_cast<int>(f);
          best.threshold = binner->BinUpperEdge(f, b);
        }
      }
    } else {
      // Exact scan over sorted values.
      std::vector<std::pair<double, std::size_t>> sorted;
      sorted.reserve(indices.size());
      for (std::size_t i : indices) sorted.emplace_back(data.at(i, f), i);
      std::sort(sorted.begin(), sorted.end());
      if (sorted.front().first == sorted.back().first) return best;
      GradSums left;
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        const std::size_t sample = sorted[i].second;
        left.g += gradients[sample];
        left.h += hessians[sample];
        if (sorted[i].first == sorted[i + 1].first) continue;
        const std::size_t n_left = i + 1;
        if (n_left < options_.min_samples_leaf ||
            indices.size() - n_left < options_.min_samples_leaf) {
          continue;
        }
        const GradSums right{parent.g - left.g, parent.h - left.h};
        if (left.h < options_.min_child_weight ||
            right.h < options_.min_child_weight) {
          continue;
        }
        const double gain = 0.5 * (ScoreOf(left, options_.lambda) +
                                   ScoreOf(right, options_.lambda) -
                                   parent_score) -
                            options_.gamma;
        if (gain > best.gain) {
          best.found = true;
          best.gain = gain;
          best.feature = static_cast<int>(f);
          best.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
        }
      }
    }
    return best;
  };

  std::vector<SplitResult> per_feature;
  if (indices.size() >= kParallelSplitMinSamples && feats.size() > 1) {
    per_feature = ParallelMap<SplitResult>(
        feats.size(), [&](std::size_t fi) { return scan_feature(feats[fi]); });
  } else {
    per_feature.reserve(feats.size());
    for (std::size_t f : feats) per_feature.push_back(scan_feature(f));
  }

  SplitResult best;
  for (const SplitResult& candidate : per_feature) {
    if (candidate.found && candidate.gain > best.gain) best = candidate;
  }
  return best;
}

void RegressionTree::Fit(const Dataset& data,
                         const std::vector<std::size_t>& indices,
                         std::span<const double> gradients,
                         std::span<const double> hessians, Rng& rng,
                         const FeatureBinner* binner) {
  CORDIAL_CHECK_MSG(!indices.empty(), "cannot fit a tree on zero samples");
  CORDIAL_CHECK_MSG(gradients.size() == hessians.size(),
                    "gradient/hessian size mismatch");
  CORDIAL_CHECK_MSG((options_.max_bins > 0) == (binner != nullptr),
                    "binner must be supplied iff max_bins > 0");
  nodes_.clear();
  importance_.assign(data.num_features(), 0.0);

  struct Pending {
    std::int32_t node_id;
    std::vector<std::size_t> indices;
    int depth;
    SplitResult split;
  };

  auto leaf_value_of = [&](const std::vector<std::size_t>& idx) {
    GradSums s;
    for (std::size_t i : idx) {
      s.g += gradients[i];
      s.h += hessians[i];
    }
    return LeafValue(s, options_.lambda);
  };

  auto can_expand = [&](const Pending& p) {
    if (options_.max_depth > 0 && p.depth >= options_.max_depth) return false;
    if (p.indices.size() < 2 * options_.min_samples_leaf) return false;
    return true;
  };

  // Root.
  nodes_.emplace_back();
  Pending root{0, indices, 0, {}};
  nodes_[0].value = leaf_value_of(root.indices);
  if (can_expand(root)) {
    root.split = FindBestSplit(data, root.indices, gradients, hessians, rng, binner);
  }

  // Best-first expansion; with max_leaves == 0 every positive-gain node is
  // expanded, which makes the order irrelevant and the result identical to
  // classic level-wise growth.
  auto cmp = [](const Pending& a, const Pending& b) {
    return a.split.gain < b.split.gain;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(cmp)> heap(cmp);
  if (root.split.found) heap.push(std::move(root));

  std::size_t leaves = 1;
  const std::size_t max_leaves =
      options_.max_leaves > 0 ? static_cast<std::size_t>(options_.max_leaves)
                              : std::numeric_limits<std::size_t>::max();

  while (!heap.empty() && leaves < max_leaves) {
    Pending p = heap.top();
    heap.pop();
    const auto f = static_cast<std::size_t>(p.split.feature);

    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t i : p.indices) {
      (data.at(i, f) <= p.split.threshold ? left_idx : right_idx).push_back(i);
    }
    if (left_idx.empty() || right_idx.empty()) continue;  // degenerate

    importance_[f] += p.split.gain;
    Node& parent = nodes_[static_cast<std::size_t>(p.node_id)];
    parent.feature = p.split.feature;
    parent.threshold = p.split.threshold;
    const auto left_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    const auto right_id = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[static_cast<std::size_t>(p.node_id)].left = left_id;
    nodes_[static_cast<std::size_t>(p.node_id)].right = right_id;
    nodes_[static_cast<std::size_t>(left_id)].value = leaf_value_of(left_idx);
    nodes_[static_cast<std::size_t>(right_id)].value = leaf_value_of(right_idx);
    ++leaves;  // one leaf became two

    Pending lp{left_id, std::move(left_idx), p.depth + 1, {}};
    if (can_expand(lp)) {
      lp.split = FindBestSplit(data, lp.indices, gradients, hessians, rng, binner);
      if (lp.split.found) heap.push(std::move(lp));
    }
    Pending rp{right_id, std::move(right_idx), p.depth + 1, {}};
    if (can_expand(rp)) {
      rp.split = FindBestSplit(data, rp.indices, gradients, hessians, rng, binner);
      if (rp.split.found) heap.push(std::move(rp));
    }
  }
}

double RegressionTree::Predict(std::span<const double> features) const {
  CORDIAL_CHECK_MSG(!nodes_.empty(), "tree not fitted");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    const double v = features[static_cast<std::size_t>(n.feature)];
    node = static_cast<std::size_t>(v <= n.threshold ? n.left : n.right);
  }
  return nodes_[node].value;
}

std::size_t RegressionTree::leaf_count() const {
  std::size_t leaves = 0;
  for (const Node& n : nodes_) {
    if (n.feature < 0) ++leaves;
  }
  return leaves;
}

// ---------------------------------------------------------- serialization

namespace {

void WriteDouble(std::ostream& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

double ReadDouble(std::istream& in) {
  double v = 0.0;
  if (!(in >> v)) throw ParseError("tree: malformed double");
  return v;
}

long ReadLong(std::istream& in) {
  long v = 0;
  if (!(in >> v)) throw ParseError("tree: malformed integer");
  return v;
}

void ExpectToken(std::istream& in, const char* token) {
  std::string word;
  if (!(in >> word) || word != token) {
    throw ParseError(std::string("tree: expected token '") + token + "'");
  }
}

}  // namespace

void ClassificationTree::Serialize(std::ostream& out) const {
  out << "classification_tree v1\n"
      << "classes " << num_classes_ << " nodes " << nodes_.size()
      << " importance " << importance_.size() << "\n";
  for (const Node& n : nodes_) {
    out << n.feature << ' ';
    WriteDouble(out, n.threshold);
    out << ' ' << n.left << ' ' << n.right;
    if (n.feature < 0) {
      for (double p : n.proba) {
        out << ' ';
        WriteDouble(out, p);
      }
    }
    out << '\n';
  }
  for (double v : importance_) {
    WriteDouble(out, v);
    out << '\n';
  }
}

ClassificationTree ClassificationTree::Deserialize(std::istream& in) {
  ExpectToken(in, "classification_tree");
  ExpectToken(in, "v1");
  ExpectToken(in, "classes");
  ClassificationTree tree;
  tree.num_classes_ = static_cast<int>(ReadLong(in));
  CORDIAL_CHECK_MSG(tree.num_classes_ >= 2, "tree: bad class count");
  ExpectToken(in, "nodes");
  const long n_nodes = ReadLong(in);
  CORDIAL_CHECK_MSG(n_nodes >= 1, "tree: bad node count");
  ExpectToken(in, "importance");
  const long n_importance = ReadLong(in);
  tree.nodes_.resize(static_cast<std::size_t>(n_nodes));
  for (Node& node : tree.nodes_) {
    node.feature = static_cast<int>(ReadLong(in));
    node.threshold = ReadDouble(in);
    node.left = static_cast<std::int32_t>(ReadLong(in));
    node.right = static_cast<std::int32_t>(ReadLong(in));
    if (node.feature < 0) {
      node.proba.resize(static_cast<std::size_t>(tree.num_classes_));
      for (double& p : node.proba) p = ReadDouble(in);
    } else {
      CORDIAL_CHECK_MSG(node.left >= 0 && node.left < n_nodes &&
                            node.right >= 0 && node.right < n_nodes,
                        "tree: child index out of range");
    }
  }
  tree.importance_.resize(static_cast<std::size_t>(n_importance));
  for (double& v : tree.importance_) v = ReadDouble(in);
  return tree;
}

void RegressionTree::Serialize(std::ostream& out) const {
  out << "regression_tree v1\n"
      << "nodes " << nodes_.size() << " importance " << importance_.size()
      << "\n";
  for (const Node& n : nodes_) {
    out << n.feature << ' ';
    WriteDouble(out, n.threshold);
    out << ' ' << n.left << ' ' << n.right << ' ';
    WriteDouble(out, n.value);
    out << '\n';
  }
  for (double v : importance_) {
    WriteDouble(out, v);
    out << '\n';
  }
}

RegressionTree RegressionTree::Deserialize(std::istream& in) {
  ExpectToken(in, "regression_tree");
  ExpectToken(in, "v1");
  ExpectToken(in, "nodes");
  RegressionTree tree;
  const long n_nodes = ReadLong(in);
  CORDIAL_CHECK_MSG(n_nodes >= 1, "tree: bad node count");
  ExpectToken(in, "importance");
  const long n_importance = ReadLong(in);
  tree.nodes_.resize(static_cast<std::size_t>(n_nodes));
  for (Node& node : tree.nodes_) {
    node.feature = static_cast<int>(ReadLong(in));
    node.threshold = ReadDouble(in);
    node.left = static_cast<std::int32_t>(ReadLong(in));
    node.right = static_cast<std::int32_t>(ReadLong(in));
    node.value = ReadDouble(in);
    if (node.feature >= 0) {
      CORDIAL_CHECK_MSG(node.left >= 0 && node.left < n_nodes &&
                            node.right >= 0 && node.right < n_nodes,
                        "tree: child index out of range");
    }
  }
  tree.importance_.resize(static_cast<std::size_t>(n_importance));
  for (double& v : tree.importance_) v = ReadDouble(in);
  return tree;
}

}  // namespace cordial::ml
