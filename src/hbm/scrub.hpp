// Patrol-scrub timing model (§II-B).
//
// Patrol scrubbing periodically sweeps memory to find latent errors before a
// demand access consumes them. In the simulator this decides whether an
// uncorrectable fault surfaces as a UEO (scrubber got there first) or a UER
// (a demand access hit it first), and how long a latent fault stays hidden.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::hbm {

class PatrolScrubber {
 public:
  /// `period_s`: wall-clock seconds for one full sweep of a device.
  /// `phase_s`: offset of the first sweep completion after t=0.
  explicit PatrolScrubber(double period_s = 24.0 * 3600.0, double phase_s = 0.0)
      : period_s_(period_s), phase_s_(phase_s) {
    CORDIAL_CHECK_MSG(period_s_ > 0.0, "scrub period must be positive");
    CORDIAL_CHECK_MSG(phase_s_ >= 0.0, "scrub phase must be non-negative");
  }

  double period_s() const { return period_s_; }

  /// First scrub-sweep completion at or after time `t` (seconds).
  double NextSweepAfter(double t) const {
    if (t <= phase_s_) return phase_s_;
    const double since_phase = t - phase_s_;
    const auto full = static_cast<std::uint64_t>(since_phase / period_s_);
    double next = phase_s_ + static_cast<double>(full) * period_s_;
    if (next < t) next += period_s_;
    return next;
  }

  /// Whether a latent fault arising at `fault_t` is found by the scrubber
  /// before a demand access arriving `access_delay` seconds later.
  bool ScrubWinsRace(double fault_t, double access_delay) const {
    return NextSweepAfter(fault_t) <= fault_t + access_delay;
  }

 private:
  double period_s_;
  double phase_s_;
};

}  // namespace cordial::hbm
