#include "hbm/bank_sim.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::hbm {

BankSimulator::BankSimulator(const TopologyConfig& topology,
                             PatrolScrubber scrubber)
    : topology_(topology), scrubber_(scrubber) {
  topology_.Validate();
}

std::uint64_t BankSimulator::GoldenData(std::uint32_t row, std::uint32_t col) {
  std::uint64_t state =
      (static_cast<std::uint64_t>(row) << 32) | (static_cast<std::uint64_t>(col) + 1);
  return SplitMix64(state);
}

void BankSimulator::InjectStuckBit(std::uint32_t row, std::uint32_t col,
                                   int bit, double since_s) {
  CORDIAL_CHECK_MSG(row < topology_.rows_per_bank, "fault row out of range");
  CORDIAL_CHECK_MSG(col < topology_.cols_per_bank, "fault col out of range");
  CORDIAL_CHECK_MSG(bit >= 0 && bit < SecDedCodec::kCodeBits,
                    "fault bit out of range");
  CORDIAL_CHECK_MSG(since_s >= 0.0, "fault onset must be non-negative");
  WordState& word = words_[{row, col}];
  for (StuckBit& existing : word.bits) {
    if (existing.bit == bit) {
      existing.since_s = std::min(existing.since_s, since_s);
      return;
    }
  }
  word.bits.push_back(StuckBit{bit, since_s});
}

int BankSimulator::FaultyBits(std::uint32_t row, std::uint32_t col,
                              double time_s) const {
  const auto it = words_.find({row, col});
  if (it == words_.end()) return 0;
  int active = 0;
  for (const StuckBit& b : it->second.bits) {
    active += b.since_s <= time_s;
  }
  return active;
}

SecDedCodec::Codeword BankSimulator::ReadRaw(std::uint32_t row,
                                             std::uint32_t col,
                                             double time_s) const {
  SecDedCodec::Codeword word = SecDedCodec::Encode(GoldenData(row, col));
  const auto it = words_.find({row, col});
  if (it != words_.end()) {
    for (const StuckBit& b : it->second.bits) {
      if (b.since_s <= time_s) word = SecDedCodec::FlipBit(word, b.bit);
    }
  }
  return word;
}

BankSimulator::ReadResult BankSimulator::Read(std::uint32_t row,
                                              std::uint32_t col,
                                              double time_s) {
  CORDIAL_CHECK_MSG(row < topology_.rows_per_bank, "read row out of range");
  CORDIAL_CHECK_MSG(col < topology_.cols_per_bank, "read col out of range");
  const std::uint64_t golden = GoldenData(row, col);
  const DecodeResult decode =
      SecDedCodec::DecodeWithTruth(ReadRaw(row, col, time_s), golden);

  ReadResult result;
  result.data = decode.data;
  result.data_correct = result.data == golden;
  switch (decode.status) {
    case DecodeResult::Status::kClean:
      break;
    case DecodeResult::Status::kCorrectedSingle:
      result.finding = SimFinding{row, col, time_s, ErrorType::kCe};
      break;
    case DecodeResult::Status::kDetectedDouble:
      result.finding = SimFinding{row, col, time_s, ErrorType::kUer};
      break;
    case DecodeResult::Status::kUndetectedOrMis:
      ++silent_corruptions_;
      break;
  }
  return result;
}

double BankSimulator::DisturbanceOn(std::uint32_t victim) const {
  double pressure = 0.0;
  for (int offset : {-2, -1, 1, 2}) {
    const std::int64_t aggressor = static_cast<std::int64_t>(victim) + offset;
    if (aggressor < 0 ||
        aggressor >= static_cast<std::int64_t>(topology_.rows_per_bank)) {
      continue;
    }
    const auto it = activations_.find(static_cast<std::uint32_t>(aggressor));
    if (it == activations_.end()) continue;
    const double weight =
        (offset == -1 || offset == 1) ? 1.0 : disturb_.distance2_weight;
    pressure += weight * static_cast<double>(it->second);
  }
  return pressure;
}

void BankSimulator::MaybeFlipVictim(std::uint32_t victim, double time_s) {
  int& flips = victim_flips_[victim];
  if (flips >= 2) return;
  const double pressure = DisturbanceOn(victim);
  while (flips < 2) {
    const std::uint64_t base = flips == 0 ? disturb_.first_flip_activations
                                          : disturb_.second_flip_activations;
    // Deterministic per-(victim, flip) cell variation in [0.75, 1.25).
    std::uint64_t state =
        (static_cast<std::uint64_t>(victim) << 8) | static_cast<std::uint64_t>(flips);
    const std::uint64_t hash = SplitMix64(state);
    const double threshold =
        static_cast<double>(base) * (0.75 + static_cast<double>(hash % 512) / 1024.0);
    if (pressure < threshold) break;
    // Both flips land in the same word so the victim escalates CE -> UER.
    // Column and starting bit derive from a victim-only hash; consecutive
    // flips take consecutive bit positions, so they never collide.
    std::uint64_t pos_state = static_cast<std::uint64_t>(victim);
    const std::uint64_t pos_hash = SplitMix64(pos_state);
    const auto col =
        static_cast<std::uint32_t>(pos_hash % topology_.cols_per_bank);
    const int bit = static_cast<int>(
        ((pos_hash >> 32) + static_cast<std::uint64_t>(flips)) %
        SecDedCodec::kCodeBits);
    InjectStuckBit(victim, col, bit, time_s);
    ++disturb_flips_;
    ++flips;
  }
}

void BankSimulator::ActivateRow(std::uint32_t row, std::uint64_t count,
                                double time_s) {
  CORDIAL_CHECK_MSG(row < topology_.rows_per_bank,
                    "activated row out of range");
  CORDIAL_CHECK_MSG(time_s >= 0.0, "activation time must be non-negative");
  if (count == 0) return;
  activations_[row] += count;
  for (int offset : {-2, -1, 1, 2}) {
    const std::int64_t victim = static_cast<std::int64_t>(row) + offset;
    if (victim < 0 ||
        victim >= static_cast<std::int64_t>(topology_.rows_per_bank)) {
      continue;
    }
    MaybeFlipVictim(static_cast<std::uint32_t>(victim), time_s);
  }
}

void BankSimulator::Refresh() { activations_.clear(); }

std::uint64_t BankSimulator::ActivationCount(std::uint32_t row) const {
  const auto it = activations_.find(row);
  return it == activations_.end() ? 0 : it->second;
}

std::vector<SimFinding> BankSimulator::Scrub(double time_s) {
  std::vector<SimFinding> findings;
  for (auto& [address, word] : words_) {
    int active = 0;
    for (const StuckBit& b : word.bits) active += b.since_s <= time_s;
    if (active == 0 || active == word.last_reported_bits) continue;
    word.last_reported_bits = active;
    findings.push_back(SimFinding{
        address.first, address.second, time_s,
        active == 1 ? ErrorType::kCe : ErrorType::kUeo});
  }
  return findings;
}

}  // namespace cordial::hbm
