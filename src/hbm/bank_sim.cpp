#include "hbm/bank_sim.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cordial::hbm {

BankSimulator::BankSimulator(const TopologyConfig& topology,
                             PatrolScrubber scrubber)
    : topology_(topology), scrubber_(scrubber) {
  topology_.Validate();
}

std::uint64_t BankSimulator::GoldenData(std::uint32_t row, std::uint32_t col) {
  std::uint64_t state =
      (static_cast<std::uint64_t>(row) << 32) | (static_cast<std::uint64_t>(col) + 1);
  return SplitMix64(state);
}

void BankSimulator::InjectStuckBit(std::uint32_t row, std::uint32_t col,
                                   int bit, double since_s) {
  CORDIAL_CHECK_MSG(row < topology_.rows_per_bank, "fault row out of range");
  CORDIAL_CHECK_MSG(col < topology_.cols_per_bank, "fault col out of range");
  CORDIAL_CHECK_MSG(bit >= 0 && bit < SecDedCodec::kCodeBits,
                    "fault bit out of range");
  CORDIAL_CHECK_MSG(since_s >= 0.0, "fault onset must be non-negative");
  WordState& word = words_[{row, col}];
  for (StuckBit& existing : word.bits) {
    if (existing.bit == bit) {
      existing.since_s = std::min(existing.since_s, since_s);
      return;
    }
  }
  word.bits.push_back(StuckBit{bit, since_s});
}

int BankSimulator::FaultyBits(std::uint32_t row, std::uint32_t col,
                              double time_s) const {
  const auto it = words_.find({row, col});
  if (it == words_.end()) return 0;
  int active = 0;
  for (const StuckBit& b : it->second.bits) {
    active += b.since_s <= time_s;
  }
  return active;
}

SecDedCodec::Codeword BankSimulator::ReadRaw(std::uint32_t row,
                                             std::uint32_t col,
                                             double time_s) const {
  SecDedCodec::Codeword word = SecDedCodec::Encode(GoldenData(row, col));
  const auto it = words_.find({row, col});
  if (it != words_.end()) {
    for (const StuckBit& b : it->second.bits) {
      if (b.since_s <= time_s) word = SecDedCodec::FlipBit(word, b.bit);
    }
  }
  return word;
}

BankSimulator::ReadResult BankSimulator::Read(std::uint32_t row,
                                              std::uint32_t col,
                                              double time_s) {
  CORDIAL_CHECK_MSG(row < topology_.rows_per_bank, "read row out of range");
  CORDIAL_CHECK_MSG(col < topology_.cols_per_bank, "read col out of range");
  const std::uint64_t golden = GoldenData(row, col);
  const DecodeResult decode =
      SecDedCodec::DecodeWithTruth(ReadRaw(row, col, time_s), golden);

  ReadResult result;
  result.data = decode.data;
  result.data_correct = result.data == golden;
  switch (decode.status) {
    case DecodeResult::Status::kClean:
      break;
    case DecodeResult::Status::kCorrectedSingle:
      result.finding = SimFinding{row, col, time_s, ErrorType::kCe};
      break;
    case DecodeResult::Status::kDetectedDouble:
      result.finding = SimFinding{row, col, time_s, ErrorType::kUer};
      break;
    case DecodeResult::Status::kUndetectedOrMis:
      ++silent_corruptions_;
      break;
  }
  return result;
}

std::vector<SimFinding> BankSimulator::Scrub(double time_s) {
  std::vector<SimFinding> findings;
  for (auto& [address, word] : words_) {
    int active = 0;
    for (const StuckBit& b : word.bits) active += b.since_s <= time_s;
    if (active == 0 || active == word.last_reported_bits) continue;
    word.last_reported_bits = active;
    findings.push_back(SimFinding{
        address.first, address.second, time_s,
        active == 1 ? ErrorType::kCe : ErrorType::kUeo});
  }
  return findings;
}

}  // namespace cordial::hbm
