// Canonical device addressing.
//
// A DeviceAddress pins an error to a cell: node / NPU / HBM / SID / channel /
// pseudo-channel / bank group / bank / row / column — the same coordinates the
// paper's MCE log records carry. Addresses pack losslessly into 64 bits for
// compact trace storage, and every hierarchy level has a grouping key so the
// empirical-study code can count affected entities per micro-level.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "hbm/topology.hpp"

namespace cordial::hbm {

struct DeviceAddress {
  std::uint32_t node = 0;
  std::uint32_t npu = 0;             // within node
  std::uint32_t hbm = 0;             // within NPU
  std::uint32_t sid = 0;             // within HBM
  std::uint32_t channel = 0;         // within SID
  std::uint32_t pseudo_channel = 0;  // within channel
  std::uint32_t bank_group = 0;      // within pseudo-channel
  std::uint32_t bank = 0;            // within bank group
  std::uint32_t row = 0;
  std::uint32_t col = 0;

  auto operator<=>(const DeviceAddress&) const = default;

  std::string ToString() const;
};

/// Packs DeviceAddress <-> uint64 for a fixed topology, and derives the
/// per-level entity keys used throughout the analysis code.
class AddressCodec {
 public:
  explicit AddressCodec(const TopologyConfig& topology);

  const TopologyConfig& topology() const { return topology_; }

  /// True iff every coordinate is within the topology bounds.
  bool IsValid(const DeviceAddress& address) const;

  /// Mixed-radix packing; Pack(Unpack(k)) == k and Unpack(Pack(a)) == a for
  /// all valid addresses. Throws ContractViolation on out-of-range input.
  std::uint64_t Pack(const DeviceAddress& address) const;
  DeviceAddress Unpack(std::uint64_t key) const;

  /// Grouping key identifying the entity containing `address` at `level`
  /// (e.g. Level::kBank -> the global bank index). Keys are dense per level.
  std::uint64_t EntityKey(const DeviceAddress& address, Level level) const;

  /// Global flat bank index — EntityKey at bank level; the primary grouping
  /// unit of the Cordial method.
  std::uint64_t BankKey(const DeviceAddress& address) const {
    return EntityKey(address, Level::kBank);
  }

  /// Number of distinct entities at `level` in the whole fleet.
  std::uint64_t EntityCount(Level level) const;

 private:
  TopologyConfig topology_;
  // Mixed-radix digit bounds, coarse -> fine:
  // node, npu, hbm, sid, channel, ps-ch, bg, bank, row, col.
  std::uint64_t radix_[10];
};

}  // namespace cordial::hbm
