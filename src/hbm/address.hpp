// Canonical device addressing.
//
// A DeviceAddress pins an error to a cell: node / NPU / HBM / SID / channel /
// pseudo-channel / bank group / bank / row / column — the same coordinates the
// paper's MCE log records carry. Addresses pack losslessly into 64 bits for
// compact trace storage, and every hierarchy level has a grouping key so the
// empirical-study code can count affected entities per micro-level.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "hbm/topology.hpp"

namespace cordial::hbm {

struct DeviceAddress {
  std::uint32_t node = 0;
  std::uint32_t npu = 0;             // within node
  std::uint32_t hbm = 0;             // within NPU
  std::uint32_t sid = 0;             // within HBM
  std::uint32_t channel = 0;         // within SID
  std::uint32_t pseudo_channel = 0;  // within channel
  std::uint32_t bank_group = 0;      // within pseudo-channel
  std::uint32_t bank = 0;            // within bank group
  std::uint32_t row = 0;
  std::uint32_t col = 0;

  auto operator<=>(const DeviceAddress&) const = default;

  std::string ToString() const;
};

enum class RowMappingKind : std::uint8_t {
  kIdentity = 0,
  kBitSwizzle,  // p = l XOR ((l >> k) & (2^k - 1)); self-inverse
  kTable,       // seeded permutation table with explicit inverse
};

const char* RowMappingKindName(RowMappingKind kind);

/// Bijective logical<->physical row map within one bank. Real DRAM devices
/// scramble row addresses internally (remapped spare rows, anti-RowHammer
/// swizzling, vendor address functions recovered by ZenHammer-style attacks),
/// so the row index an MCE log reports need not be physically adjacent to
/// row+1. The mapping is a pure function of its spec — no hidden state — so
/// trace generation and the engine can agree on it out of band.
class RowMapping {
 public:
  /// Identity over any row count.
  RowMapping() = default;

  static RowMapping Identity() { return RowMapping(); }

  /// XOR-fold swizzle: physical = logical ^ ((logical >> k) & (2^k - 1)).
  /// An involution (applying it twice is the identity), which mirrors how
  /// simple vendor scrambling functions behave. Requires `rows` to be a
  /// power of two and 2k <= log2(rows).
  static RowMapping BitSwizzle(std::uint32_t rows, int k = 3);

  /// Seeded Fisher-Yates permutation table — the worst case for locality:
  /// logical adjacency carries no information about physical adjacency.
  static RowMapping Shuffle(std::uint32_t rows, std::uint64_t seed);

  /// Parses "identity", "swizzle", "swizzle:<k>", or "shuffle:<seed>".
  /// Throws ParseError on an unrecognized spec.
  static RowMapping Parse(const std::string& spec, std::uint32_t rows);

  std::uint32_t ToPhysical(std::uint32_t logical) const;
  std::uint32_t ToLogical(std::uint32_t physical) const;

  RowMappingKind kind() const { return kind_; }
  bool identity() const { return kind_ == RowMappingKind::kIdentity; }
  /// Row count the mapping was built for; 0 means "any" (identity only).
  std::uint32_t rows() const { return rows_; }

  std::string Describe() const;

 private:
  RowMappingKind kind_ = RowMappingKind::kIdentity;
  std::uint32_t rows_ = 0;
  int swizzle_k_ = 0;
  std::uint64_t shuffle_seed_ = 0;
  std::vector<std::uint32_t> to_physical_;
  std::vector<std::uint32_t> to_logical_;
};

/// Packs DeviceAddress <-> uint64 for a fixed topology, and derives the
/// per-level entity keys used throughout the analysis code.
class AddressCodec {
 public:
  explicit AddressCodec(const TopologyConfig& topology);

  const TopologyConfig& topology() const { return topology_; }

  /// True iff every coordinate is within the topology bounds.
  bool IsValid(const DeviceAddress& address) const;

  /// Mixed-radix packing; Pack(Unpack(k)) == k and Unpack(Pack(a)) == a for
  /// all valid addresses. Throws ContractViolation on out-of-range input.
  std::uint64_t Pack(const DeviceAddress& address) const;
  DeviceAddress Unpack(std::uint64_t key) const;

  /// Grouping key identifying the entity containing `address` at `level`
  /// (e.g. Level::kBank -> the global bank index). Keys are dense per level.
  std::uint64_t EntityKey(const DeviceAddress& address, Level level) const;

  /// Global flat bank index — EntityKey at bank level; the primary grouping
  /// unit of the Cordial method.
  std::uint64_t BankKey(const DeviceAddress& address) const {
    return EntityKey(address, Level::kBank);
  }

  /// Number of distinct entities at `level` in the whole fleet.
  std::uint64_t EntityCount(Level level) const;

  /// Same address with the row coordinate pushed through `mapping`
  /// logical->physical (resp. physical->logical). All other coordinates are
  /// untouched: the scramble is per-bank row-internal. Throws
  /// ContractViolation when the input address is out of topology bounds or
  /// the mapping was built for a different row count.
  DeviceAddress ToPhysical(const DeviceAddress& address,
                           const RowMapping& mapping) const;
  DeviceAddress ToLogical(const DeviceAddress& address,
                          const RowMapping& mapping) const;

 private:
  TopologyConfig topology_;
  // Mixed-radix digit bounds, coarse -> fine:
  // node, npu, hbm, sid, channel, ps-ch, bg, bank, row, col.
  std::uint64_t radix_[10];
};

}  // namespace cordial::hbm
