// SEC-DED (72,64) Hamming ECC codec and error-severity classification.
//
// The paper defines HBM errors relative to ECC capability (§II-B): errors the
// code corrects are CEs; errors beyond it are UCEs, split into UEO (detected
// proactively, action optional) and UER (hit by a demand access, action
// required). This module provides the bit-level codec — an extended Hamming
// code with one overall parity bit, the textbook SEC-DED construction used by
// DRAM controllers — plus the severity classifier the simulator feeds.
#pragma once

#include <cstdint>
#include <optional>

namespace cordial::hbm {

/// Severity of a memory error event after ECC and access-path context.
enum class ErrorType : std::uint8_t {
  kCe = 0,   ///< correctable error — fixed in-line by ECC
  kUeo = 1,  ///< uncorrectable, found by patrol scrub — action optional
  kUer = 2,  ///< uncorrectable, consumed by a demand access — action required
};

const char* ErrorTypeName(ErrorType type);

/// Result of decoding a possibly-corrupted 72-bit codeword.
struct DecodeResult {
  enum class Status : std::uint8_t {
    kClean,              ///< no error detected
    kCorrectedSingle,    ///< one bit flipped; corrected
    kDetectedDouble,     ///< two bits flipped; detected, not correctable
    kUndetectedOrMis,    ///< >=3 flips may alias; decoder saw this pattern as
                         ///< clean or as a (mis)correctable single-bit error
  };
  Status status = Status::kClean;
  std::uint64_t data = 0;          ///< corrected data (valid unless double)
  std::optional<int> corrected_bit;  ///< codeword bit index that was fixed
};

/// Extended Hamming SEC-DED over 64 data bits: 7 Hamming check bits plus one
/// overall parity bit, 72-bit codeword. Single-bit errors are corrected,
/// double-bit errors are detected; triple-and-beyond may alias (as in real
/// hardware), which the classifier treats as uncorrectable.
class SecDedCodec {
 public:
  static constexpr int kDataBits = 64;
  static constexpr int kCheckBits = 8;  // 7 Hamming + 1 overall parity
  static constexpr int kCodeBits = kDataBits + kCheckBits;

  /// Encode 64 data bits into a 72-bit codeword (returned in the low 72 bits
  /// of the pair: .first = low 64 bits, .second = high 8 bits).
  struct Codeword {
    std::uint64_t lo = 0;  // codeword bits 0..63
    std::uint8_t hi = 0;   // codeword bits 64..71
    bool operator==(const Codeword&) const = default;
  };

  static Codeword Encode(std::uint64_t data);

  /// Decode a codeword; classifies clean / corrected / detected-double.
  /// Patterns with >2 flips that alias to a clean or single-bit syndrome are
  /// reported as kUndetectedOrMis only when the caller supplies the original
  /// data to compare against (testing hook); otherwise they are
  /// indistinguishable from the aliased outcome, as in hardware.
  static DecodeResult Decode(Codeword word);
  static DecodeResult DecodeWithTruth(Codeword word, std::uint64_t true_data);

  /// Flip codeword bit `bit` (0..71).
  static Codeword FlipBit(Codeword word, int bit);
};

/// Maps the number of faulty bits in a word and the detection context onto
/// the paper's error taxonomy. `found_by_scrub` distinguishes UEO from UER.
ErrorType ClassifyError(int faulty_bits_in_word, bool found_by_scrub);

}  // namespace cordial::hbm
