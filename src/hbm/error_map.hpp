// Bank error-map accumulation and rendering (paper Fig 3(a)).
//
// Collects per-cell error observations for one bank and renders a
// downsampled ASCII heat map with rows on the vertical axis and columns on
// the horizontal axis — the same presentation the paper uses to illustrate
// the failure-pattern families.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hbm/ecc.hpp"
#include "hbm/topology.hpp"

namespace cordial::hbm {

class BankErrorMap {
 public:
  explicit BankErrorMap(const TopologyConfig& topology);

  /// Record one error observation at (row, col).
  void Add(std::uint32_t row, std::uint32_t col, ErrorType type);

  std::size_t total_errors() const { return points_.size(); }

  /// Distinct rows containing at least one error of the given type.
  std::vector<std::uint32_t> RowsWithType(ErrorType type) const;

  /// ASCII rendering downsampled to `height` x `width` characters.
  /// '.' empty, 'c' CE only, 'o' UEO (no UER), 'X' any UER in the tile.
  std::string Render(std::size_t height = 32, std::size_t width = 64) const;

  /// CSV rows "row,col,type" for external plotting.
  std::string ExportCsv() const;

 private:
  struct Point {
    std::uint32_t row;
    std::uint32_t col;
    ErrorType type;
  };
  TopologyConfig topology_;
  std::vector<Point> points_;
};

}  // namespace cordial::hbm
