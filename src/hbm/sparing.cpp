#include "hbm/sparing.hpp"

namespace cordial::hbm {

bool SparingLedger::TrySpareRow(std::uint64_t bank_key, std::uint32_t row) {
  auto& rows = spared_rows_[bank_key];
  if (rows.contains(row)) return true;  // idempotent
  if (rows.size() >= budget_.rows_per_bank) return false;
  rows.insert(row);
  ++rows_spared_;
  return true;
}

bool SparingLedger::TrySpareBank(std::uint64_t bank_key) {
  if (!budget_.bank_sparing_available) return false;
  if (spared_banks_.contains(bank_key)) return true;  // idempotent
  spared_banks_.insert(bank_key);
  ++banks_spared_;
  return true;
}

bool SparingLedger::IsRowSpared(std::uint64_t bank_key,
                                std::uint32_t row) const {
  auto it = spared_rows_.find(bank_key);
  return it != spared_rows_.end() && it->second.contains(row);
}

bool SparingLedger::IsBankSpared(std::uint64_t bank_key) const {
  return spared_banks_.contains(bank_key);
}

}  // namespace cordial::hbm
