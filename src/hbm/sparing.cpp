#include "hbm/sparing.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <vector>

#include "common/framing.hpp"

namespace cordial::hbm {

bool SparingLedger::TrySpareRow(std::uint64_t bank_key, std::uint32_t row) {
  auto& rows = spared_rows_[bank_key];
  if (rows.contains(row)) return true;  // idempotent
  if (rows.size() >= budget_.rows_per_bank) return false;
  rows.insert(row);
  ++rows_spared_;
  return true;
}

bool SparingLedger::TrySpareBank(std::uint64_t bank_key) {
  if (!budget_.bank_sparing_available) return false;
  if (spared_banks_.contains(bank_key)) return true;  // idempotent
  spared_banks_.insert(bank_key);
  ++banks_spared_;
  return true;
}

bool SparingLedger::IsRowSpared(std::uint64_t bank_key,
                                std::uint32_t row) const {
  auto it = spared_rows_.find(bank_key);
  return it != spared_rows_.end() && it->second.contains(row);
}

bool SparingLedger::IsBankSpared(std::uint64_t bank_key) const {
  return spared_banks_.contains(bank_key);
}

const std::unordered_set<std::uint32_t>* SparingLedger::FindRowEntry(
    std::uint64_t bank_key) const {
  const auto it = spared_rows_.find(bank_key);
  return it == spared_rows_.end() ? nullptr : &it->second;
}

void SparingLedger::RestoreBankSection(std::uint64_t bank_key,
                                       bool has_row_entry,
                                       const std::vector<std::uint32_t>& rows,
                                       bool bank_spared) {
  if (has_row_entry) {
    auto& entry = spared_rows_[bank_key];
    entry.clear();
    entry.insert(rows.begin(), rows.end());
  } else {
    spared_rows_.erase(bank_key);
  }
  if (bank_spared) {
    spared_banks_.insert(bank_key);
  } else {
    spared_banks_.erase(bank_key);
  }
}

void SparingLedger::RestoreCounters(std::uint64_t rows_spared,
                                    std::uint64_t banks_spared) {
  rows_spared_ = rows_spared;
  banks_spared_ = banks_spared;
}

void SparingLedger::Save(std::ostream& out) const {
  out << "sparing_ledger v1\n"
      << "budget " << budget_.rows_per_bank << ' '
      << (budget_.bank_sparing_available ? 1 : 0) << ' ';
  WriteDoubleToken(out, budget_.row_spare_cost);
  out << ' ';
  WriteDoubleToken(out, budget_.bank_spare_cost);
  out << '\n' << "spared " << rows_spared_ << ' ' << banks_spared_ << '\n';

  std::vector<std::uint64_t> keys;
  keys.reserve(spared_rows_.size());
  for (const auto& [key, rows] : spared_rows_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  out << "row_banks " << keys.size() << '\n';
  for (const std::uint64_t key : keys) {
    const auto& rows = spared_rows_.at(key);
    std::vector<std::uint32_t> sorted(rows.begin(), rows.end());
    std::sort(sorted.begin(), sorted.end());
    out << key << ' ' << sorted.size();
    for (const std::uint32_t row : sorted) out << ' ' << row;
    out << '\n';
  }

  std::vector<std::uint64_t> banks(spared_banks_.begin(), spared_banks_.end());
  std::sort(banks.begin(), banks.end());
  out << "spared_banks " << banks.size();
  for (const std::uint64_t key : banks) out << ' ' << key;
  out << '\n';
}

SparingLedger SparingLedger::Load(std::istream& in) {
  ExpectToken(in, "sparing_ledger");
  ExpectToken(in, "v1");
  ExpectToken(in, "budget");
  SparingBudget budget;
  budget.rows_per_bank =
      static_cast<std::uint32_t>(ReadU64Token(in, "ledger budget"));
  budget.bank_sparing_available = ReadU64Token(in, "ledger budget") != 0;
  budget.row_spare_cost = ReadDoubleToken(in, "ledger budget");
  budget.bank_spare_cost = ReadDoubleToken(in, "ledger budget");
  SparingLedger ledger(budget);
  ExpectToken(in, "spared");
  ledger.rows_spared_ = ReadU64Token(in, "ledger");
  ledger.banks_spared_ = ReadU64Token(in, "ledger");
  ExpectToken(in, "row_banks");
  const std::uint64_t bank_count = ReadU64Token(in, "ledger");
  for (std::uint64_t b = 0; b < bank_count; ++b) {
    const std::uint64_t key = ReadU64Token(in, "ledger rows");
    const std::uint64_t row_count = ReadU64Token(in, "ledger rows");
    auto& rows = ledger.spared_rows_[key];
    for (std::uint64_t r = 0; r < row_count; ++r) {
      rows.insert(static_cast<std::uint32_t>(ReadU64Token(in, "ledger row")));
    }
  }
  ExpectToken(in, "spared_banks");
  const std::uint64_t spared_banks = ReadU64Token(in, "ledger");
  for (std::uint64_t b = 0; b < spared_banks; ++b) {
    ledger.spared_banks_.insert(ReadU64Token(in, "ledger bank"));
  }
  return ledger;
}

}  // namespace cordial::hbm
