// Fault taxonomy and spatial footprint generation.
//
// The paper's empirical study (§III-B, Fig 3) observes five bank-level UER
// shapes. Each shape has a physical root cause in the HBM literature the
// paper cites, and that mapping is what the simulator implements:
//
//   single-row cluster      <- sub-wordline-driver (SWD) malfunction [20]:
//                              a damaged driver strip disturbs a narrow,
//                              contiguous band of rows.
//   double-row cluster      <- subarray sense-amplifier fault: two row bands
//                              sharing the amp stripe fail, separated by a
//                              consistent power-of-two interval.
//   half total-row cluster  <- stuck row-address bit / die crack: rows alias
//                              at exactly rows_per_bank/2, producing two
//                              wide bands half a bank apart.
//   scattered               <- TSV / micro-bump defects [32]-[34]: the shared
//                              vertical interconnect corrupts transfers for
//                              unrelated rows, often across several banks of
//                              one channel.
//   whole column            <- column-driver / column-select fault: one
//                              column fails across nearly all rows.
//   CE-only                 <- isolated weak cells; never escalates to UER.
//   read-disturb            <- RowHammer on HBM2 (Olgun et al., PAPERS.md):
//                              hammered aggressor rows flip cells in victims
//                              at +/-1 and +/-2 rows, escalating CE -> UER.
//                              Not one of the paper's five shapes, but a
//                              first-class HBM failure mode with the tightest
//                              bank-level locality of all.
//
// For classification the five UER shapes collapse onto the paper's three
// classes (see DESIGN.md "taxonomy reconciliation").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "hbm/topology.hpp"

namespace cordial::hbm {

/// Physical root cause of a fault incident.
enum class FaultKind : std::uint8_t {
  kCellFault = 0,      ///< isolated weak cell(s); CE-only
  kSwdFault,           ///< sub-wordline driver malfunction
  kSenseAmpFault,      ///< subarray sense-amplifier fault
  kDieCrack,           ///< die crack / stuck row-address bit
  kTsvFault,           ///< TSV or micro-bump defect
  kColumnDriverFault,  ///< column driver / column select fault
  kReadDisturb,        ///< RowHammer-style read disturbance from aggressors
};

/// Ground-truth spatial shape of a bank's eventual UER footprint.
enum class PatternShape : std::uint8_t {
  kCeOnly = 0,
  kSingleRowCluster,
  kDoubleRowCluster,
  kHalfTotalRowCluster,
  kScattered,
  kWholeColumn,
  kReadDisturb,
};

/// The paper's three-way classification target (§IV-C).
enum class FailureClass : std::uint8_t {
  kSingleRowClustering = 0,
  kDoubleRowClustering = 1,
  kScattered = 2,
};
inline constexpr int kNumFailureClasses = 3;

const char* FaultKindName(FaultKind kind);
const char* PatternShapeName(PatternShape shape);
const char* FailureClassName(FailureClass failure_class);

/// Maps a ground-truth shape to its classification class; nullopt for
/// CE-only banks (no UERs, so never classified).
std::optional<FailureClass> CollapseToClass(PatternShape shape);

/// Root cause that produces each shape.
FaultKind RootCauseOf(PatternShape shape);

/// Errors planned within one row: the row index plus the affected columns.
struct RowErrors {
  std::uint32_t row = 0;
  std::vector<std::uint32_t> cols;
};

/// Static spatial plan for one faulty bank: which rows will eventually
/// produce UERs and which rows emit correctable precursors. The temporal
/// expansion into a timestamped event stream happens in cordial::trace.
struct BankFaultPlan {
  PatternShape shape = PatternShape::kCeOnly;
  FaultKind kind = FaultKind::kCellFault;
  /// Rows that eventually raise UERs, in planned failure order.
  std::vector<RowErrors> uer_rows;
  /// Rows that emit CEs (ambient weak cells inside the fault region); may
  /// overlap uer_rows (in-row precursors of non-sudden UERs).
  std::vector<RowErrors> ce_rows;
  /// Read-disturb only: the hammered rows whose activation pressure drives
  /// the victims in uer_rows. Aggressors themselves do not fail.
  std::vector<std::uint32_t> aggressor_rows;
};

/// Tunable shape parameters. Defaults are calibrated so that (a) the
/// cross-row locality chi-square sweep peaks near a 128-row distance (paper
/// Fig 4) and (b) observed UER-rows-per-bank matches Table II (~4.9).
struct FootprintParams {
  // Single-row cluster: a damaged sub-wordline-driver strip serves every
  // stride-th row of a band, so failures land at (near-)regular stride
  // offsets from the band center. Band half-width ~ LogNormal(mu, sigma),
  // clamped; the scale is calibrated so the cross-row locality chi-square
  // peaks near a 128-row distance (paper Fig 4), and the stride regularity
  // is what makes cross-row block prediction learnable (paper §IV-D).
  double single_halfwidth_mu = 4.85;    // median e^4.85 ~ 128 rows
  double single_halfwidth_sigma = 0.35;
  std::uint32_t single_halfwidth_min = 64;
  std::uint32_t single_halfwidth_max = 256;
  /// Fraction of the strip's positions that eventually fail, uniform in
  /// [min, max]. High fill is what makes the unfailed in-band positions
  /// predictable after a few observations.
  double single_fill_min = 0.65;
  double single_fill_max = 0.95;

  /// Stride of the driver strip: 2^k rows, k uniform in this range.
  int cluster_stride_log2_min = 5;  // 32
  int cluster_stride_log2_max = 6;  // 64
  /// Probability that a stride position lands one row off (imperfection).
  double cluster_stride_jitter_prob = 0.1;
  /// Probability that the next strip failure is the nearest undamaged
  /// position to an already-failed one (outward damage propagation) rather
  /// than a uniformly random strip position. This is the determinism that
  /// makes cross-row block prediction effective in the paper's setting.
  double cluster_outward_frac = 0.85;

  // Within a cluster, each subsequent failing row either propagates to a
  // row adjacent to an existing failure (sense-amp collateral) or strikes
  // another stride position in the band. The adjacent fraction is what
  // gives the industrial +/-4-row baseline its partial coverage (Table IV).
  double cluster_adjacent_frac = 0.10;
  std::uint32_t cluster_adjacent_max_dist = 4;

  // Double-row cluster: inter-cluster gap = 2^k rows, k uniform in range.
  // The upper range overlaps typical scattered spacings, which is what
  // makes double-vs-scattered classification genuinely hard (§V-B).
  int double_gap_log2_min = 7;   // 128
  int double_gap_log2_max = 14;  // 16384
  double double_cluster_halfwidth = 8.0;
  double double_rows_per_cluster_mean = 1.0;  // rows/cluster = 1 + Poisson

  // Half total-row cluster: gap fixed at rows_per_bank/2, wider bands.
  double half_cluster_halfwidth = 48.0;
  double half_rows_per_cluster_mean = 3.0;

  // Scattered: rows uniform across the bank.
  double scattered_rows_mean = 3.0;  // UER rows = 4 + Poisson(mean)

  // Whole column: one column, rows uniform across nearly the full bank.
  double column_rows_mean = 8.0;  // UER rows = 10 + Poisson(mean)

  // Read-disturb (RowHammer): hammered aggressor rows flip cells in their
  // physically adjacent victims with a steep distance decay — HBM2 studies
  // (Olgun et al.) see a +/-2-row blast radius with distance-2 victims
  // needing several times the activation count of distance-1 victims.
  double rd_double_sided_prob = 0.5;      // aggressor pair at distance 2
  double rd_victim_prob_1 = 0.75;         // victim at distance 1 escalates
  double rd_victim_prob_2 = 0.25;         // victim at distance 2 escalates
  double rd_victim_sandwich_prob = 0.95;  // row between a double-sided pair

  // Ambient CE rows per faulty bank, by shape (Poisson means). Scattered
  // and whole-column faults sit on shared infrastructure (TSV, column
  // driver) and therefore shower the bank with correctable noise — the
  // count-feature signal described in §IV-B.
  double ce_rows_mean_single = 2.0;
  double ce_rows_mean_double = 3.0;
  double ce_rows_mean_half = 5.0;
  double ce_rows_mean_scattered = 12.0;
  double ce_rows_mean_column = 20.0;
  double ce_rows_mean_ce_only = 5.0;
  double ce_rows_mean_rd = 2.0;

  // Columns hit per error row.
  double cols_per_row_mean = 2.0;  // 1 + Poisson(mean)
};

/// Generates static bank fault footprints. Deterministic given the Rng.
class FootprintGenerator {
 public:
  FootprintGenerator(const TopologyConfig& topology, FootprintParams params = {});

  const FootprintParams& params() const { return params_; }

  /// Generate the spatial plan for one bank exhibiting `shape`.
  BankFaultPlan Generate(PatternShape shape, Rng& rng) const;

 private:
  /// Generate a strip cluster. If `fill` > 0, the row count is
  /// fill * strip positions (at least 2) and `count` is ignored.
  std::vector<RowErrors> MakeCluster(std::uint32_t center, double halfwidth,
                                     std::size_t count, Rng& rng,
                                     double fill = 0.0) const;
  std::vector<std::uint32_t> SampleCols(Rng& rng) const;
  std::uint32_t ClampRow(std::int64_t row) const;

  TopologyConfig topology_;
  FootprintParams params_;
};

}  // namespace cordial::hbm
