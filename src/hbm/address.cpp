#include "hbm/address.hpp"

#include <charconv>
#include <numeric>
#include <sstream>

#include "common/rng.hpp"

namespace cordial::hbm {

std::string DeviceAddress::ToString() const {
  std::ostringstream os;
  os << "node" << node << "/npu" << npu << "/hbm" << hbm << "/sid" << sid
     << "/ch" << channel << "/psch" << pseudo_channel << "/bg" << bank_group
     << "/bank" << bank << "/row" << row << "/col" << col;
  return os.str();
}

const char* RowMappingKindName(RowMappingKind kind) {
  switch (kind) {
    case RowMappingKind::kIdentity: return "identity";
    case RowMappingKind::kBitSwizzle: return "swizzle";
    case RowMappingKind::kTable: return "shuffle";
  }
  return "?";
}

namespace {

bool IsPowerOfTwo(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

int Log2U32(std::uint32_t v) {
  int bits = 0;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

RowMapping RowMapping::BitSwizzle(std::uint32_t rows, int k) {
  CORDIAL_CHECK_MSG(IsPowerOfTwo(rows),
                    "BitSwizzle needs a power-of-two row count");
  CORDIAL_CHECK_MSG(k >= 1 && 2 * k <= Log2U32(rows),
                    "BitSwizzle fold width does not fit the row index");
  RowMapping m;
  m.kind_ = RowMappingKind::kBitSwizzle;
  m.rows_ = rows;
  m.swizzle_k_ = k;
  return m;
}

RowMapping RowMapping::Shuffle(std::uint32_t rows, std::uint64_t seed) {
  CORDIAL_CHECK_MSG(rows >= 1, "Shuffle needs at least one row");
  RowMapping m;
  m.kind_ = RowMappingKind::kTable;
  m.rows_ = rows;
  m.shuffle_seed_ = seed;
  m.to_physical_.resize(rows);
  std::iota(m.to_physical_.begin(), m.to_physical_.end(), 0u);
  Rng rng(seed);
  rng.Shuffle(m.to_physical_);
  m.to_logical_.resize(rows);
  for (std::uint32_t l = 0; l < rows; ++l) m.to_logical_[m.to_physical_[l]] = l;
  return m;
}

RowMapping RowMapping::Parse(const std::string& spec, std::uint32_t rows) {
  if (spec == "identity" || spec.empty()) return Identity();
  const auto parse_u64 = [&spec](const std::string& text) {
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      throw ParseError("RowMapping: bad numeric argument in spec '" + spec +
                       "'");
    }
    return value;
  };
  if (spec == "swizzle") return BitSwizzle(rows);
  if (spec.rfind("swizzle:", 0) == 0) {
    const std::uint64_t k = parse_u64(spec.substr(8));
    if (k < 1 || k > 15) throw ParseError("RowMapping: swizzle width out of range");
    return BitSwizzle(rows, static_cast<int>(k));
  }
  if (spec.rfind("shuffle:", 0) == 0) {
    return Shuffle(rows, parse_u64(spec.substr(8)));
  }
  throw ParseError("RowMapping: unrecognized spec '" + spec +
                   "' (want identity, swizzle[:k], or shuffle:<seed>)");
}

std::uint32_t RowMapping::ToPhysical(std::uint32_t logical) const {
  switch (kind_) {
    case RowMappingKind::kIdentity:
      return logical;
    case RowMappingKind::kBitSwizzle:
      CORDIAL_CHECK_MSG(logical < rows_, "ToPhysical: row out of range");
      return logical ^ ((logical >> swizzle_k_) &
                        ((1u << swizzle_k_) - 1u));
    case RowMappingKind::kTable:
      CORDIAL_CHECK_MSG(logical < rows_, "ToPhysical: row out of range");
      return to_physical_[logical];
  }
  return logical;
}

std::uint32_t RowMapping::ToLogical(std::uint32_t physical) const {
  switch (kind_) {
    case RowMappingKind::kIdentity:
      return physical;
    case RowMappingKind::kBitSwizzle:
      // The XOR fold is an involution: the swizzle is its own inverse.
      return ToPhysical(physical);
    case RowMappingKind::kTable:
      CORDIAL_CHECK_MSG(physical < rows_, "ToLogical: row out of range");
      return to_logical_[physical];
  }
  return physical;
}

std::string RowMapping::Describe() const {
  switch (kind_) {
    case RowMappingKind::kIdentity:
      return "identity";
    case RowMappingKind::kBitSwizzle:
      return "swizzle:" + std::to_string(swizzle_k_);
    case RowMappingKind::kTable:
      return "shuffle:" + std::to_string(shuffle_seed_);
  }
  return "?";
}

AddressCodec::AddressCodec(const TopologyConfig& topology)
    : topology_(topology) {
  topology_.Validate();
  radix_[0] = topology_.nodes;
  radix_[1] = topology_.npus_per_node;
  radix_[2] = topology_.hbms_per_npu;
  radix_[3] = topology_.sids_per_hbm;
  radix_[4] = topology_.channels_per_sid;
  radix_[5] = topology_.pseudo_channels_per_channel;
  radix_[6] = topology_.bank_groups_per_pseudo_channel;
  radix_[7] = topology_.banks_per_bank_group;
  radix_[8] = topology_.rows_per_bank;
  radix_[9] = topology_.cols_per_bank;
}

namespace {

void ToDigits(const DeviceAddress& a, std::uint64_t (&digits)[10]) {
  digits[0] = a.node;
  digits[1] = a.npu;
  digits[2] = a.hbm;
  digits[3] = a.sid;
  digits[4] = a.channel;
  digits[5] = a.pseudo_channel;
  digits[6] = a.bank_group;
  digits[7] = a.bank;
  digits[8] = a.row;
  digits[9] = a.col;
}

}  // namespace

bool AddressCodec::IsValid(const DeviceAddress& address) const {
  std::uint64_t digits[10];
  ToDigits(address, digits);
  for (int i = 0; i < 10; ++i) {
    if (digits[i] >= radix_[i]) return false;
  }
  return true;
}

std::uint64_t AddressCodec::Pack(const DeviceAddress& address) const {
  CORDIAL_CHECK_MSG(IsValid(address),
                    "Pack: address out of topology bounds: " + address.ToString());
  std::uint64_t digits[10];
  ToDigits(address, digits);
  std::uint64_t key = 0;
  for (int i = 0; i < 10; ++i) key = key * radix_[i] + digits[i];
  return key;
}

DeviceAddress AddressCodec::Unpack(std::uint64_t key) const {
  std::uint64_t digits[10];
  for (int i = 9; i >= 0; --i) {
    digits[i] = key % radix_[i];
    key /= radix_[i];
  }
  CORDIAL_CHECK_MSG(key == 0, "Unpack: key exceeds topology address space");
  DeviceAddress a;
  a.node = static_cast<std::uint32_t>(digits[0]);
  a.npu = static_cast<std::uint32_t>(digits[1]);
  a.hbm = static_cast<std::uint32_t>(digits[2]);
  a.sid = static_cast<std::uint32_t>(digits[3]);
  a.channel = static_cast<std::uint32_t>(digits[4]);
  a.pseudo_channel = static_cast<std::uint32_t>(digits[5]);
  a.bank_group = static_cast<std::uint32_t>(digits[6]);
  a.bank = static_cast<std::uint32_t>(digits[7]);
  a.row = static_cast<std::uint32_t>(digits[8]);
  a.col = static_cast<std::uint32_t>(digits[9]);
  return a;
}

namespace {

// Number of mixed-radix digits (coarse-first) that identify an entity at
// each level: NPU = node+npu, ..., Row = everything but the column.
int DigitsForLevel(Level level) {
  switch (level) {
    case Level::kNpu: return 2;
    case Level::kHbm: return 3;
    case Level::kSid: return 4;
    case Level::kPseudoChannel: return 6;  // includes the channel digit
    case Level::kBankGroup: return 7;
    case Level::kBank: return 8;
    case Level::kRow: return 9;
  }
  return 10;
}

}  // namespace

std::uint64_t AddressCodec::EntityKey(const DeviceAddress& address,
                                      Level level) const {
  CORDIAL_CHECK_MSG(IsValid(address), "EntityKey: address out of bounds");
  std::uint64_t digits[10];
  ToDigits(address, digits);
  const int n = DigitsForLevel(level);
  std::uint64_t key = 0;
  for (int i = 0; i < n; ++i) key = key * radix_[i] + digits[i];
  return key;
}

std::uint64_t AddressCodec::EntityCount(Level level) const {
  const int n = DigitsForLevel(level);
  std::uint64_t count = 1;
  for (int i = 0; i < n; ++i) count *= radix_[i];
  return count;
}

namespace {

void CheckMappingFits(const RowMapping& mapping, std::uint64_t rows_per_bank) {
  CORDIAL_CHECK_MSG(
      mapping.identity() || mapping.rows() == rows_per_bank,
      "row mapping was built for a different rows_per_bank");
}

}  // namespace

DeviceAddress AddressCodec::ToPhysical(const DeviceAddress& address,
                                       const RowMapping& mapping) const {
  CORDIAL_CHECK_MSG(IsValid(address), "ToPhysical: address out of bounds");
  CheckMappingFits(mapping, radix_[8]);
  DeviceAddress out = address;
  out.row = mapping.ToPhysical(address.row);
  return out;
}

DeviceAddress AddressCodec::ToLogical(const DeviceAddress& address,
                                      const RowMapping& mapping) const {
  CORDIAL_CHECK_MSG(IsValid(address), "ToLogical: address out of bounds");
  CheckMappingFits(mapping, radix_[8]);
  DeviceAddress out = address;
  out.row = mapping.ToLogical(address.row);
  return out;
}

}  // namespace cordial::hbm
