#include "hbm/address.hpp"

#include <sstream>

namespace cordial::hbm {

std::string DeviceAddress::ToString() const {
  std::ostringstream os;
  os << "node" << node << "/npu" << npu << "/hbm" << hbm << "/sid" << sid
     << "/ch" << channel << "/psch" << pseudo_channel << "/bg" << bank_group
     << "/bank" << bank << "/row" << row << "/col" << col;
  return os.str();
}

AddressCodec::AddressCodec(const TopologyConfig& topology)
    : topology_(topology) {
  topology_.Validate();
  radix_[0] = topology_.nodes;
  radix_[1] = topology_.npus_per_node;
  radix_[2] = topology_.hbms_per_npu;
  radix_[3] = topology_.sids_per_hbm;
  radix_[4] = topology_.channels_per_sid;
  radix_[5] = topology_.pseudo_channels_per_channel;
  radix_[6] = topology_.bank_groups_per_pseudo_channel;
  radix_[7] = topology_.banks_per_bank_group;
  radix_[8] = topology_.rows_per_bank;
  radix_[9] = topology_.cols_per_bank;
}

namespace {

void ToDigits(const DeviceAddress& a, std::uint64_t (&digits)[10]) {
  digits[0] = a.node;
  digits[1] = a.npu;
  digits[2] = a.hbm;
  digits[3] = a.sid;
  digits[4] = a.channel;
  digits[5] = a.pseudo_channel;
  digits[6] = a.bank_group;
  digits[7] = a.bank;
  digits[8] = a.row;
  digits[9] = a.col;
}

}  // namespace

bool AddressCodec::IsValid(const DeviceAddress& address) const {
  std::uint64_t digits[10];
  ToDigits(address, digits);
  for (int i = 0; i < 10; ++i) {
    if (digits[i] >= radix_[i]) return false;
  }
  return true;
}

std::uint64_t AddressCodec::Pack(const DeviceAddress& address) const {
  CORDIAL_CHECK_MSG(IsValid(address),
                    "Pack: address out of topology bounds: " + address.ToString());
  std::uint64_t digits[10];
  ToDigits(address, digits);
  std::uint64_t key = 0;
  for (int i = 0; i < 10; ++i) key = key * radix_[i] + digits[i];
  return key;
}

DeviceAddress AddressCodec::Unpack(std::uint64_t key) const {
  std::uint64_t digits[10];
  for (int i = 9; i >= 0; --i) {
    digits[i] = key % radix_[i];
    key /= radix_[i];
  }
  CORDIAL_CHECK_MSG(key == 0, "Unpack: key exceeds topology address space");
  DeviceAddress a;
  a.node = static_cast<std::uint32_t>(digits[0]);
  a.npu = static_cast<std::uint32_t>(digits[1]);
  a.hbm = static_cast<std::uint32_t>(digits[2]);
  a.sid = static_cast<std::uint32_t>(digits[3]);
  a.channel = static_cast<std::uint32_t>(digits[4]);
  a.pseudo_channel = static_cast<std::uint32_t>(digits[5]);
  a.bank_group = static_cast<std::uint32_t>(digits[6]);
  a.bank = static_cast<std::uint32_t>(digits[7]);
  a.row = static_cast<std::uint32_t>(digits[8]);
  a.col = static_cast<std::uint32_t>(digits[9]);
  return a;
}

namespace {

// Number of mixed-radix digits (coarse-first) that identify an entity at
// each level: NPU = node+npu, ..., Row = everything but the column.
int DigitsForLevel(Level level) {
  switch (level) {
    case Level::kNpu: return 2;
    case Level::kHbm: return 3;
    case Level::kSid: return 4;
    case Level::kPseudoChannel: return 6;  // includes the channel digit
    case Level::kBankGroup: return 7;
    case Level::kBank: return 8;
    case Level::kRow: return 9;
  }
  return 10;
}

}  // namespace

std::uint64_t AddressCodec::EntityKey(const DeviceAddress& address,
                                      Level level) const {
  CORDIAL_CHECK_MSG(IsValid(address), "EntityKey: address out of bounds");
  std::uint64_t digits[10];
  ToDigits(address, digits);
  const int n = DigitsForLevel(level);
  std::uint64_t key = 0;
  for (int i = 0; i < n; ++i) key = key * radix_[i] + digits[i];
  return key;
}

std::uint64_t AddressCodec::EntityCount(Level level) const {
  const int n = DigitsForLevel(level);
  std::uint64_t count = 1;
  for (int i = 0; i < n; ++i) count *= radix_[i];
  return count;
}

}  // namespace cordial::hbm
