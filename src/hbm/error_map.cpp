#include "hbm/error_map.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace cordial::hbm {

BankErrorMap::BankErrorMap(const TopologyConfig& topology)
    : topology_(topology) {
  topology_.Validate();
}

void BankErrorMap::Add(std::uint32_t row, std::uint32_t col, ErrorType type) {
  CORDIAL_CHECK_MSG(row < topology_.rows_per_bank, "error row out of range");
  CORDIAL_CHECK_MSG(col < topology_.cols_per_bank, "error col out of range");
  points_.push_back(Point{row, col, type});
}

std::vector<std::uint32_t> BankErrorMap::RowsWithType(ErrorType type) const {
  std::set<std::uint32_t> rows;
  for (const Point& p : points_) {
    if (p.type == type) rows.insert(p.row);
  }
  return {rows.begin(), rows.end()};
}

std::string BankErrorMap::Render(std::size_t height, std::size_t width) const {
  CORDIAL_CHECK_MSG(height > 0 && width > 0, "render size must be positive");
  // Severity per tile: 0 empty, 1 CE, 2 UEO, 3 UER.
  std::vector<int> grid(height * width, 0);
  for (const Point& p : points_) {
    const std::size_t r = std::min<std::size_t>(
        static_cast<std::size_t>(p.row) * height / topology_.rows_per_bank,
        height - 1);
    const std::size_t c = std::min<std::size_t>(
        static_cast<std::size_t>(p.col) * width / topology_.cols_per_bank,
        width - 1);
    int severity = 1;
    if (p.type == ErrorType::kUeo) severity = 2;
    if (p.type == ErrorType::kUer) severity = 3;
    int& cell = grid[r * width + c];
    cell = std::max(cell, severity);
  }
  static constexpr char kGlyph[4] = {'.', 'c', 'o', 'X'};
  std::ostringstream os;
  os << "rows 0.." << (topology_.rows_per_bank - 1) << " (top to bottom), cols 0.."
     << (topology_.cols_per_bank - 1) << " (left to right)\n";
  for (std::size_t r = 0; r < height; ++r) {
    os << "  ";
    for (std::size_t c = 0; c < width; ++c) {
      os << kGlyph[grid[r * width + c]];
    }
    os << '\n';
  }
  return os.str();
}

std::string BankErrorMap::ExportCsv() const {
  std::ostringstream os;
  os << "row,col,type\n";
  for (const Point& p : points_) {
    os << p.row << ',' << p.col << ',' << ErrorTypeName(p.type) << '\n';
  }
  return os.str();
}

}  // namespace cordial::hbm
