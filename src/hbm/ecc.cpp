#include "hbm/ecc.hpp"

#include <array>

#include "common/check.hpp"

namespace cordial::hbm {

const char* ErrorTypeName(ErrorType type) {
  switch (type) {
    case ErrorType::kCe: return "CE";
    case ErrorType::kUeo: return "UEO";
    case ErrorType::kUer: return "UER";
  }
  return "?";
}

namespace {

// Codeword layout (extended Hamming): position 0 holds the overall parity
// bit; positions 1..71 hold the Hamming(71,64) code with check bits at the
// seven power-of-two positions {1,2,4,8,16,32,64} and data bits everywhere
// else, in ascending position order.
constexpr bool IsPowerOfTwo(int x) { return x > 0 && (x & (x - 1)) == 0; }

// data_position[i] = codeword position of data bit i.
constexpr std::array<int, 64> BuildDataPositions() {
  std::array<int, 64> positions{};
  int next = 0;
  for (int pos = 1; pos < 72; ++pos) {
    if (!IsPowerOfTwo(pos)) positions[next++] = pos;
  }
  return positions;
}

constexpr std::array<int, 64> kDataPositions = BuildDataPositions();

bool GetBit(const SecDedCodec::Codeword& w, int bit) {
  return bit < 64 ? ((w.lo >> bit) & 1u) != 0
                  : ((w.hi >> (bit - 64)) & 1u) != 0;
}

void SetBit(SecDedCodec::Codeword& w, int bit, bool value) {
  if (bit < 64) {
    w.lo = value ? (w.lo | (1ULL << bit)) : (w.lo & ~(1ULL << bit));
  } else {
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (bit - 64));
    w.hi = value ? (w.hi | mask) : static_cast<std::uint8_t>(w.hi & ~mask);
  }
}

std::uint64_t ExtractData(const SecDedCodec::Codeword& w) {
  std::uint64_t data = 0;
  for (int i = 0; i < 64; ++i) {
    if (GetBit(w, kDataPositions[static_cast<std::size_t>(i)]))
      data |= 1ULL << i;
  }
  return data;
}

// Hamming syndrome over positions 1..71 and overall parity over 0..71.
struct Syndromes {
  int hamming = 0;
  bool overall_parity_odd = false;
};

Syndromes ComputeSyndromes(const SecDedCodec::Codeword& w) {
  Syndromes s;
  int ones = 0;
  for (int pos = 0; pos < 72; ++pos) {
    if (!GetBit(w, pos)) continue;
    ++ones;
    if (pos >= 1) s.hamming ^= pos;
  }
  s.overall_parity_odd = (ones % 2) != 0;
  return s;
}

}  // namespace

SecDedCodec::Codeword SecDedCodec::Encode(std::uint64_t data) {
  Codeword w;
  for (int i = 0; i < 64; ++i) {
    SetBit(w, kDataPositions[static_cast<std::size_t>(i)], (data >> i) & 1u);
  }
  // Check bits: bit at position 2^k covers all positions with bit k set.
  for (int k = 0; k < 7; ++k) {
    const int check_pos = 1 << k;
    bool parity = false;
    for (int pos = 1; pos < 72; ++pos) {
      if (pos == check_pos) continue;
      if ((pos & check_pos) != 0 && GetBit(w, pos)) parity = !parity;
    }
    SetBit(w, check_pos, parity);
  }
  // Overall parity makes the 72-bit word even-parity.
  bool total = false;
  for (int pos = 1; pos < 72; ++pos) {
    if (GetBit(w, pos)) total = !total;
  }
  SetBit(w, 0, total);
  return w;
}

SecDedCodec::Codeword SecDedCodec::FlipBit(Codeword word, int bit) {
  CORDIAL_CHECK_MSG(bit >= 0 && bit < kCodeBits, "FlipBit: bit out of range");
  SetBit(word, bit, !GetBit(word, bit));
  return word;
}

DecodeResult SecDedCodec::Decode(Codeword word) {
  const Syndromes s = ComputeSyndromes(word);
  DecodeResult result;
  if (s.hamming == 0 && !s.overall_parity_odd) {
    result.status = DecodeResult::Status::kClean;
    result.data = ExtractData(word);
    return result;
  }
  if (s.overall_parity_odd) {
    // Odd number of flips; decoder assumes exactly one.
    int bit = s.hamming;  // 0 means the overall parity bit itself
    if (bit >= kCodeBits) {
      // Syndrome points outside the codeword: certainly multi-bit.
      result.status = DecodeResult::Status::kDetectedDouble;
      result.data = ExtractData(word);
      return result;
    }
    Codeword fixed = FlipBit(word, bit);
    result.status = DecodeResult::Status::kCorrectedSingle;
    result.corrected_bit = bit;
    result.data = ExtractData(fixed);
    return result;
  }
  // Even parity with nonzero syndrome: double-bit error detected.
  result.status = DecodeResult::Status::kDetectedDouble;
  result.data = ExtractData(word);
  return result;
}

DecodeResult SecDedCodec::DecodeWithTruth(Codeword word,
                                          std::uint64_t true_data) {
  DecodeResult result = Decode(word);
  const bool claims_good =
      result.status == DecodeResult::Status::kClean ||
      result.status == DecodeResult::Status::kCorrectedSingle;
  if (claims_good && result.data != true_data) {
    result.status = DecodeResult::Status::kUndetectedOrMis;
  }
  return result;
}

ErrorType ClassifyError(int faulty_bits_in_word, bool found_by_scrub) {
  CORDIAL_CHECK_MSG(faulty_bits_in_word >= 1,
                    "ClassifyError requires at least one faulty bit");
  if (faulty_bits_in_word == 1) return ErrorType::kCe;
  return found_by_scrub ? ErrorType::kUeo : ErrorType::kUer;
}

}  // namespace cordial::hbm
