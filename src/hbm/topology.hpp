// HBM2E fleet topology model.
//
// Mirrors the organization in §II-A of the paper (Fig 1): each compute node
// carries 8 NPUs, each NPU hosts several HBM stacks; a stack is built from an
// 8-Hi pile of DRAM dies grouped into two stack IDs (SIDs); below an SID sit
// channels, pseudo-channels, bank groups and banks; a bank is a 2-D array of
// cells addressed by (row, column).
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace cordial::hbm {

/// Geometry of the fleet and of every HBM stack in it. All counts are
/// per-parent. Defaults model the paper's platform: >10,000 NPUs and
/// >80,000 HBM2E stacks (8 HBMs per NPU), 32K-row x 128-column banks.
struct TopologyConfig {
  std::uint32_t nodes = 1280;                      // fleet nodes
  std::uint32_t npus_per_node = 8;                 // paper §II-A
  std::uint32_t hbms_per_npu = 8;                  // 80k HBMs / 10k NPUs
  std::uint32_t sids_per_hbm = 2;                  // 8Hi stack -> 2 SIDs
  std::uint32_t channels_per_sid = 4;              // 8 channels per stack
  std::uint32_t pseudo_channels_per_channel = 2;   // PS-CH
  std::uint32_t bank_groups_per_pseudo_channel = 4;
  std::uint32_t banks_per_bank_group = 4;
  std::uint32_t rows_per_bank = 32768;             // Fig 3(a) y-axis ~ 30000+
  std::uint32_t cols_per_bank = 128;               // Fig 3(a) x-axis 0..128

  std::uint64_t TotalNpus() const {
    return static_cast<std::uint64_t>(nodes) * npus_per_node;
  }
  std::uint64_t TotalHbms() const { return TotalNpus() * hbms_per_npu; }
  std::uint64_t SidsPerHbm() const { return sids_per_hbm; }
  std::uint64_t ChannelsPerHbm() const {
    return static_cast<std::uint64_t>(sids_per_hbm) * channels_per_sid;
  }
  std::uint64_t PseudoChannelsPerHbm() const {
    return ChannelsPerHbm() * pseudo_channels_per_channel;
  }
  std::uint64_t BankGroupsPerHbm() const {
    return PseudoChannelsPerHbm() * bank_groups_per_pseudo_channel;
  }
  std::uint64_t BanksPerHbm() const {
    return BankGroupsPerHbm() * banks_per_bank_group;
  }
  std::uint64_t TotalBanks() const { return TotalHbms() * BanksPerHbm(); }

  /// Validate all dimensions are non-zero and the packed address fits 64 bits.
  void Validate() const;

  std::string ToString() const;
};

/// Micro-levels of the device hierarchy, ordered coarse -> fine exactly as in
/// Tables I and II of the paper.
enum class Level : std::uint8_t {
  kNpu = 0,
  kHbm,
  kSid,
  kPseudoChannel,
  kBankGroup,
  kBank,
  kRow,
};

inline constexpr Level kAllLevels[] = {
    Level::kNpu,         Level::kHbm,  Level::kSid, Level::kPseudoChannel,
    Level::kBankGroup,   Level::kBank, Level::kRow,
};

const char* LevelName(Level level);

}  // namespace cordial::hbm
