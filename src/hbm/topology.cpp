#include "hbm/topology.hpp"

#include <sstream>

namespace cordial::hbm {

void TopologyConfig::Validate() const {
  CORDIAL_CHECK_MSG(nodes > 0, "topology: nodes must be > 0");
  CORDIAL_CHECK_MSG(npus_per_node > 0, "topology: npus_per_node must be > 0");
  CORDIAL_CHECK_MSG(hbms_per_npu > 0, "topology: hbms_per_npu must be > 0");
  CORDIAL_CHECK_MSG(sids_per_hbm > 0, "topology: sids_per_hbm must be > 0");
  CORDIAL_CHECK_MSG(channels_per_sid > 0, "topology: channels_per_sid must be > 0");
  CORDIAL_CHECK_MSG(pseudo_channels_per_channel > 0,
                    "topology: pseudo_channels_per_channel must be > 0");
  CORDIAL_CHECK_MSG(bank_groups_per_pseudo_channel > 0,
                    "topology: bank_groups_per_pseudo_channel must be > 0");
  CORDIAL_CHECK_MSG(banks_per_bank_group > 0,
                    "topology: banks_per_bank_group must be > 0");
  CORDIAL_CHECK_MSG(rows_per_bank > 0, "topology: rows_per_bank must be > 0");
  CORDIAL_CHECK_MSG(cols_per_bank > 0, "topology: cols_per_bank must be > 0");

  // The packed address must fit in 64 bits: total cells = banks * rows * cols.
  long double cells = static_cast<long double>(TotalBanks()) *
                      static_cast<long double>(rows_per_bank) *
                      static_cast<long double>(cols_per_bank);
  CORDIAL_CHECK_MSG(cells < 1.8e19L, "topology: packed address exceeds 64 bits");
}

std::string TopologyConfig::ToString() const {
  std::ostringstream os;
  os << "TopologyConfig{nodes=" << nodes << ", npus/node=" << npus_per_node
     << ", hbms/npu=" << hbms_per_npu << ", sids/hbm=" << sids_per_hbm
     << ", ch/sid=" << channels_per_sid
     << ", psch/ch=" << pseudo_channels_per_channel
     << ", bg/psch=" << bank_groups_per_pseudo_channel
     << ", banks/bg=" << banks_per_bank_group << ", rows=" << rows_per_bank
     << ", cols=" << cols_per_bank << ", total_npus=" << TotalNpus()
     << ", total_hbms=" << TotalHbms() << ", total_banks=" << TotalBanks()
     << "}";
  return os.str();
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kNpu: return "NPU";
    case Level::kHbm: return "HBM";
    case Level::kSid: return "SID";
    case Level::kPseudoChannel: return "PS-CH";
    case Level::kBankGroup: return "BG";
    case Level::kBank: return "Bank";
    case Level::kRow: return "Row";
  }
  return "?";
}

}  // namespace cordial::hbm
