#include "hbm/fault.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <set>

namespace cordial::hbm {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCellFault: return "cell";
    case FaultKind::kSwdFault: return "swd";
    case FaultKind::kSenseAmpFault: return "sense-amp";
    case FaultKind::kDieCrack: return "die-crack";
    case FaultKind::kTsvFault: return "tsv";
    case FaultKind::kColumnDriverFault: return "column-driver";
    case FaultKind::kReadDisturb: return "read-disturb";
  }
  return "?";
}

const char* PatternShapeName(PatternShape shape) {
  switch (shape) {
    case PatternShape::kCeOnly: return "ce-only";
    case PatternShape::kSingleRowCluster: return "single-row-cluster";
    case PatternShape::kDoubleRowCluster: return "double-row-cluster";
    case PatternShape::kHalfTotalRowCluster: return "half-total-row-cluster";
    case PatternShape::kScattered: return "scattered";
    case PatternShape::kWholeColumn: return "whole-column";
    case PatternShape::kReadDisturb: return "read-disturb";
  }
  return "?";
}

const char* FailureClassName(FailureClass failure_class) {
  switch (failure_class) {
    case FailureClass::kSingleRowClustering: return "Single-row Clustering";
    case FailureClass::kDoubleRowClustering: return "Double-row Clustering";
    case FailureClass::kScattered: return "Scattered Pattern";
  }
  return "?";
}

std::optional<FailureClass> CollapseToClass(PatternShape shape) {
  switch (shape) {
    case PatternShape::kCeOnly:
      return std::nullopt;
    case PatternShape::kSingleRowCluster:
    // A read-disturb footprint is one tight victim cluster around the
    // aggressors, so it aggregates like a single-row cluster and the
    // single-cluster cross-row predictor is the right model for it.
    case PatternShape::kReadDisturb:
      return FailureClass::kSingleRowClustering;
    case PatternShape::kDoubleRowCluster:
    case PatternShape::kHalfTotalRowCluster:
      return FailureClass::kDoubleRowClustering;
    case PatternShape::kScattered:
    case PatternShape::kWholeColumn:
      return FailureClass::kScattered;
  }
  return std::nullopt;
}

FaultKind RootCauseOf(PatternShape shape) {
  switch (shape) {
    case PatternShape::kCeOnly: return FaultKind::kCellFault;
    case PatternShape::kSingleRowCluster: return FaultKind::kSwdFault;
    case PatternShape::kDoubleRowCluster: return FaultKind::kSenseAmpFault;
    case PatternShape::kHalfTotalRowCluster: return FaultKind::kDieCrack;
    case PatternShape::kScattered: return FaultKind::kTsvFault;
    case PatternShape::kWholeColumn: return FaultKind::kColumnDriverFault;
    case PatternShape::kReadDisturb: return FaultKind::kReadDisturb;
  }
  return FaultKind::kCellFault;
}

FootprintGenerator::FootprintGenerator(const TopologyConfig& topology,
                                       FootprintParams params)
    : topology_(topology), params_(params) {
  topology_.Validate();
  CORDIAL_CHECK_MSG(topology_.rows_per_bank >= 256,
                    "footprint generation assumes banks with >=256 rows");
}

std::uint32_t FootprintGenerator::ClampRow(std::int64_t row) const {
  const auto hi = static_cast<std::int64_t>(topology_.rows_per_bank) - 1;
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(row, 0, hi));
}

std::vector<std::uint32_t> FootprintGenerator::SampleCols(Rng& rng) const {
  const std::size_t n =
      1 + static_cast<std::size_t>(rng.Poisson(params_.cols_per_row_mean));
  std::set<std::uint32_t> cols;
  while (cols.size() < std::min<std::size_t>(n, topology_.cols_per_bank)) {
    cols.insert(static_cast<std::uint32_t>(rng.UniformU64(topology_.cols_per_bank)));
  }
  return {cols.begin(), cols.end()};
}

std::vector<RowErrors> FootprintGenerator::MakeCluster(std::uint32_t center,
                                                       double halfwidth,
                                                       std::size_t count,
                                                       Rng& rng,
                                                       double fill) const {
  // Rows are generated in failure order along a damaged driver strip: the
  // strip serves every stride-th row of a band of the given half-width, so
  // failures land at (near-)regular stride offsets from the center. Each
  // later failure either propagates to a row adjacent to an existing
  // failure (sense-amp collateral) or strikes another strip position. The
  // loop guard tolerates tiny clusters whose row space saturates.
  const std::uint32_t stride =
      1u << rng.UniformInt(params_.cluster_stride_log2_min,
                           params_.cluster_stride_log2_max);
  const auto max_k = static_cast<std::int64_t>(
      std::max<double>(1.0, halfwidth / static_cast<double>(stride)));
  if (fill > 0.0) {
    const auto positions = static_cast<double>(2 * max_k + 1);
    count = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::llround(fill * positions)));
  }

  std::vector<std::uint32_t> ordered;
  std::set<std::uint32_t> seen;
  std::set<std::int64_t> failed_ks;  // strip positions already struck
  std::size_t attempts = 0;
  while (ordered.size() < count && attempts < count * 64 + 64) {
    ++attempts;
    std::uint32_t row;
    if (!ordered.empty() && rng.Bernoulli(params_.cluster_adjacent_frac)) {
      // Sense-amp collateral: a row right next to an existing failure.
      const std::uint32_t anchor = ordered[static_cast<std::size_t>(
          rng.UniformU64(ordered.size()))];
      const auto step = static_cast<std::int64_t>(
          rng.UniformInt(1, params_.cluster_adjacent_max_dist));
      row = ClampRow(static_cast<std::int64_t>(anchor) +
                     (rng.Bernoulli(0.5) ? step : -step));
    } else {
      std::int64_t k = 0;
      if (failed_ks.empty()) {
        k = 0;
      } else if (rng.Bernoulli(params_.cluster_outward_frac)) {
        // Outward propagation: nearest undamaged position beside a random
        // failed one, in a random direction.
        const std::int64_t dir = rng.Bernoulli(0.5) ? 1 : -1;
        auto it = failed_ks.begin();
        std::advance(it, static_cast<long>(rng.UniformU64(failed_ks.size())));
        k = *it;
        do {
          k += dir;
        } while (failed_ks.contains(k) &&
                 k >= -2 * max_k && k <= 2 * max_k);
        k = std::clamp<std::int64_t>(k, -max_k, max_k);
      } else {
        k = rng.UniformInt(-max_k, max_k);
      }
      failed_ks.insert(k);
      std::int64_t jitter = 0;
      if (rng.Bernoulli(params_.cluster_stride_jitter_prob)) {
        jitter = rng.Bernoulli(0.5) ? 1 : -1;
      }
      row = ClampRow(static_cast<std::int64_t>(center) + k * stride + jitter);
    }
    if (seen.insert(row).second) ordered.push_back(row);
  }
  std::vector<RowErrors> result;
  result.reserve(ordered.size());
  for (std::uint32_t row : ordered) {
    result.push_back(RowErrors{row, SampleCols(rng)});
  }
  return result;
}

namespace {

/// Merge two clusters into a single failure order. Half the time the
/// clusters alternate; half the time one side fails completely first —
/// in that case the first few UERs reveal only one cluster, which is what
/// makes double-row patterns genuinely hard to classify early (the paper's
/// Table III shows double-row recall of only 0.5).
std::vector<RowErrors> InterleaveClusters(std::vector<RowErrors> a,
                                          std::vector<RowErrors> b, Rng& rng) {
  std::vector<RowErrors> out;
  out.reserve(a.size() + b.size());
  if (rng.Bernoulli(0.5)) {
    // Sequential: one cluster drains before the other starts.
    if (rng.Bernoulli(0.5)) std::swap(a, b);
    out.insert(out.end(), std::make_move_iterator(a.begin()),
               std::make_move_iterator(a.end()));
    out.insert(out.end(), std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()));
    return out;
  }
  std::size_t ia = 0, ib = 0;
  bool take_a = rng.Bernoulli(0.5);
  while (ia < a.size() || ib < b.size()) {
    if (ia < a.size() && (take_a || ib >= b.size())) {
      out.push_back(std::move(a[ia++]));
    } else if (ib < b.size()) {
      out.push_back(std::move(b[ib++]));
    }
    take_a = !take_a;
  }
  return out;
}

}  // namespace

BankFaultPlan FootprintGenerator::Generate(PatternShape shape, Rng& rng) const {
  BankFaultPlan plan;
  plan.shape = shape;
  plan.kind = RootCauseOf(shape);
  const std::uint32_t rows = topology_.rows_per_bank;

  double ce_rows_mean = params_.ce_rows_mean_ce_only;
  switch (shape) {
    case PatternShape::kCeOnly: {
      ce_rows_mean = params_.ce_rows_mean_ce_only;
      break;
    }
    case PatternShape::kSingleRowCluster: {
      ce_rows_mean = params_.ce_rows_mean_single;
      const double raw = rng.LogNormal(params_.single_halfwidth_mu,
                                       params_.single_halfwidth_sigma);
      const double halfwidth =
          std::clamp(raw, static_cast<double>(params_.single_halfwidth_min),
                     static_cast<double>(params_.single_halfwidth_max));
      const auto center = static_cast<std::uint32_t>(rng.UniformU64(rows));
      const double fill =
          rng.UniformReal(params_.single_fill_min, params_.single_fill_max);
      // MakeCluster emits rows in failure order (center-out propagation);
      // the row count tracks the strip's position count via the fill.
      plan.uer_rows = MakeCluster(center, halfwidth, /*count=*/0, rng, fill);
      break;
    }
    case PatternShape::kDoubleRowCluster: {
      ce_rows_mean = params_.ce_rows_mean_double;
      const int log2_gap = static_cast<int>(rng.UniformInt(
          params_.double_gap_log2_min, params_.double_gap_log2_max));
      const std::uint32_t gap = 1u << log2_gap;
      const auto base = static_cast<std::uint32_t>(
          rng.UniformU64(std::max<std::uint32_t>(rows - gap, 1)));
      const auto per_cluster = [&] {
        return 1 + static_cast<std::size_t>(
                       rng.Poisson(params_.double_rows_per_cluster_mean));
      };
      auto a = MakeCluster(base, params_.double_cluster_halfwidth,
                           per_cluster(), rng);
      auto b = MakeCluster(base + gap, params_.double_cluster_halfwidth,
                           per_cluster(), rng);
      plan.uer_rows = InterleaveClusters(std::move(a), std::move(b), rng);
      break;
    }
    case PatternShape::kHalfTotalRowCluster: {
      ce_rows_mean = params_.ce_rows_mean_half;
      const std::uint32_t gap = rows / 2;
      const auto base = static_cast<std::uint32_t>(rng.UniformU64(gap));
      const auto per_cluster = [&] {
        return 2 + static_cast<std::size_t>(
                       rng.Poisson(params_.half_rows_per_cluster_mean));
      };
      auto a = MakeCluster(base, params_.half_cluster_halfwidth, per_cluster(),
                           rng);
      auto b = MakeCluster(base + gap, params_.half_cluster_halfwidth,
                           per_cluster(), rng);
      plan.uer_rows = InterleaveClusters(std::move(a), std::move(b), rng);
      break;
    }
    case PatternShape::kScattered: {
      ce_rows_mean = params_.ce_rows_mean_scattered;
      const std::size_t count =
          4 + static_cast<std::size_t>(rng.Poisson(params_.scattered_rows_mean));
      std::set<std::uint32_t> picked;
      while (picked.size() < count) {
        picked.insert(static_cast<std::uint32_t>(rng.UniformU64(rows)));
      }
      for (std::uint32_t row : picked) {
        plan.uer_rows.push_back(RowErrors{row, SampleCols(rng)});
      }
      rng.Shuffle(plan.uer_rows);
      break;
    }
    case PatternShape::kWholeColumn: {
      ce_rows_mean = params_.ce_rows_mean_column;
      const auto col =
          static_cast<std::uint32_t>(rng.UniformU64(topology_.cols_per_bank));
      const std::size_t count =
          10 + static_cast<std::size_t>(rng.Poisson(params_.column_rows_mean));
      std::set<std::uint32_t> picked;
      while (picked.size() < count) {
        picked.insert(static_cast<std::uint32_t>(rng.UniformU64(rows)));
      }
      for (std::uint32_t row : picked) {
        plan.uer_rows.push_back(RowErrors{row, {col}});
      }
      rng.Shuffle(plan.uer_rows);
      break;
    }
    case PatternShape::kReadDisturb: {
      ce_rows_mean = params_.ce_rows_mean_rd;
      const bool double_sided = rng.Bernoulli(params_.rd_double_sided_prob);
      // Keep the whole +/-2 blast radius inside the bank.
      const auto base =
          static_cast<std::uint32_t>(2 + rng.UniformU64(rows - 7));
      plan.aggressor_rows.push_back(base);
      if (double_sided) plan.aggressor_rows.push_back(base + 2);

      // Candidate victims nearest-first; the row sandwiched between a
      // double-sided pair accumulates disturbance from both aggressors.
      struct Candidate {
        std::uint32_t row;
        double prob;
      };
      std::vector<Candidate> candidates;
      if (double_sided) {
        candidates.push_back({base + 1, params_.rd_victim_sandwich_prob});
        candidates.push_back({base - 1, params_.rd_victim_prob_1});
        candidates.push_back({base + 3, params_.rd_victim_prob_1});
        candidates.push_back({base - 2, params_.rd_victim_prob_2});
        candidates.push_back({base + 4, params_.rd_victim_prob_2});
      } else {
        candidates.push_back({base - 1, params_.rd_victim_prob_1});
        candidates.push_back({base + 1, params_.rd_victim_prob_1});
        candidates.push_back({base - 2, params_.rd_victim_prob_2});
        candidates.push_back({base + 2, params_.rd_victim_prob_2});
      }
      std::vector<std::uint32_t> victims;
      for (const Candidate& c : candidates) {
        if (rng.Bernoulli(c.prob)) victims.push_back(c.row);
      }
      // Sustained hammering eventually flips the near victims regardless of
      // the per-cell draw; keep >= 3 victim rows so the footprint stays a
      // recognizable tight cluster.
      for (const Candidate& c : candidates) {
        if (victims.size() >= 3) break;
        if (std::find(victims.begin(), victims.end(), c.row) == victims.end()) {
          victims.push_back(c.row);
        }
      }
      // Escalation order follows accumulated disturbance: victims nearest
      // the aggressors cross their flip threshold first.
      for (std::uint32_t victim : victims) {
        plan.uer_rows.push_back(RowErrors{victim, SampleCols(rng)});
      }
      break;
    }
  }

  // Ambient CE rows. Clustered faults leak correctable noise near the fault
  // region; infrastructure faults (scattered / column) leak it bank-wide.
  const auto ce_count = static_cast<std::size_t>(rng.Poisson(ce_rows_mean));
  const bool bank_wide_noise = shape == PatternShape::kScattered ||
                               shape == PatternShape::kWholeColumn ||
                               shape == PatternShape::kCeOnly;
  for (std::size_t i = 0; i < ce_count; ++i) {
    std::uint32_t row;
    if (bank_wide_noise || plan.uer_rows.empty()) {
      row = static_cast<std::uint32_t>(rng.UniformU64(rows));
    } else {
      // Near a random UER row, within ~4x the typical cluster width.
      const RowErrors& anchor = plan.uer_rows[static_cast<std::size_t>(
          rng.UniformU64(plan.uer_rows.size()))];
      const double offset = rng.Normal(0.0, 64.0);
      row = ClampRow(static_cast<std::int64_t>(anchor.row) +
                     static_cast<std::int64_t>(std::llround(offset)));
    }
    plan.ce_rows.push_back(RowErrors{row, SampleCols(rng)});
  }
  return plan;
}

}  // namespace cordial::hbm
