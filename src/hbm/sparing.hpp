// Sparing-resource model (row sparing and bank sparing).
//
// §I/§II-C of the paper: row sparing remaps a failing row onto a spare row
// within the bank at low cost; bank sparing retires a whole bank and is far
// more expensive in redundancy. Cordial's isolation policy spends these
// resources; this ledger tracks what was spent and what is isolated, and is
// what the Isolation Coverage Rate evaluation queries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cordial::hbm {

struct SparingBudget {
  /// Rows that can be spared (hardware spares + page offlining) per bank.
  std::uint32_t rows_per_bank = 256;
  /// Whether bank sparing is available at all.
  bool bank_sparing_available = true;
  /// Cost accounting: abstract units; a bank spare costs this many row units.
  double row_spare_cost = 1.0;
  double bank_spare_cost = 512.0;
};

/// Tracks isolation decisions across the fleet, keyed by the AddressCodec's
/// global bank key. Idempotent: re-sparing an already-spared row/bank is a
/// no-op that costs nothing.
class SparingLedger {
 public:
  explicit SparingLedger(SparingBudget budget = {}) : budget_(budget) {}

  const SparingBudget& budget() const { return budget_; }

  /// Spare one row. Returns false if the per-bank budget is exhausted.
  bool TrySpareRow(std::uint64_t bank_key, std::uint32_t row);

  /// Spare a whole bank. Returns false if bank sparing is unavailable.
  bool TrySpareBank(std::uint64_t bank_key);

  bool IsRowSpared(std::uint64_t bank_key, std::uint32_t row) const;
  bool IsBankSpared(std::uint64_t bank_key) const;

  /// A row is isolated if it was row-spared or its bank was bank-spared.
  bool IsRowIsolated(std::uint64_t bank_key, std::uint32_t row) const {
    return IsBankSpared(bank_key) || IsRowSpared(bank_key, row);
  }

  std::uint64_t rows_spared() const { return rows_spared_; }
  std::uint64_t banks_spared() const { return banks_spared_; }

  /// Serialize budget + spared state as a token stream. Keys and rows are
  /// emitted sorted, so ledgers holding equal state serialize identically
  /// regardless of insertion order.
  void Save(std::ostream& out) const;
  /// Rebuild a ledger from a Save stream. Throws ParseError on malformed
  /// input.
  static SparingLedger Load(std::istream& in);

  // --- per-bank slicing (delta / binary checkpoints) ----------------------
  // The engine's binary state codec carries this ledger sliced per bank:
  // each bank blob holds that bank's section, the state header holds the
  // budget and global counters. A section distinguishes "no row entry" from
  // "an entry with zero rows" — TrySpareRow creates an empty entry when
  // rows_per_bank is 0, and the text Save lists such entries, so the
  // distinction must survive a binary round trip for byte-identity.

  /// The bank's spared-row entry, or nullptr when none exists.
  const std::unordered_set<std::uint32_t>* FindRowEntry(
      std::uint64_t bank_key) const;

  /// Overwrite one bank's section: replace (or erase, when !has_row_entry)
  /// its spared-row entry and set its bank-spared membership. Global
  /// counters are not touched — restore them once via RestoreCounters.
  void RestoreBankSection(std::uint64_t bank_key, bool has_row_entry,
                          const std::vector<std::uint32_t>& rows,
                          bool bank_spared);

  /// Overwrite the global spend counters (checkpoint restore only).
  void RestoreCounters(std::uint64_t rows_spared, std::uint64_t banks_spared);
  double total_cost() const {
    return static_cast<double>(rows_spared_) * budget_.row_spare_cost +
           static_cast<double>(banks_spared_) * budget_.bank_spare_cost;
  }

 private:
  SparingBudget budget_;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint32_t>>
      spared_rows_;
  std::unordered_set<std::uint64_t> spared_banks_;
  std::uint64_t rows_spared_ = 0;
  std::uint64_t banks_spared_ = 0;
};

}  // namespace cordial::hbm
