// Cell-level bank simulation.
//
// The fleet generator works at event level for scale; this module provides
// the bit-level ground truth underneath it: a bank whose words carry
// planted stuck-at faults, serviced through the SEC-DED codec, with the
// patrol scrubber racing demand accesses for detection. It demonstrates —
// and the tests verify — that the CE/UEO/UER taxonomy used throughout the
// library is exactly what the hardware path produces:
//
//   1 faulty bit   -> corrected in-line            -> CE
//   >=2 faulty bits, scrubber finds it first       -> UEO
//   >=2 faulty bits, demand access consumes it     -> UER
//   >=3 faulty bits may alias the code             -> silent corruption
//                                                     (counted separately)
//
// Read disturbance (RowHammer) rides the same pipeline: ActivateRow
// accumulates activation pressure on the neighbours of a hammered row, and
// once a victim's disturbance crosses its flip threshold the flipped cell is
// planted as a stuck bit — from there ECC, scrubbing and demand reads treat
// it exactly like any other fault, so a hammered victim escalates CE -> UER
// as its second bit flips.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hbm/ecc.hpp"
#include "hbm/scrub.hpp"
#include "hbm/topology.hpp"

namespace cordial::hbm {

/// One detected error, as the memory controller would log it.
struct SimFinding {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double time_s = 0.0;
  ErrorType type = ErrorType::kCe;
};

/// Read-disturb susceptibility, calibrated against Olgun et al.'s HBM2
/// RowHammer characterization: the first victim cell flips after ~12.5k
/// activations of an adjacent aggressor, and distance-2 victims need
/// several times that pressure. Per-victim thresholds get a deterministic
/// +/-25% cell-variation jitter.
struct ReadDisturbParams {
  std::uint64_t first_flip_activations = 12500;
  std::uint64_t second_flip_activations = 35000;
  /// Distance-2 victims see this fraction of the disturbance a distance-1
  /// victim accumulates from the same aggressor (blast-radius decay).
  double distance2_weight = 0.25;
};

class BankSimulator {
 public:
  explicit BankSimulator(const TopologyConfig& topology,
                         PatrolScrubber scrubber = PatrolScrubber());

  /// Plant a stuck-at fault: codeword bit `bit` (0..71) of word (row, col)
  /// reads inverted from `since_s` onward. Idempotent per (word, bit).
  void InjectStuckBit(std::uint32_t row, std::uint32_t col, int bit,
                      double since_s);

  /// Faulty bits active in a word at `time_s`.
  int FaultyBits(std::uint32_t row, std::uint32_t col, double time_s) const;

  /// The data a fault-free word holds (deterministic per address).
  static std::uint64_t GoldenData(std::uint32_t row, std::uint32_t col);

  struct ReadResult {
    std::uint64_t data = 0;           ///< data returned to the requester
    bool data_correct = true;         ///< equals the golden data?
    std::optional<SimFinding> finding;  ///< logged error, if any
  };

  /// Demand read at `time_s`: decodes through SEC-DED, logs CE for a
  /// corrected single-bit fault and UER for a detected-uncorrectable one.
  /// Undetected aliasing returns wrong data with data_correct == false and
  /// bumps silent_corruptions().
  ReadResult Read(std::uint32_t row, std::uint32_t col, double time_s);

  /// Run one full patrol sweep completing at `time_s`: every faulty word is
  /// examined; newly-degraded words are logged (CE for single-bit, UEO for
  /// uncorrectable). A word is re-reported only after its fault population
  /// grows.
  std::vector<SimFinding> Scrub(double time_s);

  /// Whether the scrubber would discover a fault arising at `fault_t`
  /// before a demand access `access_delay` seconds later.
  bool ScrubWinsRace(double fault_t, double access_delay) const {
    return scrubber_.ScrubWinsRace(fault_t, access_delay);
  }

  /// Record `count` activations of aggressor `row` ending at `time_s`.
  /// Victims at +/-1 and +/-2 rows accumulate disturbance; crossing the
  /// first threshold plants a single stuck bit (CE on read), crossing the
  /// second plants another bit in the same word (UER on demand read).
  void ActivateRow(std::uint32_t row, std::uint64_t count, double time_s);

  /// Refresh restores every cell's charge, resetting all accumulated
  /// disturbance. Bits that already flipped stay flipped: the corrupted
  /// value is what gets refreshed.
  void Refresh();

  /// Activations recorded against `row` since the last Refresh().
  std::uint64_t ActivationCount(std::uint32_t row) const;

  /// Stuck bits planted by read disturbance so far.
  std::uint64_t disturb_flips() const { return disturb_flips_; }

  void SetReadDisturbParams(ReadDisturbParams params) { disturb_ = params; }
  const ReadDisturbParams& read_disturb_params() const { return disturb_; }

  std::uint64_t silent_corruptions() const { return silent_corruptions_; }
  std::size_t faulty_words() const { return words_.size(); }

 private:
  struct StuckBit {
    int bit;
    double since_s;
  };
  struct WordState {
    std::vector<StuckBit> bits;
    int last_reported_bits = 0;  ///< fault count at last scrub report
  };

  SecDedCodec::Codeword ReadRaw(std::uint32_t row, std::uint32_t col,
                                double time_s) const;

  /// Disturbance accumulated on `victim` from its hammered neighbours.
  double DisturbanceOn(std::uint32_t victim) const;
  /// Re-check `victim` against its flip thresholds, planting stuck bits.
  void MaybeFlipVictim(std::uint32_t victim, double time_s);

  TopologyConfig topology_;
  PatrolScrubber scrubber_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, WordState> words_;
  std::uint64_t silent_corruptions_ = 0;

  ReadDisturbParams disturb_;
  std::map<std::uint32_t, std::uint64_t> activations_;  // since last refresh
  std::map<std::uint32_t, int> victim_flips_;           // bits planted, 0..2
  std::uint64_t disturb_flips_ = 0;
};

}  // namespace cordial::hbm
