#include "analysis/locality.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "hbm/ecc.hpp"

namespace cordial::analysis {

std::vector<std::uint32_t> DefaultLocalityThresholds() {
  return {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048};
}

namespace {

/// Distinct UER rows of a bank in first-failure order.
std::vector<std::uint32_t> UerRowsInOrder(const trace::BankHistory& bank) {
  std::vector<std::uint32_t> rows;
  for (const trace::MceRecord& r : bank.events) {
    if (r.type != hbm::ErrorType::kUer) continue;
    if (std::find(rows.begin(), rows.end(), r.address.row) == rows.end()) {
      rows.push_back(r.address.row);
    }
  }
  return rows;
}

/// Number of distinct rows within `d` of any row in `rows` (union of
/// clamped intervals [r-d, r+d]).
std::uint64_t NeighborhoodSize(std::vector<std::uint32_t> rows, std::uint32_t d,
                               std::uint32_t rows_per_bank) {
  std::sort(rows.begin(), rows.end());
  std::uint64_t total = 0;
  std::int64_t cover_end = -1;  // last covered row so far
  for (std::uint32_t r : rows) {
    const std::int64_t lo =
        std::max<std::int64_t>(0, static_cast<std::int64_t>(r) - d);
    const std::int64_t hi = std::min<std::int64_t>(
        static_cast<std::int64_t>(rows_per_bank) - 1,
        static_cast<std::int64_t>(r) + d);
    const std::int64_t start = std::max(lo, cover_end + 1);
    if (hi >= start) total += static_cast<std::uint64_t>(hi - start + 1);
    cover_end = std::max(cover_end, hi);
  }
  return total;
}

}  // namespace

std::vector<LocalitySweepPoint> ComputeLocalitySweep(
    const std::vector<trace::BankHistory>& banks,
    const hbm::TopologyConfig& topology,
    const std::vector<std::uint32_t>& thresholds) {
  CORDIAL_CHECK_MSG(!thresholds.empty(), "locality sweep needs thresholds");

  std::vector<LocalitySweepPoint> sweep(thresholds.size());
  // 2x2 cells per threshold: [near/far] x [uer/not].
  std::vector<double> near_uer(thresholds.size(), 0.0);
  std::vector<double> far_uer(thresholds.size(), 0.0);
  std::vector<double> near_total(thresholds.size(), 0.0);
  std::uint64_t rows_considered = 0;

  for (const trace::BankHistory& bank : banks) {
    const std::vector<std::uint32_t> uer_rows = UerRowsInOrder(bank);
    if (uer_rows.size() < 2) continue;
    rows_considered += topology.rows_per_bank;

    for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
      const std::uint32_t d = thresholds[ti];
      // Subsequent rows judged against the rows that failed before them.
      for (std::size_t i = 1; i < uer_rows.size(); ++i) {
        bool near = false;
        for (std::size_t j = 0; j < i; ++j) {
          const auto dist = static_cast<std::uint32_t>(
              std::abs(static_cast<std::int64_t>(uer_rows[i]) -
                       static_cast<std::int64_t>(uer_rows[j])));
          if (dist <= d) {
            near = true;
            break;
          }
        }
        if (near) {
          near_uer[ti] += 1.0;
        } else {
          far_uer[ti] += 1.0;
        }
      }
      near_total[ti] += static_cast<double>(
          NeighborhoodSize(uer_rows, d, topology.rows_per_bank));
    }
  }

  for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
    LocalitySweepPoint& pt = sweep[ti];
    pt.threshold = thresholds[ti];
    pt.captured = static_cast<std::uint64_t>(near_uer[ti]);
    pt.subsequent_total =
        static_cast<std::uint64_t>(near_uer[ti] + far_uer[ti]);
    if (rows_considered == 0) continue;
    const double a = near_uer[ti];
    const double b = far_uer[ti];
    const double c = std::max(0.0, near_total[ti] - a);
    const double dd = std::max(
        0.0, static_cast<double>(rows_considered) - near_total[ti] - b);
    if (a + b == 0.0 || c + dd == 0.0) continue;
    pt.chi_square = ChiSquare2x2(a, b, c, dd);
    pt.p_value = ChiSquarePValue(std::max(pt.chi_square, 0.0), 1.0);
  }
  return sweep;
}

std::uint32_t PeakThreshold(const std::vector<LocalitySweepPoint>& sweep) {
  CORDIAL_CHECK_MSG(!sweep.empty(), "empty locality sweep");
  const auto it = std::max_element(
      sweep.begin(), sweep.end(),
      [](const LocalitySweepPoint& a, const LocalitySweepPoint& b) {
        return a.chi_square < b.chi_square;
      });
  return it->threshold;
}

}  // namespace cordial::analysis
