// Markdown study report: one call renders every empirical analysis of the
// paper (Tables I/II, Fig 3(a)/(b), Fig 4) for an arbitrary MCE log — the
// artifact a reliability team would attach to a fleet-health review.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "hbm/topology.hpp"
#include "trace/error_log.hpp"

namespace cordial::analysis {

struct ReportOptions {
  /// Example error maps rendered per detected pattern shape.
  std::size_t example_maps_per_shape = 1;
  /// Error-map render size.
  std::size_t map_height = 20;
  std::size_t map_width = 56;
  /// Title of the generated document.
  std::string title = "HBM fleet error study";
};

/// Render the full study as Markdown. The log need not be sorted; a sorted
/// copy is used internally.
void WriteStudyReport(const trace::ErrorLog& log,
                      const hbm::TopologyConfig& topology, std::ostream& out,
                      const ReportOptions& options = {});

}  // namespace cordial::analysis
