// Empirical-study computations over an MCE log: the sudden-UER accounting of
// Table I, the entity-count summary of Table II, and the pattern-mix
// distribution of Fig 3(b).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/labeler.hpp"
#include "hbm/address.hpp"
#include "trace/error_log.hpp"
#include "trace/fleet.hpp"

namespace cordial::analysis {

/// One row of Table I.
struct SuddenUerRow {
  hbm::Level level;
  std::uint64_t sudden = 0;      ///< UER entities with no prior CE/UEO inside
  std::uint64_t non_sudden = 0;  ///< UER entities with an in-entity precursor
  double PredictableRatio() const {
    const std::uint64_t total = sudden + non_sudden;
    return total == 0 ? 0.0
                      : static_cast<double>(non_sudden) /
                            static_cast<double>(total);
  }
};

/// One row of Table II.
struct DatasetSummaryRow {
  hbm::Level level;
  std::uint64_t with_ce = 0;
  std::uint64_t with_ueo = 0;
  std::uint64_t with_uer = 0;
  std::uint64_t total = 0;  ///< entities with any error
};

/// Table I: per-level sudden vs non-sudden UER entity counts. An entity is
/// non-sudden ("in-row predictable" at that granularity) iff some CE or UEO
/// occurred inside it strictly before its first UER. Requires a time-sorted
/// log.
std::vector<SuddenUerRow> ComputeSuddenUerStudy(const trace::ErrorLog& log,
                                                const hbm::AddressCodec& codec);

/// Table II: per-level counts of entities with CE / UEO / UER / any error.
std::vector<DatasetSummaryRow> ComputeDatasetSummary(
    const trace::ErrorLog& log, const hbm::AddressCodec& codec);

/// Fig 3(b): pattern-shape mix over UER banks, as labelled by the rule-based
/// labeler from the complete log.
struct PatternDistribution {
  std::map<hbm::PatternShape, std::uint64_t> counts;
  std::uint64_t total_uer_banks = 0;
  double Fraction(hbm::PatternShape shape) const;
};

PatternDistribution ComputePatternDistribution(
    const std::vector<trace::BankHistory>& banks,
    const PatternLabeler& labeler);

/// Labeler-vs-ground-truth agreement rate over the generated fleet's UER
/// banks (a fidelity diagnostic; not part of the paper's tables).
double LabelerAgreement(const trace::GeneratedFleet& fleet,
                        const PatternLabeler& labeler);

}  // namespace cordial::analysis
