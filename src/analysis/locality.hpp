// Cross-row UER locality study (paper §III-C, Fig 4).
//
// For each candidate row-distance threshold d, build the 2x2 contingency
// "row is within d of an earlier UER row" x "row raised a UER" over all UER
// banks, and compute the chi-square statistic of independence. Small d
// misses cluster mates (low capture); large d dilutes the neighbourhood
// with healthy rows; the statistic peaks at the characteristic cluster
// scale — 128 rows in the paper, which the default generator calibration
// reproduces.
#pragma once

#include <cstdint>
#include <vector>

#include "hbm/topology.hpp"
#include "trace/error_log.hpp"

namespace cordial::analysis {

struct LocalitySweepPoint {
  std::uint32_t threshold = 0;
  double chi_square = 0.0;
  double p_value = 1.0;
  /// Subsequent UER rows that fell within `threshold` of an earlier UER row.
  std::uint64_t captured = 0;
  /// All subsequent (non-first) distinct UER rows considered.
  std::uint64_t subsequent_total = 0;
  double CaptureRate() const {
    return subsequent_total == 0
               ? 0.0
               : static_cast<double>(captured) /
                     static_cast<double>(subsequent_total);
  }
};

/// The paper sweeps thresholds 4..2048 (powers of two).
std::vector<std::uint32_t> DefaultLocalityThresholds();

/// Sweep the chi-square statistic over thresholds. Banks without at least
/// two distinct UER rows contribute nothing.
std::vector<LocalitySweepPoint> ComputeLocalitySweep(
    const std::vector<trace::BankHistory>& banks,
    const hbm::TopologyConfig& topology,
    const std::vector<std::uint32_t>& thresholds);

/// Threshold with the maximal chi-square statistic.
std::uint32_t PeakThreshold(const std::vector<LocalitySweepPoint>& sweep);

}  // namespace cordial::analysis
