#include "analysis/report.hpp"

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/empirical.hpp"
#include "analysis/labeler.hpp"
#include "analysis/locality.hpp"
#include "common/table.hpp"
#include "hbm/address.hpp"
#include "hbm/error_map.hpp"

namespace cordial::analysis {

namespace {

void MarkdownRow(std::ostream& out, const std::vector<std::string>& cells) {
  out << '|';
  for (const std::string& cell : cells) out << ' ' << cell << " |";
  out << '\n';
}

void MarkdownHeader(std::ostream& out, const std::vector<std::string>& cells) {
  MarkdownRow(out, cells);
  out << '|';
  for (std::size_t i = 0; i < cells.size(); ++i) out << "---|";
  out << '\n';
}

}  // namespace

void WriteStudyReport(const trace::ErrorLog& log,
                      const hbm::TopologyConfig& topology, std::ostream& out,
                      const ReportOptions& options) {
  trace::ErrorLog sorted = log;
  sorted.Sort();
  hbm::AddressCodec codec(topology);
  const auto banks = sorted.GroupByBank(codec);

  out << "# " << options.title << "\n\n"
      << "- records: " << sorted.size() << "\n"
      << "- faulty banks: " << banks.size() << "\n"
      << "- topology: " << topology.ToString() << "\n\n";

  // --- Table I ---
  out << "## Sudden vs non-sudden UERs by micro-level\n\n";
  MarkdownHeader(out, {"Micro-level", "Sudden UER", "Non-sudden UER",
                       "Predictable Ratio"});
  for (const SuddenUerRow& row : ComputeSuddenUerStudy(sorted, codec)) {
    MarkdownRow(out, {hbm::LevelName(row.level), std::to_string(row.sudden),
                      std::to_string(row.non_sudden),
                      TextTable::FormatPercent(row.PredictableRatio())});
  }
  out << "\nThe collapse toward the row level is what makes in-row "
         "prediction impractical and motivates cross-row prediction.\n\n";

  // --- Table II ---
  out << "## Dataset summary\n\n";
  MarkdownHeader(out, {"Micro-level", "With CE", "With UEO", "With UER",
                       "Total"});
  for (const DatasetSummaryRow& row : ComputeDatasetSummary(sorted, codec)) {
    MarkdownRow(out, {hbm::LevelName(row.level), std::to_string(row.with_ce),
                      std::to_string(row.with_ueo),
                      std::to_string(row.with_uer),
                      std::to_string(row.total)});
  }
  out << '\n';

  // --- Fig 3(b) ---
  PatternLabeler labeler(topology);
  const PatternDistribution dist = ComputePatternDistribution(banks, labeler);
  out << "## Failure pattern distribution (" << dist.total_uer_banks
      << " UER banks)\n\n";
  MarkdownHeader(out, {"Pattern", "Banks", "Share"});
  for (const auto& [shape, count] : dist.counts) {
    MarkdownRow(out, {hbm::PatternShapeName(shape), std::to_string(count),
                      TextTable::FormatPercent(dist.Fraction(shape))});
  }
  out << '\n';

  // --- Fig 4 ---
  out << "## Cross-row locality\n\n";
  const auto sweep =
      ComputeLocalitySweep(banks, topology, DefaultLocalityThresholds());
  MarkdownHeader(out, {"Distance threshold", "Chi-square", "Capture rate"});
  for (const LocalitySweepPoint& pt : sweep) {
    MarkdownRow(out, {std::to_string(pt.threshold),
                      TextTable::FormatDouble(pt.chi_square, 1),
                      TextTable::FormatPercent(pt.CaptureRate())});
  }
  bool any_pairs = false;
  for (const LocalitySweepPoint& pt : sweep) {
    any_pairs = any_pairs || pt.subsequent_total > 0;
  }
  if (any_pairs) {
    out << "\nPeak significance at a **" << PeakThreshold(sweep)
        << "-row** distance threshold.\n\n";
  } else {
    out << "\nNo banks with two or more UER rows — locality not "
           "measurable.\n\n";
  }

  // --- Fig 3(a) style examples ---
  if (options.example_maps_per_shape > 0) {
    out << "## Example bank error maps\n\n"
           "Legend: `.` clean, `c` CE, `o` UEO, `X` UER.\n\n";
    std::map<hbm::PatternShape, std::size_t> rendered;
    for (const trace::BankHistory& bank : banks) {
      const hbm::PatternShape shape = labeler.LabelShape(bank);
      if (shape == hbm::PatternShape::kCeOnly) continue;
      if (rendered[shape] >= options.example_maps_per_shape) continue;
      ++rendered[shape];
      hbm::BankErrorMap map(topology);
      for (const trace::MceRecord& r : bank.events) {
        map.Add(r.address.row, r.address.col, r.type);
      }
      out << "### " << hbm::PatternShapeName(shape) << " (bank "
          << bank.bank_key << ")\n\n```\n"
          << map.Render(options.map_height, options.map_width) << "```\n\n";
    }
  }
}

}  // namespace cordial::analysis
