// Rule-based failure-pattern labeler.
//
// Given the *complete* set of UER observations for a bank (hindsight, not
// prediction), assigns the ground-truth pattern shape using geometric rules:
// row clustering via gap-splitting, the half-bank aliasing check for half
// total-row clusters, and the single-column / row-spread check for whole
// column failures. The empirical-study benches use it to reproduce Fig 3(b)
// from raw logs, and tests validate it against the generator's planted truth.
#pragma once

#include <cstdint>
#include <vector>

#include "hbm/fault.hpp"
#include "hbm/topology.hpp"
#include "trace/error_log.hpp"

namespace cordial::analysis {

struct LabelerParams {
  /// Rows closer than this belong to one cluster.
  std::uint32_t cluster_gap = 1024;
  /// Tolerance around rows/2 for the half-total aliasing check.
  std::uint32_t half_gap_tolerance = 1024;
  /// Whole-column rule: at least this many UER rows, all in one column,
  /// spanning at least this fraction of the bank's rows.
  std::size_t column_min_rows = 10;
  double column_min_span = 0.5;

  /// Opt-in read-disturb rule, checked before the cluster rules: a single
  /// tight victim cluster (at least min_rows rows, total span <= max_span,
  /// every inter-row gap <= max_gap) is labeled kReadDisturb. Off by
  /// default so fleets without hammering keep the paper's five-shape
  /// labeling bit-for-bit (a tight SWD cluster stays kSingleRowCluster).
  bool detect_read_disturb = false;
  std::size_t read_disturb_min_rows = 3;
  std::uint32_t read_disturb_max_span = 6;
  std::uint32_t read_disturb_max_gap = 2;
};

class PatternLabeler {
 public:
  explicit PatternLabeler(const hbm::TopologyConfig& topology,
                          LabelerParams params = {});

  /// Shape from distinct UER (row, col) observations. `rows`/`cols` are
  /// parallel; at least one observation required.
  hbm::PatternShape LabelShape(const std::vector<std::uint32_t>& rows,
                               const std::vector<std::uint32_t>& cols) const;

  /// Convenience: label a bank history (uses its UER events). Banks without
  /// UERs are CE-only.
  hbm::PatternShape LabelShape(const trace::BankHistory& bank) const;

  /// Collapsed three-way class, as used by the classifier.
  hbm::FailureClass LabelClass(const trace::BankHistory& bank) const;

  /// Contiguous clusters (start row, end row inclusive) after gap-splitting
  /// the sorted distinct rows. Exposed for tests and diagnostics.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> Clusters(
      std::vector<std::uint32_t> rows) const;

 private:
  hbm::TopologyConfig topology_;
  LabelerParams params_;
};

}  // namespace cordial::analysis
