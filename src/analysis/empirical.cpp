#include "analysis/empirical.hpp"

#include <unordered_map>

#include "common/check.hpp"

namespace cordial::analysis {

using hbm::ErrorType;
using hbm::Level;

namespace {

struct EntityState {
  bool has_ce = false;
  bool has_ueo = false;
  bool has_uer = false;
  /// CE/UEO seen before the entity's first UER.
  bool precursor_before_uer = false;
};

}  // namespace

std::vector<SuddenUerRow> ComputeSuddenUerStudy(
    const trace::ErrorLog& log, const hbm::AddressCodec& codec) {
  // One state map per level; the log walk must be time-ordered for the
  // "before first UER" semantics to hold.
  std::vector<std::unordered_map<std::uint64_t, EntityState>> states(
      std::size(hbm::kAllLevels));

  double last_t = -1.0;
  for (const trace::MceRecord& r : log.records()) {
    CORDIAL_CHECK_MSG(r.time_s >= last_t, "sudden-UER study requires a "
                                          "time-sorted log");
    last_t = r.time_s;
    for (std::size_t li = 0; li < std::size(hbm::kAllLevels); ++li) {
      const std::uint64_t key = codec.EntityKey(r.address, hbm::kAllLevels[li]);
      EntityState& s = states[li][key];
      if (r.type == ErrorType::kUer) {
        if (!s.has_uer) {
          s.has_uer = true;
          s.precursor_before_uer = s.has_ce || s.has_ueo;
        }
      } else if (r.type == ErrorType::kCe) {
        s.has_ce = true;
      } else {
        s.has_ueo = true;
      }
    }
  }

  std::vector<SuddenUerRow> rows;
  for (std::size_t li = 0; li < std::size(hbm::kAllLevels); ++li) {
    SuddenUerRow row;
    row.level = hbm::kAllLevels[li];
    for (const auto& [key, s] : states[li]) {
      if (!s.has_uer) continue;
      if (s.precursor_before_uer) {
        ++row.non_sudden;
      } else {
        ++row.sudden;
      }
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<DatasetSummaryRow> ComputeDatasetSummary(
    const trace::ErrorLog& log, const hbm::AddressCodec& codec) {
  std::vector<std::unordered_map<std::uint64_t, EntityState>> states(
      std::size(hbm::kAllLevels));
  for (const trace::MceRecord& r : log.records()) {
    for (std::size_t li = 0; li < std::size(hbm::kAllLevels); ++li) {
      const std::uint64_t key = codec.EntityKey(r.address, hbm::kAllLevels[li]);
      EntityState& s = states[li][key];
      if (r.type == ErrorType::kCe) s.has_ce = true;
      if (r.type == ErrorType::kUeo) s.has_ueo = true;
      if (r.type == ErrorType::kUer) s.has_uer = true;
    }
  }
  std::vector<DatasetSummaryRow> rows;
  for (std::size_t li = 0; li < std::size(hbm::kAllLevels); ++li) {
    DatasetSummaryRow row;
    row.level = hbm::kAllLevels[li];
    for (const auto& [key, s] : states[li]) {
      if (s.has_ce) ++row.with_ce;
      if (s.has_ueo) ++row.with_ueo;
      if (s.has_uer) ++row.with_uer;
      ++row.total;
    }
    rows.push_back(row);
  }
  return rows;
}

double PatternDistribution::Fraction(hbm::PatternShape shape) const {
  if (total_uer_banks == 0) return 0.0;
  auto it = counts.find(shape);
  return it == counts.end() ? 0.0
                            : static_cast<double>(it->second) /
                                  static_cast<double>(total_uer_banks);
}

PatternDistribution ComputePatternDistribution(
    const std::vector<trace::BankHistory>& banks,
    const PatternLabeler& labeler) {
  PatternDistribution dist;
  for (const trace::BankHistory& bank : banks) {
    const hbm::PatternShape shape = labeler.LabelShape(bank);
    if (shape == hbm::PatternShape::kCeOnly) continue;
    ++dist.counts[shape];
    ++dist.total_uer_banks;
  }
  return dist;
}

double LabelerAgreement(const trace::GeneratedFleet& fleet,
                        const PatternLabeler& labeler) {
  hbm::AddressCodec codec(fleet.topology);
  const auto banks = fleet.log.GroupByBank(codec);
  std::uint64_t total = 0, agree = 0;
  for (const trace::BankHistory& bank : banks) {
    const trace::BankTruth* truth = fleet.FindBank(bank.bank_key);
    if (truth == nullptr || truth->planned_uer_rows.empty()) continue;
    if (!bank.HasUer()) continue;
    ++total;
    // Compare at class granularity: the operationally-relevant label.
    const auto labeled = hbm::CollapseToClass(labeler.LabelShape(bank));
    if (labeled.has_value() && truth->failure_class.has_value() &&
        *labeled == *truth->failure_class) {
      ++agree;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace cordial::analysis
