#include "analysis/labeler.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace cordial::analysis {

using hbm::FailureClass;
using hbm::PatternShape;

PatternLabeler::PatternLabeler(const hbm::TopologyConfig& topology,
                               LabelerParams params)
    : topology_(topology), params_(params) {
  topology_.Validate();
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> PatternLabeler::Clusters(
    std::vector<std::uint32_t> rows) const {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> clusters;
  for (std::uint32_t row : rows) {
    if (!clusters.empty() && row - clusters.back().second <= params_.cluster_gap) {
      clusters.back().second = row;
    } else {
      clusters.emplace_back(row, row);
    }
  }
  return clusters;
}

hbm::PatternShape PatternLabeler::LabelShape(
    const std::vector<std::uint32_t>& rows,
    const std::vector<std::uint32_t>& cols) const {
  CORDIAL_CHECK_MSG(!rows.empty(), "labeler requires at least one UER row");
  CORDIAL_CHECK_MSG(rows.size() == cols.size(),
                    "labeler rows/cols must be parallel");

  // Whole-column rule first: many rows, one column, wide row span.
  std::set<std::uint32_t> distinct_cols(cols.begin(), cols.end());
  std::vector<std::uint32_t> distinct_rows(rows);
  std::sort(distinct_rows.begin(), distinct_rows.end());
  distinct_rows.erase(
      std::unique(distinct_rows.begin(), distinct_rows.end()),
      distinct_rows.end());
  if (distinct_cols.size() == 1 &&
      distinct_rows.size() >= params_.column_min_rows) {
    const double span = static_cast<double>(distinct_rows.back() -
                                            distinct_rows.front()) /
                        static_cast<double>(topology_.rows_per_bank);
    if (span >= params_.column_min_span) return PatternShape::kWholeColumn;
  }

  // Read-disturb rule (opt-in): the blast radius around hammered aggressors
  // is a single cluster of near-adjacent victims, orders of magnitude
  // tighter than an SWD strip (whose rows sit a 32/64-row stride apart).
  if (params_.detect_read_disturb &&
      distinct_rows.size() >= params_.read_disturb_min_rows &&
      distinct_rows.back() - distinct_rows.front() <=
          params_.read_disturb_max_span) {
    bool tight = true;
    for (std::size_t i = 1; i < distinct_rows.size(); ++i) {
      if (distinct_rows[i] - distinct_rows[i - 1] >
          params_.read_disturb_max_gap) {
        tight = false;
        break;
      }
    }
    if (tight) return PatternShape::kReadDisturb;
  }

  const auto clusters = Clusters(distinct_rows);
  if (clusters.size() == 1) return PatternShape::kSingleRowCluster;
  if (clusters.size() == 2) {
    const std::uint32_t gap_lo = clusters[1].first - clusters[0].second;
    const std::uint32_t half = topology_.rows_per_bank / 2;
    // Compare cluster *centers* against the half-bank alias distance.
    const std::uint32_t c0 = (clusters[0].first + clusters[0].second) / 2;
    const std::uint32_t c1 = (clusters[1].first + clusters[1].second) / 2;
    const std::uint32_t center_gap = c1 - c0;
    const std::uint32_t tol = params_.half_gap_tolerance;
    if (center_gap + tol >= half && center_gap <= half + tol) {
      return PatternShape::kHalfTotalRowCluster;
    }
    (void)gap_lo;
    return PatternShape::kDoubleRowCluster;
  }
  return PatternShape::kScattered;
}

hbm::PatternShape PatternLabeler::LabelShape(
    const trace::BankHistory& bank) const {
  std::vector<std::uint32_t> rows, cols;
  for (const trace::MceRecord& r : bank.events) {
    if (r.type != hbm::ErrorType::kUer) continue;
    rows.push_back(r.address.row);
    cols.push_back(r.address.col);
  }
  if (rows.empty()) return PatternShape::kCeOnly;
  return LabelShape(rows, cols);
}

hbm::FailureClass PatternLabeler::LabelClass(
    const trace::BankHistory& bank) const {
  const PatternShape shape = LabelShape(bank);
  const auto cls = hbm::CollapseToClass(shape);
  CORDIAL_CHECK_MSG(cls.has_value(), "cannot class-label a CE-only bank");
  return *cls;
}

}  // namespace cordial::analysis
