#include "net/ingest_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"

namespace cordial::net {

IngestServer::IngestServer(serve::FleetServer& fleet,
                           IngestServerConfig config)
    : fleet_(fleet), config_(std::move(config)) {
  connections_opened_ = &metrics_.GetCounter(
      "cordial_net_connections_opened_total", "Ingest connections accepted");
  connections_refused_ = &metrics_.GetCounter(
      "cordial_net_connections_refused_total",
      "Connections closed at accept because the connection cap was reached");
  frames_ = &metrics_.GetCounter("cordial_net_frames_total",
                                 "Complete wire frames decoded");
  records_accepted_ =
      &metrics_.GetCounter("cordial_net_records_total",
                           "MCE records accepted into the fleet server");
  batches_acked_ =
      &metrics_.GetCounter("cordial_net_batches_acked_total",
                           "Batch frames fully accepted and acked");
  batches_rejected_ = &metrics_.GetCounter(
      "cordial_net_batches_rejected_total",
      "Batch frames rejected (backpressure or protocol error)");
  protocol_errors_ = &metrics_.GetCounter(
      "cordial_net_protocol_errors_total",
      "Connections dropped for malformed frames or bad sequences");
  idle_closed_ = &metrics_.GetCounter(
      "cordial_net_idle_closed_total",
      "Connections closed by the per-connection idle timeout");
  bytes_read_ = &metrics_.GetCounter("cordial_net_bytes_read_total",
                                     "Bytes read from ingest connections");
  bytes_written_ = &metrics_.GetCounter(
      "cordial_net_bytes_written_total", "Bytes written to ingest connections");
  connections_active_ = &metrics_.GetGauge("cordial_net_connections_active",
                                           "Currently open ingest connections");
}

IngestServer::~IngestServer() { Stop(); }

void IngestServer::Start() {
  CORDIAL_CHECK_MSG(!started_, "ingest server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CORDIAL_CHECK_MSG(listen_fd_ >= 0, "ingest server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    CORDIAL_CHECK_MSG(
        false, "ingest server: bad bind address " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    CORDIAL_CHECK_MSG(false, "ingest server: cannot listen on " +
                                 config_.bind_address + ":" +
                                 std::to_string(config_.port) + " — " +
                                 reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  SetNonBlocking(listen_fd_);

  // The loop has not started, so registering from this thread is safe.
  reactor_.Add(listen_fd_, kReadable, [this](std::uint32_t) { AcceptReady(); });
  started_ = true;
  loop_thread_ = std::thread([this] { reactor_.Run(); });
}

void IngestServer::Stop() {
  if (!started_) return;
  reactor_.Stop();
  loop_thread_.join();
  // The loop is gone; tear down its state from this thread.
  for (auto& [fd, conn] : connections_) {
    reactor_.Remove(fd);
    ::close(fd);
  }
  connections_.clear();
  reactor_.Remove(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  started_ = false;
}

void IngestServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept failure: poll again
    }
    if (connections_.size() >= config_.max_connections) {
      connections_refused_->Increment();
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<Connection>(config_.max_frame_bytes);
    conn->fd = fd;
    ArmIdleTimer(*conn);
    connections_.emplace(fd, std::move(conn));
    reactor_.Add(fd, kReadable,
                 [this, fd](std::uint32_t events) { ConnReady(fd, events); });
    connections_opened_->Increment();
    connections_active_->Add(1);
  }
}

void IngestServer::ArmIdleTimer(Connection& conn) {
  if (config_.idle_timeout.count() <= 0) return;
  if (conn.idle_timer != Reactor::kInvalidTimer) {
    reactor_.CancelTimer(conn.idle_timer);
  }
  const int fd = conn.fd;
  conn.idle_timer = reactor_.AddTimer(config_.idle_timeout, [this, fd] {
    idle_closed_->Increment();
    CloseConnection(fd);
  });
}

void IngestServer::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (it->second->idle_timer != Reactor::kInvalidTimer) {
    reactor_.CancelTimer(it->second->idle_timer);
  }
  reactor_.Remove(fd);
  ::close(fd);
  connections_.erase(it);
  connections_active_->Add(-1);
}

void IngestServer::ConnReady(int fd, std::uint32_t events) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;

  if (events & kError) {
    CloseConnection(fd);
    return;
  }
  if (events & kWritable) {
    if (!FlushWrites(conn)) return;
  }
  if ((events & kReadable) == 0) return;

  char buf[16 * 1024];
  bool got_bytes = false;
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      got_bytes = true;
      bytes_read_->Increment(static_cast<std::uint64_t>(n));
      conn.assembler.Append(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(fd);  // EOF or a hard read error
    return;
  }
  if (got_bytes) ArmIdleTimer(conn);

  try {
    std::string payload;
    while (conn.assembler.Next(payload)) {
      frames_->Increment();
      if (!HandleMessage(conn, DecodeMessage(payload))) return;
    }
  } catch (const ParseError&) {
    protocol_errors_->Increment();
    CloseConnection(fd);
  } catch (const ContractViolation&) {
    protocol_errors_->Increment();
    CloseConnection(fd);
  }
}

bool IngestServer::HandleMessage(Connection& conn, Message&& message) {
  switch (TypeOf(message)) {
    case MessageType::kHello:
      return SendReply(conn, Hello{});
    case MessageType::kBatch: {
      Batch& batch = std::get<Batch>(message);
      if (batch.sequence != conn.expected_seq) {
        protocol_errors_->Increment();
        batches_rejected_->Increment();
        conn.close_after_flush = true;
        return SendReply(conn,
                         Reject{batch.sequence, RejectReason::kBadSequence,
                                conn.accepted_records});
      }
      ++conn.expected_seq;
      const std::size_t accepted = fleet_.SubmitBatch(batch.records);
      conn.accepted_records += accepted;
      records_accepted_->Increment(accepted);
      if (accepted == batch.records.size()) {
        batches_acked_->Increment();
        return SendReply(conn, Ack{batch.sequence, conn.accepted_records});
      }
      batches_rejected_->Increment();
      return SendReply(conn,
                       Reject{batch.sequence, RejectReason::kBackpressure,
                              conn.accepted_records});
    }
    case MessageType::kExportShard: {
      const std::uint32_t shard = std::get<ExportShard>(message).shard;
      // Throws ContractViolation on a bad index — caught by ConnReady.
      std::string state = fleet_.ExportShard(shard);
      return SendReply(conn, ShardState{shard, std::move(state)});
    }
    case MessageType::kImportShard: {
      ImportShard& import = std::get<ImportShard>(message);
      fleet_.ImportShard(import.shard, import.state);
      return SendReply(conn, Imported{import.shard});
    }
    case MessageType::kAck:
    case MessageType::kReject:
    case MessageType::kShardState:
    case MessageType::kImported:
      // Server-to-client messages arriving at the server: protocol error.
      protocol_errors_->Increment();
      CloseConnection(conn.fd);
      return false;
  }
  return true;
}

bool IngestServer::SendReply(Connection& conn, const Message& message) {
  conn.out += EncodeFrame(message);
  return FlushWrites(conn);
}

bool IngestServer::FlushWrites(Connection& conn) {
  const int fd = conn.fd;
  while (!conn.out.empty()) {
    const ssize_t n = ::send(fd, conn.out.data(), conn.out.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      bytes_written_->Increment(static_cast<std::uint64_t>(n));
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      reactor_.SetInterest(fd, kReadable | kWritable);
      return true;  // backlog remains; the loop resumes when writable
    }
    CloseConnection(fd);  // peer is gone
    return false;
  }
  if (conn.close_after_flush) {
    CloseConnection(fd);
    return false;
  }
  reactor_.SetInterest(fd, kReadable);
  return true;
}

}  // namespace cordial::net
