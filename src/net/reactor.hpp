// Single-threaded poll(2) reactor — the event loop under the whole network
// plane (TCP ingest, the obs admin server).
//
// One thread calls Run(); everything else is callbacks on that thread.
// Registered fds must be non-blocking (SetNonBlocking below): the loop
// polls the whole registration set, then invokes each ready fd's callback
// with the subset of {kReadable, kWritable, kError} that fired. Callbacks
// own all per-connection state, so no registration data is ever touched
// from two threads — the only thread-safe entry points are Post() and
// Stop(), which hand work to the loop through a self-pipe (write one byte,
// poll wakes, the loop drains the task queue). Everything else (Add /
// SetInterest / Remove / timers) must be called on the loop thread or
// before Run starts.
//
// Timers are a classic timer wheel: kWheelSlots buckets of kTickMillis
// each. Arming a timer hashes its expiry tick into a slot and records how
// many full wheel revolutions remain; each loop iteration advances the
// cursor over the elapsed slots and fires (or decrements) what it finds
// there. Arm and cancel are O(1), the per-tick sweep touches only one
// slot, and the poll timeout collapses to "time until the next tick" only
// while timers are actually live — an idle reactor with no timers blocks
// in poll indefinitely. Granularity is deliberately coarse (10ms): every
// timer in this plane is an idle/read timeout measured in seconds, where
// ±10ms of slop buys a sweep that never scans the full timer set.
//
// Removal during dispatch is safe: Remove() marks the registration dead
// and the loop skips dead entries for the rest of the iteration, so a
// callback may close and remove any fd — including its own.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace cordial::net {

/// Event bits passed to fd callbacks and used as interest masks.
inline constexpr std::uint32_t kReadable = 1;
inline constexpr std::uint32_t kWritable = 2;
/// Delivered regardless of interest: POLLERR/POLLHUP/POLLNVAL. A callback
/// receiving kError should tear the connection down.
inline constexpr std::uint32_t kError = 4;

/// Set O_NONBLOCK on `fd`; returns false when fcntl fails.
bool SetNonBlocking(int fd);

class Reactor {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  Reactor();
  ~Reactor();  ///< must not be running (Stop + join the Run thread first)

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // --- loop-thread-only registration API ---------------------------------

  /// Register `fd` with an interest mask. The callback fires with the ready
  /// events each time poll reports the fd. The fd must already be
  /// non-blocking; the reactor never closes it — owners do.
  void Add(int fd, std::uint32_t interest, FdCallback callback);
  /// Change the interest mask of a registered fd (e.g. add kWritable while
  /// a write backlog exists, drop it when drained).
  void SetInterest(int fd, std::uint32_t interest);
  /// Deregister `fd`. Safe from inside any callback, including the fd's
  /// own — the loop skips the dead registration for the rest of the
  /// current dispatch round.
  void Remove(int fd);

  /// One-shot timer: run `callback` on the loop thread after >= `delay`
  /// (rounded up to the wheel tick). Returns an id for CancelTimer.
  TimerId AddTimer(std::chrono::milliseconds delay,
                   std::function<void()> callback);
  /// Cancel a pending timer; a no-op when it already fired or never existed.
  void CancelTimer(TimerId id);

  // --- thread-safe API ----------------------------------------------------

  /// Run `fn` on the loop thread at the next iteration. Callable from any
  /// thread, including the loop thread itself (the task queues and runs on
  /// the following iteration).
  void Post(std::function<void()> fn);

  /// Process events until Stop. Must be called by exactly one thread.
  void Run();

  /// Make Run return after it finishes the current iteration. Callable
  /// from any thread; idempotent.
  void Stop();

  /// True while some thread is inside Run. (Racy by nature — intended for
  /// asserts and tests.)
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Registered fd count (loop thread only; for tests/introspection).
  std::size_t fd_count() const;

  static constexpr std::size_t kWheelSlots = 512;
  static constexpr std::int64_t kTickMillis = 10;

 private:
  struct FdEntry {
    int fd = -1;
    std::uint32_t interest = 0;
    FdCallback callback;
    bool dead = false;  ///< removed mid-dispatch; reaped after the round
  };
  struct Timer {
    TimerId id = kInvalidTimer;
    std::uint64_t rounds = 0;  ///< full wheel revolutions still to wait
    std::function<void()> callback;
  };

  std::int64_t NowTick() const;
  void AdvanceWheel();
  void DrainWakePipe();
  void RunPosted();
  /// Poll timeout: -1 with no timers or posted work, else ms to next tick.
  int PollTimeoutMillis() const;

  int wake_fds_[2] = {-1, -1};  // self-pipe: Post/Stop wake the poll
  std::vector<FdEntry> entries_;               // dense; dead entries reaped
  std::unordered_map<int, std::size_t> index_;  // fd -> entries_ slot
  bool entries_dirty_ = false;  ///< a dispatch round removed something

  std::vector<std::vector<Timer>> wheel_{kWheelSlots};
  std::unordered_map<TimerId, std::size_t> timer_slot_;  // live timers
  std::size_t live_timers_ = 0;
  TimerId next_timer_id_ = 1;
  std::chrono::steady_clock::time_point epoch_;
  std::int64_t cursor_tick_ = 0;  ///< last tick the wheel advanced through

  mutable std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
};

}  // namespace cordial::net
