// TCP ingest front end for a FleetServer, built on the net::Reactor.
//
// One loop thread owns the listening socket and every connection; each
// connection is a small state machine (FrameAssembler in, write backlog
// out, expected sequence number, idle timer). Decoded Batch frames feed
// FleetServer::SubmitBatch on the loop thread — the fleet server's shard
// rings are the concurrency boundary, so the network plane itself never
// needs more than one thread. Replies follow the wire contract in
// net/wire.hpp: Ack when the whole batch landed, Reject{backpressure} when
// the fleet server's overload policy refused part of it, Reject{bad-seq /
// malformed} followed by a close on protocol violations.
//
// Shard migration terminates here too: ExportShard drains the shard and
// answers with its framed engine state; ImportShard installs one. Both run
// on the loop thread — a drain briefly stalls other connections, which is
// deliberate: migration is an operator action and the driver has already
// stopped feeding the moving shard.
//
// Slow or dead peers: every connection carries an idle timer that re-arms
// on every byte read; firing closes the connection and bumps
// cordial_net_idle_closed_total. This is the slow-loris defence — a peer
// trickling a frame one byte per minute cannot hold a connection slot.
//
// All cordial_net_* metrics live in the server's own registry, merged into
// the daemon's scrape by whoever wires /metrics.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/reactor.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "serve/fleet_server.hpp"

namespace cordial::net {

struct IngestServerConfig {
  /// Interface to bind. Loopback by default, like the admin plane.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// A connection that reads no bytes for this long is closed (and counted
  /// in cordial_net_idle_closed_total). Zero disables the timeout.
  std::chrono::milliseconds idle_timeout{30000};
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 64;
  /// Per-frame payload cap handed to each connection's FrameAssembler.
  std::uint64_t max_frame_bytes = kMaxWireFrameBytes;
};

class IngestServer {
 public:
  IngestServer(serve::FleetServer& fleet, IngestServerConfig config = {});
  ~IngestServer();  ///< stops the server if still running

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Bind, listen and spawn the loop thread. Throws ContractViolation when
  /// the socket cannot be bound.
  void Start();

  /// Close every connection, stop the loop and join it. Idempotent.
  void Stop();

  /// The bound port — the kernel's choice when config.port was 0. Valid
  /// after Start.
  std::uint16_t port() const { return port_; }
  bool running() const { return reactor_.running(); }

  /// Scrape the cordial_net_* metrics. Safe from any thread, any time.
  obs::RegistrySnapshot MetricsSnapshot() const { return metrics_.Snapshot(); }

 private:
  struct Connection {
    int fd = -1;
    FrameAssembler assembler;
    std::string out;                 ///< unflushed reply bytes
    std::uint64_t expected_seq = 1;  ///< next Batch sequence we will accept
    std::uint64_t accepted_records = 0;
    bool close_after_flush = false;  ///< fatal reply queued; close once sent
    Reactor::TimerId idle_timer = Reactor::kInvalidTimer;

    explicit Connection(std::uint64_t max_frame_bytes)
        : assembler(max_frame_bytes) {}
  };

  // All of these run on the loop thread. Functions that might close the
  // connection return false when they did, so callers drop their reference.
  void AcceptReady();
  void ConnReady(int fd, std::uint32_t events);
  bool HandleMessage(Connection& conn, Message&& message);
  bool SendReply(Connection& conn, const Message& message);
  bool FlushWrites(Connection& conn);
  void ArmIdleTimer(Connection& conn);
  void CloseConnection(int fd);

  serve::FleetServer& fleet_;
  IngestServerConfig config_;
  Reactor reactor_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  obs::MetricRegistry metrics_;
  obs::Counter* connections_opened_;
  obs::Counter* connections_refused_;
  obs::Counter* frames_;
  obs::Counter* records_accepted_;
  obs::Counter* batches_acked_;
  obs::Counter* batches_rejected_;
  obs::Counter* protocol_errors_;
  obs::Counter* idle_closed_;
  obs::Counter* bytes_read_;
  obs::Counter* bytes_written_;
  obs::Gauge* connections_active_;
};

}  // namespace cordial::net
