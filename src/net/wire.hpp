// Wire protocol of the cordial network plane.
//
// Every message travels inside one frame using the same text header as the
// persisted checkpoint format (common/framing, layout v2):
//
//   cordial_net v1 <payload_bytes> crc32=<8 hex digits>\n<payload>
//
// so a frame on the wire carries the same corruption detection as a frame
// at rest, and the decoder is the shared ParseFrameHeaderLine grammar. The
// payload's first byte is the message type; the rest is fixed-width
// little-endian fields (records use trace::LogCodec's binary encoding).
//
// Conversation shape (client = cordial_feed / IngestClient, server =
// IngestServer in front of FleetServer):
//
//   Hello        c→s  opens a connection; server replies Hello.
//   Batch        c→s  seq + MceRecords. Sequence numbers are per
//                     connection, start at 1, and must increase by exactly
//                     1 — a gap means lost or reordered frames and the
//                     batch is rejected rather than silently misapplied.
//   Ack          s→c  batch `seq` fully submitted; `accepted_records` is
//                     the connection's running total.
//   Reject       s→c  kBackpressure: batch `seq` was consumed but the
//                     fleet server refused part of it (its configured
//                     overload policy is lossy); the sequence still
//                     advances and `accepted_records` tells the client how
//                     much actually landed. kBadSequence / kMalformed:
//                     protocol error, nothing applied, connection closes.
//   ExportShard  c→s  drain + serialize one shard; server answers
//                     ShardState (the framed engine payload) and stops
//                     accepting records for that shard.
//   ImportShard  c→s  install a ShardState payload into this server;
//                     answers Imported.
//
// Frames are assembled incrementally by FrameAssembler: feed it raw socket
// bytes, pull complete CRC-verified payloads. Anything malformed — header
// too long, wrong magic or version, missing checksum, implausible length,
// CRC mismatch, unknown message type, short payload — throws ParseError;
// the connection owner closes the socket.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/framing.hpp"
#include "trace/error_log.hpp"

namespace cordial::net {

inline constexpr char kWireMagic[] = "cordial_net";
inline constexpr std::uint32_t kWireVersion = 1;

/// Frames larger than this are rejected before buffering the payload. Large
/// enough for a full shard export; far below common/framing's 1 GiB cap.
inline constexpr std::uint64_t kMaxWireFrameBytes = 256ull * 1024 * 1024;

enum class MessageType : std::uint8_t {
  kHello = 1,
  kBatch = 2,
  kAck = 3,
  kReject = 4,
  kExportShard = 5,
  kShardState = 6,
  kImportShard = 7,
  kImported = 8,
};

enum class RejectReason : std::uint8_t {
  kBackpressure = 1,  ///< transient overload — resend the same sequence
  kBadSequence = 2,   ///< sequence gap; connection is closing
  kMalformed = 3,     ///< undecodable batch; connection is closing
};

/// Human-readable reject reason for logs and error strings.
std::string_view RejectReasonName(RejectReason reason);

struct Hello {
  std::uint32_t protocol_version = kWireVersion;
};

struct Batch {
  std::uint64_t sequence = 0;  ///< per-connection, starts at 1, step 1
  std::vector<trace::MceRecord> records;
};

struct Ack {
  std::uint64_t sequence = 0;
  std::uint64_t accepted_records = 0;  ///< connection-lifetime running total
};

struct Reject {
  std::uint64_t sequence = 0;
  RejectReason reason = RejectReason::kBackpressure;
  std::uint64_t accepted_records = 0;
};

struct ExportShard {
  std::uint32_t shard = 0;
};

struct ShardState {
  std::uint32_t shard = 0;
  std::string state;  ///< framed engine payload (checkpoint section bytes)
};

struct ImportShard {
  std::uint32_t shard = 0;
  std::string state;
};

struct Imported {
  std::uint32_t shard = 0;
};

using Message = std::variant<Hello, Batch, Ack, Reject, ExportShard,
                             ShardState, ImportShard, Imported>;

/// Type tag of a decoded/encodable message (for dispatch and logging).
MessageType TypeOf(const Message& message);

/// Serialize `message` into a complete wire frame (header line + payload).
std::string EncodeFrame(const Message& message);

/// Serialize a Batch frame straight from a record span — the feeder hot
/// path. Byte-identical to EncodeFrame(Batch{sequence, <records copy>})
/// without materialising the copy.
std::string EncodeBatchFrame(std::uint64_t sequence,
                             std::span<const trace::MceRecord> records);

/// Decode one frame payload (the bytes FrameAssembler::Next yields).
/// Throws ParseError on an unknown type byte or malformed fields.
Message DecodeMessage(std::string_view payload);

/// Incremental frame decoder for a byte stream. Feed raw socket bytes with
/// Append; each Next() call yields at most one complete, CRC-verified
/// payload. Malformed input throws ParseError and the assembler must be
/// discarded with its connection.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::uint64_t max_frame_bytes = kMaxWireFrameBytes);

  void Append(std::string_view bytes);

  /// Move the next complete frame's payload into `payload` and return true;
  /// false when more bytes are needed.
  bool Next(std::string& payload);

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::uint64_t max_frame_bytes_;
  std::string buffer_;
  bool have_header_ = false;
  FrameHeader header_;
  std::size_t payload_start_ = 0;  ///< offset just past the header '\n'
};

}  // namespace cordial::net
