#include "net/ingest_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace cordial::net {

IngestClient::~IngestClient() { Close(); }

void IngestClient::Connect(const std::string& address, std::uint16_t port) {
  CORDIAL_CHECK_MSG(fd_ < 0, "ingest client already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CORDIAL_CHECK_MSG(fd_ >= 0, "ingest client: socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    Close();
    CORDIAL_CHECK_MSG(false, "ingest client: bad address " + address);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string reason = std::strerror(errno);
    Close();
    CORDIAL_CHECK_MSG(false, "ingest client: cannot connect to " + address +
                                 ":" + std::to_string(port) + " — " + reason);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  const Message reply = Call(Hello{});
  const Hello* hello = std::get_if<Hello>(&reply);
  if (hello == nullptr || hello->protocol_version != kWireVersion) {
    Close();
    throw ParseError("ingest client: handshake failed");
  }
}

void IngestClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  assembler_ = FrameAssembler();
  next_seq_ = 1;
}

Message IngestClient::Call(const Message& request) {
  SendFrame(EncodeFrame(request));
  return ReadReply();
}

Message IngestClient::SendBatch(std::span<const trace::MceRecord> records) {
  const std::uint64_t sequence = next_seq_;
  SendFrame(EncodeBatchFrame(sequence, records));
  const Message reply = ReadReply();
  if (const Ack* ack = std::get_if<Ack>(&reply)) {
    if (ack->sequence != sequence) {
      throw ParseError("ingest client: ack for wrong sequence");
    }
    ++next_seq_;
    return reply;
  }
  if (const Reject* reject = std::get_if<Reject>(&reply)) {
    if (reject->reason != RejectReason::kBackpressure) {
      throw ParseError(std::string("ingest client: batch rejected (") +
                       std::string(RejectReasonName(reject->reason)) + ")");
    }
    ++next_seq_;  // the batch was consumed, just not fully accepted
    return reply;
  }
  throw ParseError("ingest client: unexpected reply to batch");
}

std::string IngestClient::FetchShard(std::uint32_t shard) {
  Message reply = Call(ExportShard{shard});
  ShardState* state = std::get_if<ShardState>(&reply);
  if (state == nullptr || state->shard != shard) {
    throw ParseError("ingest client: unexpected reply to shard export");
  }
  return std::move(state->state);
}

void IngestClient::DeliverShard(std::uint32_t shard,
                                const std::string& state) {
  const Message reply = Call(ImportShard{shard, state});
  const Imported* imported = std::get_if<Imported>(&reply);
  if (imported == nullptr || imported->shard != shard) {
    throw ParseError("ingest client: unexpected reply to shard import");
  }
}

void IngestClient::SendFrame(const std::string& frame) {
  CORDIAL_CHECK_MSG(fd_ >= 0, "ingest client is not connected");
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      throw ParseError("ingest client: connection lost mid-send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Message IngestClient::ReadReply() {
  std::string payload;
  char buf[16 * 1024];
  for (;;) {
    if (assembler_.Next(payload)) return DecodeMessage(payload);
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      throw ParseError("ingest client: connection closed awaiting reply");
    }
    assembler_.Append(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

}  // namespace cordial::net
