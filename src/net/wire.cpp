#include "net/wire.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "trace/log_codec.hpp"

namespace cordial::net {

namespace {

/// Header lines are tiny ("cordial_net v1 <len> crc32=xxxxxxxx"); a stream
/// with no '\n' inside this bound is not speaking the protocol.
constexpr std::size_t kMaxHeaderLineBytes = 128;

void AppendU8(std::uint8_t value, std::string& out) {
  out.push_back(static_cast<char>(value));
}

void AppendU32(std::uint32_t value, std::string& out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendU64(std::uint64_t value, std::string& out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

/// Bounds-checked little-endian reader over one frame payload.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t ReadU8() { return Take(1)[0]; }

  std::uint32_t ReadU32() {
    const auto* p = Take(4);
    std::uint32_t value = 0;
    for (int i = 3; i >= 0; --i) value = (value << 8) | p[i];
    return value;
  }

  std::uint64_t ReadU64() {
    const auto* p = Take(8);
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) value = (value << 8) | p[i];
    return value;
  }

  std::string_view ReadBytes(std::uint64_t count) {
    if (count > Remaining()) Underrun();
    const std::string_view view = bytes_.substr(offset_, count);
    offset_ += static_cast<std::size_t>(count);
    return view;
  }

  std::uint64_t Remaining() const { return bytes_.size() - offset_; }

  void ExpectEnd(const char* what) const {
    if (offset_ != bytes_.size()) {
      throw ParseError(std::string("wire message: trailing bytes after ") +
                       what);
    }
  }

 private:
  const unsigned char* Take(std::size_t count) {
    if (count > Remaining()) Underrun();
    const auto* p =
        reinterpret_cast<const unsigned char*>(bytes_.data()) + offset_;
    offset_ += count;
    return p;
  }

  [[noreturn]] void Underrun() const {
    throw ParseError("wire message: truncated payload");
  }

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

/// Wrap a finished payload in its header line. Byte-identical to
/// common/framing's WriteFramed, but built directly into the returned
/// string — the feeder hot path encodes every batch through here, and an
/// ostringstream round trip costs two extra payload copies.
std::string SealFrame(const std::string& payload) {
  char header[64];
  const int header_len =
      std::snprintf(header, sizeof header, "%s v%u %zu crc32=%08x\n",
                    kWireMagic, kWireVersion, payload.size(), Crc32(payload));
  std::string frame;
  frame.reserve(static_cast<std::size_t>(header_len) + payload.size());
  frame.append(header, static_cast<std::size_t>(header_len));
  frame.append(payload);
  return frame;
}

void AppendBatchPayload(std::uint64_t sequence,
                        std::span<const trace::MceRecord> records,
                        std::string& payload) {
  payload.reserve(payload.size() + 8 + 4 +
                  records.size() * trace::LogCodec::kBinaryRecordBytes);
  AppendU64(sequence, payload);
  AppendU32(static_cast<std::uint32_t>(records.size()), payload);
  for (const trace::MceRecord& r : records) {
    trace::LogCodec::AppendBinary(r, payload);
  }
}

}  // namespace

std::string_view RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kBackpressure:
      return "backpressure";
    case RejectReason::kBadSequence:
      return "bad-sequence";
    case RejectReason::kMalformed:
      return "malformed";
  }
  return "unknown";
}

MessageType TypeOf(const Message& message) {
  struct Visitor {
    MessageType operator()(const Hello&) { return MessageType::kHello; }
    MessageType operator()(const Batch&) { return MessageType::kBatch; }
    MessageType operator()(const Ack&) { return MessageType::kAck; }
    MessageType operator()(const Reject&) { return MessageType::kReject; }
    MessageType operator()(const ExportShard&) {
      return MessageType::kExportShard;
    }
    MessageType operator()(const ShardState&) {
      return MessageType::kShardState;
    }
    MessageType operator()(const ImportShard&) {
      return MessageType::kImportShard;
    }
    MessageType operator()(const Imported&) { return MessageType::kImported; }
  };
  return std::visit(Visitor{}, message);
}

std::string EncodeFrame(const Message& message) {
  std::string payload;
  AppendU8(static_cast<std::uint8_t>(TypeOf(message)), payload);
  struct Visitor {
    std::string& payload;
    void operator()(const Hello& m) { AppendU32(m.protocol_version, payload); }
    void operator()(const Batch& m) {
      AppendBatchPayload(m.sequence, m.records, payload);
    }
    void operator()(const Ack& m) {
      AppendU64(m.sequence, payload);
      AppendU64(m.accepted_records, payload);
    }
    void operator()(const Reject& m) {
      AppendU64(m.sequence, payload);
      AppendU8(static_cast<std::uint8_t>(m.reason), payload);
      AppendU64(m.accepted_records, payload);
    }
    void operator()(const ExportShard& m) { AppendU32(m.shard, payload); }
    void operator()(const ShardState& m) {
      AppendU32(m.shard, payload);
      AppendU64(m.state.size(), payload);
      payload.append(m.state);
    }
    void operator()(const ImportShard& m) {
      AppendU32(m.shard, payload);
      AppendU64(m.state.size(), payload);
      payload.append(m.state);
    }
    void operator()(const Imported& m) { AppendU32(m.shard, payload); }
  };
  std::visit(Visitor{payload}, message);
  return SealFrame(payload);
}

std::string EncodeBatchFrame(std::uint64_t sequence,
                             std::span<const trace::MceRecord> records) {
  std::string payload;
  AppendU8(static_cast<std::uint8_t>(MessageType::kBatch), payload);
  AppendBatchPayload(sequence, records, payload);
  return SealFrame(payload);
}

Message DecodeMessage(std::string_view payload) {
  Cursor cursor(payload);
  const std::uint8_t type = cursor.ReadU8();
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHello: {
      Hello m;
      m.protocol_version = cursor.ReadU32();
      cursor.ExpectEnd("hello");
      return m;
    }
    case MessageType::kBatch: {
      Batch m;
      m.sequence = cursor.ReadU64();
      const std::uint32_t count = cursor.ReadU32();
      if (cursor.Remaining() !=
          std::uint64_t{count} * trace::LogCodec::kBinaryRecordBytes) {
        throw ParseError(
            "wire message: batch record bytes do not match count");
      }
      m.records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        m.records.push_back(trace::LogCodec::ParseBinary(
            cursor.ReadBytes(trace::LogCodec::kBinaryRecordBytes)));
      }
      return m;
    }
    case MessageType::kAck: {
      Ack m;
      m.sequence = cursor.ReadU64();
      m.accepted_records = cursor.ReadU64();
      cursor.ExpectEnd("ack");
      return m;
    }
    case MessageType::kReject: {
      Reject m;
      m.sequence = cursor.ReadU64();
      const std::uint8_t reason = cursor.ReadU8();
      if (reason < 1 || reason > 3) {
        throw ParseError("wire message: unknown reject reason " +
                         std::to_string(reason));
      }
      m.reason = static_cast<RejectReason>(reason);
      m.accepted_records = cursor.ReadU64();
      cursor.ExpectEnd("reject");
      return m;
    }
    case MessageType::kExportShard: {
      ExportShard m;
      m.shard = cursor.ReadU32();
      cursor.ExpectEnd("export-shard");
      return m;
    }
    case MessageType::kShardState: {
      ShardState m;
      m.shard = cursor.ReadU32();
      m.state = std::string(cursor.ReadBytes(cursor.ReadU64()));
      cursor.ExpectEnd("shard-state");
      return m;
    }
    case MessageType::kImportShard: {
      ImportShard m;
      m.shard = cursor.ReadU32();
      m.state = std::string(cursor.ReadBytes(cursor.ReadU64()));
      cursor.ExpectEnd("import-shard");
      return m;
    }
    case MessageType::kImported: {
      Imported m;
      m.shard = cursor.ReadU32();
      cursor.ExpectEnd("imported");
      return m;
    }
  }
  throw ParseError("wire message: unknown type byte " + std::to_string(type));
}

FrameAssembler::FrameAssembler(std::uint64_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameAssembler::Append(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

bool FrameAssembler::Next(std::string& payload) {
  if (!have_header_) {
    const std::size_t newline = buffer_.find('\n');
    if (newline == std::string::npos) {
      if (buffer_.size() > kMaxHeaderLineBytes) {
        throw ParseError("wire frame: header line exceeds " +
                         std::to_string(kMaxHeaderLineBytes) + " bytes");
      }
      return false;
    }
    if (newline > kMaxHeaderLineBytes) {
      throw ParseError("wire frame: header line exceeds " +
                       std::to_string(kMaxHeaderLineBytes) + " bytes");
    }
    header_ = ParseFrameHeaderLine(
        std::string_view(buffer_).substr(0, newline));
    if (header_.magic != kWireMagic) {
      throw ParseError("wire frame: bad magic '" + header_.magic +
                       "', expected '" + kWireMagic + "'");
    }
    if (header_.version != kWireVersion) {
      throw ParseError("wire frame: version v" +
                       std::to_string(header_.version) + ", expected v" +
                       std::to_string(kWireVersion));
    }
    // Unlike files, the wire never grandfathers checksum-less frames: there
    // is no legacy traffic to migrate.
    if (!header_.has_checksum) {
      throw ParseError("wire frame: missing crc32 field");
    }
    if (header_.payload_bytes > max_frame_bytes_) {
      throw ParseError("wire frame: payload of " +
                       std::to_string(header_.payload_bytes) +
                       " bytes exceeds limit of " +
                       std::to_string(max_frame_bytes_));
    }
    payload_start_ = newline + 1;
    have_header_ = true;
  }
  if (buffer_.size() - payload_start_ < header_.payload_bytes) return false;

  payload.assign(buffer_, payload_start_,
                 static_cast<std::size_t>(header_.payload_bytes));
  if (Crc32(payload) != header_.crc32) {
    throw ParseError("wire frame: checksum mismatch");
  }
  buffer_.erase(0, payload_start_ +
                       static_cast<std::size_t>(header_.payload_bytes));
  have_header_ = false;
  return true;
}

}  // namespace cordial::net
