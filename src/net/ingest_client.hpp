// Blocking client for the ingest wire protocol — the feeder side.
//
// One request in flight at a time: Connect performs the Hello handshake,
// SendBatch stamps the next per-connection sequence number and returns the
// server's Ack/Reject, and the shard-migration calls wrap their
// request/reply pairs. The client is synchronous on purpose — feeders and
// the migration driver want the reply before deciding the next step, and a
// blocking socket keeps their control flow linear. Anything unexpected off
// the wire (a malformed frame, a reply of the wrong type, a closed
// connection mid-reply) throws ParseError.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "net/wire.hpp"

namespace cordial::net {

class IngestClient {
 public:
  IngestClient() = default;
  ~IngestClient();  ///< closes the connection if still open

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  /// Connect and exchange Hellos. Throws ContractViolation when the TCP
  /// connect fails, ParseError when the handshake does.
  void Connect(const std::string& address, std::uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Send one request frame and block for one reply frame.
  Message Call(const Message& request);

  /// Send `records` as the next Batch in sequence; returns the server's
  /// Ack or Reject{backpressure}. A fatal Reject (bad-sequence/malformed)
  /// throws ParseError — the server is closing the connection.
  Message SendBatch(std::span<const trace::MceRecord> records);

  /// Drain + export shard `shard` on the server; returns its framed state.
  std::string FetchShard(std::uint32_t shard);

  /// Install a FetchShard payload into shard `shard` on this server.
  void DeliverShard(std::uint32_t shard, const std::string& state);

  /// The sequence number the next SendBatch will use (starts at 1).
  std::uint64_t next_sequence() const { return next_seq_; }

 private:
  void SendFrame(const std::string& frame);
  Message ReadReply();

  int fd_ = -1;
  FrameAssembler assembler_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace cordial::net
