#include "net/reactor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/check.hpp"

namespace cordial::net {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Reactor::Reactor() : epoch_(std::chrono::steady_clock::now()) {
  CORDIAL_CHECK_MSG(::pipe(wake_fds_) == 0, "reactor: pipe() failed");
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
}

Reactor::~Reactor() {
  CORDIAL_CHECK_MSG(!running(), "reactor destroyed while running");
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
}

void Reactor::Add(int fd, std::uint32_t interest, FdCallback callback) {
  CORDIAL_CHECK_MSG(fd >= 0, "reactor: registering a bad fd");
  const auto it = index_.find(fd);
  CORDIAL_CHECK_MSG(it == index_.end() || entries_[it->second].dead,
                    "reactor: fd registered twice");
  FdEntry entry;
  entry.fd = fd;
  entry.interest = interest;
  entry.callback = std::move(callback);
  index_[fd] = entries_.size();
  entries_.push_back(std::move(entry));
}

void Reactor::SetInterest(int fd, std::uint32_t interest) {
  const auto it = index_.find(fd);
  CORDIAL_CHECK_MSG(it != index_.end() && !entries_[it->second].dead,
                    "reactor: SetInterest on an unregistered fd");
  entries_[it->second].interest = interest;
}

void Reactor::Remove(int fd) {
  const auto it = index_.find(fd);
  if (it == index_.end()) return;
  entries_[it->second].dead = true;
  entries_[it->second].callback = nullptr;  // release captured state now
  index_.erase(it);
  entries_dirty_ = true;
}

std::size_t Reactor::fd_count() const { return index_.size(); }

std::int64_t Reactor::NowTick() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
             .count() /
         kTickMillis;
}

Reactor::TimerId Reactor::AddTimer(std::chrono::milliseconds delay,
                                   std::function<void()> callback) {
  // Round the delay up to whole ticks and never arm in the current tick —
  // the sweep has already passed it.
  const std::int64_t delay_ticks = std::max<std::int64_t>(
      1, (delay.count() + kTickMillis - 1) / kTickMillis);
  const std::int64_t expiry_tick =
      std::max(NowTick(), cursor_tick_) + delay_ticks;
  const std::int64_t delta = expiry_tick - cursor_tick_;
  Timer timer;
  timer.id = next_timer_id_++;
  timer.rounds = static_cast<std::uint64_t>((delta - 1)) / kWheelSlots;
  timer.callback = std::move(callback);
  const std::size_t slot =
      static_cast<std::size_t>(expiry_tick) % kWheelSlots;
  const TimerId id = timer.id;
  timer_slot_[id] = slot;
  wheel_[slot].push_back(std::move(timer));
  ++live_timers_;
  return id;
}

void Reactor::CancelTimer(TimerId id) {
  const auto it = timer_slot_.find(id);
  if (it == timer_slot_.end()) return;
  std::vector<Timer>& slot = wheel_[it->second];
  for (std::size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].id == id) {
      slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
      --live_timers_;
      break;
    }
  }
  timer_slot_.erase(it);
}

void Reactor::AdvanceWheel() {
  const std::int64_t now_tick = NowTick();
  if (now_tick <= cursor_tick_) return;
  if (live_timers_ == 0) {  // nothing armed: skip the empty sweep entirely
    cursor_tick_ = now_tick;
    return;
  }
  std::vector<Timer> due;
  for (std::int64_t tick = cursor_tick_ + 1; tick <= now_tick; ++tick) {
    std::vector<Timer>& slot =
        wheel_[static_cast<std::size_t>(tick) % kWheelSlots];
    if (slot.empty()) continue;
    std::vector<Timer> keep;
    keep.reserve(slot.size());
    for (Timer& timer : slot) {
      if (timer.rounds > 0) {
        --timer.rounds;
        keep.push_back(std::move(timer));
      } else {
        timer_slot_.erase(timer.id);
        --live_timers_;
        due.push_back(std::move(timer));
      }
    }
    slot = std::move(keep);
  }
  cursor_tick_ = now_tick;
  // Fire after the wheel is consistent again: a timer callback may arm or
  // cancel other timers (idle timeouts re-arm on every read).
  for (Timer& timer : due) timer.callback();
}

int Reactor::PollTimeoutMillis() const {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    if (!posted_.empty()) return 0;
  }
  if (live_timers_ == 0) return -1;
  // Wake at the next armed slot within one revolution (or a full
  // revolution out, when every live timer still has rounds to serve), not
  // every tick — an idle connection's 30s timeout must not cost 100
  // wakeups a second.
  std::int64_t delta = kWheelSlots;
  for (std::int64_t d = 1; d <= static_cast<std::int64_t>(kWheelSlots); ++d) {
    if (!wheel_[static_cast<std::size_t>(cursor_tick_ + d) % kWheelSlots]
             .empty()) {
      delta = d;
      break;
    }
  }
  const std::int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  const std::int64_t target_ms = (cursor_tick_ + delta) * kTickMillis;
  return static_cast<int>(std::clamp<std::int64_t>(
      target_ms - now_ms, 1, kWheelSlots * kTickMillis));
}

void Reactor::DrainWakePipe() {
  char buf[64];
  while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
  }
}

void Reactor::RunPosted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void Reactor::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  const char byte = 0;
  // A full pipe is fine: the loop is already scheduled to wake.
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void Reactor::Stop() {
  stop_.store(true, std::memory_order_release);
  const char byte = 0;
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void Reactor::Run() {
  CORDIAL_CHECK_MSG(!running_.exchange(true, std::memory_order_acq_rel),
                    "reactor already running");
  struct ReadyFd {
    int fd;
    std::uint32_t events;
  };
  std::vector<pollfd> pollfds;
  std::vector<ReadyFd> ready_fds;
  while (!stop_.load(std::memory_order_acquire)) {
    pollfds.clear();
    pollfds.push_back({wake_fds_[0], POLLIN, 0});
    for (const FdEntry& entry : entries_) {
      if (entry.dead) continue;
      short events = 0;
      if (entry.interest & kReadable) events |= POLLIN;
      if (entry.interest & kWritable) events |= POLLOUT;
      pollfds.push_back({entry.fd, events, 0});
    }

    const int ready = ::poll(pollfds.data(),
                             static_cast<nfds_t>(pollfds.size()),
                             PollTimeoutMillis());
    if (ready < 0 && errno != EINTR) break;  // unrecoverable poll failure

    if (!pollfds.empty() && pollfds[0].revents != 0) DrainWakePipe();
    RunPosted();
    AdvanceWheel();
    if (stop_.load(std::memory_order_acquire)) break;

    // Collect the ready set first: callbacks mutate entries_/index_
    // (Remove, even Add), which would invalidate direct iteration.
    ready_fds.clear();
    for (std::size_t i = 1; i < pollfds.size(); ++i) {
      const short revents = pollfds[i].revents;
      if (revents == 0) continue;
      std::uint32_t events = 0;
      if (revents & (POLLIN | POLLPRI)) events |= kReadable;
      if (revents & POLLOUT) events |= kWritable;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) events |= kError;
      ready_fds.push_back({pollfds[i].fd, events});
    }
    for (const ReadyFd& ready_fd : ready_fds) {
      const auto it = index_.find(ready_fd.fd);
      if (it == index_.end() || entries_[it->second].dead) continue;
      // Take a handle on the std::function rather than the entry: the
      // callback may push new registrations and reallocate entries_.
      const FdCallback callback = entries_[it->second].callback;
      callback(ready_fd.events);
    }

    if (entries_dirty_) {
      entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                    [](const FdEntry& e) { return e.dead; }),
                     entries_.end());
      index_.clear();
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        index_[entries_[i].fd] = i;
      }
      entries_dirty_ = false;
    }
  }
  stop_.store(false, std::memory_order_release);  // allow a future Run
  running_.store(false, std::memory_order_release);
}

}  // namespace cordial::net
