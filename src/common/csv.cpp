#include "common/csv.hpp"

#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace cordial {

std::string CsvWriter::EscapeField(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << EscapeField(fields[i]);
  }
  out_ << '\n';
}

std::vector<std::vector<std::string>> CsvReader::ReadAll(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;
  char c;
  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_started || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_started = false;
        }
        break;
      default:
        field.push_back(c);
        row_started = true;
        break;
    }
  }
  if (in_quotes) throw ParseError("CSV: unterminated quoted field");
  if (row_started || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::string> CsvReader::ParseLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  if (in_quotes) throw ParseError("CSV: unterminated quoted field");
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace cordial
