// Aligned plain-text table rendering. Every bench binary prints its
// paper-table reproduction through this so the output reads like the paper.
#pragma once

#include <string>
#include <vector>

namespace cordial {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Insert a horizontal rule before the next added row.
  void AddSeparator();

  /// Render with column alignment; numeric-looking cells are right-aligned.
  std::string Render(const std::string& title = "") const;

  static std::string FormatDouble(double value, int precision = 3);
  static std::string FormatPercent(double fraction, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace cordial
