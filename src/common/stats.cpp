#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace cordial {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double Quantile(std::vector<double> values, double p) {
  CORDIAL_CHECK_MSG(!values.empty(), "Quantile of empty sample");
  CORDIAL_CHECK_MSG(p >= 0.0 && p <= 1.0, "Quantile p must be in [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected) {
  CORDIAL_CHECK_MSG(observed.size() == expected.size(),
                    "chi-square cell count mismatch");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] == 0.0) {
      CORDIAL_CHECK_MSG(observed[i] == 0.0,
                        "observed mass in a zero-expectation cell");
      continue;
    }
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

double ChiSquare2x2(double a, double b, double c, double d) {
  const double n = a + b + c + d;
  CORDIAL_CHECK_MSG(n > 0.0, "empty 2x2 table");
  const double r1 = a + b, r2 = c + d, c1 = a + c, c2 = b + d;
  if (r1 == 0.0 || r2 == 0.0 || c1 == 0.0 || c2 == 0.0) return 0.0;
  const double num = a * d - b * c;
  return n * num * num / (r1 * r2 * c1 * c2);
}

double LogGamma(double x) {
  // Lanczos approximation, g = 7, n = 9.
  static constexpr double kCoef[9] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  CORDIAL_CHECK_MSG(x > 0.0, "LogGamma domain is x > 0");
  if (x < 0.5) {
    // Reflection formula.
    const double pi = 3.14159265358979323846;
    return std::log(pi / std::sin(pi * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double acc = kCoef[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) acc += kCoef[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * 3.14159265358979323846) +
         (x + 0.5) * std::log(t) - t + std::log(acc);
}

namespace {

// Series expansion of P(a, x), good for x < a + 1.
double GammaPSeries(double a, double x) {
  const double log_pre = a * std::log(x) - x - LogGamma(a);
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-14) break;
  }
  return sum * std::exp(log_pre);
}

// Continued-fraction expansion of Q(a, x) = 1 - P(a, x), good for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double log_pre = a * std::log(x) - x - LogGamma(a);
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-14) break;
  }
  return std::exp(log_pre) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  CORDIAL_CHECK_MSG(a > 0.0 && x >= 0.0, "RegularizedGammaP domain");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquarePValue(double statistic, double dof) {
  CORDIAL_CHECK_MSG(dof > 0.0, "chi-square dof must be positive");
  CORDIAL_CHECK_MSG(statistic >= 0.0, "chi-square statistic must be >= 0");
  return 1.0 - RegularizedGammaP(dof / 2.0, statistic / 2.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CORDIAL_CHECK_MSG(hi > lo, "Histogram range must be non-empty");
  CORDIAL_CHECK_MSG(bins > 0, "Histogram needs at least one bin");
}

void Histogram::Add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

}  // namespace cordial
