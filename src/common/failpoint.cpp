#include "common/failpoint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <unordered_map>

namespace cordial::failpoint {

namespace {

struct Entry {
  std::uint64_t skip = 0;      ///< hits left to pass through
  std::int64_t count = -1;     ///< failures left (-1 = unbounded)
  std::uint64_t hits = 0;      ///< total hits since armed
};

struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Entry> entries;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

/// Armed-entry count, mirrored outside the lock so ShouldFail's fast path
/// is one relaxed load.
std::atomic<std::size_t> g_armed_count{0};

/// Parse one `name[=skip[:count]]` spec; false on malformed input.
bool ArmSpec(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  const std::string name = spec.substr(0, eq);
  if (name.empty()) return false;
  std::uint64_t skip = 0;
  std::int64_t count = -1;
  if (eq != std::string::npos) {
    const std::string args = spec.substr(eq + 1);
    const std::size_t colon = args.find(':');
    char* end = nullptr;
    const std::string skip_str = args.substr(0, colon);
    skip = std::strtoull(skip_str.c_str(), &end, 10);
    if (end == skip_str.c_str() || *end != '\0') return false;
    if (colon != std::string::npos) {
      const std::string count_str = args.substr(colon + 1);
      count = std::strtoll(count_str.c_str(), &end, 10);
      if (end == count_str.c_str() || *end != '\0') return false;
    }
  }
  Arm(name, skip, count);
  return true;
}

/// Parses CORDIAL_FAILPOINTS once at process start, before main runs, so
/// the armed-count fast path never needs an env check.
const bool g_env_parsed = [] {
  ArmFromEnv();
  return true;
}();

}  // namespace

void Arm(const std::string& name, std::uint64_t skip, std::int64_t count) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const bool inserted = registry.entries.try_emplace(name).second;
  registry.entries[name] = Entry{skip, count, 0};
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.entries.erase(name) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  g_armed_count.fetch_sub(registry.entries.size(),
                          std::memory_order_relaxed);
  registry.entries.clear();
}

bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

std::uint64_t HitCount(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.entries.find(name);
  return it == registry.entries.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedNames() {
  Registry& registry = TheRegistry();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    names.reserve(registry.entries.size());
    for (const auto& [name, entry] : registry.entries) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void ArmFromEnv() {
  const char* env = std::getenv("CORDIAL_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  const std::string specs(env);
  std::size_t start = 0;
  while (start <= specs.size()) {
    const std::size_t comma = specs.find(',', start);
    const std::string spec =
        specs.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (!spec.empty() && !ArmSpec(spec)) {
      std::cerr << "cordial: ignoring malformed CORDIAL_FAILPOINTS spec '"
                << spec << "'\n";
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

bool ShouldFail(const char* name) {
  if (!AnyArmed()) return false;
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.entries.find(name);
  if (it == registry.entries.end()) return false;
  Entry& entry = it->second;
  ++entry.hits;
  if (entry.skip > 0) {
    --entry.skip;
    return false;
  }
  if (entry.count == 0) return false;  // spent but not yet disarmed
  if (entry.count > 0 && --entry.count == 0) {
    // Spent: keep the entry (so HitCount still answers) but fail this hit.
  }
  return true;
}

}  // namespace cordial::failpoint
