#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

namespace cordial {

std::size_t ParseThreadCount(const char* text, std::string& error) {
  error.clear();
  if (text == nullptr || *text == '\0') {
    error = "empty value";
    return 0;
  }
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') {
    error = "not a number";
    return 0;
  }
  if (errno == ERANGE || parsed > std::numeric_limits<int>::max()) {
    error = "out of range";
    return 0;
  }
  if (parsed <= 0) {
    error = "must be a positive thread count";
    return 0;
  }
  return static_cast<std::size_t>(parsed);
}

namespace {

thread_local bool t_in_parallel_region = false;

/// One ParallelFor invocation. Lives on the caller's stack; workers must
/// not touch it after the caller observes active == 0.
struct Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
};

/// Claim and run chunks until the index space (or the job, on error) is
/// exhausted. Runs on workers and on the calling thread alike.
void DrainJob(Job& job) {
  const bool was_nested = t_in_parallel_region;
  t_in_parallel_region = true;
  while (!job.failed.load(std::memory_order_relaxed)) {
    const std::size_t start =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (start >= job.n) break;
    const std::size_t end = std::min(job.n, start + job.chunk);
    try {
      for (std::size_t i = start; i < end; ++i) (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
      job.failed.store(true, std::memory_order_relaxed);
    }
  }
  t_in_parallel_region = was_nested;
}

std::size_t HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t AutoThreadCount() {
  if (const char* env = std::getenv("CORDIAL_THREADS")) {
    std::string error;
    const std::size_t parsed = ParseThreadCount(env, error);
    if (parsed > 0) return parsed;
    // Warn once, not per pool query: a rejected value falls back to
    // hardware concurrency for the rest of the process either way.
    static const bool warned = [&] {
      std::fprintf(stderr,
                   "cordial: ignoring CORDIAL_THREADS=\"%s\" (%s); using "
                   "hardware concurrency\n",
                   env, error.c_str());
      return true;
    }();
    (void)warned;
  }
  return HardwareThreadCount();
}

class Pool {
 public:
  static Pool& Instance() {
    static Pool* pool = new Pool();  // leaked: workers may outlive statics
    return *pool;
  }

  std::size_t thread_count() {
    std::lock_guard<std::mutex> lock(mu_);
    return requested_ == 0 ? AutoThreadCount() : requested_;
  }

  void set_thread_count(std::size_t n) {
    std::vector<std::thread> old;
    {
      std::lock_guard<std::mutex> lock(mu_);
      requested_ = n;
      stop_generation_ = spawned_generation_;
      old.swap(workers_);
    }
    work_cv_.notify_all();
    for (std::thread& t : old) t.join();
  }

  void Run(Job& job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureWorkersLocked(thread_count_unlocked() - 1);
      job_ = &job;
      ++job_seq_;
    }
    work_cv_.notify_all();
    DrainJob(job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ = nullptr;  // late wakers must not join a finished job
      done_cv_.wait(lock, [&] { return active_ == 0; });
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  std::size_t thread_count_unlocked() const {
    return requested_ == 0 ? AutoThreadCount() : requested_;
  }

  void EnsureWorkersLocked(std::size_t want) {
    if (workers_.size() == want) return;
    // Grown or shrunk between jobs: respawn a fresh generation. Jobs never
    // overlap (Run holds the job slot), so no work is in flight here.
    stop_generation_ = spawned_generation_;
    ++spawned_generation_;
    std::vector<std::thread> old;
    old.swap(workers_);
    if (!old.empty()) {
      mu_.unlock();
      work_cv_.notify_all();
      for (std::thread& t : old) t.join();
      mu_.lock();
    }
    workers_.reserve(want);
    for (std::size_t i = 0; i < want; ++i) {
      workers_.emplace_back([this, gen = spawned_generation_] {
        WorkerLoop(gen);
      });
    }
  }

  void WorkerLoop(std::uint64_t generation) {
    std::uint64_t seen_seq = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          return stop_generation_ >= generation ||
                 (job_ != nullptr && job_seq_ != seen_seq);
        });
        if (stop_generation_ >= generation) return;
        seen_seq = job_seq_;
        job = job_;
        ++active_;
      }
      DrainJob(*job);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_;
      }
      done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  std::size_t active_ = 0;
  std::size_t requested_ = 0;            // 0 = auto
  std::uint64_t spawned_generation_ = 0; // generation of current workers
  std::uint64_t stop_generation_ = 0;    // generations <= this must exit
};

}  // namespace

std::size_t ThreadCount() { return Pool::Instance().thread_count(); }

void SetThreadCount(std::size_t n) { Pool::Instance().set_thread_count(n); }

bool InParallelRegion() { return t_in_parallel_region; }

void ParallelFor(std::size_t n, std::size_t chunk,
                 const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t threads = ThreadCount();
  if (n == 1 || threads <= 1 || t_in_parallel_region) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Job job;
  job.n = n;
  job.chunk = chunk > 0 ? chunk : std::max<std::size_t>(1, n / (threads * 8));
  job.body = &body;
  Pool::Instance().Run(job);
}

}  // namespace cordial
