// Descriptive statistics and the chi-square machinery used by the
// empirical-study analyses (Fig 4 of the paper) and by feature scoring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cordial {

/// Streaming mean/variance accumulator (Welford). Numerically stable.
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p-quantile (0 <= p <= 1) with linear interpolation. Sorts a copy.
double Quantile(std::vector<double> values, double p);

/// Pearson chi-square statistic for an observed-vs-expected contingency.
/// Cells with expected == 0 must have observed == 0 and contribute 0.
double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected);

/// Chi-square test of independence on a 2x2 table [[a,b],[c,d]].
/// Returns the statistic (1 degree of freedom).
double ChiSquare2x2(double a, double b, double c, double d);

/// Upper-tail p-value of the chi-square distribution with `dof` degrees of
/// freedom, i.e. P(X >= statistic). Computed via the regularized incomplete
/// gamma function (series + continued fraction), accurate to ~1e-10.
double ChiSquarePValue(double statistic, double dof);

/// Regularized lower incomplete gamma P(a, x).
double RegularizedGammaP(double a, double x);

/// Natural log of the gamma function (Lanczos approximation).
double LogGamma(double x);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bin. Used by the bank error-map renderer and the benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void Add(double x);
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace cordial
