// Versioned magic + length + checksum framing for persisted streams.
//
// Every model file and engine snapshot starts with one header line. Layout
// v2 (current) is
//
//   <magic> v<version> <payload_bytes> crc32=<8 hex digits>\n
//
// followed by exactly payload_bytes of payload, whose CRC-32 (IEEE,
// reflected — the zlib/PNG polynomial) must match the header. Layout v1
// lacked the crc32 field:
//
//   <magic> v<version> <payload_bytes>\n
//
// The header makes the failure modes distinguishable at load time: a stream
// that is not ours at all (wrong magic), a stream written by an
// incompatible build (version mismatch), a stream cut short mid-write
// (length mismatch), and a stream whose bytes rotted at rest or in transit
// (checksum mismatch) — each rejected with a ParseError naming the
// expectation. Frames nest: a checkpoint frame's payload can itself contain
// framed engine sections, each carrying its own checksum.
//
// Migration: ReadFramed still accepts v1 (checksum-less) frames so
// checkpoints written by older builds keep restoring; each such read is
// tallied in FramingStats and warned once per magic on stderr, so operators
// learn their state predates corruption detection. A malformed checksum
// field is NOT treated as v1 — anything after the byte count other than a
// well-formed crc32 token is a ParseError, so a bit flip inside the header
// cannot demote a checksummed frame to an unchecked one.
//
// The token helpers below are the shared text codec for snapshot payloads:
// whitespace-separated tokens, doubles rendered with %.17g so every value
// round-trips bit-exactly (the same convention the ml model serialization
// and the MCE CSV codec use). Non-finite doubles round-trip too (as the
// tokens nan/-nan/inf/-inf): a poisoned stat must survive a
// checkpoint/restore cycle rather than brick it.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>

namespace cordial {

/// On-wire header layout generation (bumped when the header line itself
/// changes shape). v2 added the crc32 field; v1 frames remain readable.
inline constexpr std::uint32_t kFramingLayoutVersion = 2;

/// Upper bound on a single frame's payload. A parsed length above this is a
/// corrupt header, rejected before any allocation — a flipped bit in the
/// byte count must produce a ParseError, not a bad_alloc.
inline constexpr std::uint64_t kMaxFramePayloadBytes =
    1ull * 1024 * 1024 * 1024;  // 1 GiB

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of `data` —
/// the zlib/PNG checksum.
std::uint32_t Crc32(std::string_view data);

/// Running tallies of every frame this process has read, for the
/// warn-and-count legacy migration. Monotonic, thread-safe.
struct FramingStats {
  std::uint64_t checksummed_frames_read = 0;  ///< v2 frames (CRC verified)
  std::uint64_t legacy_frames_read = 0;       ///< v1 frames (no CRC; warned)
};
FramingStats GetFramingStats();

/// One parsed header line — the shared grammar between the stream reader
/// (ReadFramed) and the network plane's incremental frame assembler
/// (net::FrameAssembler), which sees a byte buffer instead of an istream
/// and must learn the payload length before the payload has arrived.
struct FrameHeader {
  std::string magic;
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  bool has_checksum = false;  ///< false = layout v1 (checksum-less)
  std::uint32_t crc32 = 0;    ///< meaningful only when has_checksum
};

/// Parse one header line (the bytes before the '\n', exclusive). Throws
/// ParseError on anything that is not a well-formed layout v1/v2 header:
/// missing fields, a malformed version or checksum token, or a payload
/// length above kMaxFramePayloadBytes. Performs no magic/version
/// expectation checks — callers compare against what they expect so the
/// error can name both sides.
FrameHeader ParseFrameHeaderLine(std::string_view line);

/// Write `payload` wrapped in a `<magic> v<version> <bytes> crc32=<hex>`
/// header (layout v2).
void WriteFramed(std::ostream& out, const std::string& magic,
                 std::uint32_t version, const std::string& payload);

/// Read one frame and return its payload. Throws ParseError when the magic
/// differs, the version is not `expected_version`, the payload is shorter
/// than the header promised, the promised length is implausible
/// (> kMaxFramePayloadBytes, or beyond the stream's remaining bytes when it
/// is seekable), or the payload's CRC-32 does not match the header's.
/// Checksum-less layout-v1 frames are accepted with a counted warning.
std::string ReadFramed(std::istream& in, const std::string& magic,
                       std::uint32_t expected_version);

/// ReadFramed for a magic whose payload exists in several accepted
/// versions (e.g. engine snapshots: v1 text, v2 binary). Identical checks,
/// except the frame version must be one of `accepted_versions`; the version
/// actually found is stored through `version_out` (when non-null) so the
/// caller can dispatch to the right payload parser.
std::string ReadFramedAny(std::istream& in, const std::string& magic,
                          std::initializer_list<std::uint32_t> accepted_versions,
                          std::uint32_t* version_out = nullptr);

/// Magic of the next frame without consuming it (empty at end of stream).
std::string PeekMagic(std::istream& in);

// --- token codec (shared by the snapshot serializers) ---------------------

/// Append a lossless %.17g rendering of `value`. Non-finite values render
/// as nan/-nan/inf/-inf and round-trip through ReadDoubleToken.
void WriteDoubleToken(std::ostream& out, double value);

/// Read one double token; ParseError mentioning `context` on failure.
/// Accepts the non-finite tokens WriteDoubleToken emits.
double ReadDoubleToken(std::istream& in, const char* context);

/// Read one unsigned integer token; ParseError mentioning `context`.
std::uint64_t ReadU64Token(std::istream& in, const char* context);

/// Read one signed integer token; ParseError mentioning `context`.
std::int64_t ReadI64Token(std::istream& in, const char* context);

/// Consume one token and require it to equal `token`.
void ExpectToken(std::istream& in, const char* token);

}  // namespace cordial
