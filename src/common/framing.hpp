// Versioned magic + length framing for persisted streams.
//
// Every model file and engine snapshot starts with one header line
//
//   <magic> v<version> <payload_bytes>\n
//
// followed by exactly payload_bytes of payload. The header makes the three
// failure modes distinguishable at load time: a stream that is not ours at
// all (wrong magic), a stream written by an incompatible build (version
// mismatch), and a stream cut short mid-write (length mismatch) — each
// rejected with a ParseError naming the expectation. Frames nest: a
// checkpoint frame's payload can itself contain framed engine sections.
//
// The token helpers below are the shared text codec for snapshot payloads:
// whitespace-separated tokens, doubles rendered with %.17g so every value
// round-trips bit-exactly (the same convention the ml model serialization
// and the MCE CSV codec use).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace cordial {

/// Write `payload` wrapped in a `<magic> v<version> <bytes>` header.
void WriteFramed(std::ostream& out, const std::string& magic,
                 std::uint32_t version, const std::string& payload);

/// Read one frame and return its payload. Throws ParseError when the magic
/// differs, the version is not `expected_version`, or the payload is shorter
/// than the header promised.
std::string ReadFramed(std::istream& in, const std::string& magic,
                       std::uint32_t expected_version);

/// Magic of the next frame without consuming it (empty at end of stream).
std::string PeekMagic(std::istream& in);

// --- token codec (shared by the snapshot serializers) ---------------------

/// Append a lossless %.17g rendering of `value`.
void WriteDoubleToken(std::ostream& out, double value);

/// Read one double token; ParseError mentioning `context` on failure.
double ReadDoubleToken(std::istream& in, const char* context);

/// Read one unsigned integer token; ParseError mentioning `context`.
std::uint64_t ReadU64Token(std::istream& in, const char* context);

/// Read one signed integer token; ParseError mentioning `context`.
std::int64_t ReadI64Token(std::istream& in, const char* context);

/// Consume one token and require it to equal `token`.
void ExpectToken(std::istream& in, const char* token);

}  // namespace cordial
