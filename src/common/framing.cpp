#include "common/framing.hpp"

#include <cstdio>
#include <istream>
#include <ostream>

#include "common/check.hpp"

namespace cordial {

namespace {

std::uint32_t ParseVersionToken(const std::string& token,
                                const std::string& magic) {
  if (token.size() < 2 || token[0] != 'v') {
    throw ParseError(magic + ": malformed version token '" + token + "'");
  }
  std::uint32_t version = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    const char c = token[i];
    if (c < '0' || c > '9') {
      throw ParseError(magic + ": malformed version token '" + token + "'");
    }
    version = version * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return version;
}

}  // namespace

void WriteFramed(std::ostream& out, const std::string& magic,
                 std::uint32_t version, const std::string& payload) {
  out << magic << " v" << version << ' ' << payload.size() << '\n' << payload;
}

std::string ReadFramed(std::istream& in, const std::string& magic,
                       std::uint32_t expected_version) {
  std::string seen_magic;
  if (!(in >> seen_magic)) throw ParseError(magic + ": empty stream");
  if (seen_magic != magic) {
    throw ParseError(magic + ": bad magic '" + seen_magic +
                     "' (not a " + magic + " stream)");
  }
  std::string version_token;
  if (!(in >> version_token)) throw ParseError(magic + ": missing version");
  const std::uint32_t version = ParseVersionToken(version_token, magic);
  if (version != expected_version) {
    throw ParseError(magic + ": version mismatch — stream is v" +
                     std::to_string(version) + ", this build reads v" +
                     std::to_string(expected_version));
  }
  std::uint64_t bytes = 0;
  if (!(in >> bytes)) throw ParseError(magic + ": missing payload length");
  // The single separator newline written by WriteFramed.
  if (in.get() != '\n') throw ParseError(magic + ": malformed header");
  std::string payload(static_cast<std::size_t>(bytes), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != bytes) {
    throw ParseError(magic + ": truncated payload (expected " +
                     std::to_string(bytes) + " bytes, got " +
                     std::to_string(in.gcount()) + ")");
  }
  return payload;
}

std::string PeekMagic(std::istream& in) {
  const auto start = in.tellg();
  std::string magic;
  if (!(in >> magic)) {
    in.clear();
    in.seekg(start);
    return std::string();
  }
  in.seekg(start);
  return magic;
}

void WriteDoubleToken(std::ostream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

double ReadDoubleToken(std::istream& in, const char* context) {
  double value = 0.0;
  if (!(in >> value)) {
    throw ParseError(std::string(context) + ": malformed double");
  }
  return value;
}

std::uint64_t ReadU64Token(std::istream& in, const char* context) {
  std::uint64_t value = 0;
  if (!(in >> value)) {
    throw ParseError(std::string(context) + ": malformed unsigned integer");
  }
  return value;
}

std::int64_t ReadI64Token(std::istream& in, const char* context) {
  std::int64_t value = 0;
  if (!(in >> value)) {
    throw ParseError(std::string(context) + ": malformed integer");
  }
  return value;
}

void ExpectToken(std::istream& in, const char* token) {
  std::string word;
  if (!(in >> word) || word != token) {
    throw ParseError(std::string("expected token '") + token + "', got '" +
                     word + "'");
  }
}

}  // namespace cordial
