#include "common/framing.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <iostream>
#include <istream>
#include <mutex>
#include <ostream>
#include <set>

#include "common/check.hpp"
#include "common/failpoint.hpp"

namespace cordial {

namespace {

std::uint32_t ParseVersionToken(const std::string& token,
                                const std::string& magic) {
  if (token.size() < 2 || token[0] != 'v') {
    throw ParseError(magic + ": malformed version token '" + token + "'");
  }
  std::uint32_t version = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    const char c = token[i];
    if (c < '0' || c > '9') {
      throw ParseError(magic + ": malformed version token '" + token + "'");
    }
    version = version * 10 + static_cast<std::uint32_t>(c - '0');
  }
  return version;
}

std::atomic<std::uint64_t> g_checksummed_frames{0};
std::atomic<std::uint64_t> g_legacy_frames{0};

/// Warn once per magic that its frames predate the checksum layout; a
/// checkpoint nests dozens of engine frames and repeating the warning per
/// frame would bury the log.
void WarnLegacyFrame(const std::string& magic) {
  static std::mutex mutex;
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  if (!warned->insert(magic).second) return;
  std::cerr << "warning: " << magic
            << " frame has no crc32 field (layout v1, written by an older "
               "build) — payload corruption is undetectable; rewrite it "
               "with this build to gain checksums\n";
}

/// Everything after the magic token on a header line: " v<version>
/// <bytes> crc32=<8 hex>" is ~40 bytes at the widest legal values; anything
/// longer before the newline is a corrupt header.
constexpr std::size_t kMaxHeaderRestBytes = 64;

/// Strictly the alphabet WriteFramed emits (%08x): lowercase only. Accepting
/// uppercase would let a bit flip inside the checksum field ('c' ^ 0x20 =
/// 'C') produce a header that still parses to the same CRC value, i.e. a
/// corrupted-but-accepted frame header.
int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  // Slice-by-8: eight derived tables let one iteration fold eight input
  // bytes, versus one per iteration for the classic single-table form. The
  // network plane checksums every frame on both ends of every connection,
  // so this sits on the ingest hot path; the polynomial and the result are
  // unchanged (reflected 0xEDB88320, zlib-compatible).
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (std::size_t k = 1; k < 8; ++k) {
        t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
      }
    }
    return t;
  }();
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  std::uint32_t crc = 0xFFFFFFFFu;
  while (n >= 8) {
    // Byte-assembled loads keep this endian-independent; compilers emit a
    // single 32-bit load on little-endian targets.
    const std::uint32_t lo = static_cast<std::uint32_t>(p[0]) |
                             static_cast<std::uint32_t>(p[1]) << 8 |
                             static_cast<std::uint32_t>(p[2]) << 16 |
                             static_cast<std::uint32_t>(p[3]) << 24;
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             static_cast<std::uint32_t>(p[5]) << 8 |
                             static_cast<std::uint32_t>(p[6]) << 16 |
                             static_cast<std::uint32_t>(p[7]) << 24;
    crc ^= lo;
    crc = tables[7][crc & 0xFFu] ^ tables[6][(crc >> 8) & 0xFFu] ^
          tables[5][(crc >> 16) & 0xFFu] ^ tables[4][crc >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

FrameHeader ParseFrameHeaderLine(std::string_view line) {
  FrameHeader header;
  std::size_t pos = 0;
  const auto take_token = [&]() -> std::string_view {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
    return line.substr(start, pos - start);
  };
  header.magic = std::string(take_token());
  if (header.magic.empty()) {
    throw ParseError("frame header: missing magic");
  }
  const std::string version_token(take_token());
  if (version_token.empty()) {
    throw ParseError(header.magic + ": missing version");
  }
  header.version = ParseVersionToken(version_token, header.magic);
  const std::string_view bytes_token = take_token();
  if (bytes_token.empty()) {
    throw ParseError(header.magic + ": missing payload length");
  }
  const auto [ptr, ec] =
      std::from_chars(bytes_token.data(), bytes_token.data() + bytes_token.size(),
                      header.payload_bytes);
  if (ec != std::errc() || ptr != bytes_token.data() + bytes_token.size()) {
    throw ParseError(header.magic + ": malformed payload length '" +
                     std::string(bytes_token) + "'");
  }
  // The header tail keeps the old ReadFramed grammar exactly: empty for
  // layout v1, or precisely " crc32=<8 lowercase hex>" for v2 — anything
  // else is a corrupt header, never a demotion to the checksum-less layout.
  const std::string tail(line.substr(pos));
  if (!tail.empty()) {
    const std::string prefix = " crc32=";
    if (tail.size() != prefix.size() + 8 ||
        tail.compare(0, prefix.size(), prefix) != 0) {
      throw ParseError(header.magic + ": malformed checksum field '" + tail +
                       "'");
    }
    for (std::size_t i = prefix.size(); i < tail.size(); ++i) {
      const int digit = HexDigit(tail[i]);
      if (digit < 0) {
        throw ParseError(header.magic + ": malformed checksum field '" + tail +
                         "'");
      }
      header.crc32 =
          (header.crc32 << 4) | static_cast<std::uint32_t>(digit);
    }
    header.has_checksum = true;
  }
  // Sanity-cap the promised length before anyone allocates for it: a
  // corrupt byte count must be a ParseError, not a bad_alloc.
  if (header.payload_bytes > kMaxFramePayloadBytes) {
    throw ParseError(header.magic + ": implausible payload length " +
                     std::to_string(header.payload_bytes) + " (limit " +
                     std::to_string(kMaxFramePayloadBytes) + " bytes)");
  }
  return header;
}

FramingStats GetFramingStats() {
  FramingStats stats;
  stats.checksummed_frames_read =
      g_checksummed_frames.load(std::memory_order_relaxed);
  stats.legacy_frames_read = g_legacy_frames.load(std::memory_order_relaxed);
  return stats;
}

void WriteFramed(std::ostream& out, const std::string& magic,
                 std::uint32_t version, const std::string& payload) {
  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(payload));
  out << magic << " v" << version << ' ' << payload.size() << " crc32="
      << crc_hex << '\n'
      << payload;
}

std::string ReadFramed(std::istream& in, const std::string& magic,
                       std::uint32_t expected_version) {
  return ReadFramedAny(in, magic, {expected_version}, nullptr);
}

std::string ReadFramedAny(std::istream& in, const std::string& magic,
                          std::initializer_list<std::uint32_t> accepted_versions,
                          std::uint32_t* version_out) {
  CORDIAL_FAILPOINT("common.framing.read",
                    throw ParseError(magic +
                                     ": injected read failure (failpoint "
                                     "common.framing.read)"));
  std::string seen_magic;
  if (!(in >> seen_magic)) throw ParseError(magic + ": empty stream");
  if (seen_magic != magic) {
    throw ParseError(magic + ": bad magic '" + seen_magic +
                     "' (not a " + magic + " stream)");
  }
  // The rest of the header line, read strictly character-by-character —
  // whitespace-skipping extraction could silently consume payload bytes on
  // a corrupt header. The grammar itself lives in ParseFrameHeaderLine,
  // shared with the network plane's incremental frame assembler.
  std::string rest;
  for (;;) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      throw ParseError(magic + ": malformed header");
    }
    if (c == '\n') break;
    rest.push_back(static_cast<char>(c));
    if (rest.size() > kMaxHeaderRestBytes) {
      throw ParseError(magic + ": malformed header");
    }
  }
  const FrameHeader header = ParseFrameHeaderLine(seen_magic + rest);
  bool version_ok = false;
  for (const std::uint32_t accepted : accepted_versions) {
    if (header.version == accepted) version_ok = true;
  }
  if (!version_ok) {
    std::string accepted_list;
    for (const std::uint32_t accepted : accepted_versions) {
      if (!accepted_list.empty()) accepted_list += "/";
      accepted_list += "v" + std::to_string(accepted);
    }
    throw ParseError(magic + ": version mismatch — stream is v" +
                     std::to_string(header.version) + ", this build reads " +
                     accepted_list);
  }
  if (version_out != nullptr) *version_out = header.version;
  const std::uint64_t bytes = header.payload_bytes;
  const bool has_checksum = header.has_checksum;
  const std::uint32_t expected_crc = header.crc32;
  const std::streampos pos = in.tellg();
  if (pos != std::streampos(-1)) {
    in.seekg(0, std::ios::end);
    const std::streampos end = in.tellg();
    in.seekg(pos);
    if (end != std::streampos(-1) &&
        bytes > static_cast<std::uint64_t>(end - pos)) {
      throw ParseError(magic + ": truncated payload (header promises " +
                       std::to_string(bytes) + " bytes, stream has " +
                       std::to_string(static_cast<std::int64_t>(end - pos)) +
                       " left)");
    }
  }

  std::string payload(static_cast<std::size_t>(bytes), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(bytes));
  if (static_cast<std::uint64_t>(in.gcount()) != bytes) {
    throw ParseError(magic + ": truncated payload (expected " +
                     std::to_string(bytes) + " bytes, got " +
                     std::to_string(in.gcount()) + ")");
  }
  if (has_checksum) {
    const std::uint32_t actual_crc = Crc32(payload);
    if (actual_crc != expected_crc) {
      char expected_hex[16], actual_hex[16];
      std::snprintf(expected_hex, sizeof(expected_hex), "%08x", expected_crc);
      std::snprintf(actual_hex, sizeof(actual_hex), "%08x", actual_crc);
      throw ParseError(magic + ": payload checksum mismatch (header crc32=" +
                       expected_hex + ", payload crc32=" + actual_hex +
                       ") — corrupt frame");
    }
    g_checksummed_frames.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_legacy_frames.fetch_add(1, std::memory_order_relaxed);
    WarnLegacyFrame(magic);
  }
  return payload;
}

std::string PeekMagic(std::istream& in) {
  const auto start = in.tellg();
  std::string magic;
  if (!(in >> magic)) {
    in.clear();
    in.seekg(start);
    return std::string();
  }
  in.seekg(start);
  return magic;
}

void WriteDoubleToken(std::ostream& out, double value) {
  if (std::isnan(value)) {
    out << (std::signbit(value) ? "-nan" : "nan");
    return;
  }
  if (std::isinf(value)) {
    out << (std::signbit(value) ? "-inf" : "inf");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

double ReadDoubleToken(std::istream& in, const char* context) {
  // operator>>(double) rejects the nan/inf tokens WriteDoubleToken emits
  // (and, pre-fix, silently poisoned checkpoints containing them), so parse
  // the token through strtod, which accepts them and round-trips %.17g
  // output bit-exactly.
  std::string token;
  if (!(in >> token)) {
    throw ParseError(std::string(context) + ": malformed double");
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    throw ParseError(std::string(context) + ": malformed double '" + token +
                     "'");
  }
  return value;
}

std::uint64_t ReadU64Token(std::istream& in, const char* context) {
  std::uint64_t value = 0;
  if (!(in >> value)) {
    throw ParseError(std::string(context) + ": malformed unsigned integer");
  }
  return value;
}

std::int64_t ReadI64Token(std::istream& in, const char* context) {
  std::int64_t value = 0;
  if (!(in >> value)) {
    throw ParseError(std::string(context) + ": malformed integer");
  }
  return value;
}

void ExpectToken(std::istream& in, const char* token) {
  std::string word;
  if (!(in >> word) || word != token) {
    throw ParseError(std::string("expected token '") + token + "', got '" +
                     word + "'");
  }
}

}  // namespace cordial
