// Fault-injection points for durability and I/O failure testing.
//
// A failpoint is a named site in production code where a test (or an
// operator reproducing an incident) can force a failure: a syscall that
// reports EIO, a frame read that throws, a process that power-cuts mid
// checkpoint. Failpoints are compiled in unconditionally — the crash paths
// they guard are exactly the ones that must stay testable in release builds
// — but cost one relaxed atomic load per hit while nothing is armed, so the
// hot paths pay nothing in normal operation.
//
// Activation is programmatic (tests call Arm/Disarm) or environmental: the
// CORDIAL_FAILPOINTS variable is parsed once at process start,
//
//   CORDIAL_FAILPOINTS="serve.checkpoint.fsync,serve.checkpoint.crash_before_rename=2:1"
//
// arms a comma-separated list of `name[=skip[:count]]` specs: the first
// `skip` hits pass through, the next `count` hits fail (count omitted or
// negative = every subsequent hit fails until disarmed; a finite count
// auto-disarms when exhausted).
//
// The failpoint registry decides only *whether* a hit fails; the site
// decides *what* failing means (throw, errno + -1, ::_exit). The catalogue
// of compiled-in sites lives in DESIGN.md §"Durability".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cordial::failpoint {

/// Arm `name`: the next `skip` hits pass, then `count` hits fail. A
/// negative `count` fails every hit until Disarm; a finite count disarms
/// itself when spent. Re-arming an armed name replaces its spec.
void Arm(const std::string& name, std::uint64_t skip = 0,
         std::int64_t count = -1);

/// Disarm `name` (no-op when not armed).
void Disarm(const std::string& name);

/// Disarm everything (tests call this in teardown).
void DisarmAll();

/// True when at least one failpoint is armed. This is the zero-cost guard:
/// one relaxed atomic load, no locking, no string handling.
bool AnyArmed();

/// Hits observed for `name` since it was last armed (0 when not armed).
/// Counts both passed-through and failed hits; for test assertions.
std::uint64_t HitCount(const std::string& name);

/// Names currently armed, sorted (for /statusz style introspection).
std::vector<std::string> ArmedNames();

/// Parse CORDIAL_FAILPOINTS and arm what it names. Called automatically
/// once at process start (static initializer); exposed for tests that set
/// the variable afterwards. Malformed specs are ignored with a stderr
/// warning rather than aborting the process.
void ArmFromEnv();

/// One hit of the failpoint `name`: true when this hit must fail. The
/// fast path (nothing armed anywhere) is a single relaxed atomic load.
bool ShouldFail(const char* name);

}  // namespace cordial::failpoint

/// Run `action` (throw, errno assignment, ::_exit, ...) when this hit of
/// `name` is armed to fail.
#define CORDIAL_FAILPOINT(name, action)                  \
  do {                                                   \
    if (::cordial::failpoint::ShouldFail(name)) {        \
      action;                                            \
    }                                                    \
  } while (0)
