#include "common/rng.hpp"

#include <cmath>

namespace cordial {

std::uint64_t Rng::UniformU64(std::uint64_t bound) {
  CORDIAL_CHECK_MSG(bound > 0, "UniformU64 bound must be positive");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = (-bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  CORDIAL_CHECK_MSG(lo <= hi, "UniformInt requires lo <= hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(Next());
  }
  return lo + static_cast<std::int64_t>(UniformU64(span));
}

double Rng::UniformReal() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  CORDIAL_CHECK_MSG(lo <= hi, "UniformReal requires lo <= hi");
  return lo + (hi - lo) * UniformReal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

std::uint64_t Rng::Poisson(double mean) {
  CORDIAL_CHECK_MSG(mean >= 0.0, "Poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = UniformReal();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= UniformReal();
    }
    return count;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean regime used by the workload generators (mean >= 30).
  double draw;
  do {
    draw = Normal(mean, std::sqrt(mean));
  } while (draw < -0.5);
  return static_cast<std::uint64_t>(std::llround(draw));
}

std::uint64_t Rng::Geometric(double p) {
  CORDIAL_CHECK_MSG(p > 0.0 && p <= 1.0, "Geometric p must be in (0,1]");
  if (p == 1.0) return 0;
  const double u = 1.0 - UniformReal();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = UniformReal();
  } while (u1 <= 0.0);
  const double u2 = UniformReal();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  CORDIAL_CHECK_MSG(stddev >= 0.0, "Normal stddev must be non-negative");
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  CORDIAL_CHECK_MSG(rate > 0.0, "Exponential rate must be positive");
  double u;
  do {
    u = UniformReal();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

std::size_t Rng::WeightedChoice(const std::vector<double>& weights) {
  CORDIAL_CHECK_MSG(!weights.empty(), "WeightedChoice requires weights");
  double total = 0.0;
  for (double w : weights) {
    CORDIAL_CHECK_MSG(w >= 0.0, "WeightedChoice weights must be non-negative");
    total += w;
  }
  CORDIAL_CHECK_MSG(total > 0.0, "WeightedChoice weights must not all be zero");
  double target = UniformReal() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (target < weights[i]) return i;
    target -= weights[i];
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  CORDIAL_CHECK_MSG(k <= n, "cannot sample more items than the population");
  // Floyd's algorithm: O(k) expected, no O(n) scratch.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(UniformU64(j + 1));
    bool seen = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

}  // namespace cordial
