// Minimal RFC-4180-ish CSV reader/writer used to persist generated traces,
// feature matrices and bench outputs. Handles quoting, embedded commas,
// quotes and newlines; rejects structurally malformed input with ParseError.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cordial {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row; fields are quoted only when needed.
  void WriteRow(const std::vector<std::string>& fields);

  static std::string EscapeField(const std::string& field);

 private:
  std::ostream& out_;
};

class CsvReader {
 public:
  /// Reads the entire stream into rows. Throws ParseError on unterminated
  /// quotes. Empty input yields no rows. A trailing newline does not produce
  /// a final empty row.
  static std::vector<std::vector<std::string>> ReadAll(std::istream& in);

  /// Parse a single CSV line (no embedded newlines).
  static std::vector<std::string> ParseLine(const std::string& line);
};

}  // namespace cordial
