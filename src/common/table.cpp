#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace cordial {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'E' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CORDIAL_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void TextTable::AddRow(std::vector<std::string> row) {
  CORDIAL_CHECK_MSG(row.size() == header_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

std::string TextTable::Render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  std::size_t total = header_.size() * 3 + 1;
  for (std::size_t w : width) total += w;

  std::ostringstream os;
  const std::string rule(total, '-');
  if (!title.empty()) os << title << '\n';
  os << rule << '\n';

  auto emit_row = [&](const std::vector<std::string>& row, bool align) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      os << ' ';
      if (align && LooksNumeric(cell)) {
        os << std::string(pad, ' ') << cell;
      } else {
        os << cell << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };

  emit_row(header_, false);
  os << rule << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << rule << '\n';
    } else {
      emit_row(row, true);
    }
  }
  os << rule << '\n';
  return os.str();
}

std::string TextTable::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace cordial
