// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic code in cordial draws from Rng so that a (seed, config) pair
// fully determines a generated fleet, a trained model, and every benchmark
// table. The engine is xoshiro256** seeded via SplitMix64, which is fast,
// has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace cordial {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic random engine (xoshiro256**) with the distributions the
/// simulator and the learners need. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcd5678ef00ULL) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  /// Derive an independent child stream via SplitMix64 seed-splitting.
  /// Const and draw-free: the child depends only on the parent's current
  /// state and the stream id, so forking tasks 0..n-1 yields the same
  /// streams regardless of fork order or thread count. This is what makes
  /// the parallel execution layer deterministic by construction — every
  /// parallel task forks its own child at its task index.
  Rng Fork(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ Rotl(state_[1], 19) ^ Rotl(state_[2], 37) ^
                       state_[3];
    sm ^= 0x9e3779b97f4a7c15ULL * (stream_id + 1);
    return Rng(SplitMix64(sm));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Uses Lemire's multiply-shift with rejection.
  std::uint64_t UniformU64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double UniformReal();

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// PTRS transformed rejection for large means).
  std::uint64_t Poisson(double mean);

  /// Geometric: number of failures before first success, p in (0,1].
  std::uint64_t Geometric(double p);

  /// Standard normal via Box-Muller (cached second variate).
  double Normal();
  double Normal(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double Exponential(double rate);

  /// Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Index in [0, weights.size()) with probability proportional to weight.
  std::size_t WeightedChoice(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformU64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (order unspecified).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cordial
