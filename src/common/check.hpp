// Lightweight contract checking for the cordial libraries.
//
// CORDIAL_CHECK is always on (release included): these libraries drive
// fleet-maintenance decisions, so a wrong answer is worse than an abort.
// Violations throw, so callers and tests can observe them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cordial {

/// Thrown when a CORDIAL_CHECK contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on malformed external input (log files, CSV, config).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "CORDIAL_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace cordial

#define CORDIAL_CHECK(expr)                                                \
  do {                                                                     \
    if (!(expr)) ::cordial::detail::CheckFailed(#expr, __FILE__, __LINE__, \
                                                std::string());            \
  } while (0)

#define CORDIAL_CHECK_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) ::cordial::detail::CheckFailed(#expr, __FILE__, __LINE__, \
                                                (msg));                    \
  } while (0)
