// Lock-free bounded MPSC ring + the park/wake primitive the serving hot
// path waits with.
//
// `MpscRing<T>` is a bounded FIFO in the Vyukov bounded-queue style: a slot
// array where each slot carries its own sequence counter, so producers and
// consumers synchronize per-slot with acquire/release pairs and the only
// shared hot words are the head and tail tickets (each on its own cache
// line, like the slots). There is no mutex anywhere on the push/pop path —
// a push is one CAS on the tail plus one release store into the claimed
// slot; a pop is one CAS on the head plus one release store that frees the
// slot for the next lap.
//
// Design points that matter to the serving layer (`serve::EngineShard`):
//
//  * Exact capacity, any value >= 1. The bound is enforced by the slot
//    sequence check itself (a slot still holding the previous lap's element
//    refuses the claim), not by an approximate head/tail subtraction, so
//    overload policies see precisely `capacity` queued records — identical
//    to the mutex-guarded deque this replaces. Power-of-two capacities use
//    a mask; others pay one integer remainder per operation.
//
//  * Batched claim. `TryPushBatch` claims a contiguous run of slots with a
//    single CAS on the tail, then fills the run with independent release
//    stores; `TryPopBatch` drains up to N elements per call. Batching
//    amortizes the CAS and the producer→consumer wakeup over the run —
//    this is where the ingest-path win comes from (bench/
//    perf_queue_throughput.cpp).
//
//  * Pops are MPMC-safe even though the steady-state consumer is a single
//    worker: under the drop-oldest overload policy a *producer* evicts the
//    head concurrently with the worker, so `TryPop` claims via CAS rather
//    than assuming a unique consumer.
//
//  * No blocking. Full/empty are returned, not waited out; callers compose
//    the adaptive spin-then-park policy from `ParkingSpot` (below), which
//    is a futex-shaped eventcount: wait on an atomic epoch, park on a
//    condvar only after the spin budget is spent, and pay one fence + one
//    load on the notify side when nobody is parked.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace cordial {

/// Pause the core briefly inside a spin loop (PAUSE/YIELD where available).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Futex-style park/wake point: an eventcount over an atomic epoch.
///
/// Waiter protocol (the caller owns the spin budget and the condition):
///
///   const std::uint64_t epoch = spot.PrepareWait();
///   if (condition_already_true) { spot.CancelWait(); ... }
///   else spot.Wait(epoch);   // parks unless the epoch already moved
///
/// Notifier protocol: make the condition true, then `Notify()`. Notify is
/// one seq_cst fence plus one load when nobody is parked; the mutex and
/// condvar are touched only to publish the epoch bump to real waiters.
/// The seq_cst pairing between the waiter's registration (`PrepareWait`'s
/// RMW) and the notifier's fence+load closes the classic lost-wakeup race:
/// either the notifier sees the registered waiter, or the waiter's
/// post-registration re-check sees the notifier's state change.
class ParkingSpot {
 public:
  std::uint64_t PrepareWait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void CancelWait() { waiters_.fetch_sub(1, std::memory_order_seq_cst); }

  /// Park until the epoch moves past `epoch` (from PrepareWait). Returns
  /// immediately if it already has. Always de-registers the waiter.
  void Wait(std::uint64_t epoch) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_seq_cst) != epoch;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Wake every parked waiter. Cheap when there are none.
  void Notify() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    {
      // The epoch bumps under the mutex so a waiter between its epoch
      // re-check and cv_.wait cannot miss the change.
      std::lock_guard<std::mutex> lock(mutex_);
      epoch_.fetch_add(1, std::memory_order_seq_cst);
    }
    cv_.notify_all();
  }

 private:
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> waiters_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity)
      : capacity_([&] {
          CORDIAL_CHECK_MSG(capacity >= 1, "ring capacity must be >= 1");
          return capacity;
        }()),
        // The sequence protocol needs >= 2 slots: with one slot, "occupied
        // since position p" (seq p+1) and "free for position p+1" (seq
        // p+stride, stride == 1) are the same value. A capacity-1 ring gets
        // two physical slots and an explicit head/tail gate on push instead
        // (see TryPush), keeping the logical bound exact.
        phys_(capacity >= 2 ? capacity : 2),
        mask_((phys_ & (phys_ - 1)) == 0 ? phys_ - 1 : 0),
        slots_(phys_) {
    for (std::size_t i = 0; i < phys_; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Enqueue one element. On failure (ring full) `value` is untouched, so
  /// callers can retry or fall back without losing the element.
  bool TryPush(T&& value) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Slot* slot;
    for (;;) {
      if (Gated() && pos - head_.load(std::memory_order_acquire) >=
                         capacity_) {
        const std::uint64_t cur = tail_.load(std::memory_order_relaxed);
        if (cur != pos) {
          pos = cur;
          continue;
        }
        return false;  // logical bound reached (capacity < physical slots)
      }
      slot = &slots_[Index(pos)];
      const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq - pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        // The slot still holds the element from `capacity_` positions ago:
        // the ring is exactly full.
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool TryPush(const T& value) { return TryPush(T(value)); }

  /// Claim a contiguous run of up to `count` slots with one CAS on the
  /// tail, move `items[0..n)` into them, and return n (0 when full). The
  /// free-slot scan re-reads the tail on contention so a stale view never
  /// reports "full" spuriously. Unclaimed `items` are untouched.
  std::size_t TryPushBatch(T* items, std::size_t count) {
    if (count == 0) return 0;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    std::size_t n;
    for (;;) {
      // Count free slots from `pos` forward. A slot is free for this lap
      // exactly when its sequence equals its position; stop at the first
      // one that is not (still occupied, or claimed by a racing producer —
      // the CAS below distinguishes the two for us).
      std::size_t avail = count < capacity_ ? count : capacity_;
      if (Gated()) {
        const std::uint64_t used = pos - head_.load(std::memory_order_acquire);
        avail = used >= capacity_ ? 0 : std::min(avail, capacity_ - used);
      }
      n = 0;
      while (n < avail) {
        const std::uint64_t p = pos + n;
        if (slots_[Index(p)].seq.load(std::memory_order_acquire) != p) break;
        ++n;
      }
      if (n == 0) {
        const std::uint64_t cur = tail_.load(std::memory_order_relaxed);
        if (cur != pos) {
          pos = cur;  // raced with another producer: rescan from its tail
          continue;
        }
        return 0;  // genuinely full
      }
      if (tail_.compare_exchange_weak(pos, pos + n,
                                      std::memory_order_relaxed)) {
        break;  // pos..pos+n-1 are ours
      }
      // CAS refreshed `pos` on failure; rescan from the new tail.
    }
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots_[Index(pos + i)];
      slot.value = std::move(items[i]);
      slot.seq.store(pos + i + 1, std::memory_order_release);
    }
    return n;
  }

  /// Dequeue one element. Safe from multiple threads (the drop-oldest
  /// overload policy pops from producers while the worker drains). Returns
  /// false when the ring is empty — or when the head slot is claimed but
  /// its producer has not yet published it, which callers treat as empty
  /// and retry after the publish (the producer's Notify covers them).
  bool TryPop(T& out) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Slot* slot;
    for (;;) {
      slot = &slots_[Index(pos)];
      const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
      const std::int64_t dif = static_cast<std::int64_t>(seq - (pos + 1));
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        const std::uint64_t cur = head_.load(std::memory_order_relaxed);
        if (cur != pos) {
          pos = cur;
          continue;
        }
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(slot->value);
    slot->seq.store(pos + phys_, std::memory_order_release);
    return true;
  }

  /// Drain up to `max` elements into `out`, FIFO order. Per-element CAS
  /// claims (readiness is per-slot, not per-range: a batch producer
  /// publishes its slots independently), but an uncontended consumer pays
  /// no more than the claim itself.
  std::size_t TryPopBatch(T* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && TryPop(out[n])) ++n;
    return n;
  }

  /// True when the next pop would find a published element — the worker's
  /// park predicate (ApproxEmpty would spin on a claimed-but-unpublished
  /// slot; this parks instead and lets the producer's Notify wake us).
  bool PoppableNow() const {
    const std::uint64_t pos = head_.load(std::memory_order_acquire);
    return slots_[Index(pos)].seq.load(std::memory_order_acquire) == pos + 1;
  }

  /// Queued-element estimate straight off the head/tail tickets: two
  /// relaxed-ish loads, no slot traffic. Racy by nature (exact once
  /// producers and the consumer are quiet) — this is the scrape-time
  /// queue-depth read, deliberately free of hot-path cache-line traffic.
  std::size_t ApproxSize() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool ApproxEmpty() const { return ApproxSize() == 0; }

  /// Total elements ever claimed for push / freed by pop (monotone).
  std::uint64_t pushed() const {
    return tail_.load(std::memory_order_acquire);
  }
  std::uint64_t popped() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  /// One element plus its sequence counter, padded to a cache line so
  /// neighbouring slots never false-share between a producer publishing
  /// slot i and the consumer freeing slot i+1.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::size_t Index(std::uint64_t pos) const {
    return mask_ ? static_cast<std::size_t>(pos & mask_)
                 : static_cast<std::size_t>(pos % phys_);
  }

  /// True when the logical bound is below the physical slot count (only
  /// capacity 1) and pushes must check head/tail occupancy themselves.
  bool Gated() const { return capacity_ != phys_; }

  const std::size_t capacity_;  ///< logical bound callers observe
  const std::size_t phys_;      ///< physical slots (max(capacity, 2))
  const std::uint64_t mask_;    // phys-1 when a power of two, else 0
  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next push position
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next pop position
};

}  // namespace cordial
