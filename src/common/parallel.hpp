// Deterministic parallel execution layer.
//
// A small shared thread pool behind two primitives:
//
//   ParallelFor(n, chunk, fn)  — run fn(i) for every i in [0, n), the index
//                                space split into chunks handed to workers.
//   ParallelMap<T>(n, fn)      — gather fn(i) results into a vector in index
//                                order, regardless of execution order.
//
// Determinism by construction: the primitives only schedule *which thread*
// runs an index, never *what* an index computes. Callers that need
// randomness derive one child stream per task via Rng::Fork(task_index)
// (SplitMix64 seed-splitting, const — order-independent), so every result
// is a pure function of (inputs, task index) and therefore bit-identical
// across thread counts, including the serial path.
//
// Thread count: SetThreadCount(n) (0 = auto), else the CORDIAL_THREADS
// environment variable, else std::thread::hardware_concurrency(). Nested
// ParallelFor calls from inside a worker run serially inline, so composed
// parallel code (e.g. a parallel forest fit whose trees use the parallel
// split search) cannot deadlock the pool.
//
// Exceptions thrown by fn stop the loop (remaining chunks are abandoned)
// and the first captured exception is rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace cordial {

/// Worker threads used by ParallelFor/ParallelMap (>= 1). Resolved from
/// SetThreadCount, else CORDIAL_THREADS, else hardware concurrency.
std::size_t ThreadCount();

/// Fix the thread count; 0 restores automatic resolution. Joins and
/// respawns the pool — must not be called while parallel work is running.
void SetThreadCount(std::size_t n);

/// True while the current thread is executing inside a ParallelFor body;
/// nested parallel calls detect this and run serially inline.
bool InParallelRegion();

/// Parse a CORDIAL_THREADS-style value. Returns the thread count, or 0 with
/// `error` filled when `text` is null, empty, has trailing garbage, is
/// non-positive, or exceeds the int range (0 is never a valid result —
/// "auto" is expressed by unsetting the variable). Exposed so the
/// environment-variable handling is testable without mutating the pool.
std::size_t ParseThreadCount(const char* text, std::string& error);

/// Run body(i) for every i in [0, n). `chunk` is the scheduling grain
/// (indices claimed per worker grab); 0 picks a grain that gives each
/// worker several grabs. Runs inline when n <= 1, the pool has one
/// thread, or the caller is already inside a parallel region.
void ParallelFor(std::size_t n, std::size_t chunk,
                 const std::function<void(std::size_t)>& body);

/// Map [0, n) through fn, collecting results in index order. T must be
/// default-constructible and assignable.
template <typename T, typename Fn>
std::vector<T> ParallelMap(std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(n, 0, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace cordial
