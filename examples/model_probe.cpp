// Internal diagnostic: train a cross-row predictor on single-row-cluster
// banks and inspect its probability separation and the precision/recall
// trade-off across thresholds. Used to tune the operating point.
#include <iostream>

#include "analysis/labeler.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/crossrow.hpp"
#include "hbm/address.hpp"
#include "ml/metrics.hpp"
#include "trace/fleet.hpp"

using namespace cordial;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = scale;
  trace::FleetGenerator generator(topology, profile);
  const auto fleet = generator.Generate(seed);
  hbm::AddressCodec codec(topology);
  const auto banks = fleet.log.GroupByBank(codec);
  analysis::PatternLabeler labeler(topology);

  std::vector<const trace::BankHistory*> singles;
  for (const auto& bank : banks) {
    if (!bank.HasUer()) continue;
    if (labeler.LabelClass(bank) == hbm::FailureClass::kSingleRowClustering) {
      singles.push_back(&bank);
    }
  }
  const std::size_t n_train = singles.size() * 7 / 10;
  std::vector<const trace::BankHistory*> train(singles.begin(),
                                               singles.begin() + n_train);
  std::vector<const trace::BankHistory*> test(singles.begin() + n_train,
                                              singles.end());
  std::cout << "single-cluster banks: " << singles.size() << " (train "
            << train.size() << ", test " << test.size() << ")\n";

  core::CrossRowPredictor predictor(topology, ml::LearnerKind::kRandomForest);
  const ml::Dataset train_data = predictor.BuildDataset(train);
  const auto counts = train_data.ClassCounts();
  std::cout << "train samples: " << train_data.size() << " (neg " << counts[0]
            << ", pos " << counts[1] << ", pos rate "
            << TextTable::FormatPercent(static_cast<double>(counts[1]) /
                                        static_cast<double>(train_data.size()))
            << ")\n";
  Rng rng(seed + 99);
  predictor.Train(train, rng);

  // Probability separation on held-out blocks.
  RunningStats pos_proba, neg_proba;
  std::vector<std::pair<double, int>> scored;
  for (const auto* bank : test) {
    for (const auto& anchor : predictor.AnchorsOf(*bank)) {
      const auto truth = predictor.BlockTruth(*bank, anchor);
      const auto proba = predictor.PredictBlockProba(*bank, anchor);
      const auto window = predictor.extractor().WindowAt(anchor.row);
      for (std::size_t b = 0; b < truth.size(); ++b) {
        if (!window.BlockRange(b).has_value()) continue;
        (truth[b] ? pos_proba : neg_proba).Add(proba[b]);
        scored.emplace_back(proba[b], truth[b]);
      }
    }
  }
  std::cout << "positive blocks: mean proba "
            << TextTable::FormatDouble(pos_proba.mean()) << " (n="
            << pos_proba.count() << ", max "
            << TextTable::FormatDouble(pos_proba.max()) << ")\n"
            << "negative blocks: mean proba "
            << TextTable::FormatDouble(neg_proba.mean()) << " (n="
            << neg_proba.count() << ", max "
            << TextTable::FormatDouble(neg_proba.max()) << ")\n\n";

  TextTable pr({"threshold", "precision", "recall", "F1", "fired"});
  for (double t : {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5}) {
    std::uint64_t tp = 0, fp = 0, fn = 0, fired = 0;
    for (const auto& [p, y] : scored) {
      const bool hit = p >= t;
      fired += hit;
      if (hit && y) ++tp;
      if (hit && !y) ++fp;
      if (!hit && y) ++fn;
    }
    const double prec = tp + fp ? static_cast<double>(tp) / (tp + fp) : 0.0;
    const double rec = tp + fn ? static_cast<double>(tp) / (tp + fn) : 0.0;
    const double f1 = prec + rec ? 2 * prec * rec / (prec + rec) : 0.0;
    pr.AddRow({TextTable::FormatDouble(t, 2), TextTable::FormatDouble(prec),
               TextTable::FormatDouble(rec), TextTable::FormatDouble(f1),
               std::to_string(fired)});
  }
  std::cout << pr.Render("threshold sweep (held-out single-cluster blocks)");
  return 0;
}
