// Trace explorer: generate (or load) a fleet trace, print per-shape and
// per-block diagnostics, render example bank error maps, and export the log
// to CSV. Doubles as the calibration-debugging tool for the generator.
//
// Usage: trace_explorer [scale] [seed] [csv_out]
#include <fstream>
#include <iostream>
#include <map>
#include <set>

#include "analysis/empirical.hpp"
#include "analysis/labeler.hpp"
#include "analysis/locality.hpp"
#include "common/table.hpp"
#include "core/crossrow.hpp"
#include "core/features.hpp"
#include "hbm/address.hpp"
#include "hbm/error_map.hpp"
#include "trace/fleet.hpp"
#include "trace/log_codec.hpp"

using namespace cordial;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = scale;
  trace::FleetGenerator generator(topology, profile);
  const trace::GeneratedFleet fleet = generator.Generate(seed);
  hbm::AddressCodec codec(topology);
  const auto banks = fleet.log.GroupByBank(codec);

  std::cout << "=== fleet ===\n"
            << topology.ToString() << "\n"
            << fleet.log.size() << " records across " << banks.size()
            << " banks\n\n";

  // Per-shape statistics from ground truth.
  struct ShapeStats {
    std::size_t banks = 0;
    std::size_t uer_rows = 0;
    std::size_t uer_events = 0;
  };
  std::map<hbm::PatternShape, ShapeStats> by_shape;
  for (const auto& bank : banks) {
    const trace::BankTruth* truth = fleet.FindBank(bank.bank_key);
    if (truth == nullptr) continue;
    auto& s = by_shape[truth->shape];
    ++s.banks;
    s.uer_rows += core::CrossRowPredictor::FirstFailures(bank).size();
    for (const auto& e : bank.events) {
      if (e.type == hbm::ErrorType::kUer) ++s.uer_events;
    }
  }
  TextTable shape_table({"Shape", "Banks", "UER rows", "UER events",
                         "rows/bank"});
  for (const auto& [shape, s] : by_shape) {
    shape_table.AddRow(
        {hbm::PatternShapeName(shape), std::to_string(s.banks),
         std::to_string(s.uer_rows), std::to_string(s.uer_events),
         s.banks ? TextTable::FormatDouble(
                       static_cast<double>(s.uer_rows) /
                       static_cast<double>(s.banks), 2)
                 : "-"});
  }
  std::cout << shape_table.Render("Ground-truth shapes") << "\n";

  // Labeler agreement.
  analysis::PatternLabeler labeler(topology);
  std::cout << "rule-labeler vs truth agreement (class level): "
            << TextTable::FormatPercent(analysis::LabelerAgreement(fleet, labeler))
            << "\n\n";

  // Block-level diagnostics: positive rate by block index and the oracle
  // ceiling (isolate every in-window block at every anchor).
  core::CrossRowPredictor probe(topology, ml::LearnerKind::kRandomForest);
  std::vector<std::size_t> positives(probe.config().n_blocks, 0);
  std::vector<std::size_t> totals(probe.config().n_blocks, 0);
  std::size_t anchors_total = 0;
  std::size_t oracle_covered = 0, total_rows = 0, window_rows_possible = 0;
  for (const auto& bank : banks) {
    if (!bank.HasUer()) continue;
    const auto firsts = core::CrossRowPredictor::FirstFailures(bank);
    total_rows += firsts.size();
    const auto anchors = probe.AnchorsOf(bank);
    anchors_total += anchors.size();
    std::set<std::uint32_t> oracle_isolated;
    for (const auto& anchor : anchors) {
      const auto truth = probe.BlockTruth(bank, anchor);
      const auto window = probe.extractor().WindowAt(anchor.row);
      for (std::size_t b = 0; b < truth.size(); ++b) {
        const auto range = window.BlockRange(b);
        if (!range.has_value()) continue;
        ++totals[b];
        positives[b] += static_cast<std::size_t>(truth[b]);
      }
      // Oracle isolates the whole window after this anchor.
      for (const auto& [row, t] : firsts) {
        if (t > anchor.time_s &&
            std::llabs(static_cast<long long>(row) -
                       static_cast<long long>(anchor.row)) <=
                static_cast<long long>(window.radius())) {
          oracle_isolated.insert(row);
        }
      }
    }
    oracle_covered += oracle_isolated.size();
  }
  window_rows_possible = oracle_covered;
  std::cout << "anchors: " << anchors_total << ", UER rows: " << total_rows
            << ", oracle (isolate full window at every anchor) coverage: "
            << TextTable::FormatPercent(
                   total_rows ? static_cast<double>(window_rows_possible) /
                                    static_cast<double>(total_rows)
                              : 0.0)
            << "\n\nblock positive rates (block 0 = lowest rows):\n";
  for (std::size_t b = 0; b < positives.size(); ++b) {
    std::cout << "  block " << b << ": "
              << TextTable::FormatPercent(
                     totals[b] ? static_cast<double>(positives[b]) /
                                     static_cast<double>(totals[b])
                               : 0.0)
              << "  (" << positives[b] << "/" << totals[b] << ")\n";
  }

  // Locality sweep detail.
  const auto sweep = analysis::ComputeLocalitySweep(
      banks, topology, analysis::DefaultLocalityThresholds());
  TextTable loc({"threshold", "chi-square", "capture"});
  for (const auto& pt : sweep) {
    loc.AddRow({std::to_string(pt.threshold),
                TextTable::FormatDouble(pt.chi_square, 1),
                TextTable::FormatPercent(pt.CaptureRate())});
  }
  std::cout << "\n" << loc.Render("Cross-row locality sweep (Fig 4)");

  // Example error maps, one per shape (Fig 3a).
  for (const auto shape :
       {hbm::PatternShape::kSingleRowCluster, hbm::PatternShape::kDoubleRowCluster,
        hbm::PatternShape::kScattered, hbm::PatternShape::kWholeColumn}) {
    for (const auto& bank : banks) {
      const trace::BankTruth* truth = fleet.FindBank(bank.bank_key);
      if (truth == nullptr || truth->shape != shape) continue;
      hbm::BankErrorMap map(topology);
      for (const auto& e : bank.events) {
        map.Add(e.address.row, e.address.col, e.type);
      }
      std::cout << "\n--- " << hbm::PatternShapeName(shape) << " ---\n"
                << map.Render(24, 64);
      break;
    }
  }

  if (argc > 3) {
    std::ofstream out(argv[3]);
    trace::LogCodec::WriteCsv(fleet.log, out);
    std::cout << "\nwrote " << fleet.log.size() << " records to " << argv[3]
              << "\n";
  }
  return 0;
}
