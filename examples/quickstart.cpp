// Quickstart: generate a synthetic HBM fleet, study its error behaviour and
// run the full Cordial pipeline — in about sixty lines of API use.
//
// Usage: quickstart [scale] [seed]
//   scale  fraction of the paper-sized fleet to simulate (default 0.25)
//   seed   RNG seed (default 42)
#include <cstdlib>
#include <iostream>

#include "analysis/empirical.hpp"
#include "analysis/locality.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1. Describe the platform and generate a fleet-scale error trace.
  cordial::hbm::TopologyConfig topology;
  cordial::trace::CalibrationProfile profile;
  profile.scale = scale;
  cordial::trace::FleetGenerator generator(topology, profile);
  const cordial::trace::GeneratedFleet fleet = generator.Generate(seed);
  std::cout << "fleet: " << fleet.log.size() << " MCE records, "
            << fleet.banks.size() << " faulty banks ("
            << fleet.CountUerBanks() << " with UERs)\n\n";

  // 2. Empirical study: sudden-UER ratio per level (paper Table I).
  cordial::hbm::AddressCodec codec(topology);
  const auto sudden = cordial::analysis::ComputeSuddenUerStudy(fleet.log, codec);
  cordial::TextTable table({"Micro-level", "Sudden UER", "Non-sudden UER",
                            "Predictable Ratio"});
  for (const auto& row : sudden) {
    table.AddRow({cordial::hbm::LevelName(row.level),
                  std::to_string(row.sudden), std::to_string(row.non_sudden),
                  cordial::TextTable::FormatPercent(row.PredictableRatio())});
  }
  std::cout << table.Render("Sudden vs non-sudden UERs by micro-level");

  // 3. Cross-row locality: where does the chi-square statistic peak?
  const auto banks = fleet.log.GroupByBank(codec);
  const auto sweep = cordial::analysis::ComputeLocalitySweep(
      banks, topology, cordial::analysis::DefaultLocalityThresholds());
  std::cout << "\nlocality chi-square peak at distance "
            << cordial::analysis::PeakThreshold(sweep) << " rows\n\n";

  // 4. Full Cordial pipeline: classify patterns, predict cross-row blocks,
  //    and measure the isolation coverage rate against the baseline.
  cordial::core::PipelineConfig config;
  config.learner = cordial::ml::LearnerKind::kRandomForest;
  cordial::core::CordialPipeline pipeline(topology, config);
  const cordial::core::PipelineResult result = pipeline.Run(fleet, seed + 1);

  const auto weighted = result.pattern_confusion.WeightedAverage();
  std::cout << "pattern classification (" << result.test_banks
            << " test banks): weighted F1 = "
            << cordial::TextTable::FormatDouble(weighted.f1) << "\n";

  cordial::TextTable t4({"Method", "Precision", "Recall", "F1", "ICR"});
  for (const auto* eval :
       {&result.neighbor_baseline, &result.cordial}) {
    t4.AddRow({eval->method,
               cordial::TextTable::FormatDouble(eval->block_metrics.precision),
               cordial::TextTable::FormatDouble(eval->block_metrics.recall),
               cordial::TextTable::FormatDouble(eval->block_metrics.f1),
               cordial::TextTable::FormatPercent(eval->icr.Icr())});
  }
  std::cout << t4.Render("Cross-row failure prediction");
  std::cout << "in-row paradigm ICR ceiling: "
            << cordial::TextTable::FormatPercent(result.in_row_icr.Icr())
            << "\n";
  return 0;
}
