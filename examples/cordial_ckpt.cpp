// cordial_ckpt — offline checkpoint-chain inspector.
//
// Operates on a chain directory written by `cordial_serverd
// --checkpoint-mode=delta` (full-<epoch>.ckpt + delta-<epoch>.<seq>.ckpt
// under a CRC manifest; persist/chain.hpp, DESIGN.md §14). Everything here
// is structural — no models, no topology, no engine: member payloads are
// self-delimiting, so the tool can verify, fold and rewrite chains on a
// machine that has nothing but the files.
//
//   cordial_ckpt list <dir>          manifest + per-member table
//   cordial_ckpt verify <dir>        verify manifest, CRCs and member
//                                    structure; exit 0 only when the whole
//                                    chain is sound
//   cordial_ckpt compact <dir>       fold full+deltas into full-<epoch+1>
//                                    on disk and prune the old generation
//   cordial_ckpt export <dir> <out>  fold the chain and write the bytes of
//                                    the equivalent binary full checkpoint
//                                    to <out> ("-" = stdout) — byte-
//                                    identical to the full the server would
//                                    have written at the same boundary
//   cordial_ckpt --version           print the frame versions this build
//                                    speaks
#include <fstream>
#include <iostream>
#include <string>

#include "common/check.hpp"
#include "common/table.hpp"
#include "persist/chain.hpp"
#include "serve/checkpoint.hpp"

using namespace cordial;

namespace {

int Usage() {
  std::cerr << "usage: cordial_ckpt list|verify|compact <chain_dir>\n"
               "       cordial_ckpt export <chain_dir> <out_file|->\n"
               "       cordial_ckpt --version\n";
  return 2;
}

int PrintVersion() {
  std::cout << "cordial_ckpt (cordial 1.0.0)\n"
            << "  chain manifest:    " << persist::kManifestMagic << " v"
            << persist::kManifestVersion << "\n"
            << "  fleet checkpoint:  " << serve::kFleetCheckpointMagic << " v"
            << serve::kFleetCheckpointVersion << "\n"
            << "  fleet delta:       " << serve::kFleetDeltaMagic << " v"
            << serve::kFleetDeltaVersion << "\n";
  return 0;
}

std::string HumanKind(const persist::ChainEntry& entry) {
  return entry.is_full ? "full" : "delta";
}

/// Render the inspection as the shared table + per-problem lines.
int ListChain(const std::string& directory, bool verify) {
  const persist::ChainInspection report = persist::InspectChain(directory);
  for (const std::string& error : report.errors) {
    std::cerr << "manifest: " << error << "\n";
  }
  if (!report.has_manifest) {
    std::cerr << "no usable chain manifest in " << directory << "\n";
    return 1;
  }
  std::cout << "chain epoch " << report.manifest.epoch << ", "
            << report.members.size() << " member(s)\n";
  TextTable table({"Member", "Kind", "Seq", "Bytes", "Shards", "Banks",
                   "Status"});
  for (const persist::MemberInfo& info : report.members) {
    table.AddRow({info.entry.file, HumanKind(info.entry),
                  std::to_string(info.entry.seq),
                  std::to_string(info.actual_bytes),
                  std::to_string(info.shard_count),
                  std::to_string(info.bank_count),
                  info.error.empty() ? "ok" : info.error});
  }
  std::cout << table.Render("checkpoint chain (" + directory + ")");
  if (verify) {
    if (!report.ok()) {
      std::cerr << "chain is NOT sound\n";
      return 1;
    }
    std::cout << "chain is sound\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--version") return PrintVersion();
  }
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string directory = argv[2];
  try {
    if (command == "list") {
      return ListChain(directory, /*verify=*/false);
    }
    if (command == "verify") {
      return ListChain(directory, /*verify=*/true);
    }
    if (command == "compact") {
      const persist::ChainWriteResult result =
          persist::CompactChainFiles(directory);
      std::cout << "compacted chain into " << result.file << " ("
                << result.bytes << " bytes, " << result.banks_written
                << " bank record(s))\n";
      return 0;
    }
    if (command == "export") {
      if (argc < 4) return Usage();
      const std::string out_path = argv[3];
      const std::string bytes = persist::FoldChain(directory);
      if (out_path == "-") {
        std::cout.write(bytes.data(),
                        static_cast<std::streamsize>(bytes.size()));
        std::cout.flush();
        CORDIAL_CHECK_MSG(std::cout.good(), "writing to stdout failed");
      } else {
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        if (!out.is_open()) {
          std::cerr << "cannot open " << out_path << " for writing\n";
          return 1;
        }
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        out.flush();
        CORDIAL_CHECK_MSG(out.good(), "writing the folded checkpoint failed");
      }
      std::cerr << "folded " << directory << " into " << bytes.size()
                << " checkpoint byte(s)\n";
      return 0;
    }
    std::cerr << "cordial_ckpt: unknown command " << command << "\n";
    return Usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
