// cordial_cli — operational command-line front end.
//
//   cordial_cli generate <log.csv> [scale] [seed]
//       synthesize a fleet MCE log and write it as CSV
//   cordial_cli study <log.csv>
//       run the empirical studies (Tables I/II, Fig 3b, Fig 4) on a log
//   cordial_cli train <log.csv> <model_prefix> [seed]
//       train the pattern classifier and both cross-row predictors; writes
//       <prefix>.pattern.model, <prefix>.single.model, <prefix>.double.model
//   cordial_cli predict <log.csv> <model_prefix>
//       stream the log through trained models and print isolation advisories
//   cordial_cli evaluate <log.csv> [seed]
//       70:30 train/test evaluation on the log (Table III/IV style summary)
//
// Logs use the LogCodec CSV schema; models are the ml-library text format.
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "analysis/empirical.hpp"
#include "analysis/locality.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/pipeline.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"
#include "trace/log_codec.hpp"
#include "trace/replay.hpp"

using namespace cordial;

namespace {

int Usage() {
  std::cerr << "usage:\n"
               "  cordial_cli generate <log.csv> [scale] [seed]\n"
               "  cordial_cli study <log.csv>\n"
               "  cordial_cli train <log.csv> <model_prefix> [seed]\n"
               "  cordial_cli predict <log.csv> <model_prefix>\n"
               "  cordial_cli evaluate <log.csv> [seed]\n";
  return 2;
}

trace::ErrorLog LoadLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open log file: " + path);
  trace::ErrorLog log = trace::LogCodec::ReadCsv(in);
  log.Sort();
  return log;
}

int CmdGenerate(const std::string& path, double scale, std::uint64_t seed) {
  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = scale;
  trace::FleetGenerator generator(topology, profile);
  const trace::GeneratedFleet fleet = generator.Generate(seed);
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  trace::LogCodec::WriteCsv(fleet.log, out);
  std::cout << "wrote " << fleet.log.size() << " MCE records ("
            << fleet.CountUerBanks() << " UER banks) to " << path << "\n";
  return 0;
}

int CmdStudy(const std::string& path) {
  const trace::ErrorLog log = LoadLog(path);
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  std::cout << "loaded " << log.size() << " records\n\n";

  const auto sudden = analysis::ComputeSuddenUerStudy(log, codec);
  TextTable t1({"Micro-level", "Sudden", "Non-sudden", "Predictable"});
  for (const auto& row : sudden) {
    t1.AddRow({hbm::LevelName(row.level), std::to_string(row.sudden),
               std::to_string(row.non_sudden),
               TextTable::FormatPercent(row.PredictableRatio())});
  }
  std::cout << t1.Render("Sudden vs non-sudden UERs (Table I)") << "\n";

  const auto summary = analysis::ComputeDatasetSummary(log, codec);
  TextTable t2({"Micro-level", "With CE", "With UEO", "With UER", "Total"});
  for (const auto& row : summary) {
    t2.AddRow({hbm::LevelName(row.level), std::to_string(row.with_ce),
               std::to_string(row.with_ueo), std::to_string(row.with_uer),
               std::to_string(row.total)});
  }
  std::cout << t2.Render("Dataset summary (Table II)") << "\n";

  const auto banks = log.GroupByBank(codec);
  analysis::PatternLabeler labeler(topology);
  const auto dist = analysis::ComputePatternDistribution(banks, labeler);
  TextTable t3({"Pattern", "Share"});
  for (const auto& [shape, count] : dist.counts) {
    t3.AddRow({hbm::PatternShapeName(shape),
               TextTable::FormatPercent(dist.Fraction(shape))});
  }
  std::cout << t3.Render("Failure pattern distribution (Fig 3b), " +
                         std::to_string(dist.total_uer_banks) + " UER banks")
            << "\n";

  const auto sweep = analysis::ComputeLocalitySweep(
      banks, topology, analysis::DefaultLocalityThresholds());
  std::cout << "cross-row locality chi-square peak: "
            << analysis::PeakThreshold(sweep) << " rows (Fig 4)\n";
  return 0;
}

struct TrainedModels {
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_predictor;
  core::CrossRowPredictor double_predictor;
};

int CmdTrain(const std::string& log_path, const std::string& prefix,
             std::uint64_t seed) {
  const trace::ErrorLog log = LoadLog(log_path);
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  const auto banks = log.GroupByBank(codec);
  analysis::PatternLabeler labeler(topology);

  std::vector<core::LabelledBank> labelled;
  std::vector<const trace::BankHistory*> singles, doubles;
  for (const auto& bank : banks) {
    if (!bank.HasUer()) continue;
    const hbm::FailureClass cls = labeler.LabelClass(bank);
    labelled.push_back(core::LabelledBank{&bank, cls});
    if (cls == hbm::FailureClass::kSingleRowClustering) {
      singles.push_back(&bank);
    } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
      doubles.push_back(&bank);
    }
  }
  std::cout << "training on " << labelled.size() << " UER banks ("
            << singles.size() << " single, " << doubles.size()
            << " double)\n";

  Rng rng(seed);
  core::PatternClassifier classifier(topology,
                                     ml::LearnerKind::kRandomForest);
  classifier.Train(labelled, rng);
  core::CrossRowPredictor single_predictor(topology,
                                           ml::LearnerKind::kRandomForest);
  single_predictor.Train(singles, rng);
  core::CrossRowPredictor double_predictor(topology,
                                           ml::LearnerKind::kRandomForest);
  const bool double_ok = !doubles.empty();
  if (double_ok) {
    double_predictor.Train(doubles, rng);
  }

  auto save = [&](const std::string& path, auto&& saver) {
    std::ofstream out(path);
    if (!out) throw ParseError("cannot write " + path);
    saver(out);
    std::cout << "  wrote " << path << "\n";
  };
  save(prefix + ".pattern.model",
       [&](std::ostream& out) { classifier.SaveModel(out); });
  save(prefix + ".single.model",
       [&](std::ostream& out) { single_predictor.SaveModel(out); });
  save(prefix + ".double.model", [&](std::ostream& out) {
    (double_ok ? double_predictor : single_predictor).SaveModel(out);
  });
  return 0;
}

int CmdPredict(const std::string& log_path, const std::string& prefix) {
  hbm::TopologyConfig topology;
  core::PatternClassifier classifier(topology,
                                     ml::LearnerKind::kRandomForest);
  core::CrossRowPredictor single_predictor(topology,
                                           ml::LearnerKind::kRandomForest);
  core::CrossRowPredictor double_predictor(topology,
                                           ml::LearnerKind::kRandomForest);
  auto load = [&](const std::string& path, auto&& loader) {
    std::ifstream in(path);
    if (!in) throw ParseError("cannot open model " + path);
    loader(in);
  };
  load(prefix + ".pattern.model",
       [&](std::istream& in) { classifier.LoadModel(in); });
  load(prefix + ".single.model",
       [&](std::istream& in) { single_predictor.LoadModel(in); });
  load(prefix + ".double.model",
       [&](std::istream& in) { double_predictor.LoadModel(in); });

  const trace::ErrorLog log = LoadLog(log_path);

  // One PredictionEngine drives the whole advisory stream: the same anchor
  // semantics (same-row skip, per-bank anchor cap) the offline evaluation
  // replays, with bounded per-bank raw-record retention.
  core::PredictionEngine engine(topology, classifier, single_predictor,
                                &double_predictor);
  std::size_t advisories = 0, bank_spares = 0;

  for (const trace::MceRecord& record : log.records()) {
    const std::uint64_t key = engine.codec().BankKey(record.address);
    const core::IsolationActions actions = engine.Observe(record);
    if (actions.bank_spare) {
      ++bank_spares;
      std::cout << "ADVISE bank-spare: bank " << key << " ("
                << hbm::FailureClassName(actions.bank_class) << ")\n";
    }
    for (const core::RowSpan& span : actions.predicted_spans) {
      ++advisories;
      if (advisories <= 20) {
        std::cout << "ADVISE row-spare: bank " << key << " rows ["
                  << span.first << ", " << span.last << "]\n";
      }
    }
  }
  if (advisories > 20) {
    std::cout << "... (" << advisories - 20 << " more row advisories)\n";
  }
  std::cout << "\ntotal: " << advisories << " row-block advisories, "
            << bank_spares << " bank-spare advisories over "
            << engine.replayer().bank_count() << " banks\n";
  return 0;
}

int CmdEvaluate(const std::string& log_path, std::uint64_t seed) {
  const trace::ErrorLog log = LoadLog(log_path);
  hbm::TopologyConfig topology;
  hbm::AddressCodec codec(topology);
  core::PipelineConfig config;
  core::CordialPipeline pipeline(topology, config);
  const auto result = pipeline.RunOnBanks(log.GroupByBank(codec), seed);

  const auto weighted = result.pattern_confusion.WeightedAverage();
  std::cout << "pattern classification weighted F1: "
            << TextTable::FormatDouble(weighted.f1) << " over "
            << result.test_banks << " test banks\n\n";
  TextTable table({"Method", "Precision", "Recall", "F1", "ICR"});
  for (const auto* eval : {&result.neighbor_baseline, &result.cordial}) {
    table.AddRow({eval->method,
                  TextTable::FormatDouble(eval->block_metrics.precision),
                  TextTable::FormatDouble(eval->block_metrics.recall),
                  TextTable::FormatDouble(eval->block_metrics.f1),
                  TextTable::FormatPercent(eval->icr.Icr())});
  }
  std::cout << table.Render("Prediction quality (Table IV style)");
  std::cout << "in-row ICR ceiling: "
            << TextTable::FormatPercent(result.in_row_icr.Icr()) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  try {
    if (command == "generate" && argc >= 3) {
      return CmdGenerate(argv[2], argc > 3 ? std::atof(argv[3]) : 0.25,
                         argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42);
    }
    if (command == "study" && argc >= 3) return CmdStudy(argv[2]);
    if (command == "train" && argc >= 4) {
      return CmdTrain(argv[2], argv[3],
                      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42);
    }
    if (command == "predict" && argc >= 4) return CmdPredict(argv[2], argv[3]);
    if (command == "evaluate" && argc >= 3) {
      return CmdEvaluate(argv[2],
                         argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
