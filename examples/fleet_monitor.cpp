// Fleet monitor: an online deployment scenario for Cordial.
//
// A core::PredictionEngine consumes the fleet's MCE stream in time order.
// Models are trained on a historical window (the banks whose first UER falls
// in the first 60% of the observation window); the remainder is replayed
// live: at each bank's 3rd UER the engine classifies the failure pattern,
// then re-issues cross-row block predictions at every further UER and
// isolates the predicted rows. At the end it reports how many of the
// subsequent row failures had been preemptively isolated.
//
// This is the same decision path the offline ICR evaluation replays
// (core::StepCordial), driven by bounded-memory streaming state instead of
// full event histories.
//
// Usage: fleet_monitor [scale] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <set>

#include "analysis/labeler.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "hbm/address.hpp"
#include "trace/fleet.hpp"

using namespace cordial;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = scale;
  trace::FleetGenerator generator(topology, profile);
  const trace::GeneratedFleet fleet = generator.Generate(seed);
  hbm::AddressCodec codec(topology);
  const auto banks = fleet.log.GroupByBank(codec);
  std::cout << "fleet: " << fleet.log.size() << " MCE records\n";

  // Historical banks (first UER in the first 60% of the window) train the
  // models; the rest replay live.
  const double horizon = 0.6 * 120.0 * 86400.0;
  analysis::PatternLabeler labeler(topology);
  std::vector<core::LabelledBank> train_banks;
  std::set<std::uint64_t> train_keys;
  for (const auto& bank : banks) {
    if (!bank.HasUer() || bank.FirstUerTime() >= horizon) continue;
    train_banks.push_back(core::LabelledBank{&bank, labeler.LabelClass(bank)});
    train_keys.insert(bank.bank_key);
  }
  std::cout << "training on " << train_banks.size() << " historical banks\n";

  Rng rng(seed + 1);
  core::PatternClassifier classifier(topology,
                                     ml::LearnerKind::kRandomForest);
  classifier.Train(train_banks, rng);

  std::vector<const trace::BankHistory*> single_train, double_train;
  for (const auto& lb : train_banks) {
    if (lb.label == hbm::FailureClass::kSingleRowClustering) {
      single_train.push_back(lb.bank);
    } else if (lb.label == hbm::FailureClass::kDoubleRowClustering) {
      double_train.push_back(lb.bank);
    }
  }
  core::CrossRowPredictor single_predictor(topology,
                                           ml::LearnerKind::kRandomForest);
  core::CrossRowPredictor double_predictor(topology,
                                           ml::LearnerKind::kRandomForest);
  single_predictor.Train(single_train, rng);
  const bool double_ok = !double_train.empty();
  if (double_ok) double_predictor.Train(double_train, rng);

  core::PredictionEngine engine(topology, classifier, single_predictor,
                                double_ok ? &double_predictor : nullptr);

  std::cout << "\nreplaying the live stream (sample of daemon decisions):\n";
  std::size_t verbose_budget = 12;
  for (const trace::MceRecord& record : fleet.log.records()) {
    const std::uint64_t key = engine.codec().BankKey(record.address);
    if (train_keys.contains(key)) continue;  // history, already learned from
    const core::IsolationActions actions = engine.Observe(record);
    if (verbose_budget == 0) continue;
    bool printed = false;
    if (actions.first_failure && actions.covered()) {
      std::cout << "  [t=" << std::fixed << std::setprecision(0)
                << record.time_s / 3600.0 << "h] PREVENTED: row "
                << record.address.row << " of bank " << key
                << " failed while isolated\n";
      printed = true;
    }
    if (actions.classified_now) {
      std::cout << "  [t=" << std::fixed << std::setprecision(0)
                << record.time_s / 3600.0 << "h] bank " << key
                << " classified as "
                << hbm::FailureClassName(actions.bank_class) << "\n";
      printed = true;
    }
    if (printed) --verbose_budget;
  }

  const core::EngineStats& s = engine.stats();
  TextTable summary({"Metric", "Value"});
  summary.AddRow({"events ingested", std::to_string(s.events)});
  // Shed records: silence here would hide a lossy session. The monitor has
  // no shard queues, so its shedding surface is the replayer — stale
  // records discarded by the skew policy and raw events evicted by bounded
  // retention (the latter never affect decisions, only the debug window).
  summary.AddRow({"stale records dropped (skew)",
                  std::to_string(s.records_skew_dropped)});
  summary.AddRow({"raw records evicted (retention)",
                  std::to_string(engine.replayer().records_dropped())});
  summary.AddRow({"banks classified", std::to_string(s.banks_classified)});
  summary.AddRow({"banks bank-spared (scattered)",
                  std::to_string(s.banks_bank_spared)});
  summary.AddRow({"block predictions issued",
                  std::to_string(s.predictions_issued)});
  summary.AddRow({"rows isolated", std::to_string(s.rows_isolated)});
  summary.AddRow({"UER rows observed", std::to_string(s.uer_rows_total)});
  const std::size_t covered = s.uer_rows_covered + s.uer_rows_covered_by_bank;
  summary.AddRow({"UER rows preemptively isolated", std::to_string(covered)});
  summary.AddRow(
      {"live isolation coverage",
       TextTable::FormatPercent(
           s.uer_rows_total == 0
               ? 0.0
               : static_cast<double>(covered) /
                     static_cast<double>(s.uer_rows_total))});
  std::cout << "\n" << summary.Render("Monitoring session summary");
  return 0;
}
