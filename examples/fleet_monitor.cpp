// Fleet monitor: an online deployment scenario for Cordial.
//
// A monitoring daemon consumes the fleet's MCE stream in time order. Models
// are trained on a historical window (the banks whose first UER falls in
// the first 60% of the observation window); the remainder is replayed live:
// at each bank's 3rd UER the daemon classifies the failure pattern, then
// re-issues cross-row block predictions at every further UER and isolates
// the predicted rows. At the end it reports how many of the subsequent row
// failures had been preemptively isolated.
//
// Usage: fleet_monitor [scale] [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <set>
#include <unordered_map>

#include "analysis/labeler.hpp"
#include "common/table.hpp"
#include "core/crossrow.hpp"
#include "core/pattern_classifier.hpp"
#include "hbm/address.hpp"
#include "hbm/sparing.hpp"
#include "trace/fleet.hpp"

using namespace cordial;

namespace {

/// Minimal online daemon: accumulates per-bank history and spends sparing
/// resources as soon as predictions fire.
class MonitorDaemon {
 public:
  MonitorDaemon(const hbm::TopologyConfig& topology,
                const core::PatternClassifier& classifier,
                const core::CrossRowPredictor& single_predictor,
                const core::CrossRowPredictor& double_predictor)
      : topology_(topology),
        classifier_(classifier),
        single_(single_predictor),
        double_(double_predictor) {}

  struct Stats {
    std::size_t events = 0;
    std::size_t banks_classified = 0;
    std::size_t banks_bank_spared = 0;
    std::size_t predictions_issued = 0;
    std::size_t uer_rows_total = 0;
    std::size_t uer_rows_covered = 0;
    std::size_t rows_isolated = 0;
  };

  void Ingest(const trace::MceRecord& record, std::uint64_t bank_key,
              bool verbose) {
    ++stats_.events;
    BankState& state = banks_[bank_key];
    state.history.bank_key = bank_key;
    state.history.events.push_back(record);
    if (record.type != hbm::ErrorType::kUer) return;

    // Coverage accounting on first failure of a row.
    if (state.failed_rows.insert(record.address.row).second) {
      ++stats_.uer_rows_total;
      if (ledger_.IsRowIsolated(bank_key, record.address.row)) {
        ++stats_.uer_rows_covered;
        if (verbose) {
          std::cout << "  [t=" << std::fixed << std::setprecision(0)
                    << record.time_s / 3600.0 << "h] PREVENTED: row "
                    << record.address.row << " of bank " << bank_key
                    << " failed while isolated\n";
        }
      }
    }
    ++state.uer_events;

    const std::size_t trigger = single_.config().trigger_uers;
    if (state.uer_events < trigger) return;
    if (!state.classified) {
      state.failure_class = classifier_.Classify(state.history);
      state.classified = true;
      ++stats_.banks_classified;
      if (verbose) {
        std::cout << "  [t=" << std::fixed << std::setprecision(0)
                  << record.time_s / 3600.0 << "h] bank " << bank_key
                  << " classified as "
                  << hbm::FailureClassName(state.failure_class) << "\n";
      }
      if (state.failure_class == hbm::FailureClass::kScattered) {
        ledger_.TrySpareBank(bank_key);
        ++stats_.banks_bank_spared;
        return;
      }
    }
    if (state.failure_class == hbm::FailureClass::kScattered) return;
    if (static_cast<std::int64_t>(record.address.row) == state.last_anchor) {
      return;
    }
    if (state.anchors_used >= single_.config().max_anchors_per_bank) return;
    state.last_anchor = record.address.row;
    ++state.anchors_used;

    const core::CrossRowPredictor& predictor =
        state.failure_class == hbm::FailureClass::kSingleRowClustering
            ? single_
            : double_;
    const core::Anchor anchor{record.time_s, record.address.row,
                              state.uer_events};
    const auto blocks = predictor.PredictBlocks(state.history, anchor);
    const core::BlockWindow window =
        predictor.extractor().WindowAt(anchor.row);
    ++stats_.predictions_issued;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (blocks[b] != 1) continue;
      const auto range = window.BlockRange(b);
      if (!range.has_value()) continue;
      for (std::uint32_t row = range->first; row <= range->second; ++row) {
        if (ledger_.TrySpareRow(bank_key, row)) ++stats_.rows_isolated;
      }
    }
  }

  const Stats& stats() const { return stats_; }

 private:
  struct BankState {
    trace::BankHistory history;
    std::set<std::uint32_t> failed_rows;
    std::size_t uer_events = 0;
    std::size_t anchors_used = 0;
    bool classified = false;
    hbm::FailureClass failure_class = hbm::FailureClass::kScattered;
    std::int64_t last_anchor = -1;
  };

  hbm::TopologyConfig topology_;
  const core::PatternClassifier& classifier_;
  const core::CrossRowPredictor& single_;
  const core::CrossRowPredictor& double_;
  hbm::SparingLedger ledger_;
  std::unordered_map<std::uint64_t, BankState> banks_;
  Stats stats_;
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = scale;
  trace::FleetGenerator generator(topology, profile);
  const trace::GeneratedFleet fleet = generator.Generate(seed);
  hbm::AddressCodec codec(topology);
  const auto banks = fleet.log.GroupByBank(codec);
  std::cout << "fleet: " << fleet.log.size() << " MCE records\n";

  // Historical banks (first UER in the first 60% of the window) train the
  // models; the rest replay live.
  const double horizon = 0.6 * 120.0 * 86400.0;
  analysis::PatternLabeler labeler(topology);
  std::vector<core::LabelledBank> train_banks;
  std::set<std::uint64_t> train_keys;
  for (const auto& bank : banks) {
    if (!bank.HasUer() || bank.FirstUerTime() >= horizon) continue;
    train_banks.push_back(core::LabelledBank{&bank, labeler.LabelClass(bank)});
    train_keys.insert(bank.bank_key);
  }
  std::cout << "training on " << train_banks.size() << " historical banks\n";

  Rng rng(seed + 1);
  core::PatternClassifier classifier(topology,
                                     ml::LearnerKind::kRandomForest);
  classifier.Train(train_banks, rng);

  std::vector<const trace::BankHistory*> single_train, double_train;
  for (const auto& lb : train_banks) {
    if (lb.label == hbm::FailureClass::kSingleRowClustering) {
      single_train.push_back(lb.bank);
    } else if (lb.label == hbm::FailureClass::kDoubleRowClustering) {
      double_train.push_back(lb.bank);
    }
  }
  core::CrossRowPredictor single_predictor(topology,
                                           ml::LearnerKind::kRandomForest);
  core::CrossRowPredictor double_predictor(topology,
                                           ml::LearnerKind::kRandomForest);
  single_predictor.Train(single_train, rng);
  const bool double_ok = !double_train.empty();
  if (double_ok) double_predictor.Train(double_train, rng);

  MonitorDaemon daemon(topology, classifier, single_predictor,
                       double_ok ? double_predictor : single_predictor);

  std::cout << "\nreplaying the live stream (sample of daemon decisions):\n";
  std::size_t verbose_budget = 12;
  for (const trace::MceRecord& record : fleet.log.records()) {
    const std::uint64_t key = codec.BankKey(record.address);
    if (train_keys.contains(key)) continue;  // history, already learned from
    const bool verbose = verbose_budget > 0;
    const auto before = daemon.stats().banks_classified +
                        daemon.stats().uer_rows_covered;
    daemon.Ingest(record, key, verbose);
    if (verbose && daemon.stats().banks_classified +
                           daemon.stats().uer_rows_covered != before) {
      --verbose_budget;
    }
  }

  const auto& s = daemon.stats();
  TextTable summary({"Metric", "Value"});
  summary.AddRow({"events ingested", std::to_string(s.events)});
  summary.AddRow({"banks classified", std::to_string(s.banks_classified)});
  summary.AddRow({"banks bank-spared (scattered)",
                  std::to_string(s.banks_bank_spared)});
  summary.AddRow({"block predictions issued",
                  std::to_string(s.predictions_issued)});
  summary.AddRow({"rows isolated", std::to_string(s.rows_isolated)});
  summary.AddRow({"UER rows observed", std::to_string(s.uer_rows_total)});
  summary.AddRow({"UER rows preemptively isolated",
                  std::to_string(s.uer_rows_covered)});
  summary.AddRow(
      {"live isolation coverage",
       TextTable::FormatPercent(
           s.uer_rows_total == 0
               ? 0.0
               : static_cast<double>(s.uer_rows_covered) /
                     static_cast<double>(s.uer_rows_total))});
  std::cout << "\n" << summary.Render("Monitoring session summary");
  return 0;
}
