// Generate a Markdown fleet-health study from an MCE log (or a synthetic
// fleet when no log is given) — the artifact a reliability review consumes.
//
// Usage:
//   generate_report <out.md> [scale] [seed]        # synthetic fleet
//   generate_report <out.md> --log <log.csv>       # existing CSV log
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "analysis/report.hpp"
#include "trace/fleet.hpp"
#include "trace/log_codec.hpp"

using namespace cordial;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: generate_report <out.md> [scale] [seed]\n"
                 "       generate_report <out.md> --log <log.csv>\n";
    return 2;
  }
  const std::string out_path = argv[1];
  hbm::TopologyConfig topology;
  trace::ErrorLog log;
  analysis::ReportOptions options;

  if (argc >= 4 && std::strcmp(argv[2], "--log") == 0) {
    std::ifstream in(argv[3]);
    if (!in) {
      std::cerr << "cannot open " << argv[3] << "\n";
      return 1;
    }
    log = trace::LogCodec::ReadCsv(in);
    options.title = std::string("HBM fleet error study — ") + argv[3];
  } else {
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
    trace::CalibrationProfile profile;
    profile.scale = scale;
    trace::FleetGenerator generator(topology, profile);
    log = generator.Generate(seed).log;
    options.title = "HBM fleet error study (synthetic, scale " +
                    std::to_string(scale) + ")";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  analysis::WriteStudyReport(log, topology, out, options);
  std::cout << "wrote " << out_path << " (" << log.size() << " records)\n";
  return 0;
}
