// cordial_storm — hostile-feed scenario driver.
//
// Reads a LogCodec CSV feed and writes a deliberately nasty version of it:
// the record stream a serving daemon sees when a rack melts down and the
// collection pipeline degrades with it. Every distortion is seeded and
// deterministic, so tier-1 smokes can assert exact counter values on the
// consuming daemon.
//
//   cordial_storm <log.csv> [flags] > storm.csv
//     --burst <n>        repeat every UER line n times back to back (burst
//                        storm: a failing row re-reports faster than the
//                        collector dedupes). n=1 leaves the feed unchanged.
//     --duplicate <f>    duplicate a fraction f of all lines immediately
//                        after themselves (at-least-once delivery).
//     --reorder <w>      shuffle lines within consecutive windows of w
//                        lines (out-of-order aggregation across BMCs).
//     --garbage <f>      after a fraction f of lines, inject one malformed
//                        line (cycling: wrong arity, non-numeric field,
//                        out-of-topology row, non-finite timestamp).
//     --multi-bank <n>   after every UER line, emit n correlated CE records
//                        in sibling banks of the same bank group at the
//                        same timestamp (a correlated multi-bank incident).
//     --seed <s>         seed for duplicate/reorder/garbage draws.
//
// Emits "STORM lines=<n> malformed=<m>" on stderr: <n> is the number of
// data lines written and <m> how many of them a validating consumer must
// reject — the exact numbers a smoke asserts against the daemon's
// "records submitted" and "malformed lines skipped" counters.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "hbm/address.hpp"
#include "trace/log_codec.hpp"

using namespace cordial;

namespace {

int Usage() {
  std::cerr << "usage: cordial_storm <log.csv> [--burst <n>]\n"
               "         [--duplicate <frac>] [--reorder <window>]\n"
               "         [--garbage <frac>] [--multi-bank <n>] [--seed <s>]\n";
  return 2;
}

struct Options {
  std::string input;
  std::size_t burst = 1;
  double duplicate = 0.0;
  std::size_t reorder = 0;
  double garbage = 0.0;
  std::size_t multi_bank = 0;
  std::uint64_t seed = 1;
};

bool ParseArgs(int argc, char** argv, Options& opts, std::string& error) {
  if (argc < 2) {
    error = "missing <log.csv>";
    return false;
  }
  opts.input = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (++i >= argc) {
      error = flag + " requires a value";
      return false;
    }
    const std::string value = argv[i];
    char* end = nullptr;
    if (flag == "--burst" || flag == "--reorder" || flag == "--multi-bank" ||
        flag == "--seed") {
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        error = flag + " expects an integer, got '" + value + "'";
        return false;
      }
      if (flag == "--burst") {
        if (parsed == 0) {
          error = "--burst must be at least 1";
          return false;
        }
        opts.burst = static_cast<std::size_t>(parsed);
      } else if (flag == "--reorder") {
        opts.reorder = static_cast<std::size_t>(parsed);
      } else if (flag == "--multi-bank") {
        opts.multi_bank = static_cast<std::size_t>(parsed);
      } else {
        opts.seed = parsed;
      }
    } else if (flag == "--duplicate" || flag == "--garbage") {
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || parsed < 0.0 ||
          parsed > 1.0) {
        error = flag + " expects a fraction in [0, 1], got '" + value + "'";
        return false;
      }
      (flag == "--duplicate" ? opts.duplicate : opts.garbage) = parsed;
    } else {
      error = "unknown flag " + flag;
      return false;
    }
  }
  return true;
}

/// One output line plus whether a validating consumer must reject it.
struct StormLine {
  std::string text;
  bool malformed = false;
};

/// The four malformed shapes a degraded collector actually produces, keyed
/// off the line they follow so the corruption is locally plausible.
std::string MakeGarbage(const std::string& line, std::uint64_t which,
                        const hbm::TopologyConfig& topology) {
  switch (which % 4) {
    case 0:  // wrong arity: a torn write drops the tail of the line
      return line.substr(0, line.rfind(','));
    case 1: {  // non-numeric field
      std::string bad = line;
      bad.replace(0, bad.find(','), "garbage");
      return bad;
    }
    case 2: {  // out-of-topology row: parses clean, fails bounds validation
      trace::MceRecord r = trace::LogCodec::ParseCsvLine(line);
      r.address.row = topology.rows_per_bank + 17;
      std::ostringstream out;
      trace::ErrorLog one;
      one.Add(r);
      trace::LogCodec::WriteCsv(one, out);
      std::string body = out.str();
      const std::size_t newline = body.find('\n');
      return body.substr(newline + 1, body.size() - newline - 2);
    }
    default: {  // non-finite timestamp
      const std::size_t comma = line.find(',');
      return "inf" + line.substr(comma);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::string parse_error;
  if (!ParseArgs(argc, argv, opts, parse_error)) {
    std::cerr << "cordial_storm: " << parse_error << "\n";
    return Usage();
  }

  try {
    std::ifstream in(opts.input);
    if (!in) throw ParseError("cannot open " + opts.input);
    const hbm::TopologyConfig topology;
    const hbm::AddressCodec codec(topology);
    Rng rng(opts.seed);

    std::vector<StormLine> out_lines;
    std::string line;
    std::uint64_t garbage_kind = 0;
    while (std::getline(in, line)) {
      if (line.empty() || trace::LogCodec::IsCsvHeader(line)) continue;
      const trace::MceRecord record = trace::LogCodec::ParseCsvLine(line);
      const bool is_uer = record.type == hbm::ErrorType::kUer;
      const std::size_t copies = is_uer ? opts.burst : 1;
      for (std::size_t c = 0; c < copies; ++c) {
        out_lines.push_back({line, false});
        if (opts.duplicate > 0.0 && rng.Bernoulli(opts.duplicate)) {
          out_lines.push_back({line, false});
        }
      }
      if (is_uer && opts.multi_bank > 0) {
        // Correlated incident: the same event seen as CEs in sibling banks
        // of the bank group, all inside topology bounds.
        for (std::size_t b = 1; b <= opts.multi_bank; ++b) {
          trace::MceRecord sibling = record;
          sibling.type = hbm::ErrorType::kCe;
          sibling.address.bank = static_cast<std::uint32_t>(
              (record.address.bank + b) % topology.banks_per_bank_group);
          trace::ErrorLog one;
          one.Add(sibling);
          std::ostringstream encoded;
          trace::LogCodec::WriteCsv(one, encoded);
          std::string body = encoded.str();
          const std::size_t newline = body.find('\n');
          out_lines.push_back(
              {body.substr(newline + 1, body.size() - newline - 2), false});
        }
      }
      if (opts.garbage > 0.0 && rng.Bernoulli(opts.garbage)) {
        out_lines.push_back(
            {MakeGarbage(line, garbage_kind++, topology), true});
      }
    }

    if (opts.reorder > 1) {
      for (std::size_t start = 0; start < out_lines.size();
           start += opts.reorder) {
        const std::size_t end =
            std::min(out_lines.size(), start + opts.reorder);
        // Fisher-Yates on the window, same draws as Rng::Shuffle.
        for (std::size_t i = end - start; i > 1; --i) {
          const std::size_t j =
              static_cast<std::size_t>(rng.UniformU64(i));
          std::swap(out_lines[start + i - 1], out_lines[start + j]);
        }
      }
    }

    std::uint64_t total = 0, malformed = 0;
    std::cout << "time_s,node,npu,hbm,sid,channel,pseudo_channel,bank_group,"
                 "bank,row,col,type\n";
    for (const StormLine& out : out_lines) {
      std::cout << out.text << "\n";
      ++total;
      if (out.malformed) ++malformed;
    }
    std::cerr << "STORM lines=" << total << " malformed=" << malformed
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "cordial_storm: " << e.what() << "\n";
    return 1;
  }
}
