// cordial_serverd — long-running sharded serving daemon.
//
// Consumes a live MCE feed (LogCodec CSV lines on stdin or a FIFO/file),
// routes each record to its bank's shard (serve::FleetServer), checkpoints
// the full engine state periodically, and shuts down cleanly on SIGTERM /
// SIGINT. Restarted with the same --checkpoint path it resumes exactly
// where it stopped — bit-identical ledgers and stats, pinned by the serve
// test suite.
//
//   cordial_serverd <model_prefix> [options]
//     --input <path>           feed to read (default: stdin). A FIFO works:
//                              mkfifo feed && cordial_serverd m --input feed
//     --checkpoint <path>      checkpoint file; loaded at boot when present,
//                              rewritten atomically (tmp + rename) while
//                              running
//     --checkpoint-every <n>   records between periodic checkpoints
//                              (default 5000; 0 = only on shutdown)
//     --shards <n>             engine shards (default 4)
//     --queue-capacity <n>     per-shard queue bound (default 1024)
//     --overload <policy>      block | drop-oldest | reject (default block)
//
// Models come from `cordial_cli train <log.csv> <model_prefix>`.
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fleet_server.hpp"
#include "trace/log_codec.hpp"

using namespace cordial;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

int Usage() {
  std::cerr
      << "usage: cordial_serverd <model_prefix> [--input <path>]\n"
         "         [--checkpoint <path>] [--checkpoint-every <n>]\n"
         "         [--shards <n>] [--queue-capacity <n>]\n"
         "         [--overload block|drop-oldest|reject]\n";
  return 2;
}

struct Options {
  std::string model_prefix;
  std::string input;       // empty = stdin
  std::string checkpoint;  // empty = no checkpointing
  std::size_t checkpoint_every = 5000;
  std::size_t shards = 4;
  std::size_t queue_capacity = 1024;
  serve::OverloadPolicy overload = serve::OverloadPolicy::kBlock;
};

bool ParseArgs(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.model_prefix = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    const char* value = next();
    if (value == nullptr) return false;
    if (flag == "--input") {
      opts.input = value;
    } else if (flag == "--checkpoint") {
      opts.checkpoint = value;
    } else if (flag == "--checkpoint-every") {
      opts.checkpoint_every = std::strtoull(value, nullptr, 10);
    } else if (flag == "--shards") {
      opts.shards = std::strtoull(value, nullptr, 10);
      if (opts.shards == 0) return false;
    } else if (flag == "--queue-capacity") {
      opts.queue_capacity = std::strtoull(value, nullptr, 10);
      if (opts.queue_capacity == 0) return false;
    } else if (flag == "--overload") {
      const std::string policy = value;
      if (policy == "block") {
        opts.overload = serve::OverloadPolicy::kBlock;
      } else if (policy == "drop-oldest") {
        opts.overload = serve::OverloadPolicy::kDropOldest;
      } else if (policy == "reject") {
        opts.overload = serve::OverloadPolicy::kReject;
      } else {
        return false;
      }
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) return Usage();

  try {
    hbm::TopologyConfig topology;
    core::PatternClassifier classifier(topology,
                                       ml::LearnerKind::kRandomForest);
    core::CrossRowPredictor single_predictor(topology,
                                             ml::LearnerKind::kRandomForest);
    core::CrossRowPredictor double_predictor(topology,
                                             ml::LearnerKind::kRandomForest);
    auto load = [&](const std::string& path, auto&& loader) {
      std::ifstream in(path);
      if (!in) throw ParseError("cannot open model " + path);
      loader(in);
    };
    load(opts.model_prefix + ".pattern.model",
         [&](std::istream& in) { classifier.LoadModel(in); });
    load(opts.model_prefix + ".single.model",
         [&](std::istream& in) { single_predictor.LoadModel(in); });
    load(opts.model_prefix + ".double.model",
         [&](std::istream& in) { double_predictor.LoadModel(in); });

    serve::FleetServerConfig config;
    config.shard_count = opts.shards;
    config.queue.capacity = opts.queue_capacity;
    config.queue.policy = opts.overload;
    // A live fleet feed is aggregated from many BMC clocks: drop stale
    // records instead of dying on the first skewed timestamp.
    config.engine.retention.skew_policy = trace::TimeSkewPolicy::kDrop;
    serve::FleetServer server(topology, classifier, single_predictor,
                              &double_predictor, config);

    if (!opts.checkpoint.empty() &&
        serve::ReadCheckpointFile(server, opts.checkpoint)) {
      std::cerr << "resumed from checkpoint " << opts.checkpoint << " ("
                << server.AggregateStats().events << " events replayed)\n";
    }

    std::signal(SIGINT, HandleStop);
    std::signal(SIGTERM, HandleStop);

    std::ifstream file;
    if (!opts.input.empty()) {
      file.open(opts.input);
      if (!file) throw ParseError("cannot open input " + opts.input);
    }
    std::istream& feed = opts.input.empty() ? std::cin : file;

    server.Start();
    std::size_t submitted = 0, refused = 0, malformed = 0, checkpoints = 0;
    std::string line;
    while (g_stop == 0 && std::getline(feed, line)) {
      if (line.empty() || trace::LogCodec::IsCsvHeader(line)) continue;
      trace::MceRecord record;
      try {
        record = trace::LogCodec::ParseCsvLine(line);
      } catch (const ParseError& e) {
        ++malformed;
        std::cerr << "skipping malformed line: " << e.what() << "\n";
        continue;
      }
      if (!server.Submit(record)) {
        ++refused;
        continue;
      }
      ++submitted;
      if (!opts.checkpoint.empty() && opts.checkpoint_every > 0 &&
          submitted % opts.checkpoint_every == 0) {
        server.Drain();
        serve::WriteCheckpointFile(server, opts.checkpoint);
        ++checkpoints;
      }
    }

    server.Stop();  // drains the queues, then joins the workers
    if (!opts.checkpoint.empty()) {
      serve::WriteCheckpointFile(server, opts.checkpoint);
      ++checkpoints;
      std::cerr << "final checkpoint written to " << opts.checkpoint << "\n";
    }

    const core::EngineStats stats = server.AggregateStats();
    const serve::ShardCounters counters = server.AggregateCounters();
    TextTable summary({"Metric", "Value"});
    summary.AddRow({"records submitted", std::to_string(submitted)});
    summary.AddRow({"records refused (overload)", std::to_string(refused)});
    summary.AddRow({"records dropped (overload)",
                    std::to_string(counters.dropped_oldest)});
    summary.AddRow({"malformed lines skipped", std::to_string(malformed)});
    summary.AddRow({"stale records dropped (skew)",
                    std::to_string(stats.records_skew_dropped)});
    summary.AddRow({"events processed", std::to_string(stats.events)});
    summary.AddRow({"banks classified", std::to_string(stats.banks_classified)});
    summary.AddRow(
        {"banks bank-spared", std::to_string(stats.banks_bank_spared)});
    summary.AddRow({"rows isolated", std::to_string(stats.rows_isolated)});
    summary.AddRow({"UER rows preemptively isolated",
                    std::to_string(stats.uer_rows_covered +
                                   stats.uer_rows_covered_by_bank)});
    summary.AddRow({"checkpoints written", std::to_string(checkpoints)});
    std::cout << summary.Render("cordial_serverd session (" +
                                std::to_string(opts.shards) + " shards)");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
