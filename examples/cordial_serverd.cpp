// cordial_serverd — long-running sharded serving daemon.
//
// Consumes a live MCE feed (LogCodec CSV lines on stdin or a FIFO/file),
// routes each record to its bank's shard (serve::FleetServer), checkpoints
// the full engine state periodically, and shuts down cleanly on SIGTERM /
// SIGINT. Restarted with the same --checkpoint path it resumes exactly
// where it stopped — bit-identical ledgers and stats, pinned by the serve
// test suite.
//
// Observability: with --admin-port the daemon serves a loopback HTTP admin
// plane — GET /metrics (Prometheus text: per-shard queue depths, submit→
// processed and Observe latency histograms, sparing/overload counters,
// checkpoint timings), /statusz (human-readable shard table) and /healthz.
// Independently, every --status-every submitted records a one-line status
// goes to stderr so stdin-only deployments get progress without a port.
//
//   cordial_serverd <model_prefix> [options]
//     --input <path>           feed to read (default: stdin). A FIFO works:
//                              mkfifo feed && cordial_serverd m --input feed
//     --checkpoint <path>      checkpoint file; recovered at boot (see
//                              below), rewritten atomically and durably
//                              (tmp + fsync + rename + dir fsync, previous
//                              generation kept at <path>.prev) while running
//
// Boot recovery: a corrupt <path> (truncated by a crash, bit-rotted, or
// written by an incompatible build) is quarantined to <path>.corrupt and
// the daemon falls back to <path>.prev; if that is corrupt too it is
// quarantined likewise and the daemon starts fresh. Either way it comes up
// serving. Quarantines and fallbacks are exported as
// cordial_checkpoint_corrupt_total / cordial_checkpoint_fallback_total on
// /metrics. Fault injection for drills: set CORDIAL_FAILPOINTS (see
// src/common/failpoint.hpp and the catalogue in DESIGN.md).
//     --checkpoint-every <n>   records between periodic checkpoints
//                              (default 5000; 0 = only on shutdown)
//     --checkpoint-mode <m>    full (default) rewrites the whole state file
//                              each cycle; delta treats --checkpoint as a
//                              chain DIRECTORY (created if missing) holding
//                              a binary full plus dirty-bank delta members
//                              under a CRC manifest (persist::CheckpointChain,
//                              DESIGN.md §14). Steady-state cycles then write
//                              only the banks touched since the last cycle.
//                              Inspect/verify/compact the chain offline with
//                              cordial_ckpt.
//     --compact-every <n>      delta mode: deltas per epoch before the chain
//                              is folded into a fresh full (default 16)
//     --shards <n>             engine shards (default 4)
//     --queue-capacity <n>     per-shard queue bound (default 1024)
//     --batch-max <n>          feed records parsed per submit batch, and the
//                              per-shard worker drain batch (default 256).
//                              Batches are capped so checkpoint/status
//                              boundaries land on the exact record counts
//                              the single-record loop produced.
//     --overload <policy>      block | drop-oldest | reject (default block)
//     --admin-port <port>      HTTP admin plane on 127.0.0.1:<port>
//                              (default 0 = off)
//     --listen-port <port>     TCP ingest plane (net::IngestServer) on
//                              --listen-address:<port>; 0 asks the kernel
//                              for an ephemeral port. The bound port is
//                              announced on stderr ("ingest listening on
//                              ..."), so scripts can parse it. With a
//                              listen plane and no --input the daemon skips
//                              stdin and serves until SIGTERM/SIGINT; with
//                              both, the file feed drains first and the
//                              daemon then keeps serving TCP. Periodic
//                              checkpoints track the file feed only — the
//                              final checkpoint on shutdown covers
//                              network-fed state.
//     --listen-address <addr>  interface for --listen-port (default
//                              127.0.0.1)
//     --status-every <n>       records between stderr status lines
//                              (default 10000; 0 = off)
//     --refresh-every <sec>    online learning: run a shadow-training round
//                              every <sec> wall seconds (default 0 = off).
//                              The daemon collects labelled outcomes from
//                              the serving path, retrains a challenger
//                              pattern classifier in the background, and
//                              hot-swaps it into the serving engines when it
//                              beats the champion on held-out replay (see
//                              DESIGN.md §13). Adds /modelz, /modelz/swap
//                              and /modelz/rollback to the admin plane and
//                              cordial_learn_* to /metrics.
//     --promotion-min-icr <r>  absolute held-out ICR floor a challenger
//                              must clear to be promoted (default 0)
//     --version                print the frame versions this build speaks
//
// Models come from `cordial_cli train <log.csv> <model_prefix>`.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "common/framing.hpp"
#include "common/table.hpp"
#include "core/model_slot.hpp"
#include "core/persist.hpp"
#include "learn/outcome_log.hpp"
#include "learn/shadow_trainer.hpp"
#include "net/ingest_server.hpp"
#include "obs/admin_server.hpp"
#include "obs/metrics.hpp"
#include "persist/chain.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fleet_server.hpp"
#include "trace/log_codec.hpp"

using namespace cordial;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

int Usage() {
  std::cerr
      << "usage: cordial_serverd <model_prefix> [--input <path>]\n"
         "         [--checkpoint <path>] [--checkpoint-every <n>]\n"
         "         [--checkpoint-mode full|delta] [--compact-every <n>]\n"
         "         [--shards <n>] [--queue-capacity <n>] [--batch-max <n>]\n"
         "         [--overload block|drop-oldest|reject]\n"
         "         [--admin-port <port>] [--listen-port <port>]\n"
         "         [--listen-address <addr>] [--status-every <n>]\n"
         "         [--refresh-every <sec>] [--promotion-min-icr <r>]\n"
         "         [--row-mapping identity|swizzle[:<k>]|shuffle:<seed>]\n"
         "         [--version]\n";
  return 2;
}

int PrintVersion() {
  std::cout << "cordial_serverd (cordial 1.0.0)\n"
            << "  model frames:      " << core::kPatternModelMagic << ", "
            << core::kCrossRowModelMagic << " v" << core::kModelFrameVersion
            << "\n"
            << "  engine state:      " << core::kEngineStateMagic << " v"
            << core::kEngineStateVersion << " (text), v"
            << core::kEngineStateBinaryVersion << " (binary)\n"
            << "  engine delta:      " << core::kEngineDeltaMagic << " v"
            << core::kEngineDeltaVersion << "\n"
            << "  fleet checkpoint:  " << serve::kFleetCheckpointMagic << " v"
            << serve::kFleetCheckpointVersion << "\n"
            << "  fleet delta:       " << serve::kFleetDeltaMagic << " v"
            << serve::kFleetDeltaVersion << "\n"
            << "  chain manifest:    " << persist::kManifestMagic << " v"
            << persist::kManifestVersion << "\n"
            << "  frame layout:      v" << kFramingLayoutVersion
            << " (crc32; reads v1 checksum-less frames with a warning)\n";
  return 0;
}

struct Options {
  std::string model_prefix;
  std::string input;       // empty = stdin
  std::string checkpoint;  // empty = no checkpointing
  std::size_t checkpoint_every = 5000;
  bool delta_mode = false;         // --checkpoint-mode delta: chain directory
  std::size_t compact_every = 16;  // deltas per epoch before folding
  std::size_t shards = 4;
  std::size_t queue_capacity = 1024;
  std::size_t batch_max = 256;
  serve::OverloadPolicy overload = serve::OverloadPolicy::kBlock;
  std::uint16_t admin_port = 0;     // 0 = admin plane off
  bool listen = false;              // --listen-port given (0 = ephemeral)
  std::string listen_address = "127.0.0.1";
  std::uint16_t listen_port = 0;
  std::size_t status_every = 10000; // 0 = status lines off
  double refresh_every_s = 0.0;     // 0 = online learning off
  double promotion_min_icr = 0.0;
  std::string row_mapping;          // empty = identity (logical == physical)
};

/// Parse argv into `opts`; on failure `error` names the offending flag.
bool ParseArgs(int argc, char** argv, Options& opts, std::string& error) {
  if (argc < 2) {
    error = "missing <model_prefix>";
    return false;
  }
  opts.model_prefix = argv[1];
  if (opts.model_prefix.rfind("--", 0) == 0) {
    error = "expected <model_prefix> before flags, got " + opts.model_prefix;
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    auto parse_count = [&](const char* value, std::size_t& out,
                           bool allow_zero) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0') {
        error = flag + " expects an integer, got '" + value + "'";
        return false;
      }
      if (!allow_zero && parsed == 0) {
        error = flag + " must be at least 1";
        return false;
      }
      out = static_cast<std::size_t>(parsed);
      return true;
    };
    const char* value = next();
    if (value == nullptr) {
      error = flag + " requires a value";
      return false;
    }
    if (flag == "--input") {
      opts.input = value;
    } else if (flag == "--checkpoint") {
      opts.checkpoint = value;
    } else if (flag == "--checkpoint-every") {
      if (!parse_count(value, opts.checkpoint_every, true)) return false;
    } else if (flag == "--checkpoint-mode") {
      const std::string mode = value;
      if (mode == "full") {
        opts.delta_mode = false;
      } else if (mode == "delta") {
        opts.delta_mode = true;
      } else {
        error = "--checkpoint-mode must be full or delta, got '" + mode + "'";
        return false;
      }
    } else if (flag == "--compact-every") {
      if (!parse_count(value, opts.compact_every, false)) return false;
    } else if (flag == "--shards") {
      if (!parse_count(value, opts.shards, false)) return false;
    } else if (flag == "--queue-capacity") {
      if (!parse_count(value, opts.queue_capacity, false)) return false;
    } else if (flag == "--batch-max") {
      if (!parse_count(value, opts.batch_max, false)) return false;
    } else if (flag == "--status-every") {
      if (!parse_count(value, opts.status_every, true)) return false;
    } else if (flag == "--admin-port") {
      std::size_t port = 0;
      if (!parse_count(value, port, true)) return false;
      if (port > 65535) {
        error = flag + " must be a TCP port (0-65535)";
        return false;
      }
      opts.admin_port = static_cast<std::uint16_t>(port);
    } else if (flag == "--listen-port") {
      std::size_t port = 0;
      if (!parse_count(value, port, true)) return false;
      if (port > 65535) {
        error = flag + " must be a TCP port (0-65535)";
        return false;
      }
      opts.listen = true;
      opts.listen_port = static_cast<std::uint16_t>(port);
    } else if (flag == "--listen-address") {
      opts.listen_address = value;
    } else if (flag == "--row-mapping") {
      opts.row_mapping = value;
    } else if (flag == "--refresh-every" || flag == "--promotion-min-icr") {
      char* end = nullptr;
      const double parsed = std::strtod(value, &end);
      if (end == value || *end != '\0' || parsed < 0.0) {
        error = flag + " expects a non-negative number, got '" +
                std::string(value) + "'";
        return false;
      }
      (flag == "--refresh-every" ? opts.refresh_every_s
                                 : opts.promotion_min_icr) = parsed;
    } else if (flag == "--overload") {
      const std::string policy = value;
      if (policy == "block") {
        opts.overload = serve::OverloadPolicy::kBlock;
      } else if (policy == "drop-oldest") {
        opts.overload = serve::OverloadPolicy::kDropOldest;
      } else if (policy == "reject") {
        opts.overload = serve::OverloadPolicy::kReject;
      } else {
        error = "--overload must be block, drop-oldest or reject, got '" +
                policy + "'";
        return false;
      }
    } else {
      error = "unknown flag " + flag;
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--version") return PrintVersion();
  }
  Options opts;
  std::string parse_error;
  if (!ParseArgs(argc, argv, opts, parse_error)) {
    std::cerr << "cordial_serverd: " << parse_error << "\n";
    return Usage();
  }

  try {
    hbm::TopologyConfig topology;
    core::PatternClassifier classifier(topology,
                                       ml::LearnerKind::kRandomForest);
    core::CrossRowPredictor single_predictor(topology,
                                             ml::LearnerKind::kRandomForest);
    core::CrossRowPredictor double_predictor(topology,
                                             ml::LearnerKind::kRandomForest);
    auto load = [&](const std::string& path, auto&& loader) {
      std::ifstream in(path);
      if (!in) throw ParseError("cannot open model " + path);
      loader(in);
    };
    load(opts.model_prefix + ".pattern.model",
         [&](std::istream& in) { classifier.LoadModel(in); });
    load(opts.model_prefix + ".single.model",
         [&](std::istream& in) { single_predictor.LoadModel(in); });
    load(opts.model_prefix + ".double.model",
         [&](std::istream& in) { double_predictor.LoadModel(in); });

    serve::FleetServerConfig config;
    config.shard_count = opts.shards;
    config.queue.capacity = opts.queue_capacity;
    config.queue.policy = opts.overload;
    config.queue.batch_max = opts.batch_max;
    // A live fleet feed is aggregated from many BMC clocks: drop stale
    // records instead of dying on the first skewed timestamp.
    config.engine.retention.skew_policy = trace::TimeSkewPolicy::kDrop;
    // Feed rows are logical; every shard engine remaps them to physical
    // before profiling. Not serialized — a restoring boot must pass the
    // same spec (the engine-state frame carries physical rows only).
    config.engine.row_mapping =
        hbm::RowMapping::Parse(opts.row_mapping, topology.rows_per_bank);
    if (!config.engine.row_mapping.identity()) {
      std::cerr << "row mapping: " << config.engine.row_mapping.Describe()
                << "\n";
    }

    // Online learning (--refresh-every): the boot models seed a model slot
    // every shard engine subscribes to; the serving path feeds an outcome
    // collector; a shadow trainer retrains and hot-swaps in the background.
    // The slot and collector outlive the server (declared first).
    const bool learning = opts.refresh_every_s > 0.0;
    std::unique_ptr<core::ModelSlot> slot;
    std::unique_ptr<learn::OutcomeCollector> collector;
    serve::FleetServer::ActionSink sink;
    if (learning) {
      core::ModelSet boot;
      boot.classifier = core::UnownedModel(classifier);
      boot.single = core::UnownedModel(single_predictor);
      boot.double_row = core::UnownedModel(double_predictor);
      slot = std::make_unique<core::ModelSlot>(std::move(boot));
      config.model_slot = slot.get();
      collector = std::make_unique<learn::OutcomeCollector>(topology);
      learn::OutcomeCollector* taps = collector.get();
      sink = [taps](std::size_t, const trace::MceRecord& record,
                    const core::IsolationActions& actions) {
        taps->Record(record, actions);
      };
    }
    serve::FleetServer server(topology, classifier, single_predictor,
                              &double_predictor, config, std::move(sink));

    // Daemon-level metrics: checkpoint-cycle timing lives here (it is a
    // property of the daemon's drain+write cycle, not of any one shard) and
    // merges with the shard registries on scrape.
    obs::MetricRegistry daemon_metrics;
    obs::Histogram& checkpoint_seconds = daemon_metrics.GetHistogram(
        "cordial_checkpoint_seconds",
        "Wall time of one checkpoint cycle (drain + atomic write)",
        obs::DefaultLatencyBuckets());
    obs::Counter& checkpoints_total = daemon_metrics.GetCounter(
        "cordial_checkpoints_total", "Checkpoints written");
    obs::Counter& malformed_total = daemon_metrics.GetCounter(
        "cordial_feed_malformed_lines_total",
        "Feed lines that failed CSV parsing");
    obs::Counter& corrupt_total = daemon_metrics.GetCounter(
        "cordial_checkpoint_corrupt_total",
        "Checkpoint files quarantined as corrupt during boot recovery");
    obs::Counter& fallback_total = daemon_metrics.GetCounter(
        "cordial_checkpoint_fallback_total",
        "Boots that could not use the newest checkpoint and fell back to an "
        "older generation or a fresh start");
    // Per-kind checkpoint accounting: in delta mode the interesting signal
    // is how much smaller/faster a steady-state delta cycle is than a full.
    const auto kind_labels = [](const char* kind) {
      return obs::Labels{{"kind", kind}};
    };
    obs::Counter* ckpt_bytes[2] = {
        &daemon_metrics.GetCounter("cordial_checkpoint_bytes_total",
                                   "Checkpoint bytes written, by member kind",
                                   kind_labels("full")),
        &daemon_metrics.GetCounter("cordial_checkpoint_bytes_total",
                                   "Checkpoint bytes written, by member kind",
                                   kind_labels("delta"))};
    obs::Counter* ckpt_banks[2] = {
        &daemon_metrics.GetCounter(
            "cordial_checkpoint_banks_written",
            "Bank records serialized into checkpoints, by member kind",
            kind_labels("full")),
        &daemon_metrics.GetCounter(
            "cordial_checkpoint_banks_written",
            "Bank records serialized into checkpoints, by member kind",
            kind_labels("delta"))};
    obs::Histogram* ckpt_write_seconds[2] = {
        &daemon_metrics.GetHistogram(
            "cordial_checkpoint_write_seconds",
            "Wall time of one checkpoint write, by member kind",
            obs::DefaultLatencyBuckets(), kind_labels("full")),
        &daemon_metrics.GetHistogram(
            "cordial_checkpoint_write_seconds",
            "Wall time of one checkpoint write, by member kind",
            obs::DefaultLatencyBuckets(), kind_labels("delta"))};

    // Delta mode: --checkpoint names the chain directory.
    std::unique_ptr<persist::CheckpointChain> chain;
    if (opts.delta_mode && !opts.checkpoint.empty()) {
      ::mkdir(opts.checkpoint.c_str(), 0777);  // EEXIST is the normal case
      chain = std::make_unique<persist::CheckpointChain>(
          persist::ChainConfig{opts.checkpoint, opts.compact_every});
    }

    // Last-checkpoint facts for /statusz. The admin plane reads them from
    // its own thread while the feed loop writes them, hence the mutex.
    struct LastCheckpoint {
      std::mutex mutex;
      bool any = false;
      bool full = false;
      std::uint64_t bytes = 0;
      double seconds = 0.0;
      std::size_t chain_length = 0;  // 0 = single-file mode
    } last_ckpt;

    std::size_t submitted = 0, refused = 0, malformed = 0, checkpoints = 0;
    const auto write_checkpoint = [&] {
      const auto start = std::chrono::steady_clock::now();
      bool full = true;
      std::uint64_t bytes = 0, banks = 0;
      std::size_t chain_length = 0;
      if (chain) {
        const persist::ChainWriteResult result = chain->Write(server);
        full = result.full;
        bytes = result.bytes;
        banks = result.banks_written;
        chain_length = result.chain_length;
      } else {
        std::ostringstream buffer;
        server.SaveCheckpoint(buffer);
        const std::string data = buffer.str();
        serve::WriteFileDurably(opts.checkpoint, data, /*retain_prev=*/true);
        bytes = data.size();
        banks = server.TotalBankCount();
      }
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      checkpoint_seconds.Observe(seconds);
      const std::size_t kind = full ? 0 : 1;
      ckpt_bytes[kind]->Increment(bytes);
      ckpt_banks[kind]->Increment(banks);
      ckpt_write_seconds[kind]->Observe(seconds);
      checkpoints_total.Increment();
      ++checkpoints;
      {
        std::lock_guard<std::mutex> lock(last_ckpt.mutex);
        last_ckpt.any = true;
        last_ckpt.full = full;
        last_ckpt.bytes = bytes;
        last_ckpt.seconds = seconds;
        last_ckpt.chain_length = chain_length;
      }
    };

    std::unique_ptr<learn::ShadowTrainer> trainer;
    if (learning) {
      learn::TrainerConfig trainer_config;
      trainer_config.refresh_every_s = opts.refresh_every_s;
      trainer_config.promotion_min_icr = opts.promotion_min_icr;
      trainer_config.policy = config.engine.policy;
      trainer_config.eval_budget = config.engine.budget;
      trainer = std::make_unique<learn::ShadowTrainer>(
          topology, *slot, *collector, trainer_config);
      trainer->AttachMetrics(daemon_metrics);
    }

    // The TCP ingest plane is constructed after the fleet server starts
    // (below); declared here so /metrics can fold its registry in.
    std::unique_ptr<net::IngestServer> ingest;

    std::unique_ptr<obs::AdminServer> admin;
    if (opts.admin_port != 0) {
      obs::AdminServerConfig admin_config;
      admin_config.port = opts.admin_port;
      admin = std::make_unique<obs::AdminServer>(admin_config);
      admin->AddHandler(
          "/metrics", "text/plain; version=0.0.4; charset=utf-8", [&] {
            std::vector<obs::RegistrySnapshot> parts{
                daemon_metrics.Snapshot(), server.MetricsSnapshot()};
            if (ingest) parts.push_back(ingest->MetricsSnapshot());
            return obs::RenderPrometheus(obs::MergeSnapshots(parts));
          });
      admin->AddHandler("/statusz", "text/plain; charset=utf-8", [&] {
        std::string page = server.StatusTable();
        page += "\ncheckpoints written: " + std::to_string(checkpoints_total.value());
        page += "\nmalformed feed lines: " + std::to_string(malformed_total.value());
        page += "\ncheckpoints quarantined: " + std::to_string(corrupt_total.value());
        {
          std::lock_guard<std::mutex> lock(last_ckpt.mutex);
          if (last_ckpt.any) {
            char line[160];
            std::snprintf(line, sizeof line,
                          "\nlast checkpoint: kind=%s bytes=%llu "
                          "seconds=%.6f chain_length=%zu",
                          last_ckpt.full ? "full" : "delta",
                          static_cast<unsigned long long>(last_ckpt.bytes),
                          last_ckpt.seconds, last_ckpt.chain_length);
            page += line;
          }
        }
        page += "\nlegacy (pre-crc32) frames read: " +
                std::to_string(GetFramingStats().legacy_frames_read);
        for (const std::string& armed : failpoint::ArmedNames()) {
          page += "\nfailpoint armed: " + armed;
        }
        page += "\n";
        return page;
      });
      if (trainer) {
        learn::ShadowTrainer* t = trainer.get();
        serve::FleetServer* srv = &server;
        admin->AddHandler("/modelz", "text/plain; charset=utf-8", [t, srv] {
          std::string page = t->StatusPage();
          page += "per-shard serving generation:";
          for (const std::uint64_t v : srv->ModelVersions()) {
            page += " " + std::to_string(v);
          }
          page += "\n";
          return page;
        });
        admin->AddHandler(
            "/modelz/swap", "text/plain; charset=utf-8",
            [t] {
              return "republished champion as generation " +
                     std::to_string(t->ForceSwap()) + "\n";
            },
            obs::AdminServer::Method::kPost);
        admin->AddHandler(
            "/modelz/rollback", "text/plain; charset=utf-8",
            [t] {
              const std::uint64_t version = t->ForceRollback();
              return version == 0
                         ? std::string("nothing to roll back to\n")
                         : "rolled back; previous models republished as "
                           "generation " + std::to_string(version) + "\n";
            },
            obs::AdminServer::Method::kPost);
      }
      admin->Start();
      std::cerr << "admin plane on http://127.0.0.1:" << admin->port()
                << " (/metrics /statusz /healthz"
                << (trainer ? " /modelz" : "") << ")\n";
    }

    if (chain) {
      const persist::ChainRecoveryOutcome recovery = chain->Recover(server);
      for (const std::string& reason : recovery.errors) {
        std::cerr << "corrupt checkpoint: " << reason << "\n";
      }
      for (const std::string& quarantined : recovery.quarantined) {
        std::cerr << "quarantined corrupt checkpoint to " << quarantined
                  << ".corrupt\n";
        corrupt_total.Increment();
      }
      if (recovery.fell_back) fallback_total.Increment();
      if (!recovery.fresh_start()) {
        std::cerr << "resumed from checkpoint chain " << recovery.restored_from
                  << " (" << server.AggregateStats().events
                  << " events replayed)\n";
      } else if (recovery.fell_back) {
        std::cerr << "no usable checkpoint — starting fresh\n";
      }
    } else if (!opts.checkpoint.empty()) {
      const serve::RecoveryOutcome recovery =
          serve::RecoverCheckpoint(server, opts.checkpoint);
      for (const std::string& reason : recovery.errors) {
        std::cerr << "corrupt checkpoint: " << reason << "\n";
      }
      for (const std::string& quarantined : recovery.quarantined) {
        std::cerr << "quarantined corrupt checkpoint to " << quarantined
                  << "\n";
        corrupt_total.Increment();
      }
      if (recovery.fell_back()) fallback_total.Increment();
      if (!recovery.restored_from.empty()) {
        std::cerr << "resumed from checkpoint " << recovery.restored_from
                  << " (" << server.AggregateStats().events
                  << " events replayed)\n";
      } else if (recovery.fell_back()) {
        std::cerr << "no usable checkpoint — starting fresh\n";
      }
    }

    std::signal(SIGINT, HandleStop);
    std::signal(SIGTERM, HandleStop);

    // A listen plane with no --input means pure network serving: reading
    // stdin would just block shutdown on a terminal that never closes.
    std::ifstream file;
    std::istream* feed = nullptr;
    if (!opts.input.empty()) {
      file.open(opts.input);
      if (!file) throw ParseError("cannot open input " + opts.input);
      feed = &file;
    } else if (!opts.listen) {
      feed = &std::cin;
    }

    server.Start();
    if (trainer) {
      trainer->Start();
      std::cerr << "online learning: shadow-training round every "
                << opts.refresh_every_s << "s (promotion ICR floor "
                << opts.promotion_min_icr << ")\n";
    }
    if (opts.listen) {
      net::IngestServerConfig ingest_config;
      ingest_config.bind_address = opts.listen_address;
      ingest_config.port = opts.listen_port;
      ingest = std::make_unique<net::IngestServer>(server, ingest_config);
      ingest->Start();
      std::cerr << "ingest listening on " << opts.listen_address << ":"
                << ingest->port() << "\n";
    }
    std::vector<serve::ShardCounters> last_status(opts.shards);
    // Chunked feed loop: parse up to --batch-max CSV lines into a record
    // batch, then hand the whole batch to the server (one routed
    // SubmitBatch instead of per-record mutex/CAS traffic). Each batch is
    // capped at the distance to the next checkpoint/status boundary, so
    // those fire at exactly the accepted-record counts the single-record
    // loop produced — the durability drill's byte-identical-checkpoint
    // comparison depends on it. Refused records don't advance `submitted`,
    // so a short batch just re-aims at the same boundary next time.
    std::vector<trace::MceRecord> batch;
    batch.reserve(opts.batch_max);
    std::string line;
    bool feed_open = feed != nullptr;
    while (g_stop == 0 && feed_open) {
      std::size_t limit = opts.batch_max;
      // Armed failpoints mean a crash drill wants record-exact semantics
      // ("power-cut after record N"): fall back to one record per batch.
      if (failpoint::AnyArmed()) limit = 1;
      if (!opts.checkpoint.empty() && opts.checkpoint_every > 0) {
        limit = std::min(
            limit, opts.checkpoint_every - submitted % opts.checkpoint_every);
      }
      if (opts.status_every > 0) {
        limit =
            std::min(limit, opts.status_every - submitted % opts.status_every);
      }
      batch.clear();
      while (batch.size() < limit && std::getline(*feed, line)) {
        if (line.empty() || trace::LogCodec::IsCsvHeader(line)) continue;
        try {
          batch.push_back(trace::LogCodec::ParseCsvLine(line, server.codec()));
        } catch (const ParseError& e) {
          ++malformed;
          malformed_total.Increment();
          std::cerr << "skipping malformed line: " << e.what() << "\n";
        }
      }
      if (!*feed) feed_open = false;
      if (batch.empty()) continue;
      const std::size_t accepted = server.SubmitBatch(batch);
      refused += batch.size() - accepted;
      submitted += accepted;
      // Simulated hard crash of the feed loop (recovery drills): the next
      // boot must come up from the last durable checkpoint. One hit per
      // accepted record, exactly as the single-record loop produced.
      for (std::size_t i = 0; i < accepted; ++i) {
        CORDIAL_FAILPOINT("serverd.feed.crash", ::_exit(122));
      }
      if (accepted > 0 && !opts.checkpoint.empty() &&
          opts.checkpoint_every > 0 &&
          submitted % opts.checkpoint_every == 0) {
        server.Drain();
        write_checkpoint();
      }
      if (accepted > 0 && opts.status_every > 0 &&
          submitted % opts.status_every == 0) {
        // Per-shard queue-counter deltas since the last status line, then
        // aggregate engine tallies off the atomic metric counters (the
        // engines themselves are never read while their workers run).
        std::cerr << "[status] submitted=" << submitted;
        for (std::size_t s = 0; s < server.shard_count(); ++s) {
          const serve::ShardCounters now = server.shard(s).counters();
          std::cerr << " | s" << s << " +"
                    << now.submitted - last_status[s].submitted << "/+"
                    << now.processed - last_status[s].processed
                    << " q=" << server.shard(s).queue_depth();
          if (now.dropped_oldest != last_status[s].dropped_oldest ||
              now.rejected != last_status[s].rejected) {
            std::cerr << " shed="
                      << (now.dropped_oldest - last_status[s].dropped_oldest) +
                             (now.rejected - last_status[s].rejected);
          }
          last_status[s] = now;
        }
        const obs::RegistrySnapshot live = server.MetricsSnapshot();
        std::cerr << " | events="
                  << obs::SumCounterSamples(live,
                                            "cordial_engine_events_total")
                  << " uer="
                  << obs::SumCounterSamples(live,
                                            "cordial_engine_uer_events_total")
                  << " rows_spared="
                  << obs::SumCounterSamples(live,
                                            "cordial_engine_rows_spared_total")
                  << " banks_spared="
                  << obs::SumCounterSamples(
                         live, "cordial_engine_banks_spared_total")
                  << " skew_dropped="
                  << obs::SumCounterSamples(
                         live, "cordial_engine_records_skew_dropped_total")
                  << "\n";
      }
    }

    // Listen mode keeps serving TCP batches after the file feed (if any)
    // drained, until a signal asks for shutdown.
    while (g_stop == 0 && ingest) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (ingest) ingest->Stop();  // no new records past this point
    if (trainer) trainer->Stop();  // no new model generations past this point

    server.Stop();  // drains the queues, then joins the workers
    if (!opts.checkpoint.empty()) {
      write_checkpoint();
      std::cerr << "final checkpoint written to " << opts.checkpoint << "\n";
    }
    if (admin) admin->Stop();

    const core::EngineStats stats = server.AggregateStats();
    const serve::ShardCounters counters = server.AggregateCounters();
    TextTable summary({"Metric", "Value"});
    summary.AddRow({"records submitted", std::to_string(submitted)});
    summary.AddRow({"records refused (overload)", std::to_string(refused)});
    summary.AddRow({"records dropped (overload)",
                    std::to_string(counters.dropped_oldest)});
    summary.AddRow({"malformed lines skipped", std::to_string(malformed)});
    if (ingest) {
      summary.AddRow({"records ingested over TCP",
                      std::to_string(obs::SumCounterSamples(
                          ingest->MetricsSnapshot(),
                          "cordial_net_records_total"))});
    }
    summary.AddRow({"stale records dropped (skew)",
                    std::to_string(stats.records_skew_dropped)});
    summary.AddRow({"events processed", std::to_string(stats.events)});
    summary.AddRow({"banks classified", std::to_string(stats.banks_classified)});
    summary.AddRow(
        {"banks bank-spared", std::to_string(stats.banks_bank_spared)});
    summary.AddRow({"rows isolated", std::to_string(stats.rows_isolated)});
    summary.AddRow({"UER rows preemptively isolated",
                    std::to_string(stats.uer_rows_covered +
                                   stats.uer_rows_covered_by_bank)});
    summary.AddRow({"checkpoints written", std::to_string(checkpoints)});
    if (trainer) {
      const learn::RoundResult last = trainer->LastRound();
      summary.AddRow({"shadow-training rounds", std::to_string(last.round)});
      summary.AddRow({"serving model generation",
                      std::to_string(slot->version())});
    }
    std::cout << summary.Render("cordial_serverd session (" +
                                std::to_string(opts.shards) + " shards)");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
