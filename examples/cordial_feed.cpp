// cordial_feed — TCP feeder for cordial_serverd's ingest plane.
//
// Reads a LogCodec CSV feed, routes every record to the server that owns
// its shard (the same FleetServer::ShardIndexOf hash the servers use), and
// ships batches over the ingest wire protocol. The routing table is the
// interesting part: with several --to endpoints the fleet's shards start
// spread round-robin across them, and --migrate moves a shard's live engine
// state from its current owner to another server mid-feed (export over the
// wire, import over the wire, repoint the routing) without losing a record.
//
// After the feed, --collect fetches every shard from its final owner and
// assembles the exports into one fleet checkpoint file, byte-identical to
// the checkpoint a single never-migrated server would have written — the
// property the migration test suite pins, and the one the tier-1 two-process
// smoke checks end to end.
//
//   cordial_feed <log.csv> --to <host:port> [--to <host:port> ...]
//     --shards <n>       global shard count; must match every server's
//                        --shards (default 4). Shard s starts on endpoint
//                        s % <number of --to endpoints>.
//     --batch-max <n>    records per Batch frame (default 256)
//     --migrate <shard>:<endpoint>@<record>
//                        just before feeding record index <record> (0-based,
//                        counting parsed records), move <shard> to endpoint
//                        index <endpoint>. Repeatable; applied in feed
//                        order.
//     --collect <path>   write the merged fleet checkpoint here afterwards
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "common/framing.hpp"
#include "common/table.hpp"
#include "hbm/address.hpp"
#include "net/ingest_client.hpp"
#include "serve/checkpoint.hpp"
#include "serve/fleet_server.hpp"
#include "trace/log_codec.hpp"

using namespace cordial;

namespace {

int Usage() {
  std::cerr
      << "usage: cordial_feed <log.csv> --to <host:port> [--to <host:port>]\n"
         "         [--shards <n>] [--batch-max <n>]\n"
         "         [--migrate <shard>:<endpoint>@<record>] [--collect <path>]\n";
  return 2;
}

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

struct Migration {
  std::size_t at_record = 0;  ///< fires before this parsed-record index
  std::uint32_t shard = 0;
  std::size_t endpoint = 0;  ///< destination index into the --to list
};

struct Options {
  std::string input;
  std::vector<Endpoint> endpoints;
  std::size_t shards = 4;
  std::size_t batch_max = 256;
  std::vector<Migration> migrations;
  std::string collect;
};

bool ParseEndpoint(const std::string& text, Endpoint& out, std::string& error) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    error = "--to expects <host:port>, got '" + text + "'";
    return false;
  }
  char* end = nullptr;
  const unsigned long long port =
      std::strtoull(text.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port == 0 || port > 65535) {
    error = "--to expects a TCP port, got '" + text + "'";
    return false;
  }
  out.host = text.substr(0, colon);
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

bool ParseMigration(const std::string& text, Migration& out,
                    std::string& error) {
  // <shard>:<endpoint>@<record>
  const std::size_t colon = text.find(':');
  const std::size_t at = text.find('@');
  if (colon == std::string::npos || at == std::string::npos || at < colon) {
    error = "--migrate expects <shard>:<endpoint>@<record>, got '" + text + "'";
    return false;
  }
  char* end = nullptr;
  const auto parse = [&](const std::string& field, unsigned long long& value) {
    value = std::strtoull(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0') {
      error = "--migrate field '" + field + "' is not an integer";
      return false;
    }
    return true;
  };
  unsigned long long shard = 0, endpoint = 0, record = 0;
  if (!parse(text.substr(0, colon), shard)) return false;
  if (!parse(text.substr(colon + 1, at - colon - 1), endpoint)) return false;
  if (!parse(text.substr(at + 1), record)) return false;
  out.shard = static_cast<std::uint32_t>(shard);
  out.endpoint = static_cast<std::size_t>(endpoint);
  out.at_record = static_cast<std::size_t>(record);
  return true;
}

bool ParseArgs(int argc, char** argv, Options& opts, std::string& error) {
  if (argc < 2) {
    error = "missing <log.csv>";
    return false;
  }
  opts.input = argv[1];
  if (opts.input.rfind("--", 0) == 0) {
    error = "expected <log.csv> before flags, got " + opts.input;
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = ++i < argc ? argv[i] : nullptr;
    if (value == nullptr) {
      error = flag + " requires a value";
      return false;
    }
    auto parse_count = [&](std::size_t& out) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0' || parsed == 0) {
        error = flag + " expects a positive integer, got '" +
                std::string(value) + "'";
        return false;
      }
      out = static_cast<std::size_t>(parsed);
      return true;
    };
    if (flag == "--to") {
      Endpoint endpoint;
      if (!ParseEndpoint(value, endpoint, error)) return false;
      opts.endpoints.push_back(endpoint);
    } else if (flag == "--shards") {
      if (!parse_count(opts.shards)) return false;
    } else if (flag == "--batch-max") {
      if (!parse_count(opts.batch_max)) return false;
    } else if (flag == "--migrate") {
      Migration migration;
      if (!ParseMigration(value, migration, error)) return false;
      opts.migrations.push_back(migration);
    } else if (flag == "--collect") {
      opts.collect = value;
    } else {
      error = "unknown flag " + flag;
      return false;
    }
  }
  if (opts.endpoints.empty()) {
    error = "at least one --to <host:port> is required";
    return false;
  }
  for (const Migration& m : opts.migrations) {
    if (m.shard >= opts.shards) {
      error = "--migrate shard " + std::to_string(m.shard) +
              " is out of range for --shards " + std::to_string(opts.shards);
      return false;
    }
    if (m.endpoint >= opts.endpoints.size()) {
      error = "--migrate endpoint " + std::to_string(m.endpoint) +
              " is out of range for " + std::to_string(opts.endpoints.size()) +
              " --to endpoint(s)";
      return false;
    }
  }
  // Applied in feed order regardless of flag order on the command line.
  std::stable_sort(opts.migrations.begin(), opts.migrations.end(),
                   [](const Migration& a, const Migration& b) {
                     return a.at_record < b.at_record;
                   });
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::string parse_error;
  if (!ParseArgs(argc, argv, opts, parse_error)) {
    std::cerr << "cordial_feed: " << parse_error << "\n";
    return Usage();
  }

  try {
    std::ifstream feed(opts.input);
    if (!feed) throw ParseError("cannot open input " + opts.input);

    std::vector<std::unique_ptr<net::IngestClient>> clients;
    for (const Endpoint& endpoint : opts.endpoints) {
      auto client = std::make_unique<net::IngestClient>();
      client->Connect(endpoint.host, endpoint.port);
      clients.push_back(std::move(client));
    }

    // Routing table: owner[s] is the endpoint currently receiving shard s.
    std::vector<std::size_t> owner(opts.shards);
    for (std::size_t s = 0; s < opts.shards; ++s) {
      owner[s] = s % opts.endpoints.size();
    }

    hbm::TopologyConfig topology;
    hbm::AddressCodec codec(topology);

    std::vector<std::vector<trace::MceRecord>> pending(opts.endpoints.size());
    std::vector<std::uint64_t> accepted(opts.endpoints.size(), 0);
    std::uint64_t sent = 0, batches = 0, backpressure_rejects = 0;
    std::size_t malformed = 0;

    // One batch to one endpoint; the reply carries that connection's
    // lifetime accepted total, so `accepted` is an assignment, not a sum.
    const auto flush = [&](std::size_t endpoint) {
      std::vector<trace::MceRecord>& batch = pending[endpoint];
      if (batch.empty()) return;
      const net::Message reply = clients[endpoint]->SendBatch(batch);
      if (const auto* ack = std::get_if<net::Ack>(&reply)) {
        accepted[endpoint] = ack->accepted_records;
      } else {
        const auto& reject = std::get<net::Reject>(reply);
        accepted[endpoint] = reject.accepted_records;
        ++backpressure_rejects;
      }
      sent += batch.size();
      ++batches;
      batch.clear();
    };
    const auto flush_all = [&] {
      for (std::size_t e = 0; e < pending.size(); ++e) flush(e);
    };

    auto next_migration = opts.migrations.begin();
    std::size_t record_index = 0;
    std::string line;
    while (std::getline(feed, line)) {
      if (line.empty() || trace::LogCodec::IsCsvHeader(line)) continue;
      trace::MceRecord record;
      try {
        record = trace::LogCodec::ParseCsvLine(line, codec);
      } catch (const ParseError& e) {
        ++malformed;
        std::cerr << "skipping malformed line: " << e.what() << "\n";
        continue;
      }

      // Everything already routed must be on its server before a shard's
      // state moves — FetchShard drains the shard there, so in-flight
      // batches land in the exported state, not after it.
      while (next_migration != opts.migrations.end() &&
             next_migration->at_record <= record_index) {
        flush_all();
        const std::uint32_t shard = next_migration->shard;
        const std::size_t from = owner[shard];
        const std::size_t to = next_migration->endpoint;
        const std::string state = clients[from]->FetchShard(shard);
        clients[to]->DeliverShard(shard, state);
        owner[shard] = to;
        std::cerr << "migrated shard " << shard << " from endpoint " << from
                  << " to endpoint " << to << " before record "
                  << record_index << " (" << state.size()
                  << " state bytes)\n";
        ++next_migration;
      }

      const std::size_t shard = serve::FleetServer::ShardIndexOf(
          codec.BankKey(record.address), opts.shards);
      pending[owner[shard]].push_back(record);
      if (pending[owner[shard]].size() >= opts.batch_max) {
        flush(owner[shard]);
      }
      ++record_index;
    }
    // Migrations aimed past the end of the feed still run — an operator
    // rebalancing an idle fleet is legitimate.
    while (next_migration != opts.migrations.end()) {
      flush_all();
      const std::uint32_t shard = next_migration->shard;
      const std::size_t from = owner[shard];
      clients[next_migration->endpoint]->DeliverShard(
          shard, clients[from]->FetchShard(shard));
      owner[shard] = next_migration->endpoint;
      ++next_migration;
    }
    flush_all();

    if (!opts.collect.empty()) {
      // Exports in shard-index order under the "shards N" line are exactly
      // SaveCheckpoint's payload — the merged file is byte-identical to a
      // single never-migrated server's checkpoint.
      std::string payload =
          "shards " + std::to_string(opts.shards) + "\n";
      for (std::size_t s = 0; s < opts.shards; ++s) {
        payload += clients[owner[s]]->FetchShard(
            static_cast<std::uint32_t>(s));
      }
      std::ofstream out(opts.collect, std::ios::binary | std::ios::trunc);
      if (!out) throw ParseError("cannot write checkpoint " + opts.collect);
      WriteFramed(out, serve::kFleetCheckpointMagic,
                  serve::kFleetCheckpointVersion, payload);
      out.flush();
      CORDIAL_CHECK_MSG(out.good(),
                        "short write collecting " + opts.collect);
      std::cerr << "collected merged checkpoint to " << opts.collect << "\n";
    }

    std::uint64_t total_accepted = 0;
    for (const std::uint64_t a : accepted) total_accepted += a;

    TextTable summary({"Metric", "Value"});
    summary.AddRow({"records sent", std::to_string(sent)});
    summary.AddRow({"records accepted", std::to_string(total_accepted)});
    summary.AddRow({"batches shipped", std::to_string(batches)});
    summary.AddRow(
        {"backpressure rejects", std::to_string(backpressure_rejects)});
    summary.AddRow({"malformed lines skipped", std::to_string(malformed)});
    summary.AddRow({"migrations performed",
                    std::to_string(opts.migrations.size())});
    std::cout << summary.Render("cordial_feed session (" +
                                std::to_string(opts.endpoints.size()) +
                                " endpoint(s), " +
                                std::to_string(opts.shards) + " shards)");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
