// Isolation planner: explores the sparing-resource trade-off space.
//
// Row sparing is cheap but finite; bank sparing is powerful but expensive
// (§I-II of the paper). This example runs the full Cordial pipeline under a
// sweep of sparing budgets and prints the coverage/cost frontier an
// operator would use to provision redundancy.
//
// Usage: isolation_planner [scale] [seed]
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "trace/fleet.hpp"

using namespace cordial;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  hbm::TopologyConfig topology;
  trace::CalibrationProfile profile;
  profile.scale = scale;
  trace::FleetGenerator generator(topology, profile);
  const trace::GeneratedFleet fleet = generator.Generate(seed);
  std::cout << "fleet: " << fleet.log.size() << " MCE records, "
            << fleet.CountUerBanks() << " UER banks\n\n";

  struct Plan {
    const char* label;
    std::uint32_t rows_per_bank;
    bool bank_sparing;
  };
  static constexpr Plan kPlans[] = {
      {"austere: 16 spare rows, no bank sparing", 16, false},
      {"lean: 32 spare rows, no bank sparing", 32, false},
      {"lean+: 32 spare rows + bank sparing", 32, true},
      {"standard: 64 spare rows + bank sparing", 64, true},
      {"generous: 128 spare rows + bank sparing", 128, true},
      {"unconstrained: 256 spare rows + bank sparing", 256, true},
  };

  TextTable table({"Plan", "ICR", "ICR w/ bank sparing", "Rows Spared",
                   "Banks Spared", "Cost (row units)"});
  for (const Plan& plan : kPlans) {
    core::PipelineConfig config;
    config.learner = ml::LearnerKind::kRandomForest;
    config.budget.rows_per_bank = plan.rows_per_bank;
    config.budget.bank_sparing_available = plan.bank_sparing;
    config.policy.bank_spare_scattered = plan.bank_sparing;
    core::CordialPipeline pipeline(topology, config);
    std::cerr << "evaluating: " << plan.label << "\n";
    const core::PipelineResult result = pipeline.Run(fleet, seed + 1);
    const core::IcrResult& icr = result.cordial.icr;
    table.AddRow({plan.label, TextTable::FormatPercent(icr.Icr()),
                  TextTable::FormatPercent(icr.IcrWithBankSparing()),
                  std::to_string(icr.rows_spared),
                  std::to_string(icr.banks_spared),
                  TextTable::FormatDouble(icr.sparing_cost, 0)});
  }
  std::cout << table.Render("Coverage/cost frontier under Cordial-RF");
  std::cout << "\nreading the frontier: row-spare budgets below the predicted\n"
               "block volume throttle coverage; bank sparing buys coverage on\n"
               "scattered banks at ~512 row-equivalents per bank. Provision\n"
               "the smallest plan whose ICR matches your availability target.\n";
  return 0;
}
