file(REMOVE_RECURSE
  "libcordial_core.a"
)
