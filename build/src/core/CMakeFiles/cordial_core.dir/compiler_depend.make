# Empty compiler generated dependencies file for cordial_core.
# This may be replaced when dependencies are built.
