file(REMOVE_RECURSE
  "CMakeFiles/cordial_core.dir/crossrow.cpp.o"
  "CMakeFiles/cordial_core.dir/crossrow.cpp.o.d"
  "CMakeFiles/cordial_core.dir/features.cpp.o"
  "CMakeFiles/cordial_core.dir/features.cpp.o.d"
  "CMakeFiles/cordial_core.dir/inrow.cpp.o"
  "CMakeFiles/cordial_core.dir/inrow.cpp.o.d"
  "CMakeFiles/cordial_core.dir/isolation.cpp.o"
  "CMakeFiles/cordial_core.dir/isolation.cpp.o.d"
  "CMakeFiles/cordial_core.dir/pattern_classifier.cpp.o"
  "CMakeFiles/cordial_core.dir/pattern_classifier.cpp.o.d"
  "CMakeFiles/cordial_core.dir/pipeline.cpp.o"
  "CMakeFiles/cordial_core.dir/pipeline.cpp.o.d"
  "libcordial_core.a"
  "libcordial_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordial_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
