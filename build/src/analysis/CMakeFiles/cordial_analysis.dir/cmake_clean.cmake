file(REMOVE_RECURSE
  "CMakeFiles/cordial_analysis.dir/empirical.cpp.o"
  "CMakeFiles/cordial_analysis.dir/empirical.cpp.o.d"
  "CMakeFiles/cordial_analysis.dir/labeler.cpp.o"
  "CMakeFiles/cordial_analysis.dir/labeler.cpp.o.d"
  "CMakeFiles/cordial_analysis.dir/locality.cpp.o"
  "CMakeFiles/cordial_analysis.dir/locality.cpp.o.d"
  "CMakeFiles/cordial_analysis.dir/report.cpp.o"
  "CMakeFiles/cordial_analysis.dir/report.cpp.o.d"
  "libcordial_analysis.a"
  "libcordial_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordial_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
