file(REMOVE_RECURSE
  "libcordial_analysis.a"
)
