# Empty compiler generated dependencies file for cordial_analysis.
# This may be replaced when dependencies are built.
