file(REMOVE_RECURSE
  "libcordial_common.a"
)
