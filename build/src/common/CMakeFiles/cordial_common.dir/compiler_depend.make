# Empty compiler generated dependencies file for cordial_common.
# This may be replaced when dependencies are built.
