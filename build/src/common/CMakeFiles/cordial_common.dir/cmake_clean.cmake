file(REMOVE_RECURSE
  "CMakeFiles/cordial_common.dir/csv.cpp.o"
  "CMakeFiles/cordial_common.dir/csv.cpp.o.d"
  "CMakeFiles/cordial_common.dir/rng.cpp.o"
  "CMakeFiles/cordial_common.dir/rng.cpp.o.d"
  "CMakeFiles/cordial_common.dir/stats.cpp.o"
  "CMakeFiles/cordial_common.dir/stats.cpp.o.d"
  "CMakeFiles/cordial_common.dir/table.cpp.o"
  "CMakeFiles/cordial_common.dir/table.cpp.o.d"
  "libcordial_common.a"
  "libcordial_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordial_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
