file(REMOVE_RECURSE
  "libcordial_hbm.a"
)
