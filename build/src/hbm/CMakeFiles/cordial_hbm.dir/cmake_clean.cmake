file(REMOVE_RECURSE
  "CMakeFiles/cordial_hbm.dir/address.cpp.o"
  "CMakeFiles/cordial_hbm.dir/address.cpp.o.d"
  "CMakeFiles/cordial_hbm.dir/bank_sim.cpp.o"
  "CMakeFiles/cordial_hbm.dir/bank_sim.cpp.o.d"
  "CMakeFiles/cordial_hbm.dir/ecc.cpp.o"
  "CMakeFiles/cordial_hbm.dir/ecc.cpp.o.d"
  "CMakeFiles/cordial_hbm.dir/error_map.cpp.o"
  "CMakeFiles/cordial_hbm.dir/error_map.cpp.o.d"
  "CMakeFiles/cordial_hbm.dir/fault.cpp.o"
  "CMakeFiles/cordial_hbm.dir/fault.cpp.o.d"
  "CMakeFiles/cordial_hbm.dir/sparing.cpp.o"
  "CMakeFiles/cordial_hbm.dir/sparing.cpp.o.d"
  "CMakeFiles/cordial_hbm.dir/topology.cpp.o"
  "CMakeFiles/cordial_hbm.dir/topology.cpp.o.d"
  "libcordial_hbm.a"
  "libcordial_hbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordial_hbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
