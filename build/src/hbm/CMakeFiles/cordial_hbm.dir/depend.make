# Empty dependencies file for cordial_hbm.
# This may be replaced when dependencies are built.
