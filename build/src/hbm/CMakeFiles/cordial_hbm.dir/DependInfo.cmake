
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hbm/address.cpp" "src/hbm/CMakeFiles/cordial_hbm.dir/address.cpp.o" "gcc" "src/hbm/CMakeFiles/cordial_hbm.dir/address.cpp.o.d"
  "/root/repo/src/hbm/bank_sim.cpp" "src/hbm/CMakeFiles/cordial_hbm.dir/bank_sim.cpp.o" "gcc" "src/hbm/CMakeFiles/cordial_hbm.dir/bank_sim.cpp.o.d"
  "/root/repo/src/hbm/ecc.cpp" "src/hbm/CMakeFiles/cordial_hbm.dir/ecc.cpp.o" "gcc" "src/hbm/CMakeFiles/cordial_hbm.dir/ecc.cpp.o.d"
  "/root/repo/src/hbm/error_map.cpp" "src/hbm/CMakeFiles/cordial_hbm.dir/error_map.cpp.o" "gcc" "src/hbm/CMakeFiles/cordial_hbm.dir/error_map.cpp.o.d"
  "/root/repo/src/hbm/fault.cpp" "src/hbm/CMakeFiles/cordial_hbm.dir/fault.cpp.o" "gcc" "src/hbm/CMakeFiles/cordial_hbm.dir/fault.cpp.o.d"
  "/root/repo/src/hbm/sparing.cpp" "src/hbm/CMakeFiles/cordial_hbm.dir/sparing.cpp.o" "gcc" "src/hbm/CMakeFiles/cordial_hbm.dir/sparing.cpp.o.d"
  "/root/repo/src/hbm/topology.cpp" "src/hbm/CMakeFiles/cordial_hbm.dir/topology.cpp.o" "gcc" "src/hbm/CMakeFiles/cordial_hbm.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cordial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
