
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/error_log.cpp" "src/trace/CMakeFiles/cordial_trace.dir/error_log.cpp.o" "gcc" "src/trace/CMakeFiles/cordial_trace.dir/error_log.cpp.o.d"
  "/root/repo/src/trace/fleet.cpp" "src/trace/CMakeFiles/cordial_trace.dir/fleet.cpp.o" "gcc" "src/trace/CMakeFiles/cordial_trace.dir/fleet.cpp.o.d"
  "/root/repo/src/trace/log_codec.cpp" "src/trace/CMakeFiles/cordial_trace.dir/log_codec.cpp.o" "gcc" "src/trace/CMakeFiles/cordial_trace.dir/log_codec.cpp.o.d"
  "/root/repo/src/trace/replay.cpp" "src/trace/CMakeFiles/cordial_trace.dir/replay.cpp.o" "gcc" "src/trace/CMakeFiles/cordial_trace.dir/replay.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/trace/CMakeFiles/cordial_trace.dir/timeline.cpp.o" "gcc" "src/trace/CMakeFiles/cordial_trace.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hbm/CMakeFiles/cordial_hbm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cordial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
