file(REMOVE_RECURSE
  "libcordial_trace.a"
)
