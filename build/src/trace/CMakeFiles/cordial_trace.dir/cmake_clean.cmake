file(REMOVE_RECURSE
  "CMakeFiles/cordial_trace.dir/error_log.cpp.o"
  "CMakeFiles/cordial_trace.dir/error_log.cpp.o.d"
  "CMakeFiles/cordial_trace.dir/fleet.cpp.o"
  "CMakeFiles/cordial_trace.dir/fleet.cpp.o.d"
  "CMakeFiles/cordial_trace.dir/log_codec.cpp.o"
  "CMakeFiles/cordial_trace.dir/log_codec.cpp.o.d"
  "CMakeFiles/cordial_trace.dir/replay.cpp.o"
  "CMakeFiles/cordial_trace.dir/replay.cpp.o.d"
  "CMakeFiles/cordial_trace.dir/timeline.cpp.o"
  "CMakeFiles/cordial_trace.dir/timeline.cpp.o.d"
  "libcordial_trace.a"
  "libcordial_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordial_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
