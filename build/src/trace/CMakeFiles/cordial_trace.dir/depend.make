# Empty dependencies file for cordial_trace.
# This may be replaced when dependencies are built.
