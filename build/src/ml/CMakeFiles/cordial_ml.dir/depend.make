# Empty dependencies file for cordial_ml.
# This may be replaced when dependencies are built.
