file(REMOVE_RECURSE
  "CMakeFiles/cordial_ml.dir/booster.cpp.o"
  "CMakeFiles/cordial_ml.dir/booster.cpp.o.d"
  "CMakeFiles/cordial_ml.dir/dataset.cpp.o"
  "CMakeFiles/cordial_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/cordial_ml.dir/forest.cpp.o"
  "CMakeFiles/cordial_ml.dir/forest.cpp.o.d"
  "CMakeFiles/cordial_ml.dir/metrics.cpp.o"
  "CMakeFiles/cordial_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/cordial_ml.dir/tree.cpp.o"
  "CMakeFiles/cordial_ml.dir/tree.cpp.o.d"
  "CMakeFiles/cordial_ml.dir/validation.cpp.o"
  "CMakeFiles/cordial_ml.dir/validation.cpp.o.d"
  "libcordial_ml.a"
  "libcordial_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordial_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
