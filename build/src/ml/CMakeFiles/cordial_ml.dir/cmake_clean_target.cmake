file(REMOVE_RECURSE
  "libcordial_ml.a"
)
