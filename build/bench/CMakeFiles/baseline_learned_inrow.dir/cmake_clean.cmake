file(REMOVE_RECURSE
  "CMakeFiles/baseline_learned_inrow.dir/baseline_learned_inrow.cpp.o"
  "CMakeFiles/baseline_learned_inrow.dir/baseline_learned_inrow.cpp.o.d"
  "baseline_learned_inrow"
  "baseline_learned_inrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_learned_inrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
