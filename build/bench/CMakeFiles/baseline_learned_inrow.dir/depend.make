# Empty dependencies file for baseline_learned_inrow.
# This may be replaced when dependencies are built.
