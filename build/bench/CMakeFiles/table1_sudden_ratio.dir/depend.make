# Empty dependencies file for table1_sudden_ratio.
# This may be replaced when dependencies are built.
