file(REMOVE_RECURSE
  "CMakeFiles/table1_sudden_ratio.dir/table1_sudden_ratio.cpp.o"
  "CMakeFiles/table1_sudden_ratio.dir/table1_sudden_ratio.cpp.o.d"
  "table1_sudden_ratio"
  "table1_sudden_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sudden_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
