file(REMOVE_RECURSE
  "CMakeFiles/ablation_window_block.dir/ablation_window_block.cpp.o"
  "CMakeFiles/ablation_window_block.dir/ablation_window_block.cpp.o.d"
  "ablation_window_block"
  "ablation_window_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_window_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
