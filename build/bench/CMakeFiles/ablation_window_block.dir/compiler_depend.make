# Empty compiler generated dependencies file for ablation_window_block.
# This may be replaced when dependencies are built.
