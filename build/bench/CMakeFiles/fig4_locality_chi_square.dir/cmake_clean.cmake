file(REMOVE_RECURSE
  "CMakeFiles/fig4_locality_chi_square.dir/fig4_locality_chi_square.cpp.o"
  "CMakeFiles/fig4_locality_chi_square.dir/fig4_locality_chi_square.cpp.o.d"
  "fig4_locality_chi_square"
  "fig4_locality_chi_square.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_locality_chi_square.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
