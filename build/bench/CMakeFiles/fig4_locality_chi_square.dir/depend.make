# Empty dependencies file for fig4_locality_chi_square.
# This may be replaced when dependencies are built.
