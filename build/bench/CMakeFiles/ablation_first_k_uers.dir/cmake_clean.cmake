file(REMOVE_RECURSE
  "CMakeFiles/ablation_first_k_uers.dir/ablation_first_k_uers.cpp.o"
  "CMakeFiles/ablation_first_k_uers.dir/ablation_first_k_uers.cpp.o.d"
  "ablation_first_k_uers"
  "ablation_first_k_uers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_first_k_uers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
