
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_first_k_uers.cpp" "bench/CMakeFiles/ablation_first_k_uers.dir/ablation_first_k_uers.cpp.o" "gcc" "bench/CMakeFiles/ablation_first_k_uers.dir/ablation_first_k_uers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cordial_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cordial_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cordial_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cordial_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hbm/CMakeFiles/cordial_hbm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cordial_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
