# Empty compiler generated dependencies file for ablation_first_k_uers.
# This may be replaced when dependencies are built.
