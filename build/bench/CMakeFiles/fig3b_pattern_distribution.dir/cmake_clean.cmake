file(REMOVE_RECURSE
  "CMakeFiles/fig3b_pattern_distribution.dir/fig3b_pattern_distribution.cpp.o"
  "CMakeFiles/fig3b_pattern_distribution.dir/fig3b_pattern_distribution.cpp.o.d"
  "fig3b_pattern_distribution"
  "fig3b_pattern_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_pattern_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
