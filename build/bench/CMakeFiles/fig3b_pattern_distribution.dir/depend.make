# Empty dependencies file for fig3b_pattern_distribution.
# This may be replaced when dependencies are built.
