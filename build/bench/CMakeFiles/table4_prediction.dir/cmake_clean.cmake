file(REMOVE_RECURSE
  "CMakeFiles/table4_prediction.dir/table4_prediction.cpp.o"
  "CMakeFiles/table4_prediction.dir/table4_prediction.cpp.o.d"
  "table4_prediction"
  "table4_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
