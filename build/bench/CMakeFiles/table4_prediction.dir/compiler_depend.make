# Empty compiler generated dependencies file for table4_prediction.
# This may be replaced when dependencies are built.
