# Empty dependencies file for fig3a_pattern_examples.
# This may be replaced when dependencies are built.
