file(REMOVE_RECURSE
  "CMakeFiles/fig3a_pattern_examples.dir/fig3a_pattern_examples.cpp.o"
  "CMakeFiles/fig3a_pattern_examples.dir/fig3a_pattern_examples.cpp.o.d"
  "fig3a_pattern_examples"
  "fig3a_pattern_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_pattern_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
