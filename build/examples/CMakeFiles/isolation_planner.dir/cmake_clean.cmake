file(REMOVE_RECURSE
  "CMakeFiles/isolation_planner.dir/isolation_planner.cpp.o"
  "CMakeFiles/isolation_planner.dir/isolation_planner.cpp.o.d"
  "isolation_planner"
  "isolation_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
