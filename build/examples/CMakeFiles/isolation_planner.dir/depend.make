# Empty dependencies file for isolation_planner.
# This may be replaced when dependencies are built.
