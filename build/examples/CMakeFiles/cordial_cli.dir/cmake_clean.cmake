file(REMOVE_RECURSE
  "CMakeFiles/cordial_cli.dir/cordial_cli.cpp.o"
  "CMakeFiles/cordial_cli.dir/cordial_cli.cpp.o.d"
  "cordial_cli"
  "cordial_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cordial_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
