# Empty dependencies file for cordial_cli.
# This may be replaced when dependencies are built.
