file(REMOVE_RECURSE
  "CMakeFiles/ml_tests.dir/ml/booster_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/booster_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/forest_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/forest_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/probability_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/probability_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/serialize_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/serialize_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/tree_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/tree_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/validation_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/validation_test.cpp.o.d"
  "ml_tests"
  "ml_tests.pdb"
  "ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
