# Empty dependencies file for hbm_tests.
# This may be replaced when dependencies are built.
