file(REMOVE_RECURSE
  "CMakeFiles/hbm_tests.dir/hbm/address_test.cpp.o"
  "CMakeFiles/hbm_tests.dir/hbm/address_test.cpp.o.d"
  "CMakeFiles/hbm_tests.dir/hbm/bank_sim_test.cpp.o"
  "CMakeFiles/hbm_tests.dir/hbm/bank_sim_test.cpp.o.d"
  "CMakeFiles/hbm_tests.dir/hbm/ecc_test.cpp.o"
  "CMakeFiles/hbm_tests.dir/hbm/ecc_test.cpp.o.d"
  "CMakeFiles/hbm_tests.dir/hbm/error_map_test.cpp.o"
  "CMakeFiles/hbm_tests.dir/hbm/error_map_test.cpp.o.d"
  "CMakeFiles/hbm_tests.dir/hbm/fault_test.cpp.o"
  "CMakeFiles/hbm_tests.dir/hbm/fault_test.cpp.o.d"
  "CMakeFiles/hbm_tests.dir/hbm/scrub_test.cpp.o"
  "CMakeFiles/hbm_tests.dir/hbm/scrub_test.cpp.o.d"
  "CMakeFiles/hbm_tests.dir/hbm/sparing_test.cpp.o"
  "CMakeFiles/hbm_tests.dir/hbm/sparing_test.cpp.o.d"
  "CMakeFiles/hbm_tests.dir/hbm/topology_test.cpp.o"
  "CMakeFiles/hbm_tests.dir/hbm/topology_test.cpp.o.d"
  "hbm_tests"
  "hbm_tests.pdb"
  "hbm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
