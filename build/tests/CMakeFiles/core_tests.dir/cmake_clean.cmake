file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/crossrow_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/crossrow_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/features_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/features_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/inrow_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/inrow_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/isolation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/isolation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pattern_classifier_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pattern_classifier_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/persistence_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/persistence_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_learners_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_learners_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
