#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the parallel-layer,
# serving-layer and observability tests again under ThreadSanitizer so data
# races in the thread pool, the shard queues, the metric registries, or any
# fanned-out hot path fail the run even when the plain build passes, and the
# engine/profile/replay tests under AddressSanitizer so lifetime bugs in the
# incremental per-bank state (profile snapshots, bounded retention eviction)
# fail the run too (including the checkpoint durability torture suite —
# truncation/bit-flip parsing is exactly where lifetime bugs would hide).
# Then the durability smoke: a failpoint power-cuts cordial_serverd in the
# middle of a checkpoint write; the restarted daemon must recover and end
# with a checkpoint byte-identical to an uninterrupted reference run.
# Finally two perf gates: instrumenting the serving hot path must cost
# <= 5% throughput vs the uninstrumented path (BENCH_obs.json), and the
# lock-free batched ring must beat the pre-ring mutex queue >= 5x into a
# single shard (BENCH_queue.json).
#
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan] [--skip-smoke]
#                         [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
SKIP_SMOKE=0
SKIP_BENCH=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
  [[ "$arg" == "--skip-smoke" ]] && SKIP_SMOKE=1
  [[ "$arg" == "--skip-bench" ]] && SKIP_BENCH=1
done

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "tier1: skipping ThreadSanitizer pass (--skip-tsan)"
else
  cmake -B build-tsan -S . -DCORDIAL_SANITIZE=thread \
    -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  # Run the parallel-layer tests wide enough to exercise the worker pool,
  # plus the serving-layer tests (shard workers + checkpointing) and the
  # observability tests (concurrent metric accumulation, scrape-under-fire,
  # the admin HTTP server).
  CORDIAL_THREADS=8 ctest --test-dir build-tsan --output-on-failure \
    -R '^(Parallel|FleetServer|EngineCheckpoint|Obs|MpscRing)'
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "tier1: skipping AddressSanitizer pass (--skip-asan)"
else
  cmake -B build-asan -S . -DCORDIAL_SANITIZE=address \
    -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure \
    -R '^(BankProfile|PredictionEngine|StreamReplayer|Obs|Durability|Failpoint)'
fi

if [[ "$SKIP_SMOKE" == "1" ]]; then
  echo "tier1: skipping durability smoke (--skip-smoke)"
else
  # Crash/recovery drill with the real daemon binaries. The failpoint
  # power-cuts (::_exit 121) the second periodic checkpoint after its tmp
  # file is durable but before the rename publishes it; the restart must
  # recover from the first checkpoint, re-feed the lost records, and end in
  # a state byte-identical to an uninterrupted reference run.
  SMOKE=build/durability-smoke
  rm -rf "$SMOKE"
  mkdir -p "$SMOKE"
  ./build/examples/cordial_cli generate "$SMOKE/log.csv" > /dev/null
  ./build/examples/cordial_cli train "$SMOKE/log.csv" "$SMOKE/m" > /dev/null
  TOTAL=$(( $(wc -l < "$SMOKE/log.csv") - 1 ))  # minus the CSV header
  EVERY=$(( TOTAL / 4 ))
  [[ "$EVERY" -ge 1 ]] || { echo "tier1: smoke feed too small"; exit 1; }

  ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/log.csv" \
    --checkpoint "$SMOKE/ref.ckpt" --checkpoint-every "$EVERY" \
    --shards 2 --status-every 0 > /dev/null 2>&1

  set +e
  CORDIAL_FAILPOINTS="serve.checkpoint.crash_before_rename=1:1" \
    ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/log.csv" \
    --checkpoint "$SMOKE/crash.ckpt" --checkpoint-every "$EVERY" \
    --shards 2 --status-every 0 > /dev/null 2>&1
  CRASH_CODE=$?
  set -e
  if [[ "$CRASH_CODE" != "121" ]]; then
    echo "tier1: smoke expected power-cut exit 121, got $CRASH_CODE"
    exit 1
  fi
  # The cut happened after the tmp fsync: the unpublished file must exist.
  [[ -f "$SMOKE/crash.ckpt.tmp" ]] || {
    echo "tier1: smoke durable tmp file missing after power cut"; exit 1; }

  # The crashed run consumed 2*EVERY records but only EVERY are durable;
  # the restart re-feeds everything after the surviving checkpoint
  # (line 1 is the CSV header, so data record N is line N+1).
  tail -n +$(( EVERY + 2 )) "$SMOKE/log.csv" > "$SMOKE/rest.csv"
  ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/rest.csv" \
    --checkpoint "$SMOKE/crash.ckpt" --checkpoint-every "$EVERY" \
    --shards 2 --status-every 0 > /dev/null 2>&1
  cmp "$SMOKE/ref.ckpt" "$SMOKE/crash.ckpt"
  echo "tier1: durability smoke OK (power cut at record $(( 2 * EVERY ))," \
    "resumed from record $EVERY, final checkpoints byte-identical)"
fi

if [[ "$SKIP_BENCH" == "1" ]]; then
  echo "tier1: skipping observability overhead gate (--skip-bench)"
else
  # Exits non-zero when instrumentation costs more than 5% throughput.
  (cd build/bench && ./perf_obs_overhead)
  # Exits non-zero unless the lock-free batched ring beats the pre-ring
  # mutex queue >= 5x into one shard (BENCH_queue.json holds the rows).
  (cd build/bench && ./perf_queue_throughput)
fi
echo "tier1: OK"
