#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the parallel-layer,
# serving-layer and observability tests again under ThreadSanitizer so data
# races in the thread pool, the shard queues, the metric registries, or any
# fanned-out hot path fail the run even when the plain build passes, and the
# engine/profile/replay tests under AddressSanitizer so lifetime bugs in the
# incremental per-bank state (profile snapshots, bounded retention eviction)
# fail the run too. Finally the observability overhead gate: instrumenting
# the serving hot path must cost <= 5% throughput vs the uninstrumented
# path, or the run fails (BENCH_obs.json holds the measurement).
#
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan] [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
SKIP_BENCH=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
  [[ "$arg" == "--skip-bench" ]] && SKIP_BENCH=1
done

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "tier1: skipping ThreadSanitizer pass (--skip-tsan)"
else
  cmake -B build-tsan -S . -DCORDIAL_SANITIZE=thread \
    -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  # Run the parallel-layer tests wide enough to exercise the worker pool,
  # plus the serving-layer tests (shard workers + checkpointing) and the
  # observability tests (concurrent metric accumulation, scrape-under-fire,
  # the admin HTTP server).
  CORDIAL_THREADS=8 ctest --test-dir build-tsan --output-on-failure \
    -R '^(Parallel|FleetServer|EngineCheckpoint|Obs)'
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "tier1: skipping AddressSanitizer pass (--skip-asan)"
else
  cmake -B build-asan -S . -DCORDIAL_SANITIZE=address \
    -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure \
    -R '^(BankProfile|PredictionEngine|StreamReplayer|Obs)'
fi

if [[ "$SKIP_BENCH" == "1" ]]; then
  echo "tier1: skipping observability overhead gate (--skip-bench)"
else
  # Exits non-zero when instrumentation costs more than 5% throughput.
  (cd build/bench && ./perf_obs_overhead)
fi
echo "tier1: OK"
