#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the parallel-layer and
# serving-layer tests again under ThreadSanitizer so data races in the
# thread pool, the shard queues, or any fanned-out hot path fail the run
# even when the plain build passes, and the engine/profile/replay tests
# under AddressSanitizer so lifetime bugs in the incremental per-bank state
# (profile snapshots, bounded retention eviction) fail the run too.
#
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
done

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "tier1: skipping ThreadSanitizer pass (--skip-tsan)"
else
  cmake -B build-tsan -S . -DCORDIAL_SANITIZE=thread \
    -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  # Run the parallel-layer tests wide enough to exercise the worker pool,
  # plus the serving-layer tests (shard workers + checkpointing).
  CORDIAL_THREADS=8 ctest --test-dir build-tsan --output-on-failure \
    -R '^(Parallel|FleetServer|EngineCheckpoint)'
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "tier1: skipping AddressSanitizer pass (--skip-asan)"
else
  cmake -B build-asan -S . -DCORDIAL_SANITIZE=address \
    -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure \
    -R '^(BankProfile|PredictionEngine|StreamReplayer)'
fi
echo "tier1: OK"
