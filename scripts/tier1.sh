#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the parallel-layer,
# serving-layer and observability tests again under ThreadSanitizer so data
# races in the thread pool, the shard queues, the metric registries, or any
# fanned-out hot path fail the run even when the plain build passes, and the
# engine/profile/replay tests under AddressSanitizer so lifetime bugs in the
# incremental per-bank state (profile snapshots, bounded retention eviction)
# fail the run too (including the checkpoint durability torture suite —
# truncation/bit-flip parsing is exactly where lifetime bugs would hide).
# Then three smokes with the real daemon binaries: the durability drill (a
# failpoint power-cuts cordial_serverd mid-checkpoint; the restart must end
# byte-identical to an uninterrupted reference), the chain drill (same
# power cut, but in --checkpoint-mode=delta mid-delta-member; the restart
# must recover off the surviving chain prefix and the folded chains must be
# byte-identical) and the migration drill (cordial_feed drives two
# listening daemons, moves a shard between the processes mid-feed, and the
# merged checkpoint it collects must be byte-identical to the
# never-migrated reference).
# Finally five perf gates: instrumenting the serving hot path must cost
# <= 5% throughput vs the uninstrumented path (BENCH_obs.json), the
# lock-free batched ring must beat the pre-ring mutex queue >= 5x into a
# single shard (BENCH_queue.json), TCP ingest must sustain >= 80% of
# in-process SubmitBatch throughput at 8 connections (BENCH_net.json),
# serving under constant model hot-swaps must stay within 5% of the
# fixed-model path (BENCH_swap.json), and a steady-state dirty-bank delta
# checkpoint must be >= 10x cheaper than the full-text snapshot in both
# bytes and wall time on a >= 4k-bank fleet (BENCH_ckpt.json).
#
# Usage: scripts/tier1.sh [--skip-tsan] [--skip-asan] [--skip-smoke]
#                         [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
SKIP_SMOKE=0
SKIP_BENCH=0
for arg in "$@"; do
  [[ "$arg" == "--skip-tsan" ]] && SKIP_TSAN=1
  [[ "$arg" == "--skip-asan" ]] && SKIP_ASAN=1
  [[ "$arg" == "--skip-smoke" ]] && SKIP_SMOKE=1
  [[ "$arg" == "--skip-bench" ]] && SKIP_BENCH=1
done

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "tier1: skipping ThreadSanitizer pass (--skip-tsan)"
else
  cmake -B build-tsan -S . -DCORDIAL_SANITIZE=thread \
    -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  # Run the parallel-layer tests wide enough to exercise the worker pool,
  # plus the serving-layer tests (shard workers + checkpointing), the
  # observability tests (concurrent metric accumulation, scrape-under-fire,
  # the admin HTTP server) and the network plane (reactor loop thread,
  # ingest connections, cross-server shard migration).
  CORDIAL_THREADS=8 ctest --test-dir build-tsan --output-on-failure \
    -R '^(Parallel|FleetServer|EngineCheckpoint|Obs|MpscRing|Net|Migration|Learn|ModelSwap|Persist|Chain|ReadDisturb|RowMapping)'
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "tier1: skipping AddressSanitizer pass (--skip-asan)"
else
  cmake -B build-asan -S . -DCORDIAL_SANITIZE=address \
    -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  ctest --test-dir build-asan --output-on-failure \
    -R '^(BankProfile|PredictionEngine|StreamReplayer|Obs|Durability|Failpoint|Net|Migration|Learn|ModelSwap|Persist|Chain|ReadDisturb|RowMapping)'
fi

if [[ "$SKIP_SMOKE" == "1" ]]; then
  echo "tier1: skipping durability smoke (--skip-smoke)"
else
  # Crash/recovery drill with the real daemon binaries. The failpoint
  # power-cuts (::_exit 121) the second periodic checkpoint after its tmp
  # file is durable but before the rename publishes it; the restart must
  # recover from the first checkpoint, re-feed the lost records, and end in
  # a state byte-identical to an uninterrupted reference run.
  SMOKE=build/durability-smoke
  rm -rf "$SMOKE"
  mkdir -p "$SMOKE"
  ./build/examples/cordial_cli generate "$SMOKE/log.csv" > /dev/null
  ./build/examples/cordial_cli train "$SMOKE/log.csv" "$SMOKE/m" > /dev/null
  TOTAL=$(( $(wc -l < "$SMOKE/log.csv") - 1 ))  # minus the CSV header
  EVERY=$(( TOTAL / 4 ))
  [[ "$EVERY" -ge 1 ]] || { echo "tier1: smoke feed too small"; exit 1; }

  ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/log.csv" \
    --checkpoint "$SMOKE/ref.ckpt" --checkpoint-every "$EVERY" \
    --shards 2 --status-every 0 > /dev/null 2>&1

  set +e
  CORDIAL_FAILPOINTS="serve.checkpoint.crash_before_rename=1:1" \
    ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/log.csv" \
    --checkpoint "$SMOKE/crash.ckpt" --checkpoint-every "$EVERY" \
    --shards 2 --status-every 0 > /dev/null 2>&1
  CRASH_CODE=$?
  set -e
  if [[ "$CRASH_CODE" != "121" ]]; then
    echo "tier1: smoke expected power-cut exit 121, got $CRASH_CODE"
    exit 1
  fi
  # The cut happened after the tmp fsync: the unpublished file must exist.
  [[ -f "$SMOKE/crash.ckpt.tmp" ]] || {
    echo "tier1: smoke durable tmp file missing after power cut"; exit 1; }

  # The crashed run consumed 2*EVERY records but only EVERY are durable;
  # the restart re-feeds everything after the surviving checkpoint
  # (line 1 is the CSV header, so data record N is line N+1).
  tail -n +$(( EVERY + 2 )) "$SMOKE/log.csv" > "$SMOKE/rest.csv"
  ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/rest.csv" \
    --checkpoint "$SMOKE/crash.ckpt" --checkpoint-every "$EVERY" \
    --shards 2 --status-every 0 > /dev/null 2>&1
  cmp "$SMOKE/ref.ckpt" "$SMOKE/crash.ckpt"
  echo "tier1: durability smoke OK (power cut at record $(( 2 * EVERY ))," \
    "resumed from record $EVERY, final checkpoints byte-identical)"

  # Chain drill: the same power cut, but against the delta checkpoint
  # chain. In delta mode each interval durably writes a member then the
  # manifest, so durable-write hits run full(1) manifest(2) delta(3)
  # manifest(4) ...; skipping 2 cuts power mid-first-delta-member. Only the
  # full survives; the restart must recover off that chain prefix, re-feed
  # the lost records, and fold (cordial_ckpt export) to bytes identical to
  # an uninterrupted delta-mode reference run's fold.
  ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/log.csv" \
    --checkpoint "$SMOKE/chain-ref" --checkpoint-mode delta \
    --checkpoint-every "$EVERY" --shards 2 --status-every 0 > /dev/null 2>&1

  set +e
  CORDIAL_FAILPOINTS="serve.checkpoint.crash_before_rename=2:1" \
    ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/log.csv" \
    --checkpoint "$SMOKE/chain-crash" --checkpoint-mode delta \
    --checkpoint-every "$EVERY" --shards 2 --status-every 0 > /dev/null 2>&1
  CRASH_CODE=$?
  set -e
  if [[ "$CRASH_CODE" != "121" ]]; then
    echo "tier1: chain smoke expected power-cut exit 121, got $CRASH_CODE"
    exit 1
  fi
  # The surviving prefix (the epoch-1 full + manifest) must verify sound.
  ./build/examples/cordial_ckpt verify "$SMOKE/chain-crash" > /dev/null

  tail -n +$(( EVERY + 2 )) "$SMOKE/log.csv" > "$SMOKE/chain-rest.csv"
  ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/chain-rest.csv" \
    --checkpoint "$SMOKE/chain-crash" --checkpoint-mode delta \
    --checkpoint-every "$EVERY" --shards 2 --status-every 0 > /dev/null 2>&1
  ./build/examples/cordial_ckpt export "$SMOKE/chain-ref" \
    "$SMOKE/chain-ref.full" 2> /dev/null
  ./build/examples/cordial_ckpt export "$SMOKE/chain-crash" \
    "$SMOKE/chain-crash.full" 2> /dev/null
  cmp "$SMOKE/chain-ref.full" "$SMOKE/chain-crash.full"
  echo "tier1: chain smoke OK (power cut mid-delta at record $(( 2 * EVERY ))," \
    "resumed off the chain from record $EVERY, folded chains byte-identical)"

  # Migration smoke with two live daemons. Both serve the TCP ingest plane;
  # cordial_feed routes shards across them, moves shard 1 between processes
  # mid-feed, then collects a merged checkpoint from the final owners. It
  # must be byte-identical to the single-process never-migrated reference
  # the durability drill already produced from the same feed.
  NET_PIDS=""
  cleanup_net() { [[ -n "$NET_PIDS" ]] && kill $NET_PIDS 2>/dev/null || true; }
  trap cleanup_net EXIT
  ./build/examples/cordial_serverd "$SMOKE/m" --shards 2 --listen-port 0 \
    --status-every 0 > /dev/null 2> "$SMOKE/node_a.log" &
  NET_PIDS="$!"
  ./build/examples/cordial_serverd "$SMOKE/m" --shards 2 --listen-port 0 \
    --status-every 0 > /dev/null 2> "$SMOKE/node_b.log" &
  NET_PIDS="$NET_PIDS $!"
  for _ in $(seq 1 100); do
    grep -q "ingest listening on" "$SMOKE/node_a.log" 2>/dev/null &&
      grep -q "ingest listening on" "$SMOKE/node_b.log" 2>/dev/null && break
    sleep 0.1
  done
  PORT_A=$(sed -n 's/.*ingest listening on .*:\([0-9]*\)$/\1/p' \
    "$SMOKE/node_a.log" | head -1)
  PORT_B=$(sed -n 's/.*ingest listening on .*:\([0-9]*\)$/\1/p' \
    "$SMOKE/node_b.log" | head -1)
  [[ -n "$PORT_A" && -n "$PORT_B" ]] || {
    echo "tier1: net smoke daemons never announced their ports"; exit 1; }
  ./build/examples/cordial_feed "$SMOKE/log.csv" --shards 2 \
    --to "127.0.0.1:$PORT_A" --to "127.0.0.1:$PORT_B" \
    --migrate "1:0@$(( TOTAL / 2 ))" --collect "$SMOKE/merged.ckpt" \
    > /dev/null 2>&1
  kill $NET_PIDS 2>/dev/null || true
  wait $NET_PIDS 2>/dev/null || true
  NET_PIDS=""
  cmp "$SMOKE/ref.ckpt" "$SMOKE/merged.ckpt"
  echo "tier1: migration smoke OK (shard 1 moved between two processes at" \
    "record $(( TOTAL / 2 )), merged checkpoint byte-identical)"

  # Hostile-feed smoke: cordial_storm distorts the reference feed (UER
  # bursts, duplicates, window reordering, malformed lines, correlated
  # multi-bank CEs) and announces exactly how many lines it wrote and how
  # many a validating consumer must reject. The daemon's counters must
  # match exactly — every malformed line skipped at the parse boundary,
  # every valid record either processed or skew-dropped, none lost — and
  # the checkpoint it writes under that abuse must still be loadable.
  ./build/examples/cordial_storm "$SMOKE/log.csv" --burst 3 \
    --duplicate 0.1 --reorder 8 --garbage 0.05 --multi-bank 2 --seed 7 \
    > "$SMOKE/storm.csv" 2> "$SMOKE/storm.stats"
  STORM_LINES=$(sed -n 's/^STORM lines=\([0-9]*\) .*/\1/p' "$SMOKE/storm.stats")
  STORM_BAD=$(sed -n 's/^STORM .* malformed=\([0-9]*\)$/\1/p' "$SMOKE/storm.stats")
  [[ -n "$STORM_LINES" && -n "$STORM_BAD" && "$STORM_BAD" -gt 0 ]] || {
    echo "tier1: storm smoke produced no stats (lines=$STORM_LINES" \
      "malformed=$STORM_BAD)"; exit 1; }
  ./build/examples/cordial_serverd "$SMOKE/m" --input "$SMOKE/storm.csv" \
    --checkpoint "$SMOKE/storm.ckpt" --checkpoint-every 0 \
    --shards 2 --status-every 0 > "$SMOKE/storm.out" 2>/dev/null
  SUBMITTED=$(grep "records submitted" "$SMOKE/storm.out" \
    | grep -o '[0-9]\+' | tail -1)
  MALFORMED=$(grep "malformed lines skipped" "$SMOKE/storm.out" \
    | grep -o '[0-9]\+' | tail -1)
  EVENTS=$(grep "events processed" "$SMOKE/storm.out" \
    | grep -o '[0-9]\+' | tail -1)
  SKEW=$(grep "stale records dropped (skew)" "$SMOKE/storm.out" \
    | grep -o '[0-9]\+' | tail -1)
  [[ "$MALFORMED" == "$STORM_BAD" ]] || {
    echo "tier1: storm smoke malformed mismatch: daemon=$MALFORMED" \
      "storm=$STORM_BAD"; exit 1; }
  [[ "$SUBMITTED" == "$(( STORM_LINES - STORM_BAD ))" ]] || {
    echo "tier1: storm smoke submitted mismatch: daemon=$SUBMITTED" \
      "expected=$(( STORM_LINES - STORM_BAD ))"; exit 1; }
  [[ "$(( EVENTS + SKEW ))" == "$SUBMITTED" ]] || {
    echo "tier1: storm smoke lost records: events=$EVENTS skew=$SKEW" \
      "submitted=$SUBMITTED"; exit 1; }
  ./build/examples/cordial_serverd "$SMOKE/m" --input /dev/null \
    --checkpoint "$SMOKE/storm.ckpt" --checkpoint-every 0 \
    --shards 2 --status-every 0 > /dev/null 2> "$SMOKE/storm.resume.log"
  grep -q "resumed from checkpoint" "$SMOKE/storm.resume.log" || {
    echo "tier1: storm smoke checkpoint did not resume"; exit 1; }
  echo "tier1: hostile-feed smoke OK ($STORM_LINES storm lines," \
    "$STORM_BAD malformed all skipped, $EVENTS processed + $SKEW" \
    "skew-dropped = $SUBMITTED submitted, checkpoint reloadable)"
fi

if [[ "$SKIP_BENCH" == "1" ]]; then
  echo "tier1: skipping observability overhead gate (--skip-bench)"
else
  # Exits non-zero when instrumentation costs more than 5% throughput.
  (cd build/bench && ./perf_obs_overhead)
  # Exits non-zero unless the lock-free batched ring beats the pre-ring
  # mutex queue >= 5x into one shard (BENCH_queue.json holds the rows).
  (cd build/bench && ./perf_queue_throughput)
  # Exits non-zero unless TCP ingest sustains >= 80% of in-process
  # SubmitBatch throughput at 8 connections (BENCH_net.json holds the rows).
  (cd build/bench && ./perf_net_ingest)
  # Exits non-zero when serving under constant identical-bits model
  # publishes costs more than 5% steady-state throughput vs the fixed-model
  # path (BENCH_swap.json holds the rows).
  (cd build/bench && ./perf_model_swap)
  # Exits non-zero unless a steady-state dirty-bank delta checkpoint is
  # >= 10x cheaper than the full-text snapshot in both bytes and wall time
  # on a >= 4k-bank fleet (BENCH_ckpt.json holds the rows).
  (cd build/bench && ./perf_checkpoint)
fi
echo "tier1: OK"
