#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the parallel-layer
# tests again under ThreadSanitizer so data races in the thread pool or in
# any fanned-out hot path fail the run even when the plain build passes.
#
# Usage: scripts/tier1.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "tier1: skipping ThreadSanitizer pass (--skip-tsan)"
  exit 0
fi

cmake -B build-tsan -S . -DCORDIAL_SANITIZE=thread \
  -DCORDIAL_BUILD_BENCHMARKS=OFF -DCORDIAL_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j
# Run the parallel-layer tests wide enough to exercise the worker pool.
CORDIAL_THREADS=8 ctest --test-dir build-tsan --output-on-failure \
  -R '^Parallel'
echo "tier1: OK"
