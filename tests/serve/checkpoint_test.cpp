// Checkpoint/restore must be invisible to the decision stream: killing the
// engine after ANY event prefix, restoring from its checkpoint and replaying
// the remainder yields byte-identical final state. Pinned as a property test
// over sampled prefixes plus the server-level (sharded) round trip.
#include "serve/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/labeler.hpp"
#include "common/check.hpp"
#include "common/framing.hpp"
#include "core/persist.hpp"
#include "hbm/address.hpp"
#include "serve/fleet_server.hpp"
#include "trace/fleet.hpp"

namespace cordial::serve {
namespace {

struct World {
  hbm::TopologyConfig topology;
  trace::GeneratedFleet fleet;
  core::PatternClassifier classifier;
  core::CrossRowPredictor single_pred;
  core::CrossRowPredictor double_pred;
  bool double_ok = false;

  World()
      : fleet([] {
          hbm::TopologyConfig topology;
          trace::CalibrationProfile profile;
          profile.scale = 0.08;
          return trace::FleetGenerator(topology, profile).Generate(5);
        }()),
        classifier(topology, ml::LearnerKind::kRandomForest),
        single_pred(topology, ml::LearnerKind::kRandomForest),
        double_pred(topology, ml::LearnerKind::kRandomForest) {
    hbm::AddressCodec codec(topology);
    const auto banks = fleet.log.GroupByBank(codec);
    analysis::PatternLabeler labeler(topology);
    std::vector<core::LabelledBank> labelled;
    std::vector<const trace::BankHistory*> singles, doubles;
    for (const trace::BankHistory& bank : banks) {
      if (!bank.HasUer()) continue;
      const hbm::FailureClass cls = labeler.LabelClass(bank);
      labelled.push_back(core::LabelledBank{&bank, cls});
      if (cls == hbm::FailureClass::kSingleRowClustering) {
        singles.push_back(&bank);
      } else if (cls == hbm::FailureClass::kDoubleRowClustering) {
        doubles.push_back(&bank);
      }
    }
    Rng rng(99);
    classifier.Train(labelled, rng);
    single_pred.Train(singles, rng);
    try {
      double_pred.Train(doubles, rng);
      double_ok = true;
    } catch (const ContractViolation&) {
      double_ok = false;
    }
  }

  const core::CrossRowPredictor* double_or_null() const {
    return double_ok ? &double_pred : nullptr;
  }

  core::PredictionEngine MakeEngine() const {
    return core::PredictionEngine(topology, classifier, single_pred,
                                  double_or_null());
  }
};

const World& SharedWorld() {
  static const World* world = new World();
  return *world;
}

std::string StateOf(const core::PredictionEngine& engine) {
  std::ostringstream out;
  engine.SaveState(out);
  return out.str();
}

TEST(EngineCheckpoint, SaveRestoreRoundTripsByteExactly) {
  const World& w = SharedWorld();
  core::PredictionEngine original = w.MakeEngine();
  for (const trace::MceRecord& record : w.fleet.log.records()) {
    original.Observe(record);
  }
  const std::string saved = StateOf(original);

  core::PredictionEngine restored = w.MakeEngine();
  std::istringstream in(saved);
  restored.RestoreState(in);
  EXPECT_EQ(StateOf(restored), saved);
  EXPECT_EQ(restored.stats(), original.stats());
  EXPECT_EQ(restored.ledger().rows_spared(), original.ledger().rows_spared());
  EXPECT_EQ(restored.ledger().banks_spared(),
            original.ledger().banks_spared());
}

TEST(EngineCheckpoint, KillAtAnyPrefixResumesBitIdentically) {
  const World& w = SharedWorld();
  const auto& records = w.fleet.log.records();
  ASSERT_GT(records.size(), 20u);

  // Uninterrupted reference run.
  core::PredictionEngine reference = w.MakeEngine();
  for (const trace::MceRecord& record : records) reference.Observe(record);
  const std::string reference_state = StateOf(reference);

  // Kill after `k` events, restore, replay the rest: identical final state.
  // Sampled prefixes cover empty, mid-stream and full, plus a stride sweep.
  std::vector<std::size_t> prefixes = {0, 1, records.size() - 1,
                                       records.size()};
  const std::size_t stride = records.size() / 17 + 1;
  for (std::size_t k = stride; k < records.size(); k += stride) {
    prefixes.push_back(k);
  }

  // Sort so one incrementally-fed engine can serve every checkpoint in a
  // single pass over the stream.
  std::sort(prefixes.begin(), prefixes.end());
  core::PredictionEngine first_half = w.MakeEngine();
  std::size_t absorbed = 0;
  for (const std::size_t k : prefixes) {
    while (absorbed < k) {
      first_half.Observe(records[absorbed]);
      ++absorbed;
    }
    std::ostringstream checkpoint;
    first_half.SaveState(checkpoint);

    core::PredictionEngine resumed = w.MakeEngine();
    std::istringstream in(checkpoint.str());
    resumed.RestoreState(in);
    for (std::size_t i = k; i < records.size(); ++i) {
      resumed.Observe(records[i]);
    }
    ASSERT_EQ(StateOf(resumed), reference_state) << "prefix " << k;
  }
}

TEST(EngineCheckpoint, RestoreRejectsVersionMismatchAndWrongMagic) {
  const World& w = SharedWorld();
  core::PredictionEngine engine = w.MakeEngine();
  std::ostringstream saved;
  engine.SaveState(saved);

  // Re-frame the valid payload as a future version.
  std::istringstream reread(saved.str());
  const std::string payload =
      ReadFramed(reread, core::kEngineStateMagic, core::kEngineStateVersion);
  std::ostringstream future;
  WriteFramed(future, core::kEngineStateMagic, core::kEngineStateVersion + 1,
              payload);
  core::PredictionEngine victim = w.MakeEngine();
  std::istringstream future_in(future.str());
  EXPECT_THROW(victim.RestoreState(future_in), ParseError);

  std::ostringstream alien;
  WriteFramed(alien, "some_other_state", core::kEngineStateVersion, payload);
  core::PredictionEngine victim2 = w.MakeEngine();
  std::istringstream alien_in(alien.str());
  EXPECT_THROW(victim2.RestoreState(alien_in), ParseError);
}

TEST(EngineCheckpoint, ServerCheckpointResumesBitIdentically) {
  const World& w = SharedWorld();
  const auto& records = w.fleet.log.records();
  const std::size_t half = records.size() / 2;
  FleetServerConfig config;
  config.shard_count = 3;

  // Uninterrupted server over the whole stream.
  FleetServer reference(w.topology, w.classifier, w.single_pred,
                        w.double_or_null(), config);
  reference.Start();
  for (const trace::MceRecord& record : records) reference.Submit(record);
  reference.Stop();
  std::ostringstream reference_state;
  reference.SaveCheckpoint(reference_state);

  // First half, checkpoint at the kill point.
  FleetServer first(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), config);
  first.Start();
  for (std::size_t i = 0; i < half; ++i) first.Submit(records[i]);
  first.Drain();
  std::ostringstream checkpoint;
  first.SaveCheckpoint(checkpoint);
  first.Stop();

  // Fresh server restores and replays the remainder.
  FleetServer resumed(w.topology, w.classifier, w.single_pred,
                      w.double_or_null(), config);
  std::istringstream in(checkpoint.str());
  resumed.RestoreCheckpoint(in);
  resumed.Start();
  for (std::size_t i = half; i < records.size(); ++i) {
    resumed.Submit(records[i]);
  }
  resumed.Stop();
  std::ostringstream resumed_state;
  resumed.SaveCheckpoint(resumed_state);
  EXPECT_EQ(resumed_state.str(), reference_state.str());
  EXPECT_EQ(resumed.AggregateStats(), reference.AggregateStats());
}

TEST(EngineCheckpoint, ServerRejectsShardCountMismatch) {
  const World& w = SharedWorld();
  FleetServerConfig three;
  three.shard_count = 3;
  FleetServer saver(w.topology, w.classifier, w.single_pred,
                    w.double_or_null(), three);
  std::ostringstream checkpoint;
  saver.SaveCheckpoint(checkpoint);

  FleetServerConfig two;
  two.shard_count = 2;
  FleetServer restorer(w.topology, w.classifier, w.single_pred,
                       w.double_or_null(), two);
  std::istringstream in(checkpoint.str());
  try {
    restorer.RestoreCheckpoint(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("shard"), std::string::npos)
        << e.what();
  }
}

TEST(EngineCheckpoint, FileHelpersWriteAtomicallyAndHandleAbsence) {
  const World& w = SharedWorld();
  const auto& records = w.fleet.log.records();
  FleetServerConfig config;
  config.shard_count = 2;
  FleetServer server(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
  server.Start();
  for (std::size_t i = 0; i < records.size() / 4; ++i) {
    server.Submit(records[i]);
  }
  server.Stop();

  const std::string path =
      ::testing::TempDir() + "cordial_checkpoint_test.ckpt";
  std::remove(path.c_str());
  FleetServer reader(w.topology, w.classifier, w.single_pred,
                     w.double_or_null(), config);
  EXPECT_FALSE(ReadCheckpointFile(reader, path));  // fresh start

  WriteCheckpointFile(server, path);
  EXPECT_TRUE(ReadCheckpointFile(reader, path));
  std::ostringstream a, b;
  server.SaveCheckpoint(a);
  reader.SaveCheckpoint(b);
  EXPECT_EQ(a.str(), b.str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cordial::serve
